#!/usr/bin/env python3
"""Kill -9 recovery soak for the koika session server.

Drives the same deterministic 200-session load twice against
`koika_sim --serve ... --state-dir`:

  * the *golden* run is never interrupted;
  * the *kill* run is SIGKILLed mid-load (after session 120's op group,
    with sessions live, injected, and evicted in every combination), then
    restarted from the same state directory, after which the client
    finishes the remaining script.

Because the client is synchronous (every op is acknowledged before the
next is sent) and every acknowledged op is journaled before it executes,
the recovered run must end in exactly the golden state: the final
`query-regs` of all 200 sessions is diffed field by field.

Usage: kill9_soak.py [path-to-koika_sim]
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile

BIN = sys.argv[1] if len(sys.argv) > 1 else "./target/release/koika_sim"
SESSIONS = 200
KILL_AT = 120  # SIGKILL lands after this many sessions' op groups
DESIGNS = ("collatz", "fir", "rv32i+primes:8")


def start(state_dir):
    """Spawns a durable server; returns (proc, (host, port), recovered)."""
    proc = subprocess.Popen(
        [BIN, "--serve", "127.0.0.1:0", "--jobs", "2", "--state-dir", state_dir],
        stdout=subprocess.PIPE,
        text=True,
    )
    recovered = None
    addr = None
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("server exited before printing its address")
        if line.startswith("recovered "):
            recovered = int(line.split()[1])
        if line.startswith("serving on "):
            addr = line.split()[-1].strip()
            break
    host, port = addr.rsplit(":", 1)
    return proc, (host, int(port)), recovered


class Client:
    def __init__(self, addr):
        self.sock = socket.create_connection(addr)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.f = self.sock.makefile("rw")

    def rpc(self, obj):
        self.f.write(json.dumps(obj) + "\n")
        self.f.flush()
        return json.loads(self.f.readline())


def drive_one(c, i):
    """Session i's deterministic op group; returns its session id."""
    r = c.rpc({"op": "create", "design": DESIGNS[i % 3], "tenant": f"t{i % 4}"})
    assert r["ok"], r
    sid = r["session"]
    assert c.rpc({"op": "step", "session": sid, "n": 10 + i % 5})["ok"]
    if i % 3 == 1:
        # Register by flat index — valid for any design in the mix.
        r = c.rpc(
            {"op": "inject", "session": sid, "cycle": 20 + i % 7, "reg": "0", "bit": i % 2}
        )
        assert r["ok"], r
        assert c.rpc({"op": "step", "session": sid, "n": 15})["ok"]
    if i % 4 == 0:
        assert c.rpc({"op": "evict", "session": sid})["ok"]
    return sid


def collect(c, sids):
    out = {}
    for sid in sids:
        r = c.rpc({"op": "query-regs", "session": sid})
        assert r["ok"], r
        out[str(sid)] = {"cycles": r["cycles"], "regs": r["regs"]}
    return out


def main():
    root = tempfile.mkdtemp(prefix="koika-kill9-")
    try:
        # Golden: uninterrupted.
        gold_dir = os.path.join(root, "gold")
        proc, addr, _ = start(gold_dir)
        c = Client(addr)
        sids = [drive_one(c, i) for i in range(SESSIONS)]
        gold = collect(c, sids)
        c.rpc({"op": "shutdown"})
        proc.wait(timeout=60)

        # Kill run: SIGKILL mid-load, restart from the state dir, finish.
        kill_dir = os.path.join(root, "kill")
        proc, addr, _ = start(kill_dir)
        c = Client(addr)
        ksids = [drive_one(c, i) for i in range(KILL_AT)]
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

        proc, addr, recovered = start(kill_dir)
        assert recovered == KILL_AT, f"recovered {recovered}, expected {KILL_AT}"
        c = Client(addr)
        ksids += [drive_one(c, i) for i in range(KILL_AT, SESSIONS)]
        rec = collect(c, ksids)
        c.rpc({"op": "shutdown"})
        proc.wait(timeout=60)

        assert ksids == sids, "session id sequence diverged across the kill"
        diverged = [s for s in gold if gold[s] != rec.get(s)]
        if diverged:
            for s in diverged[:5]:
                print(f"session {s}:\n  gold {gold[s]}\n  rec  {rec.get(s)}")
            print(f"FAIL: {len(diverged)} of {SESSIONS} sessions diverged after kill -9")
            return 1
        print(
            f"ok: {SESSIONS} sessions ({recovered} recovered after kill -9) "
            f"byte-identical to the uninterrupted run"
        )
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
