//! Differential testing: every optimization level of the Cuttlesim VM must
//! be cycle-accurate with respect to the reference interpreter — same value
//! in every register after every cycle, and the same rules firing.
//!
//! This is the correctness backbone of the whole reproduction: the paper's
//! claim is that all the §3.2/§3.3 refinements preserve Kôika's semantics
//! exactly, and this suite checks that claim on both hand-written designs
//! and thousands of randomly generated ones.
//!
//! The random generator never emits same-rule read-after-write "Goldbergian
//! contraptions" (§3.2): like the real Cuttlesim, our accumulated-log levels
//! intentionally treat those as conflicts, diverging from the reference
//! semantics (the compiler warns when a design contains one).

use cuttlesim::{CompileOptions, OptLevel, Sim};
use koika::analysis::ScheduleAssumption;
use koika::ast::*;
use koika::check::check;
use koika::design::{Design, DesignBuilder};
use koika::device::{RegAccess, SimBackend};
use koika::interp::Interp;
use koika::tir::{RegId, TDesign};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the design on the interpreter and on every VM level, comparing all
/// registers after every cycle.
fn assert_all_levels_agree(td: &TDesign, cycles: usize) {
    let mut reference = Interp::new(td);
    let mut sims: Vec<(OptLevel, Sim)> = OptLevel::ALL
        .iter()
        .map(|&level| {
            let sim = Sim::compile_with(
                td,
                &CompileOptions {
                    level,
                    ..CompileOptions::default()
                },
            )
            .expect("all differential designs fit the 64-bit fast path");
            (level, sim)
        })
        .collect();

    for cycle in 0..cycles {
        reference.cycle();
        for (level, sim) in &mut sims {
            sim.cycle();
            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                assert_eq!(
                    sim.get64(reg),
                    reference.get64(reg),
                    "design {:?}, cycle {cycle}, register {} ({}), level {level}",
                    td.name,
                    r,
                    td.regs[r].name,
                );
            }
            assert_eq!(
                sim.rules_fired(),
                reference.rules_fired(),
                "design {:?}, cycle {cycle}: fired-rule count diverged at {level}",
                td.name,
            );
        }
    }
}

fn check_and_compare(design: Design, cycles: usize) {
    let td = check(&design).expect("generated design must typecheck");
    assert_all_levels_agree(&td, cycles);
}

// ---------------------------------------------------------------------------
// Hand-written corner cases
// ---------------------------------------------------------------------------

#[test]
fn forwarding_chain() {
    let mut b = DesignBuilder::new("chain");
    b.reg("a", 16, 1u64);
    b.reg("w1", 16, 0u64);
    b.reg("w2", 16, 0u64);
    b.reg("out", 16, 0u64);
    b.rule("s1", vec![wr0("w1", rd0("a").add(k(16, 3)))]);
    b.rule("s2", vec![wr0("w2", rd1("w1").mul(k(16, 5)))]);
    b.rule("s3", vec![wr0("out", rd1("w2").sub(k(16, 7)))]);
    b.rule("bump", vec![wr0("a", rd0("a").add(k(16, 1)))]);
    b.schedule(["s1", "s2", "s3", "bump"]);
    check_and_compare(b.build(), 64);
}

#[test]
fn conflicting_writers_and_port1_override() {
    let mut b = DesignBuilder::new("conflicts");
    b.reg("r", 8, 0u64);
    b.reg("tick", 8, 0u64);
    b.rule(
        "w0_even",
        vec![
            guard(rd0("tick").bit(0).eq(k(1, 0))),
            wr0("r", rd0("tick")),
        ],
    );
    b.rule("w0_all", vec![wr0("r", k(8, 0xaa))]);
    b.rule(
        "w1_thirds",
        vec![
            guard(rd0("tick").bit(1).eq(k(1, 1))),
            wr1("r", k(8, 0x55)),
        ],
    );
    b.rule("t", vec![wr0("tick", rd0("tick").add(k(8, 1)))]);
    b.schedule(["w0_even", "w0_all", "w1_thirds", "t"]);
    check_and_compare(b.build(), 64);
}

#[test]
fn read1_write0_interleavings() {
    // consume-before-produce: rd1 sees old value; wr0 after r1 conflicts.
    let mut b = DesignBuilder::new("interleave");
    b.reg("x", 8, 7u64);
    b.reg("got", 8, 0u64);
    b.rule("consume", vec![wr0("got", rd1("x"))]);
    b.rule("produce", vec![wr0("x", rd0("got").add(k(8, 1)))]);
    b.schedule(["consume", "produce"]);
    check_and_compare(b.build(), 32);
}

#[test]
fn arrays_with_conflicts() {
    let mut b = DesignBuilder::new("arrays");
    b.array("t", 8, 4, 0u64);
    b.reg("i", 8, 0u64);
    b.rule(
        "wa",
        vec![wr0a("t", rd0("i").slice(0, 2), rd0("i"))],
    );
    b.rule(
        "wb",
        vec![wr0a("t", rd0("i").slice(1, 2), rd0("i").add(k(8, 64)))],
    );
    b.rule(
        "sum",
        vec![wr0("i", rd0("i").add(rd0a("t", rd0("i").slice(2, 2)).slice(0, 4).zext(8)).add(k(8, 1)))],
    );
    b.schedule(["wa", "wb", "sum"]);
    check_and_compare(b.build(), 100);
}

#[test]
fn abort_in_nested_branches() {
    let mut b = DesignBuilder::new("nested");
    b.reg("n", 8, 0u64);
    b.reg("m", 8, 0u64);
    b.rule(
        "rl",
        vec![
            wr0("m", rd0("m").add(k(8, 1))),
            iff(
                rd0("n").bit(0).eq(k(1, 0)),
                vec![when(rd0("n").bit(1).eq(k(1, 1)), vec![abort()])],
                vec![wr0("n", rd0("n").add(k(8, 3))), when(rd0("m").bit(2).eq(k(1, 1)), vec![abort()])],
            ),
            wr0("n", rd1("n").add(k(8, 1))),
        ],
    );
    // This design has a same-rule wr0-then-rd1 pattern? rd1 after wr0 is
    // legal (rd1 sees the write); only rd1-after-wr1 and rd0-after-write are
    // contraptions. rd0("n") after wr0("n") in the else branch *is* one, so
    // rewrite: read first.
    let mut b2 = DesignBuilder::new("nested");
    b2.reg("n", 8, 0u64);
    b2.reg("m", 8, 0u64);
    b2.rule(
        "rl",
        vec![
            let_("n0", rd0("n")),
            wr0("m", rd0("m").add(k(8, 1))),
            iff(
                var("n0").bit(0).eq(k(1, 0)),
                vec![when(var("n0").bit(1).eq(k(1, 1)), vec![abort()])],
                vec![
                    wr0("n", var("n0").add(k(8, 3))),
                    when(rd0("m").bit(2).eq(k(1, 1)), vec![abort()]),
                ],
            ),
            wr0("m", rd1("m")),
        ],
    );
    drop(b);
    // The second wr0("m") conflicts with the first every time the rule gets
    // that far, exercising mid-rule dynamic conflicts with earlier writes.
    check_and_compare(b2.build(), 64);
}

#[test]
fn wide_values_up_to_64_bits() {
    let mut b = DesignBuilder::new("wide64");
    b.reg("acc", 64, 0x0123_4567_89ab_cdefu64);
    b.reg("lo", 32, 5u64);
    b.rule(
        "mix",
        vec![
            let_("v", rd0("acc").mul(k(64, 0x9e37_79b9_7f4a_7c15))),
            wr0("acc", var("v").xor(rd0("lo").zext(64).shl(k(8, 13)))),
            wr0("lo", var("v").slice(32, 32)),
        ],
    );
    check_and_compare(b.build(), 64);
}

#[test]
fn signed_ops_and_shifts() {
    let mut b = DesignBuilder::new("signed");
    b.reg("x", 12, 0xfffu64);
    b.reg("y", 12, 3u64);
    b.reg("flags", 4, 0u64);
    b.rule(
        "cmp",
        vec![
            let_("lt", rd0("x").slt(rd0("y"))),
            let_("le", rd0("x").sle(rd0("y"))),
            let_("ult", rd0("x").ult(rd0("y"))),
            let_("sra", rd0("x").sra(k(4, 2))),
            wr0(
                "flags",
                var("lt")
                    .concat(var("le"))
                    .concat(var("ult"))
                    .concat(var("sra").bit(0)),
            ),
            wr0("x", rd0("x").add(k(12, 0x7f3))),
            wr0("y", rd0("y").sub(var("sra"))),
        ],
    );
    check_and_compare(b.build(), 128);
}

// ---------------------------------------------------------------------------
// Random-design differential testing (generator shared via koika::testgen)
// ---------------------------------------------------------------------------

use koika::testgen::random_design;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn random_designs_agree_across_all_levels(seed in any::<u64>()) {
        let design = random_design(seed);
        let td = check(&design).expect("generator produces well-typed designs");
        assert_all_levels_agree(&td, 24);
    }
}

// ---------------------------------------------------------------------------
// Scheduler permutations (case study 2 infrastructure)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_rule_orders_agree_with_interpreter(seed in any::<u64>(), order_seed in any::<u64>()) {
        let design = random_design(seed);
        let td = check(&design).expect("well-typed");
        let mut reference = Interp::new(&td);
        let mut sim = Sim::compile_with(
            &td,
            &CompileOptions {
                level: OptLevel::max(),
                assumption: ScheduleAssumption::AnyOrder,
                coverage: false,
                optimize: true,
            },
        )
        .unwrap();

        let mut rng = StdRng::seed_from_u64(order_seed);
        let nrules = td.rules.len();
        for cycle in 0..16 {
            // A random order over a random subset of rules.
            let mut order: Vec<usize> = (0..nrules).filter(|_| rng.gen_bool(0.8)).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            reference.cycle_with_order(&order);
            sim.cycle_with_order(&order);
            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                prop_assert_eq!(
                    sim.get64(reg),
                    reference.get64(reg),
                    "seed {} cycle {} register {}", seed, cycle, r
                );
            }
        }
    }
}

/// Regression: seed 11601977382778502997 once exposed a CSE scoping bug —
/// a common subexpression first computed inside a conditionally-executed
/// branch was reused after the join, where the branch may have been
/// skipped.
#[test]
fn regression_cse_temp_must_not_escape_branch() {
    let design = random_design(11601977382778502997);
    let td = check(&design).expect("well-typed");
    assert_all_levels_agree(&td, 24);
}

/// A directed version of the same bug: the shared subexpression appears in
/// a taken-or-not branch and again afterwards.
#[test]
fn cse_branch_scoping_directed() {
    let mut b = DesignBuilder::new("cse_scope");
    b.reg("x", 32, 5u64);
    b.reg("y", 32, 0u64);
    b.reg("z", 32, 0u64);
    b.rule(
        "rl",
        vec![
            let_("g", rd0("x")),
            // `g * 3 + 7` inside the branch...
            when(
                var("g").bit(0).eq(k(1, 0)),
                vec![wr0("y", var("g").mul(k(32, 3)).add(k(32, 7)))],
            ),
            // ... and the same expression after the join.
            wr0("z", var("g").mul(k(32, 3)).add(k(32, 7)).xor(var("g"))),
            wr0("x", var("g").add(k(32, 1))),
        ],
    );
    check_and_compare(b.build(), 32);
}
