//! Width-boundary differential suite: directed designs whose operand
//! widths sit at the edges of the 64-bit host word (1, 63, and 64 bits,
//! extreme concatenation splits, shift counts at and past the operand
//! width) are run cycle-by-cycle against the reference interpreter on
//! every VM optimization level, under every dispatch engine, and through
//! the batched lock-step engine.
//!
//! These are the widths where the PR-5 bugfix sweep found real bugs
//! (`ConcatShift` shifting by >= 64 without a guard or result mask,
//! `word::sra` underflowing at width 0), so the suite pins the whole
//! family of boundary cases rather than just the two that failed.

use cuttlesim::{BatchSim, CompileOptions, Dispatch, OptLevel, Sim};
use koika::ast::*;
use koika::check::check;
use koika::design::DesignBuilder;
use koika::device::{RegAccess, SimBackend};
use koika::tir::{RegId, TDesign};
use koika::Interp;

/// Cycle budget: long enough for the 8-bit shift counters to sweep well
/// past every operand width.
const CYCLES: usize = 96;

/// Per-cycle full-register-file trace on the reference interpreter.
fn interp_trace(td: &TDesign, cycles: usize) -> Vec<Vec<u64>> {
    let mut sim = Interp::new(td);
    let mut trace = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        sim.cycle();
        trace.push(
            (0..td.num_regs())
                .map(|r| sim.as_reg_access().get64(RegId(r as u32)))
                .collect(),
        );
    }
    trace
}

/// Checks one backend's register file against the reference trace row.
fn assert_regs(td: &TDesign, expected: &[u64], got: &mut dyn RegAccess, what: &str, cycle: usize) {
    for (r, &want) in expected.iter().enumerate() {
        assert_eq!(
            got.get64(RegId(r as u32)),
            want,
            "design {:?}, {what}, cycle {cycle}, register {} ({})",
            td.name,
            r,
            td.regs[r].name,
        );
    }
}

/// Runs a design on every `(OptLevel, Dispatch)` pair — scalar and
/// batched — and demands bit-identical register state against the
/// reference interpreter after every cycle.
fn assert_all_backends_agree(design: &koika::Design) {
    let td = check(design).expect("boundary designs typecheck");
    let reference = interp_trace(&td, CYCLES);
    for level in OptLevel::ALL {
        let opts = CompileOptions {
            level,
            ..CompileOptions::default()
        };
        for dispatch in Dispatch::ALL {
            let mut sim = Sim::compile_with(&td, &opts).expect("boundary designs compile");
            sim.set_dispatch(dispatch);
            for (cycle, row) in reference.iter().enumerate() {
                sim.cycle();
                let what = format!("{level}/{}", dispatch.short_name());
                assert_regs(&td, row, sim.as_reg_access(), &what, cycle);
            }

            let lanes = 3;
            let mut batch =
                BatchSim::compile_with(&td, &opts, lanes).expect("boundary designs compile");
            batch.set_dispatch(dispatch);
            for (cycle, row) in reference.iter().enumerate() {
                batch.cycle().expect("boundary designs execute cleanly");
                for lane in 0..lanes {
                    for (r, &want) in row.iter().enumerate() {
                        assert_eq!(
                            batch.lane_get64(lane, RegId(r as u32)),
                            want,
                            "design {:?}, {level}/{}/batch lane {lane}, cycle {cycle}, \
                             register {} ({})",
                            td.name,
                            dispatch.short_name(),
                            r,
                            td.regs[r].name,
                        );
                    }
                }
            }
        }
    }

    // Batch-width sweep: the lane dimension has boundaries of its own — a
    // single lane, a width that straddles the fixed SIMD chunks, one and
    // two full 64-lane chunks — and the compiled batch kernels specialize
    // on the exact lane count, so each width is a distinct code path.
    // Swept at the top optimization level under every dispatch (the
    // level dimension is already covered at a fixed width above).
    let opts = CompileOptions {
        level: OptLevel::max(),
        ..CompileOptions::default()
    };
    for dispatch in Dispatch::ALL {
        for lanes in [1usize, 7, 32, 64] {
            let mut batch =
                BatchSim::compile_with(&td, &opts, lanes).expect("boundary designs compile");
            batch.set_dispatch(dispatch);
            for (cycle, row) in reference.iter().enumerate() {
                batch.cycle().expect("boundary designs execute cleanly");
                for lane in 0..lanes {
                    for (r, &want) in row.iter().enumerate() {
                        assert_eq!(
                            batch.lane_get64(lane, RegId(r as u32)),
                            want,
                            "design {:?}, max/{}/batch {lanes} lanes, lane {lane}, \
                             cycle {cycle}, register {} ({})",
                            td.name,
                            dispatch.short_name(),
                            r,
                            td.regs[r].name,
                        );
                    }
                }
            }
        }
    }
}

/// Shift mill at width `w`: an 8-bit counter drives logical-right,
/// arithmetic-right, and left shifts whose counts sweep from 0 well past
/// the operand width, exercising the shift-by->=width boundary on every
/// cycle. The sra operand keeps its top bit hot half the time so sign
/// fill is actually observable.
fn shift_mill(w: u32) -> koika::Design {
    let mut b = DesignBuilder::new(format!("shift_mill_{w}"));
    b.reg("x", w, word_pattern(w));
    b.reg("s", 8, 0u64);
    b.rule(
        "mill",
        vec![
            let_("x0", rd0("x")),
            let_("s0", rd0("s")),
            wr0(
                "x",
                var("x0")
                    .shr(var("s0"))
                    .xor(var("x0").sra(var("s0")))
                    .xor(var("x0").shl(k(8, 1)))
                    .add(k(w, 1)),
            ),
            wr0("s", var("s0").add(k(8, 1))),
        ],
    );
    b.schedule(vec!["mill".to_string()]);
    b.build()
}

/// Signed-comparison mill at width `w`: two counters walk toward and past
/// each other so `slt`/`sle` cross the sign boundary repeatedly; at
/// widths 63/64 the sign bit sits at the edge of the host word.
fn signed_cmp_mill(w: u32) -> koika::Design {
    let mut b = DesignBuilder::new(format!("signed_cmp_{w}"));
    b.reg("a", w, 0u64);
    b.reg("b", w, word_pattern(w));
    b.reg("acc", w, 0u64);
    let step = if w >= 4 { 5u64 } else { 1u64 };
    b.rule(
        "cmp",
        vec![
            let_("a0", rd0("a")),
            let_("b0", rd0("b")),
            let_("acc0", rd0("acc")),
            wr0("a", var("a0").add(k(w, step))),
            wr0("b", var("b0").sub(k(w, step))),
            wr0(
                "acc",
                var("acc0")
                    .add(var("a0").slt(var("b0")).zext(w))
                    .add(var("a0").sle(var("b0")).zext(w))
                    .add(var("a0").ult(var("b0")).zext(w))
                    .add(var("a0").ule(var("b0")).zext(w)),
            ),
        ],
    );
    b.schedule(vec!["cmp".to_string()]);
    b.build()
}

/// Concatenation with an extreme split: a `high`-bit register over a
/// `low`-bit register, both mutating every cycle. `low` of 63 puts the
/// lowered `ConcatShift` one bit from the 64-bit guard; 1 puts it at the
/// other end.
fn concat_split(high: u32, low: u32) -> koika::Design {
    let w = high + low;
    let mut b = DesignBuilder::new(format!("concat_{high}_{low}"));
    b.reg("h", high, word_pattern(high));
    b.reg("l", low, word_pattern(low));
    b.reg("out", w, 0u64);
    b.rule(
        "cat",
        vec![
            let_("h0", rd0("h")),
            let_("l0", rd0("l")),
            wr0("out", var("h0").concat(var("l0"))),
            wr0("h", var("h0").add(k(high, 1))),
            wr0("l", var("l0").sub(k(low, 1))),
        ],
    );
    b.schedule(vec!["cat".to_string()]);
    b.build()
}

/// Slice/sign-extension boundaries on a churning 64-bit value: the top
/// bit alone, a 1-bit slice sign-extended to 64, and a 63-bit slice.
fn slice_sext_mill() -> koika::Design {
    let mut b = DesignBuilder::new("slice_sext_64");
    b.reg("x", 64, 0x8421_8421_8421_8421u64);
    b.reg("top", 1, 0u64);
    b.reg("wide", 64, 0u64);
    b.reg("low63", 63, 0u64);
    b.rule(
        "mill",
        vec![
            let_("x0", rd0("x")),
            wr0("top", var("x0").slice(63, 1)),
            wr0("wide", var("x0").slice(63, 1).sext(64)),
            wr0("low63", var("x0").slice(0, 63)),
            wr0("x", var("x0").mul(k(64, 0x9e37_79b9)).add(k(64, 0x7f4a_7c15))),
        ],
    );
    b.schedule(vec!["mill".to_string()]);
    b.build()
}

/// A dense init pattern for any width (alternating bits, top bit set).
fn word_pattern(w: u32) -> u64 {
    let base = 0xAAAA_AAAA_AAAA_AAAAu64 | 1;
    if w >= 64 {
        base
    } else {
        (base | (1 << (w - 1))) & ((1u64 << w) - 1)
    }
}

#[test]
fn shift_mills_agree_at_boundary_widths() {
    for w in [1, 63, 64] {
        assert_all_backends_agree(&shift_mill(w));
    }
}

#[test]
fn signed_comparison_agrees_at_boundary_widths() {
    for w in [1, 63, 64] {
        assert_all_backends_agree(&signed_cmp_mill(w));
    }
}

#[test]
fn extreme_concat_splits_agree() {
    for (high, low) in [(1, 63), (63, 1), (1, 1), (32, 32), (13, 51)] {
        assert_all_backends_agree(&concat_split(high, low));
    }
}

#[test]
fn slice_and_sext_boundaries_agree() {
    assert_all_backends_agree(&slice_sext_mill());
}
