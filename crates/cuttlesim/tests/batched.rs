//! Differential tests for the batched lock-step engine: N lanes of one
//! [`BatchSim`] must be indistinguishable from N independent scalar
//! [`Sim`] runs — the same rules committing in the same order every cycle
//! (checked both as raw commit sequences and as the FNV-1a digest the
//! fault-injection campaigns fingerprint with), the same value in every
//! register, and the same per-rule commit/failure counters and
//! [`FailInfo`] — at every optimization level, under every dispatch
//! engine (including the compiled SIMD batch kernels), even when the
//! lanes start from divergent initial states and stop sharing control
//! flow.
//!
//! This is the oracle that licenses the batched campaign and fuzz paths:
//! if a lane is bit-identical to a scalar run, any report built from lane
//! observations is byte-identical to the sequential report.
//!
//! Every run also pins the lock-step accounting invariant: each scheduled
//! rule of each cycle increments exactly one of `lockstep_rules` or
//! `fallback_rules`, so their sum always equals `cycles x schedule`.

use cuttlesim::{toolchain_available, BatchSim, CompileOptions, Dispatch, OptLevel, Sim};
use koika::ast::*;
use koika::check::check;
use koika::design::DesignBuilder;
use koika::device::{RegAccess, SimBackend};
use koika::obs::Observer;
use koika::testgen::{random_design, SplitMix64};
use koika::tir::{RegId, TDesign};
use koika::vcd::VcdRecorder;
use proptest::prelude::*;

/// Records the committed-rule sequence of one cycle.
struct CommitRec<'a>(&'a mut Vec<u32>);

impl Observer for CommitRec<'_> {
    fn rule_commit(&mut self, rule: usize) {
        self.0.push(rule as u32);
    }
}

/// The same per-cycle commit fingerprint the campaign engine uses
/// (FNV-1a over `rule + 1`).
fn commit_digest(commits: &[u32]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    commits.iter().fold(FNV_OFFSET, |cur, &rule| {
        (cur ^ u64::from(rule + 1)).wrapping_mul(FNV_PRIME)
    })
}

/// The interpreted dispatches, always available. The native dispatch is
/// appended by the callers that can afford a compile, gated on the
/// toolchain.
const INTERPRETED: [Dispatch; 3] = [Dispatch::Match, Dispatch::Closure, Dispatch::Tac];

/// Runs `lanes` lanes of the batched engine against `lanes` independent
/// scalar VMs at the given level and dispatch. Lane 0 keeps the declared
/// initial values; lanes 1.. are perturbed (identically on both sides) so
/// the lanes diverge and the per-rule fallback path is exercised.
///
/// Returns `(lockstep_rules, fallback_rules)` so callers can additionally
/// assert that a scenario really exercised the path it targets.
fn assert_lanes_match_scalar(
    td: &TDesign,
    level: OptLevel,
    dispatch: Dispatch,
    lanes: usize,
    cycles: usize,
    seed: u64,
) -> (u64, u64) {
    let opts = CompileOptions {
        level,
        ..CompileOptions::default()
    };
    let mut batch =
        BatchSim::compile_with(td, &opts, lanes).expect("test designs fit the fast path");
    batch.set_dispatch(dispatch);
    let mut scalars: Vec<Sim> = (0..lanes)
        .map(|_| {
            let mut s = Sim::compile_with(td, &opts).expect("test designs fit the fast path");
            s.set_dispatch(dispatch);
            s
        })
        .collect();
    for (lane, scalar) in scalars.iter_mut().enumerate().skip(1) {
        let mut rng = SplitMix64::new(seed ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            let v = rng.next_u64();
            batch.lane_set64(lane, reg, v);
            scalar.set64(reg, v);
        }
    }

    let what = format!("{level}/{}", dispatch.short_name());
    for cycle in 0..cycles {
        batch.cycle().expect("test designs execute cleanly");
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            let mut commits = Vec::new();
            scalar.cycle_obs(&mut CommitRec(&mut commits));
            assert_eq!(
                batch.lane_commits(lane),
                commits.as_slice(),
                "design {:?}, {what}, cycle {cycle}, lane {lane}: commit sequence diverged",
                td.name,
            );
            assert_eq!(
                commit_digest(batch.lane_commits(lane)),
                commit_digest(&commits),
                "design {:?}, {what}, cycle {cycle}, lane {lane}: commit digest diverged",
                td.name,
            );
            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                assert_eq!(
                    batch.lane_get64(lane, reg),
                    scalar.get64(reg),
                    "design {:?}, {what}, cycle {cycle}, lane {lane}, register {} ({})",
                    td.name,
                    r,
                    td.regs[r].name,
                );
            }
            assert_eq!(
                batch.lane_fired_per_rule(lane).as_slice(),
                scalar.fired_per_rule(),
                "design {:?}, {what}, cycle {cycle}, lane {lane}: fired-per-rule diverged",
                td.name,
            );
            assert_eq!(
                batch.lane_fails_per_rule(lane).as_slice(),
                scalar.fails_per_rule(),
                "design {:?}, {what}, cycle {cycle}, lane {lane}: fails-per-rule diverged",
                td.name,
            );
            assert_eq!(
                batch.lane_last_fail(lane),
                scalar.last_fail(),
                "design {:?}, {what}, cycle {cycle}, lane {lane}: last-fail info diverged",
                td.name,
            );
        }
    }

    // The lock-step accounting invariant: every scheduled rule of every
    // cycle is accounted to exactly one of the two counters, under every
    // dispatch, diverged or not.
    let (lockstep, fallback) = (batch.lockstep_rules(), batch.fallback_rules());
    assert_eq!(
        lockstep + fallback,
        cycles as u64 * batch.program().schedule.len() as u64,
        "design {:?}, {what}: lockstep + fallback must count every rule executed",
        td.name,
    );
    (lockstep, fallback)
}

/// Every optimization level under every interpreted dispatch.
fn assert_all_levels(td: &TDesign, lanes: usize, cycles: usize, seed: u64) {
    for level in OptLevel::ALL {
        for dispatch in INTERPRETED {
            assert_lanes_match_scalar(td, level, dispatch, lanes, cycles, seed);
        }
    }
}

/// Every optimization level under the compiled native dispatch (a no-op
/// without a toolchain — CI always has one).
fn assert_all_levels_native(td: &TDesign, lanes: usize, cycles: usize, seed: u64) {
    if !toolchain_available() {
        return;
    }
    for level in OptLevel::ALL {
        assert_lanes_match_scalar(td, level, Dispatch::Native, lanes, cycles, seed);
    }
}

// ---------------------------------------------------------------------------
// Directed cases
// ---------------------------------------------------------------------------

/// A counter with a data-dependent branch: perturbed lanes take different
/// branches on different cycles, so lock-step execution must fall back.
fn collatz_like() -> TDesign {
    let mut b = DesignBuilder::new("lanes_diverge");
    b.reg("n", 16, 1u64);
    b.reg("odd_steps", 16, 0u64);
    b.rule(
        "step",
        vec![
            let_("n0", rd0("n")),
            iff(
                var("n0").bit(0).eq(k(1, 1)),
                vec![
                    wr0("n", var("n0").mul(k(16, 3)).add(k(16, 1))),
                    wr0("odd_steps", rd0("odd_steps").add(k(16, 1))),
                ],
                vec![wr0("n", var("n0").shr(k(4, 1)))],
            ),
        ],
    );
    b.rule(
        "restart",
        vec![
            guard(rd1("n").eq(k(16, 1))),
            wr1("n", rd0("odd_steps").add(k(16, 27))),
        ],
    );
    b.schedule(["step", "restart"]);
    check(&b.build()).expect("well-typed")
}

#[test]
fn divergent_branches_across_lanes() {
    let td = collatz_like();
    assert_all_levels(&td, 8, 64, 0xD1CE);
    assert_all_levels_native(&td, 8, 64, 0xD1CE);
}

/// Guard-failure asymmetry: some lanes' rules abort while others commit,
/// the mixed outcome that forces the per-lane fallback path.
#[test]
fn mixed_guard_failures() {
    let mut b = DesignBuilder::new("mixed_guards");
    b.reg("x", 8, 0u64);
    b.reg("y", 8, 0u64);
    b.rule(
        "gated",
        vec![guard(rd0("x").bit(0).eq(k(1, 0))), wr0("y", rd0("x"))],
    );
    b.rule("bump", vec![wr0("x", rd0("x").add(k(8, 1)))]);
    b.schedule(["gated", "bump"]);
    let td = check(&b.build()).expect("well-typed");
    assert_all_levels(&td, 5, 48, 0xBEEF);
    assert_all_levels_native(&td, 5, 48, 0xBEEF);
}

/// Identical lanes must stay in pure lock-step and still match scalar,
/// under every dispatch including the compiled batch kernels.
#[test]
fn identical_lanes_lockstep() {
    let mut b = DesignBuilder::new("lockstep");
    b.reg("acc", 32, 3u64);
    b.rule(
        "mix",
        vec![wr0("acc", rd0("acc").mul(k(32, 1664525)).add(k(32, 1013904223)))],
    );
    let td = check(&b.build()).expect("well-typed");
    let mut dispatches = INTERPRETED.to_vec();
    if toolchain_available() {
        dispatches.push(Dispatch::Native);
    }
    for level in OptLevel::ALL {
        for &dispatch in &dispatches {
            let opts = CompileOptions {
                level,
                ..CompileOptions::default()
            };
            let mut batch = BatchSim::compile_with(&td, &opts, 16).unwrap();
            batch.set_dispatch(dispatch);
            let mut scalar = Sim::compile_with(&td, &opts).unwrap();
            scalar.set_dispatch(dispatch);
            for _ in 0..32 {
                batch.cycle().unwrap();
                let mut commits = Vec::new();
                scalar.cycle_obs(&mut CommitRec(&mut commits));
                for lane in 0..16 {
                    assert_eq!(batch.lane_commits(lane), commits.as_slice());
                    assert_eq!(
                        batch.lane_get64(lane, RegId(0)),
                        scalar.get64(RegId(0)),
                        "{level}/{}: lane {lane} register 0",
                        dispatch.short_name(),
                    );
                }
            }
            assert!(
                batch.fallback_rules() == 0,
                "{level}/{}: identical lanes must never leave lock-step \
                 ({} fallbacks)",
                dispatch.short_name(),
                batch.fallback_rules()
            );
            assert_eq!(
                batch.lockstep_rules(),
                32,
                "{level}/{}: every scheduled rule must be counted as lock-step",
                dispatch.short_name(),
            );
        }
    }
}

/// A single lane is just the scalar VM with extra indexing.
#[test]
fn one_lane_degenerates_to_scalar() {
    let td = check(&random_design(42)).expect("well-typed");
    assert_all_levels(&td, 1, 32, 7);
    assert_all_levels_native(&td, 1, 32, 7);
}

/// `--batch 1` byte-identity: a single-lane batch and a scalar VM started
/// from the same state must agree on *every* observable — the commit
/// stream, all registers, the per-rule counters, the failure info, and
/// the rendered VCD waveform, byte for byte — under every dispatch.
#[test]
fn batch_of_one_is_byte_identical_to_scalar() {
    let td = collatz_like();
    let mut dispatches = INTERPRETED.to_vec();
    if toolchain_available() {
        dispatches.push(Dispatch::Native);
    }
    for dispatch in dispatches {
        let opts = CompileOptions::default();
        let mut batch = BatchSim::compile_with(&td, &opts, 1).unwrap();
        batch.set_dispatch(dispatch);
        let mut scalar = Sim::compile_with(&td, &opts).unwrap();
        scalar.set_dispatch(dispatch);
        let mut batch_vcd = VcdRecorder::all_registers(&td);
        let mut scalar_vcd = VcdRecorder::all_registers(&td);
        let cycles = 128u64;
        for cycle in 0..cycles {
            batch.cycle().unwrap();
            let mut commits = Vec::new();
            scalar.cycle_obs(&mut CommitRec(&mut commits));
            assert_eq!(
                batch.lane_commits(0),
                commits.as_slice(),
                "{}: commit stream diverged at cycle {cycle}",
                dispatch.short_name(),
            );
            assert_eq!(
                batch.lane_fired_per_rule(0).as_slice(),
                scalar.fired_per_rule(),
                "{}: fired counters diverged at cycle {cycle}",
                dispatch.short_name(),
            );
            assert_eq!(
                batch.lane_fails_per_rule(0).as_slice(),
                scalar.fails_per_rule(),
                "{}: fail counters diverged at cycle {cycle}",
                dispatch.short_name(),
            );
            assert_eq!(
                batch.lane_last_fail(0),
                scalar.last_fail(),
                "{}: FailInfo diverged at cycle {cycle}",
                dispatch.short_name(),
            );
            scalar_vcd.sample(cycle, &scalar);
            let lane = batch.lane(0);
            batch_vcd.sample(cycle, &lane);
        }
        assert_eq!(
            batch_vcd.finish(cycles),
            scalar_vcd.finish(cycles),
            "{}: VCD waveforms must be byte-identical",
            dispatch.short_name(),
        );
    }
}

/// The lock-step accounting invariant, pinned on its own against a design
/// that mixes all three outcomes (commit, clean failure, divergence):
/// every scheduled rule lands in exactly one counter under every dispatch,
/// and this scenario genuinely exercises both paths.
#[test]
fn lockstep_fallback_counters_account_for_every_rule() {
    let td = collatz_like();
    let mut dispatches = INTERPRETED.to_vec();
    if toolchain_available() {
        dispatches.push(Dispatch::Native);
    }
    for dispatch in dispatches {
        let (lockstep, fallback) =
            assert_lanes_match_scalar(&td, OptLevel::max(), dispatch, 8, 64, 0xD1CE);
        assert!(
            lockstep > 0 && fallback > 0,
            "{}: the divergence scenario must exercise both counters \
             (lockstep {lockstep}, fallback {fallback})",
            dispatch.short_name(),
        );
    }
}

// ---------------------------------------------------------------------------
// Random-design differential matrix (generator shared via koika::testgen)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// The batched matrix: random design x divergent lane inits x every
    /// optimization level x every interpreted dispatch, lanes bit-compared
    /// to scalar runs each cycle. (The native dispatch replays the pinned
    /// corpus below instead — a fresh `rustc` invocation per proptest case
    /// would dwarf the signal.)
    #[test]
    fn random_designs_batched_vs_scalar(seed in any::<u64>(), lanes in 2usize..6) {
        let design = random_design(seed);
        let td = check(&design).expect("generator produces well-typed designs");
        assert_all_levels(&td, lanes, 16, seed);
    }
}

/// The checked-in corpus: seeds whose generated designs exercise rich
/// divergence patterns, replayed deterministically on every run through
/// every dispatch — including the compiled SIMD batch path, which the
/// proptest matrix above skips. Across the corpus the native path must
/// actually leave lock-step at least once, so the per-lane fallback seam
/// (gather, compiled scalar re-run, scatter) is genuinely traversed.
#[test]
fn corpus_replays_through_all_dispatches() {
    const CORPUS: [(u64, usize); 4] = [(42, 4), (0xC0FFEE, 5), (0xFEED_5EED, 3), (7, 2)];
    let mut native_fallbacks = 0;
    for (seed, lanes) in CORPUS {
        let td = check(&random_design(seed)).expect("well-typed");
        for dispatch in INTERPRETED {
            assert_lanes_match_scalar(&td, OptLevel::max(), dispatch, lanes, 24, seed);
        }
        if toolchain_available() {
            for level in [OptLevel::ALL[0], OptLevel::max()] {
                let (_, fb) =
                    assert_lanes_match_scalar(&td, level, Dispatch::Native, lanes, 24, seed);
                native_fallbacks += fb;
            }
        }
    }
    if toolchain_available() {
        assert!(
            native_fallbacks > 0,
            "corpus must exercise the native divergence fallback",
        );
    }
}
