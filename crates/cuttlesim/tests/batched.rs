//! Differential tests for the batched lock-step engine: N lanes of one
//! [`BatchSim`] must be indistinguishable from N independent scalar
//! [`Sim`] runs — the same rules committing in the same order every cycle
//! (checked both as raw commit sequences and as the FNV-1a digest the
//! fault-injection campaigns fingerprint with) and the same value in every
//! register, at every optimization level, even when the lanes start from
//! divergent initial states and stop sharing control flow.
//!
//! This is the oracle that licenses the batched campaign and fuzz paths:
//! if a lane is bit-identical to a scalar run, any report built from lane
//! observations is byte-identical to the sequential report.

use cuttlesim::{BatchSim, CompileOptions, OptLevel, Sim};
use koika::ast::*;
use koika::check::check;
use koika::design::DesignBuilder;
use koika::device::{RegAccess, SimBackend};
use koika::obs::Observer;
use koika::testgen::{random_design, SplitMix64};
use koika::tir::{RegId, TDesign};
use proptest::prelude::*;

/// Records the committed-rule sequence of one cycle.
struct CommitRec<'a>(&'a mut Vec<u32>);

impl Observer for CommitRec<'_> {
    fn rule_commit(&mut self, rule: usize) {
        self.0.push(rule as u32);
    }
}

/// The same per-cycle commit fingerprint the campaign engine uses
/// (FNV-1a over `rule + 1`).
fn commit_digest(commits: &[u32]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    commits.iter().fold(FNV_OFFSET, |cur, &rule| {
        (cur ^ u64::from(rule + 1)).wrapping_mul(FNV_PRIME)
    })
}

/// Runs `lanes` lanes of the batched engine against `lanes` independent
/// scalar VMs at the given level. Lane 0 keeps the declared initial
/// values; lanes 1.. are perturbed (identically on both sides) so the
/// lanes diverge and the per-rule fallback path is exercised.
fn assert_lanes_match_scalar(td: &TDesign, level: OptLevel, lanes: usize, cycles: usize, seed: u64) {
    let opts = CompileOptions {
        level,
        ..CompileOptions::default()
    };
    let mut batch =
        BatchSim::compile_with(td, &opts, lanes).expect("test designs fit the fast path");
    let mut scalars: Vec<Sim> = (0..lanes)
        .map(|_| Sim::compile_with(td, &opts).expect("test designs fit the fast path"))
        .collect();
    for (lane, scalar) in scalars.iter_mut().enumerate().skip(1) {
        let mut rng = SplitMix64::new(seed ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            let v = rng.next_u64();
            batch.lane_set64(lane, reg, v);
            scalar.set64(reg, v);
        }
    }

    for cycle in 0..cycles {
        batch.cycle().expect("test designs execute cleanly");
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            let mut commits = Vec::new();
            scalar.cycle_obs(&mut CommitRec(&mut commits));
            assert_eq!(
                batch.lane_commits(lane),
                commits.as_slice(),
                "design {:?}, {level}, cycle {cycle}, lane {lane}: commit sequence diverged",
                td.name,
            );
            assert_eq!(
                commit_digest(batch.lane_commits(lane)),
                commit_digest(&commits),
                "design {:?}, {level}, cycle {cycle}, lane {lane}: commit digest diverged",
                td.name,
            );
            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                assert_eq!(
                    batch.lane_get64(lane, reg),
                    scalar.get64(reg),
                    "design {:?}, {level}, cycle {cycle}, lane {lane}, register {} ({})",
                    td.name,
                    r,
                    td.regs[r].name,
                );
            }
        }
    }
}

fn assert_all_levels(td: &TDesign, lanes: usize, cycles: usize, seed: u64) {
    for level in OptLevel::ALL {
        assert_lanes_match_scalar(td, level, lanes, cycles, seed);
    }
}

// ---------------------------------------------------------------------------
// Directed cases
// ---------------------------------------------------------------------------

/// A counter with a data-dependent branch: perturbed lanes take different
/// branches on different cycles, so lock-step execution must fall back.
#[test]
fn divergent_branches_across_lanes() {
    let mut b = DesignBuilder::new("lanes_diverge");
    b.reg("n", 16, 1u64);
    b.reg("odd_steps", 16, 0u64);
    b.rule(
        "step",
        vec![
            let_("n0", rd0("n")),
            iff(
                var("n0").bit(0).eq(k(1, 1)),
                vec![
                    wr0("n", var("n0").mul(k(16, 3)).add(k(16, 1))),
                    wr0("odd_steps", rd0("odd_steps").add(k(16, 1))),
                ],
                vec![wr0("n", var("n0").shr(k(4, 1)))],
            ),
        ],
    );
    b.rule(
        "restart",
        vec![
            guard(rd1("n").eq(k(16, 1))),
            wr1("n", rd0("odd_steps").add(k(16, 27))),
        ],
    );
    b.schedule(["step", "restart"]);
    let td = check(&b.build()).expect("well-typed");
    assert_all_levels(&td, 8, 64, 0xD1CE);
}

/// Guard-failure asymmetry: some lanes' rules abort while others commit,
/// the mixed outcome that forces the per-lane fallback path.
#[test]
fn mixed_guard_failures() {
    let mut b = DesignBuilder::new("mixed_guards");
    b.reg("x", 8, 0u64);
    b.reg("y", 8, 0u64);
    b.rule(
        "gated",
        vec![guard(rd0("x").bit(0).eq(k(1, 0))), wr0("y", rd0("x"))],
    );
    b.rule("bump", vec![wr0("x", rd0("x").add(k(8, 1)))]);
    b.schedule(["gated", "bump"]);
    let td = check(&b.build()).expect("well-typed");
    assert_all_levels(&td, 5, 48, 0xBEEF);
}

/// Identical lanes must stay in pure lock-step and still match scalar.
#[test]
fn identical_lanes_lockstep() {
    let mut b = DesignBuilder::new("lockstep");
    b.reg("acc", 32, 3u64);
    b.rule(
        "mix",
        vec![wr0("acc", rd0("acc").mul(k(32, 1664525)).add(k(32, 1013904223)))],
    );
    let td = check(&b.build()).expect("well-typed");
    for level in OptLevel::ALL {
        let opts = CompileOptions {
            level,
            ..CompileOptions::default()
        };
        let mut batch = BatchSim::compile_with(&td, &opts, 16).unwrap();
        let mut scalar = Sim::compile_with(&td, &opts).unwrap();
        for _ in 0..32 {
            batch.cycle().unwrap();
            let mut commits = Vec::new();
            scalar.cycle_obs(&mut CommitRec(&mut commits));
            for lane in 0..16 {
                assert_eq!(batch.lane_commits(lane), commits.as_slice());
                assert_eq!(
                    batch.lane_get64(lane, RegId(0)),
                    scalar.get64(RegId(0)),
                    "{level}: lane {lane} register 0"
                );
            }
        }
        assert!(
            batch.fallback_rules() == 0,
            "{level}: identical lanes must never leave lock-step \
             ({} fallbacks)",
            batch.fallback_rules()
        );
        assert!(batch.lockstep_rules() > 0, "{level}: no lock-step steps");
    }
}

/// A single lane is just the scalar VM with extra indexing.
#[test]
fn one_lane_degenerates_to_scalar() {
    let td = check(&random_design(42)).expect("well-typed");
    assert_all_levels(&td, 1, 32, 7);
}

// ---------------------------------------------------------------------------
// Random-design differential matrix (generator shared via koika::testgen)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// The batched matrix: random design x divergent lane inits x every
    /// optimization level, lanes bit-compared to scalar runs each cycle.
    #[test]
    fn random_designs_batched_vs_scalar(seed in any::<u64>(), lanes in 2usize..6) {
        let design = random_design(seed);
        let td = check(&design).expect("generator produces well-typed designs");
        assert_all_levels(&td, lanes, 16, seed);
    }
}
