//! Tests of the expression optimizer (CSE + peephole operand fusion):
//! optimized and unoptimized compilations of the same design must agree on
//! every register every cycle, and optimization must actually shrink the
//! instruction stream.

use cuttlesim::{CompileOptions, Sim};
use koika::check::check;
use koika::device::{RegAccess, SimBackend};
use koika::testgen::random_design;
use koika::tir::RegId;
use proptest::prelude::*;

fn opts(optimize: bool) -> CompileOptions {
    CompileOptions {
        optimize,
        ..CompileOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn optimized_and_unoptimized_agree(seed in any::<u64>()) {
        let td = check(&random_design(seed)).expect("well-typed");
        let mut plain = Sim::compile_with(&td, &opts(false)).unwrap();
        let mut optimized = Sim::compile_with(&td, &opts(true)).unwrap();
        for cycle in 0..24 {
            plain.cycle();
            optimized.cycle();
            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                prop_assert_eq!(
                    optimized.get64(reg),
                    plain.get64(reg),
                    "seed {} cycle {} register {}", seed, cycle, r
                );
            }
            prop_assert_eq!(optimized.rules_fired(), plain.rules_fired());
        }
    }
}

/// A FIR-like dataflow design: gather reads into locals, shift a delay
/// line, emit a dot product — rich in `Local`/`Const` operand patterns.
fn dataflow_design() -> koika::design::Design {
    use koika::ast::*;
    use koika::design::DesignBuilder;
    let mut b = DesignBuilder::new("dataflow");
    b.reg("input", 32, 0u64);
    b.reg("output", 32, 0u64);
    for i in 0..8 {
        b.reg(format!("tap{i}"), 32, 0u64);
    }
    let mut body = vec![let_("x0", rd0("input"))];
    for i in 0..7 {
        body.push(let_(format!("t{i}"), rd0(format!("tap{i}"))));
    }
    for i in (1..8).rev() {
        body.push(wr0(format!("tap{i}"), var(format!("t{}", i - 1))));
    }
    body.push(wr0("tap0", var("x0")));
    let mut acc = var("x0").mul(k(32, 2));
    for (i, c) in [3u64, 5, 7, 11, 13, 17, 19].iter().enumerate() {
        acc = acc.add(var(format!("t{i}")).mul(k(32, *c)));
    }
    body.push(wr0("output", acc));
    b.rule("step", body);
    b.build()
}

/// A CSE-heavy design: the same pure subexpressions recur many times.
fn cse_heavy_design() -> koika::design::Design {
    use koika::ast::*;
    use koika::design::DesignBuilder;
    let mut b = DesignBuilder::new("cse_heavy");
    b.reg("a", 32, 3u64);
    b.reg("bb", 32, 5u64);
    b.reg("o1", 32, 0u64);
    b.reg("o2", 32, 0u64);
    let hash = |x: Expr| x.mul(k(32, 0x9e37)).xor(x2()).slice(0, 32);
    fn x2() -> Expr {
        var("ga").shl(k(4, 3)).add(var("gb").shr(k(4, 2)))
    }
    b.rule(
        "mix",
        vec![
            let_("ga", rd0("a")),
            let_("gb", rd0("bb")),
            wr0("o1", hash(var("ga")).add(x2())),
            wr0("o2", hash(var("gb")).xor(x2())),
            wr0("a", x2().add(k(32, 1))),
        ],
    );
    b.build()
}

#[test]
fn optimizer_shrinks_real_designs() {
    for design in [dataflow_design(), cse_heavy_design()] {
        let td = check(&design).unwrap();
        let plain = Sim::compile_with(&td, &opts(false)).unwrap();
        let optimized = Sim::compile_with(&td, &opts(true)).unwrap();
        let count = |sim: &Sim| -> usize {
            sim.program().rules.iter().map(|r| r.code.len()).sum()
        };
        let (before, after) = (count(&plain), count(&optimized));
        assert!(
            after * 10 <= before * 9,
            "{}: expected at least a 10% instruction reduction, got {before} -> {after}",
            td.name
        );
    }
}

#[test]
fn fused_jump_targets_stay_correct() {
    // A design whose branches sit immediately next to fusable patterns.
    use koika::ast::*;
    use koika::design::DesignBuilder;
    let mut b = DesignBuilder::new("jumps");
    b.reg("x", 16, 1u64);
    b.reg("y", 16, 0u64);
    b.rule(
        "rl",
        vec![
            let_("g", rd0("x")),
            iff(
                var("g").bit(0).eq(k(1, 1)),
                vec![wr0("y", var("g").mul(k(16, 3)))],
                vec![wr0("y", var("g").add(k(16, 9)))],
            ),
            when(
                var("g").bit(1).eq(k(1, 0)),
                vec![wr0("x", var("g").add(k(16, 1)))],
            ),
            when(var("g").bit(1).eq(k(1, 1)), vec![wr1("x", var("g").shl(k(4, 1)))]),
        ],
    );
    let td = check(&b.build()).unwrap();
    let mut plain = Sim::compile_with(&td, &opts(false)).unwrap();
    let mut optimized = Sim::compile_with(&td, &opts(true)).unwrap();
    for cycle in 0..200 {
        plain.cycle();
        optimized.cycle();
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            assert_eq!(
                optimized.get64(reg),
                plain.get64(reg),
                "cycle {cycle} register {}",
                td.regs[r].name
            );
        }
    }
}
