//! **Cuttlesim**: a compiler from Kôika rule-based hardware designs to fast,
//! debuggable, cycle-accurate sequential models — the primary contribution of
//! *"Effective simulation and debugging for a high-level hardware language
//! using software compilers"* (ASPLOS 2021), reproduced in Rust.
//!
//! The paper's Cuttlesim emits readable C++ compiled by gcc/clang; this crate
//! lowers designs to a compact bytecode executed by a sequential VM (see
//! DESIGN.md for why, and [`codegen_cpp`] for the paper-faithful readable
//! C++ emitter). What is preserved exactly is the substance of the paper:
//!
//! * **lightweight transactions** implementing Kôika's one-rule-at-a-time
//!   log semantics, refined through the §3.2 ladder ([`OptLevel`]);
//! * **design-specific specialization** from static analysis (§3.3): safe
//!   registers lose all conflict checking, commits/rollbacks shrink to rule
//!   footprints, early failures skip rollback;
//! * **early exits**: a failing rule stops executing immediately, so — unlike
//!   RTL simulation — no cycle ever pays for work its rules didn't do;
//! * **software debuggability**: mid-cycle stepping, failure breakpoints
//!   ([`FailInfo`]), state snapshots and reverse execution
//!   ([`Sim::save_state`], [`Sim::step_back`]), and Gcov-style per-statement
//!   coverage ([`coverage::CoverageReport`]).
//!
//! # Quick start
//!
//! ```
//! use koika::{ast::*, design::DesignBuilder, check};
//! use koika::device::{RegAccess, SimBackend};
//! use cuttlesim::Sim;
//!
//! let mut b = DesignBuilder::new("counter");
//! b.reg("count", 8, 0u64);
//! b.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
//! let design = check::check(&b.build())?;
//!
//! let mut sim = Sim::compile(&design)?;
//! sim.cycle();
//! assert_eq!(sim.get64(design.reg_id("count")), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod codegen_cpp;
pub mod compile;
pub mod coverage;
pub mod insn;
pub mod level;
pub mod native;
pub mod pretty;
pub mod profile;
pub mod simd;
pub mod tac;
pub mod trace;
pub mod vm;

pub use batch::{BatchLane, BatchSim};
pub use compile::{compile, CompileError, CompileOptions, Program};
pub use coverage::CoverageReport;
pub use native::{cache_dir as native_cache_dir, toolchain_available, NativeError};
pub use profile::ProfileReport;
pub use trace::{RuleOutcome, RuleTrace};
pub use level::OptLevel;
pub use vm::{Dispatch, FailInfo, Sim, SimSnapshot, VmError};
