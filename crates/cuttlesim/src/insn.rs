//! The bytecode instruction set of the Cuttlesim VM.
//!
//! The paper's Cuttlesim emits C++ and leans on gcc/clang for final code
//! generation. Offline Rust has no practical compile-and-load path, so our
//! Cuttlesim lowers typed rules to this dense bytecode instead; the
//! *instruction selection* is where the optimization ladder lives (checked
//! vs. unchecked register accesses, rollback-free aborts). A stack machine
//! over `u64` words keeps the interpreter loop small and branch-predictable.
//!
//! All values are kept masked to their widths; instructions carry the masks
//! they need.

/// Operator kinds usable in the fused operand-load instructions
/// ([`Insn::BinRC`] and friends), produced by the peephole pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedBin {
    /// Wrapping addition (masked).
    Add,
    /// Wrapping subtraction (masked).
    Sub,
    /// Wrapping multiplication (masked).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (masked).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right at width `mask.count_ones()`.
    Sra,
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than at width `mask.count_ones()`.
    Slt,
    /// Signed less-or-equal at width `mask.count_ones()`.
    Sle,
    /// Concatenation: `a` shifted above the `low`-bit value `b`, masked.
    /// The low width is carried here (not in the `mask` field, which is the
    /// result mask like for every other operator) so a zero-width high half
    /// (`low == 64`) can be guarded instead of overflowing the shift.
    Concat {
        /// Width of the low operand; values `>= 64` all mean "result is `b`".
        low: u8,
    },
}

/// A single VM instruction. Kept `Copy` and small — the interpreter loop
/// reads these from a flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// Push a constant.
    Const(u64),
    /// Push a local-variable slot.
    Local(u16),
    /// Pop into a local-variable slot.
    SetLocal(u16),

    /// Pop `b`, `a`; push `(a + b) & mask`.
    Add { /// Result mask.
        mask: u64 },
    /// Pop `b`, `a`; push `(a - b) & mask`.
    Sub { /// Result mask.
        mask: u64 },
    /// Pop `b`, `a`; push `(a * b) & mask`.
    Mul { /// Result mask.
        mask: u64 },
    /// Pop `b`, `a`; push `a & b`.
    And,
    /// Pop `b`, `a`; push `a | b`.
    Or,
    /// Pop `b`, `a`; push `a ^ b`.
    Xor,
    /// Pop `sh`, `a`; push `(a << sh) & mask` (0 for `sh >= 64`).
    Shl { /// Result mask.
        mask: u64 },
    /// Pop `sh`, `a`; push `a >> sh` (0 for `sh >= 64`).
    Shr,
    /// Pop `sh`, `a`; push the arithmetic shift of the `width`-bit value.
    Sra { /// Operand width.
        width: u32 },
    /// Pop `b`, `a`; push `a == b`.
    Eq,
    /// Pop `b`, `a`; push `a != b`.
    Ne,
    /// Pop `b`, `a`; push unsigned `a < b`.
    Ult,
    /// Pop `b`, `a`; push unsigned `a <= b`.
    Ule,
    /// Pop `b`, `a`; push signed `a < b` at `width` bits.
    Slt { /// Operand width.
        width: u32 },
    /// Pop `b`, `a`; push signed `a <= b` at `width` bits.
    Sle { /// Operand width.
        width: u32 },
    /// Pop `b`, `a`; push the concatenation `{a, b}` masked to the combined
    /// width: `((a << low_width) | b) & mask`, with `low_width >= 64`
    /// (zero-width high half) yielding `b & mask` instead of an overflowing
    /// shift.
    ConcatShift { /// Width of the low operand.
        low_width: u32, /// Result mask (combined width).
        mask: u64 },

    /// Pop `a`; push `!a & mask`.
    Not { /// Result mask.
        mask: u64 },
    /// Pop `a`; push two's-complement negation masked to `mask`.
    Neg { /// Result mask.
        mask: u64 },
    /// Pop `a`; push `a & mask` (zero-extension/truncation).
    Mask { /// Result mask.
        mask: u64 },
    /// Pop `a`; push the sign extension of the `from`-bit value, masked to
    /// `mask`.
    Sext { /// Source width.
        from: u32, /// Result mask.
        mask: u64 },
    /// Pop `a`; push `(a >> lo) & mask`.
    Slice { /// First extracted bit.
        lo: u32, /// Result mask.
        mask: u64 },
    /// Pop `f`, `t`, `c`; push `if c != 0 { t } else { f }`.
    Select,

    /// Checked read at port 0 (level-dependent check; may abort the rule).
    Rd0 { /// Flat register index.
        reg: u32, /// True if no write can precede this op (rollback-free failure).
        clean: bool },
    /// Checked read at port 1.
    Rd1 { /// Flat register index.
        reg: u32, /// Rollback-free failure?
        clean: bool },
    /// Checked write at port 0 (pops the value).
    Wr0 { /// Flat register index.
        reg: u32, /// Rollback-free failure?
        clean: bool },
    /// Checked write at port 1 (pops the value).
    Wr1 { /// Flat register index.
        reg: u32, /// Rollback-free failure?
        clean: bool },
    /// Unchecked read at port 0 of a *safe* register (§3.3).
    Rd0Fast { /// Flat register index.
        reg: u32 },
    /// Unchecked read at port 1 of a *safe* register.
    Rd1Fast { /// Flat register index.
        reg: u32 },
    /// Unchecked write at port 0 of a *safe* register (pops the value).
    Wr0Fast { /// Flat register index.
        reg: u32 },
    /// Unchecked write at port 1 of a *safe* register (pops the value).
    Wr1Fast { /// Flat register index.
        reg: u32 },

    /// Pop the index; perform a checked array-element read at port 0.
    Rd0Arr { /// First element.
        base: u32, /// Index mask (`len - 1`).
        mask: u32, /// Rollback-free failure?
        clean: bool },
    /// Pop the index; checked array read at port 1.
    Rd1Arr { /// First element.
        base: u32, /// Index mask.
        mask: u32, /// Rollback-free failure?
        clean: bool },
    /// Pop the value then the index; checked array write at port 0.
    Wr0Arr { /// First element.
        base: u32, /// Index mask.
        mask: u32, /// Rollback-free failure?
        clean: bool },
    /// Pop the value then the index; checked array write at port 1.
    Wr1Arr { /// First element.
        base: u32, /// Index mask.
        mask: u32, /// Rollback-free failure?
        clean: bool },
    /// Pop the index; unchecked safe array read at port 0.
    Rd0ArrFast { /// First element.
        base: u32, /// Index mask.
        mask: u32 },
    /// Pop the index; unchecked safe array read at port 1.
    Rd1ArrFast { /// First element.
        base: u32, /// Index mask.
        mask: u32 },
    /// Pop the value then index; unchecked safe array write at port 0.
    Wr0ArrFast { /// First element.
        base: u32, /// Index mask.
        mask: u32 },
    /// Pop the value then index; unchecked safe array write at port 1.
    Wr1ArrFast { /// First element.
        base: u32, /// Index mask.
        mask: u32 },

    /// Fused: push `op(pop(), rhs)` for a constant right operand
    /// (peephole-combined `Const`+binop).
    BinRC {
        /// Operator.
        op: FusedBin,
        /// Constant right operand.
        rhs: u64,
        /// Result mask (for width-sensitive ops the width is
        /// `mask.count_ones()`).
        mask: u64,
    },
    /// Fused: push `op(pop(), locals[rhs_slot])`.
    BinRL {
        /// Operator.
        op: FusedBin,
        /// Right operand's local slot.
        rhs_slot: u16,
        /// Result mask.
        mask: u64,
    },
    /// Fused: push `op(locals[a_slot], locals[b_slot])` — no pops at all.
    BinLL {
        /// Operator.
        op: FusedBin,
        /// Left operand's local slot.
        a_slot: u16,
        /// Right operand's local slot.
        b_slot: u16,
        /// Result mask.
        mask: u64,
    },
    /// Fused: push `op(locals[a_slot], rhs)`.
    BinLC {
        /// Operator.
        op: FusedBin,
        /// Left operand's local slot.
        a_slot: u16,
        /// Constant right operand.
        rhs: u64,
        /// Result mask.
        mask: u64,
    },

    /// Fused: extract `[lo, lo+from)` then sign-extend from `from` bits,
    /// masked to `mask` (a peephole-combined `Slice`+`Sext`).
    SliceSext {
        /// First extracted bit.
        lo: u32,
        /// Width of the extracted (pre-extension) value.
        from: u32,
        /// Result mask.
        mask: u64,
    },

    /// Fused: `locals[slot] = log_data[reg]` (a safe-register read bound
    /// directly to a local, bypassing the stack).
    LdFast {
        /// Flat register index.
        reg: u32,
        /// Destination slot.
        slot: u16,
    },
    /// Fused: `log_data[reg] = locals[slot]` (a safe-register write fed
    /// directly from a local).
    StFast {
        /// Flat register index.
        reg: u32,
        /// Source slot.
        slot: u16,
    },
    /// Fused: `locals[slot] = imm`.
    SetLocalK {
        /// Destination slot.
        slot: u16,
        /// Constant.
        imm: u64,
    },

    /// Unconditional jump to an instruction index.
    Jmp(u32),
    /// Pop a condition; jump if it is zero.
    Jz(u32),
    /// Abort the rule with a rollback.
    Abort,
    /// Abort the rule without a rollback (no writes can have happened).
    AbortClean,
    /// Bump a coverage counter (present only in coverage builds).
    Cov(u32),
    /// Successful end of the rule (commit).
    End,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insn_is_small() {
        // The interpreter loop streams these; keep them at most 24 bytes
        // (the fused variants carry an operand constant plus a mask).
        assert!(std::mem::size_of::<Insn>() <= 24);
    }
}
