//! The Cuttlesim compiler: typed Kôika rules → VM bytecode.
//!
//! This is where the paper's optimization ladder becomes concrete:
//!
//! * the chosen [`OptLevel`](crate::OptLevel) selects the transactional
//!   behavior baked into each read/write instruction and each rule's commit
//!   and rollback plans;
//! * at [`OptLevel::DesignSpecific`](crate::OptLevel::DesignSpecific), the
//!   static analysis of [`koika::analysis`] drives instruction selection:
//!   accesses to *safe* registers compile to unchecked `*Fast` instructions,
//!   commits and rollbacks are restricted to each rule's footprint (falling
//!   back to whole-log copies for rules that touch most registers), aborts
//!   that cannot follow a write compile to rollback-free
//!   [`Insn::AbortClean`], and port-0 reads are no longer recorded in
//!   read-write sets;
//! * with [`CompileOptions::coverage`] enabled, a counter-bump instruction is
//!   inserted before every statement, giving Gcov-style line counts on the
//!   running model (the paper's case studies 3 and 4).

use crate::insn::{FusedBin, Insn};
use crate::level::{LevelCfg, OptLevel};
use crate::pretty;
use koika::analysis::{analyze, Analysis, ScheduleAssumption};
use koika::ast::{BinOp, Port, UnOp};
use koika::bits::word;
use koika::tir::{TAction, TDesign, TExpr};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// How much of the logs a rule's commit (and rollback) must copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyPlan {
    /// Copy whole log arrays (a pair of `memcpy`s).
    Full,
    /// Copy only the rule's footprint (§3.3).
    Footprint {
        /// Flat register indices whose read-write sets to copy.
        rw: Vec<u32>,
        /// Flat register indices whose data fields to copy.
        data: Vec<u32>,
    },
}

/// A compiled rule.
#[derive(Debug, Clone)]
pub struct RuleCode {
    /// Rule name (diagnostics, coverage).
    pub name: String,
    /// The instruction stream.
    pub code: Vec<Insn>,
    /// Number of local-variable slots.
    pub nlocals: u16,
    /// Commit plan (successful rules).
    pub commit: CopyPlan,
    /// Rollback plan (failing rules, at reset-on-failure levels).
    pub rollback: CopyPlan,
}

/// One coverage counter's identity: which rule and which statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CovPoint {
    /// Rule name.
    pub rule: String,
    /// Nesting depth of the statement (for indented reports).
    pub depth: u32,
    /// Statement text (paper-style C++ rendering) or a user label.
    pub label: String,
}

/// Options controlling compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Optimization level (defaults to the maximum).
    pub level: OptLevel,
    /// Schedule assumption for the static analysis. Use
    /// [`ScheduleAssumption::AnyOrder`] if you intend to run rules in
    /// non-schedule order (scheduler randomization, case study 2).
    pub assumption: ScheduleAssumption,
    /// Insert per-statement coverage counters (Gcov-style).
    pub coverage: bool,
    /// Run the expression-level optimizer (common-subexpression elimination
    /// and peephole operand fusion). On by default; turning it off is
    /// useful for debugging and for differential testing of the optimizer
    /// itself.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            level: OptLevel::max(),
            assumption: ScheduleAssumption::Declared,
            coverage: false,
            optimize: true,
        }
    }
}

/// An error preventing compilation to the fast VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A register is wider than the VM's 64-bit fast path.
    RegTooWide {
        /// Register name.
        reg: String,
        /// Its width.
        width: u32,
    },
    /// An intermediate expression is wider than 64 bits.
    ExprTooWide {
        /// The rule containing the expression.
        rule: String,
        /// The expression's width.
        width: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::RegTooWide { reg, width } => write!(
                f,
                "register {reg:?} is {width} bits wide; the Cuttlesim VM supports at most 64 \
                 (use the reference interpreter for wider designs)"
            ),
            CompileError::ExprTooWide { rule, width } => write!(
                f,
                "rule {rule:?} contains a {width}-bit intermediate value; the Cuttlesim VM \
                 supports at most 64 bits"
            ),
        }
    }
}

impl Error for CompileError {}

/// A compiled design, ready to instantiate [`crate::Sim`]s.
#[derive(Debug, Clone)]
pub struct Program {
    /// The source design.
    pub design: TDesign,
    /// Level the program was compiled at.
    pub level: OptLevel,
    /// The level's feature flags.
    pub cfg: LevelCfg,
    /// The schedule assumption used by the analysis.
    pub assumption: ScheduleAssumption,
    /// Compiled rules (same order as `design.rules`).
    pub rules: Vec<RuleCode>,
    /// Schedule as rule indices.
    pub schedule: Vec<usize>,
    /// Initial register values (u64 fast path).
    pub init: Vec<u64>,
    /// Register widths.
    pub widths: Vec<u32>,
    /// Coverage counter map (empty unless compiled with coverage).
    pub cov: Vec<CovPoint>,
    /// Analysis warnings (e.g. Goldbergian contraptions, whose behavior
    /// differs from the reference semantics at accumulated-log levels).
    pub warnings: Vec<String>,
    /// The analysis results (register classes, safe registers, ...).
    pub analysis: Analysis,
}

/// Fraction of the register file above which footprint copies degrade to
/// whole-log `memcpy`s (the paper: "if a rule touches most of the registers
/// in a design, Cuttlesim reverts to copying whole logs").
const FOOTPRINT_MEMCPY_THRESHOLD: f64 = 0.5;

struct RuleCompiler<'a> {
    design: &'a TDesign,
    analysis: &'a Analysis,
    cfg: LevelCfg,
    coverage: bool,
    rule_name: &'a str,
    rule_depth: u32,
    code: Vec<Insn>,
    cov: Vec<CovPoint>,
    cov_base: u32,
    log_dirty: bool,
    error: Option<CompileError>,
    /// Occurrence counts of read-free subexpressions (CSE candidates).
    cse_counts: HashMap<TExpr, u32>,
    /// Currently-valid CSE temps: expression -> local slot.
    cse_cache: HashMap<TExpr, u16>,
    /// Next free local slot (source locals first, then CSE temps).
    next_slot: u16,
    /// Slots assigned so far (for branch-join cache invalidation).
    assigned: Vec<u16>,
}

/// True if evaluating `e` performs no register reads (so its value is a
/// pure function of locals and constants and may be cached).
fn is_read_free(e: &TExpr) -> bool {
    match e {
        TExpr::Const { .. } | TExpr::Var { .. } => true,
        TExpr::Read { .. } | TExpr::ReadArr { .. } => false,
        TExpr::Un { a, .. } => is_read_free(a),
        TExpr::Bin { a, b, .. } => is_read_free(a) && is_read_free(b),
        TExpr::Select { c, t, f, .. } => {
            is_read_free(c) && is_read_free(t) && is_read_free(f)
        }
    }
}

/// True if `e` mentions local slot `slot`.
fn uses_slot(e: &TExpr, slot: u16) -> bool {
    match e {
        TExpr::Const { .. } | TExpr::Read { .. } => false,
        TExpr::Var { slot: s, .. } => *s == slot,
        TExpr::ReadArr { idx, .. } => uses_slot(idx, slot),
        TExpr::Un { a, .. } => uses_slot(a, slot),
        TExpr::Bin { a, b, .. } => uses_slot(a, slot) || uses_slot(b, slot),
        TExpr::Select { c, t, f, .. } => {
            uses_slot(c, slot) || uses_slot(t, slot) || uses_slot(f, slot)
        }
    }
}

/// Counts occurrences of non-trivial read-free subexpressions across a rule
/// body — those seen at least twice become CSE temps.
fn count_subexprs(actions: &[TAction], counts: &mut HashMap<TExpr, u32>) {
    fn expr(e: &TExpr, counts: &mut HashMap<TExpr, u32>) {
        if is_read_free(e) && !matches!(e, TExpr::Const { .. } | TExpr::Var { .. }) {
            *counts.entry(e.clone()).or_insert(0) += 1;
        }
        match e {
            TExpr::ReadArr { idx, .. } => expr(idx, counts),
            TExpr::Un { a, .. } => expr(a, counts),
            TExpr::Bin { a, b, .. } => {
                expr(a, counts);
                expr(b, counts);
            }
            TExpr::Select { c, t, f, .. } => {
                expr(c, counts);
                expr(t, counts);
                expr(f, counts);
            }
            _ => {}
        }
    }
    for a in actions {
        match a {
            TAction::Let { e, .. } => expr(e, counts),
            TAction::Write { e, .. } => expr(e, counts),
            TAction::WriteArr { idx, e, .. } => {
                expr(idx, counts);
                expr(e, counts);
            }
            TAction::If { c, t, f } => {
                expr(c, counts);
                count_subexprs(t, counts);
                count_subexprs(f, counts);
            }
            TAction::Abort => {}
            TAction::Named { body, .. } => count_subexprs(body, counts),
        }
    }
}

impl RuleCompiler<'_> {
    fn fail(&mut self, e: CompileError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn check_width(&mut self, w: u32) -> bool {
        if w > 64 {
            self.fail(CompileError::ExprTooWide {
                rule: self.rule_name.to_string(),
                width: w,
            });
            false
        } else {
            true
        }
    }

    fn sym_of(&self, reg: koika::tir::RegId) -> usize {
        self.design.regs[reg.0 as usize].sym.0 as usize
    }

    fn is_fast(&self, sym: usize) -> bool {
        self.cfg.design_specific && self.analysis.safe_sym[sym]
    }

    fn clean(&self) -> bool {
        self.cfg.design_specific && !self.log_dirty
    }

    fn emit_cov(&mut self, depth: u32, label: String) {
        if self.coverage {
            let id = self.cov_base + self.cov.len() as u32;
            self.cov.push(CovPoint {
                rule: self.rule_name.to_string(),
                depth,
                label,
            });
            self.code.push(Insn::Cov(id));
        }
    }

    /// Emits `e`, reusing or creating a CSE temp when profitable.
    fn emit_expr(&mut self, e: &TExpr) {
        if let Some(&t) = self.cse_cache.get(e) {
            self.code.push(Insn::Local(t));
            return;
        }
        self.emit_expr_raw(e);
        if self.error.is_none()
            && self.cse_counts.get(e).copied().unwrap_or(0) >= 2
        {
            let t = self.next_slot;
            self.next_slot += 1;
            self.code.push(Insn::SetLocal(t));
            self.code.push(Insn::Local(t));
            self.cse_cache.insert(e.clone(), t);
        }
    }

    fn emit_expr_raw(&mut self, e: &TExpr) {
        if !self.check_width(e.width()) {
            return;
        }
        match e {
            TExpr::Const { v, .. } => self.code.push(Insn::Const(v.to_u64())),
            TExpr::Var { slot, .. } => self.code.push(Insn::Local(*slot)),
            TExpr::Read { port, reg, .. } => {
                let (sym, reg) = (self.sym_of(*reg), reg.0);
                let insn = match (port, self.is_fast(sym)) {
                    (Port::P0, true) => Insn::Rd0Fast { reg },
                    (Port::P1, true) => Insn::Rd1Fast { reg },
                    (Port::P0, false) => Insn::Rd0 {
                        reg,
                        clean: self.clean(),
                    },
                    (Port::P1, false) => {
                        let insn = Insn::Rd1 {
                            reg,
                            clean: self.clean(),
                        };
                        // A checked port-1 read records `r1` in the
                        // accumulated log, so later failures must roll back.
                        self.log_dirty = true;
                        insn
                    }
                };
                self.code.push(insn);
            }
            TExpr::ReadArr {
                port,
                base,
                len,
                idx,
                ..
            } => {
                self.emit_expr(idx);
                let (sym, base, mask) = (self.sym_of(*base), base.0, len - 1);
                let insn = match (port, self.is_fast(sym)) {
                    (Port::P0, true) => Insn::Rd0ArrFast { base, mask },
                    (Port::P1, true) => Insn::Rd1ArrFast { base, mask },
                    (Port::P0, false) => Insn::Rd0Arr {
                        base,
                        mask,
                        clean: self.clean(),
                    },
                    (Port::P1, false) => {
                        let insn = Insn::Rd1Arr {
                            base,
                            mask,
                            clean: self.clean(),
                        };
                        // Records `r1`: see the scalar case.
                        self.log_dirty = true;
                        insn
                    }
                };
                self.code.push(insn);
            }
            TExpr::Un { op, a, w } => {
                self.emit_expr(a);
                let mask = word::mask(*w);
                match op {
                    UnOp::Not => self.code.push(Insn::Not { mask }),
                    UnOp::Neg => self.code.push(Insn::Neg { mask }),
                    UnOp::Zext(_) => {
                        if *w < a.width() {
                            self.code.push(Insn::Mask { mask });
                        }
                        // Widening zero-extension of an already-masked value
                        // is a no-op.
                    }
                    UnOp::Sext(_) => {
                        if *w > a.width() {
                            self.code.push(Insn::Sext {
                                from: a.width(),
                                mask,
                            });
                        }
                    }
                    UnOp::Slice { lo, width } => {
                        let mask = word::mask(*width);
                        if *lo >= 64 {
                            self.code.push(Insn::Mask { mask: 0 });
                        } else if *lo == 0 && *width >= a.width() {
                            // Whole-value slice: no-op.
                        } else {
                            self.code.push(Insn::Slice { lo: *lo, mask });
                        }
                    }
                }
            }
            TExpr::Bin { op, a, b, w } => {
                self.emit_expr(a);
                self.emit_expr(b);
                let mask = word::mask(*w);
                let insn = match op {
                    BinOp::Add => Insn::Add { mask },
                    BinOp::Sub => Insn::Sub { mask },
                    BinOp::Mul => Insn::Mul { mask },
                    BinOp::And => Insn::And,
                    BinOp::Or => Insn::Or,
                    BinOp::Xor => Insn::Xor,
                    BinOp::Shl => Insn::Shl { mask },
                    BinOp::Shr => Insn::Shr,
                    BinOp::Sra => Insn::Sra { width: a.width() },
                    BinOp::Eq => Insn::Eq,
                    BinOp::Ne => Insn::Ne,
                    BinOp::Ult => Insn::Ult,
                    BinOp::Ule => Insn::Ule,
                    BinOp::Slt => Insn::Slt { width: a.width() },
                    BinOp::Sle => Insn::Sle { width: a.width() },
                    BinOp::Concat => Insn::ConcatShift {
                        low_width: b.width(),
                        mask,
                    },
                };
                self.code.push(insn);
            }
            TExpr::Select { c, t, f, .. } => {
                self.emit_expr(c);
                self.emit_expr(t);
                self.emit_expr(f);
                self.code.push(Insn::Select);
            }
        }
    }

    fn emit_write(&mut self, port: Port, reg: koika::tir::RegId) {
        let (sym, reg) = (self.sym_of(reg), reg.0);
        let insn = match (port, self.is_fast(sym)) {
            (Port::P0, true) => Insn::Wr0Fast { reg },
            (Port::P1, true) => Insn::Wr1Fast { reg },
            (Port::P0, false) => Insn::Wr0 {
                reg,
                clean: self.clean(),
            },
            (Port::P1, false) => Insn::Wr1 {
                reg,
                clean: self.clean(),
            },
        };
        self.code.push(insn);
        self.log_dirty = true;
    }

    fn emit_actions(&mut self, actions: &[TAction], depth: u32) {
        for a in actions {
            if self.error.is_some() {
                return;
            }
            match a {
                TAction::Named { label, body } => {
                    self.emit_cov(depth, label.clone());
                    self.emit_actions(body, depth + 1);
                    continue;
                }
                _ => self.emit_cov(depth, pretty::stmt_head(self.design, a)),
            }
            match a {
                TAction::Let { slot, e } => {
                    self.emit_expr(e);
                    self.code.push(Insn::SetLocal(*slot));
                    // Cached expressions mentioning this slot are now stale.
                    self.cse_cache.retain(|k, _| !uses_slot(k, *slot));
                    self.assigned.push(*slot);
                }
                TAction::Write { port, reg, e } => {
                    self.emit_expr(e);
                    self.emit_write(*port, *reg);
                }
                TAction::WriteArr {
                    port,
                    base,
                    len,
                    idx,
                    e,
                } => {
                    self.emit_expr(idx);
                    self.emit_expr(e);
                    let (sym, base, mask) = (self.sym_of(*base), base.0, len - 1);
                    let insn = match (port, self.is_fast(sym)) {
                        (Port::P0, true) => Insn::Wr0ArrFast { base, mask },
                        (Port::P1, true) => Insn::Wr1ArrFast { base, mask },
                        (Port::P0, false) => Insn::Wr0Arr {
                            base,
                            mask,
                            clean: self.clean(),
                        },
                        (Port::P1, false) => Insn::Wr1Arr {
                            base,
                            mask,
                            clean: self.clean(),
                        },
                    };
                    self.code.push(insn);
                    self.log_dirty = true;
                }
                TAction::If { c, t, f } => {
                    self.emit_expr(c);
                    let jz_at = self.code.len();
                    self.code.push(Insn::Jz(u32::MAX));
                    // CSE temps created inside a branch are only valid on
                    // that path: restore the cache at each join. Entries
                    // from enclosing scopes stay valid (their temps were
                    // computed before the branch).
                    let saved_cache = self.cse_cache.clone();
                    let assigned_mark = self.assigned.len();
                    let dirty_before = self.log_dirty;
                    self.emit_actions(t, depth + 1);
                    self.cse_cache = saved_cache.clone();
                    let dirty_then = self.log_dirty;
                    self.log_dirty = dirty_before;
                    if f.is_empty() {
                        let target = self.code.len() as u32;
                        self.code[jz_at] = Insn::Jz(target);
                    } else {
                        let jmp_at = self.code.len();
                        self.code.push(Insn::Jmp(u32::MAX));
                        let else_target = self.code.len() as u32;
                        self.code[jz_at] = Insn::Jz(else_target);
                        self.emit_actions(f, depth + 1);
                        let end_target = self.code.len() as u32;
                        self.code[jmp_at] = Insn::Jmp(end_target);
                    }
                    self.cse_cache = saved_cache;
                    // Slots assigned in either branch invalidate any cached
                    // expression mentioning them.
                    for idx in assigned_mark..self.assigned.len() {
                        let slot = self.assigned[idx];
                        self.cse_cache.retain(|kk, _| !uses_slot(kk, slot));
                    }
                    self.log_dirty |= dirty_then;
                }
                TAction::Abort => {
                    if self.clean() {
                        self.code.push(Insn::AbortClean);
                    } else {
                        self.code.push(Insn::Abort);
                    }
                }
                TAction::Named { .. } => unreachable!("handled above"),
            }
        }
    }
}

/// Compiles a checked design into a VM [`Program`].
///
/// # Errors
///
/// Returns [`CompileError`] if the design uses values wider than the VM's
/// 64-bit fast path.
pub fn compile(design: &TDesign, opts: &CompileOptions) -> Result<Program, CompileError> {
    for r in &design.regs {
        if r.width > 64 {
            return Err(CompileError::RegTooWide {
                reg: r.name.clone(),
                width: r.width,
            });
        }
    }

    let cfg = LevelCfg::from(opts.level);
    let analysis = analyze(design, opts.assumption);
    let nregs = design.num_regs();

    let mut rules = Vec::with_capacity(design.rules.len());
    let mut cov = Vec::new();
    for rule in &design.rules {
        let rule_idx = rules.len();
        let summary = &analysis.rules[rule_idx];
        let mut cse_counts = HashMap::new();
        if opts.optimize {
            count_subexprs(&rule.body, &mut cse_counts);
            cse_counts.retain(|_, c| *c >= 2);
        }
        let mut rc = RuleCompiler {
            design,
            analysis: &analysis,
            cfg,
            coverage: opts.coverage,
            rule_name: &rule.name,
            rule_depth: 0,
            code: Vec::new(),
            cov: Vec::new(),
            cov_base: cov.len() as u32,
            log_dirty: false,
            error: None,
            cse_counts,
            cse_cache: HashMap::new(),
            next_slot: rule.slot_widths.len() as u16,
            assigned: Vec::new(),
        };
        rc.emit_cov(rc.rule_depth, format!("DEF_RULE({})", rule.name));
        rc.emit_actions(&rule.body, 1);
        rc.emit_cov(0, "COMMIT()".to_string());
        rc.code.push(Insn::End);
        if let Some(e) = rc.error {
            return Err(e);
        }

        let (commit, rollback) = if cfg.design_specific {
            let rw: Vec<u32> = summary
                .footprint_rw
                .iter()
                .flat_map(|s| design.syms[s.0 as usize].elems().map(|r| r.0))
                .collect();
            let data: Vec<u32> = summary
                .footprint_data
                .iter()
                .flat_map(|s| design.syms[s.0 as usize].elems().map(|r| r.0))
                .collect();
            let frac = (rw.len().max(data.len())) as f64 / nregs.max(1) as f64;
            if frac > FOOTPRINT_MEMCPY_THRESHOLD {
                (CopyPlan::Full, CopyPlan::Full)
            } else {
                (
                    CopyPlan::Footprint {
                        rw: rw.clone(),
                        data: data.clone(),
                    },
                    CopyPlan::Footprint { rw, data },
                )
            }
        } else {
            (CopyPlan::Full, CopyPlan::Full)
        };

        let code = if opts.optimize {
            peephole(rc.code)
        } else {
            rc.code
        };
        rules.push(RuleCode {
            name: rule.name.clone(),
            code,
            nlocals: rc.next_slot,
            commit,
            rollback,
        });
        cov.extend(rc.cov);
    }

    Ok(Program {
        design: design.clone(),
        level: opts.level,
        cfg,
        assumption: opts.assumption,
        rules,
        schedule: design.schedule.clone(),
        init: design.regs.iter().map(|r| r.init.to_u64()).collect(),
        widths: design.regs.iter().map(|r| r.width).collect(),
        cov,
        warnings: analysis.warnings.clone(),
        analysis,
    })
}

/// Maps a stack binop instruction to its fused form, if it has one. Also
/// used by the register-form lowering ([`crate::tac`]), which routes every
/// stack binop through the shared [`crate::vm::fused`] evaluator.
pub(crate) fn fusable(insn: Insn) -> Option<(FusedBin, u64)> {
    Some(match insn {
        Insn::Add { mask } => (FusedBin::Add, mask),
        Insn::Sub { mask } => (FusedBin::Sub, mask),
        Insn::Mul { mask } => (FusedBin::Mul, mask),
        Insn::And => (FusedBin::And, u64::MAX),
        Insn::Or => (FusedBin::Or, u64::MAX),
        Insn::Xor => (FusedBin::Xor, u64::MAX),
        Insn::Shl { mask } => (FusedBin::Shl, mask),
        Insn::Shr => (FusedBin::Shr, u64::MAX),
        Insn::Sra { width } => (FusedBin::Sra, word::mask(width)),
        Insn::Eq => (FusedBin::Eq, u64::MAX),
        Insn::Ne => (FusedBin::Ne, u64::MAX),
        Insn::Ult => (FusedBin::Ult, u64::MAX),
        Insn::Ule => (FusedBin::Ule, u64::MAX),
        Insn::Slt { width } => (FusedBin::Slt, word::mask(width)),
        Insn::Sle { width } => (FusedBin::Sle, word::mask(width)),
        Insn::ConcatShift { low_width, mask } => (
            // Low widths of 64 and up all behave as "zero-width high half";
            // clamp so the width always fits the u8 payload.
            FusedBin::Concat {
                low: low_width.min(64) as u8,
            },
            mask,
        ),
        _ => return None,
    })
}

/// Peephole pass: fuses operand loads (`Const`/`Local`) into the following
/// binary operation, cutting dispatch and stack traffic — the VM-level
/// counterpart of what gcc/clang do to the paper's generated C++. Jump
/// targets are preserved: a pattern is only fused if no jump lands inside
/// it, and all targets are remapped afterwards.
fn peephole(code: Vec<Insn>) -> Vec<Insn> {
    let n = code.len();
    let mut is_target = vec![false; n + 1];
    for insn in &code {
        match insn {
            Insn::Jmp(t) | Insn::Jz(t) => is_target[*t as usize] = true,
            _ => {}
        }
    }

    let mut out: Vec<Insn> = Vec::with_capacity(n);
    let mut remap = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        remap[i] = out.len() as u32;
        // Three-instruction patterns: two operand loads + binop.
        if i + 2 < n && !is_target[i + 1] && !is_target[i + 2] {
            if let Some((op, mask)) = fusable(code[i + 2]) {
                match (code[i], code[i + 1]) {
                    (Insn::Local(a), Insn::Local(b)) => {
                        remap[i + 1] = out.len() as u32;
                        remap[i + 2] = out.len() as u32;
                        out.push(Insn::BinLL {
                            op,
                            a_slot: a,
                            b_slot: b,
                            mask,
                        });
                        i += 3;
                        continue;
                    }
                    (Insn::Local(a), Insn::Const(c)) => {
                        remap[i + 1] = out.len() as u32;
                        remap[i + 2] = out.len() as u32;
                        out.push(Insn::BinLC {
                            op,
                            a_slot: a,
                            rhs: c,
                            mask,
                        });
                        i += 3;
                        continue;
                    }
                    _ => {}
                }
            }
        }
        // Two-instruction patterns.
        if i + 1 < n && !is_target[i + 1] {
            if let Some((op, mask)) = fusable(code[i + 1]) {
                match code[i] {
                    Insn::Const(c) => {
                        remap[i + 1] = out.len() as u32;
                        out.push(Insn::BinRC { op, rhs: c, mask });
                        i += 2;
                        continue;
                    }
                    Insn::Local(slot) => {
                        remap[i + 1] = out.len() as u32;
                        out.push(Insn::BinRL {
                            op,
                            rhs_slot: slot,
                            mask,
                        });
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            // Slice followed by sign extension (hot in packed-arithmetic
            // designs like the FFT butterflies).
            if let (Insn::Slice { lo, mask: smask }, Insn::Sext { from, mask }) =
                (code[i], code[i + 1])
            {
                if smask == word::mask(from) {
                    remap[i + 1] = out.len() as u32;
                    out.push(Insn::SliceSext { lo, from, mask });
                    i += 2;
                    continue;
                }
            }
            // Register-to-local and local-to-register moves on safe
            // registers, and constant local initialization.
            let fused_move = match (code[i], code[i + 1]) {
                (Insn::Rd0Fast { reg }, Insn::SetLocal(slot))
                | (Insn::Rd1Fast { reg }, Insn::SetLocal(slot)) => {
                    Some(Insn::LdFast { reg, slot })
                }
                (Insn::Local(slot), Insn::Wr0Fast { reg })
                | (Insn::Local(slot), Insn::Wr1Fast { reg }) => {
                    Some(Insn::StFast { reg, slot })
                }
                (Insn::Const(imm), Insn::SetLocal(slot)) => {
                    Some(Insn::SetLocalK { slot, imm })
                }
                _ => None,
            };
            if let Some(m) = fused_move {
                remap[i + 1] = out.len() as u32;
                out.push(m);
                i += 2;
                continue;
            }
        }
        out.push(code[i]);
        i += 1;
    }
    remap[n] = out.len() as u32;

    for insn in &mut out {
        match insn {
            Insn::Jmp(t) | Insn::Jz(t) => *t = remap[*t as usize],
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;

    fn compile_level(b: DesignBuilder, level: OptLevel) -> Program {
        let td = check(&b.build()).unwrap();
        compile(
            &td,
            &CompileOptions {
                level,
                ..CompileOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn safe_registers_compile_to_fast_ops() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let p = compile_level(b, OptLevel::DesignSpecific);
        let code = &p.rules[0].code;
        assert!(code.contains(&Insn::Rd0Fast { reg: 0 }));
        assert!(code.contains(&Insn::Wr0Fast { reg: 0 }));
        assert!(!code
            .iter()
            .any(|i| matches!(i, Insn::Rd0 { .. } | Insn::Wr0 { .. })));
    }

    #[test]
    fn unsafe_registers_stay_checked() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("w1", vec![wr0("n", k(8, 1))]);
        b.rule("w2", vec![wr0("n", k(8, 2))]);
        b.schedule(["w1", "w2"]);
        let p = compile_level(b, OptLevel::DesignSpecific);
        assert!(p.rules[1]
            .code
            .iter()
            .any(|i| matches!(i, Insn::Wr0 { .. })));
    }

    #[test]
    fn early_aborts_are_clean() {
        let mut b = DesignBuilder::new("g");
        b.reg("go", 1, 0u64);
        b.reg("n", 8, 0u64);
        b.rule(
            "inc",
            vec![
                guard(rd0("go").eq(k(1, 1))),
                wr0("n", k(8, 1)),
                when(rd0("go").eq(k(1, 0)), vec![abort()]),
            ],
        );
        let p = compile_level(b, OptLevel::DesignSpecific);
        let code = &p.rules[0].code;
        assert!(
            code.contains(&Insn::AbortClean),
            "the guard abort precedes any write"
        );
        assert!(
            code.contains(&Insn::Abort),
            "the late abort follows a write and needs rollback"
        );
    }

    #[test]
    fn lower_levels_have_no_fast_ops_or_footprints() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let p = compile_level(b, OptLevel::NoBocState);
        assert!(matches!(p.rules[0].commit, CopyPlan::Full));
        assert!(!p.rules[0]
            .code
            .iter()
            .any(|i| matches!(i, Insn::Rd0Fast { .. } | Insn::AbortClean)));
    }

    #[test]
    fn footprints_expand_arrays_and_apply_threshold() {
        // The 8-element array is well under half of the 24-element design,
        // so commits stay footprint-restricted.
        let mut b = DesignBuilder::new("fp");
        b.array("t", 4, 8, 0u64);
        b.array("pad", 4, 16, 0u64);
        // Give the array a second (conflicting) writer so it is unsafe but
        // still footprint-copied.
        b.rule("w", vec![wr0a("t", k(3, 0), k(4, 1))]);
        b.rule("w2", vec![wr0a("t", k(3, 1), k(4, 2))]);
        b.schedule(["w", "w2"]);
        let p = compile_level(b, OptLevel::DesignSpecific);
        match &p.rules[0].commit {
            CopyPlan::Footprint { rw, data } => {
                assert_eq!(rw.len(), 8, "whole array in the rw footprint");
                assert_eq!(data.len(), 8);
            }
            CopyPlan::Full => panic!("expected footprint commit"),
        }
    }

    #[test]
    fn big_footprint_degrades_to_memcpy() {
        let mut b = DesignBuilder::new("big");
        b.reg("a", 8, 0u64);
        b.reg("bb", 8, 0u64);
        // Rule writes both registers = 100% of the design; conflicting
        // double-write keeps them unsafe.
        b.rule("w", vec![wr0("a", k(8, 1)), wr0("bb", k(8, 1))]);
        b.rule("w2", vec![wr0("a", k(8, 2)), wr0("bb", k(8, 2))]);
        b.schedule(["w", "w2"]);
        let p = compile_level(b, OptLevel::DesignSpecific);
        assert!(matches!(p.rules[0].commit, CopyPlan::Full));
    }

    #[test]
    fn coverage_points_follow_statements() {
        let mut b = DesignBuilder::new("cov");
        b.reg("n", 8, 0u64);
        b.rule(
            "inc",
            vec![named("bump", vec![wr0("n", rd0("n").add(k(8, 1)))])],
        );
        let td = check(&b.build()).unwrap();
        let p = compile(
            &td,
            &CompileOptions {
                coverage: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let labels: Vec<&str> = p.cov.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["DEF_RULE(inc)", "bump", "WRITE0(n, (READ0(n) + 8'h1))", "COMMIT()"]
        );
        let n_cov = p.rules[0]
            .code
            .iter()
            .filter(|i| matches!(i, Insn::Cov(_)))
            .count();
        assert_eq!(n_cov, 4);
    }

    #[test]
    fn rejects_wide_registers() {
        let mut b = DesignBuilder::new("wide");
        b.reg("w", 100, 0u64);
        b.rule("r", vec![wr0("w", rd0("w"))]);
        let td = check(&b.build()).unwrap();
        assert!(matches!(
            compile(&td, &CompileOptions::default()),
            Err(CompileError::RegTooWide { .. })
        ));
    }

    #[test]
    fn rejects_wide_intermediates() {
        let mut b = DesignBuilder::new("wide");
        b.reg("a", 60, 0u64);
        b.reg("bb", 8, 0u64);
        b.rule(
            "r",
            vec![wr0("bb", rd0("a").concat(rd0("a")).slice(0, 8))],
        );
        let td = check(&b.build()).unwrap();
        assert!(matches!(
            compile(&td, &CompileOptions::default()),
            Err(CompileError::ExprTooWide { .. })
        ));
    }

    #[test]
    fn jump_targets_are_patched() {
        let mut b = DesignBuilder::new("ifs");
        b.reg("c", 1, 0u64);
        b.reg("n", 8, 0u64);
        b.rule(
            "r",
            vec![iff(
                rd0("c").eq(k(1, 1)),
                vec![wr0("n", k(8, 1))],
                vec![wr0("n", k(8, 2))],
            )],
        );
        let p = compile_level(b, OptLevel::SplitRwSets);
        for insn in &p.rules[0].code {
            match insn {
                Insn::Jz(t) | Insn::Jmp(t) => {
                    assert!((*t as usize) < p.rules[0].code.len(), "unpatched jump")
                }
                _ => {}
            }
        }
    }
}
