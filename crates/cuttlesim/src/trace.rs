//! Chronological rule-activity traces.
//!
//! The paper notes that "stepping through interactively makes it very clear
//! which parts of the design execute in a given cycle" — this module makes
//! that view available in batch form: a per-cycle record of which rules
//! committed, which failed (exited early), and which were skipped, rendered
//! as a timeline. A thin view over the unified observability layer
//! ([`koika::obs::Observer`]): recording is just an observer that collects
//! each rule's commit/fail event, so the trace is guaranteed to agree with
//! every other sink attached to the same run.

use crate::vm::Sim;
use koika::device::Device;
use koika::obs::{FailureReason, Observer};
use std::fmt;

/// The outcome of one rule in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOutcome {
    /// The rule committed.
    Fired,
    /// The rule aborted (guard, conflict, or explicit abort).
    Failed,
}

/// A recorded window of rule activity.
#[derive(Debug, Clone)]
pub struct RuleTrace {
    rule_names: Vec<String>,
    /// Outcomes per recorded cycle, in schedule order.
    cycles: Vec<(u64, Vec<RuleOutcome>)>,
}

/// The observer behind [`RuleTrace::record`]: outcome events arrive in
/// schedule order within each cycle, so collecting them in arrival order
/// reproduces the trace's schedule-order columns.
#[derive(Default)]
struct TraceCollector {
    cycles: Vec<(u64, Vec<RuleOutcome>)>,
    cur: Vec<RuleOutcome>,
}

impl Observer for TraceCollector {
    fn rule_commit(&mut self, _rule: usize) {
        self.cur.push(RuleOutcome::Fired);
    }

    fn rule_fail(&mut self, _rule: usize, _reason: FailureReason) {
        self.cur.push(RuleOutcome::Failed);
    }

    fn cycle_end(&mut self, cycle: u64) {
        self.cycles.push((cycle, std::mem::take(&mut self.cur)));
    }
}

impl RuleTrace {
    /// Runs `ncycles` cycles on `sim` (ticking `devices` at each boundary),
    /// recording every rule's outcome.
    pub fn record(sim: &mut Sim, devices: &mut [&mut dyn Device], ncycles: u64) -> RuleTrace {
        use koika::device::SimBackend;
        let rule_names: Vec<String> = sim
            .program()
            .schedule
            .iter()
            .map(|&i| sim.program().rules[i].name.clone())
            .collect();
        let mut collector = TraceCollector::default();
        sim.run_obs(ncycles, devices, &mut collector);
        RuleTrace {
            rule_names,
            cycles: collector.cycles,
        }
    }

    /// The recorded cycles: `(cycle number, outcome per scheduled rule)`.
    pub fn cycles(&self) -> &[(u64, Vec<RuleOutcome>)] {
        &self.cycles
    }

    /// The scheduled rule names (column order of [`RuleTrace::cycles`]).
    pub fn rule_names(&self) -> &[String] {
        &self.rule_names
    }

    /// How many times the given rule fired within the window.
    pub fn fired_count(&self, rule: &str) -> u64 {
        let Some(col) = self.rule_names.iter().position(|n| n == rule) else {
            return 0;
        };
        self.cycles
            .iter()
            .filter(|(_, o)| o[col] == RuleOutcome::Fired)
            .count() as u64
    }
}

impl fmt::Display for RuleTrace {
    /// Renders a timeline, one row per cycle:
    ///
    /// ```text
    ///  cycle  writeback  execute  decode  fetch
    ///     12          ●        ●       -      ●
    /// ```
    ///
    /// `●` = fired, `-` = failed/stalled.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>7}", "cycle")?;
        for name in &self.rule_names {
            write!(f, "  {name}")?;
        }
        writeln!(f)?;
        for (cycle, outcomes) in &self.cycles {
            write!(f, "{cycle:>7}")?;
            for (name, o) in self.rule_names.iter().zip(outcomes) {
                let mark = match o {
                    RuleOutcome::Fired => '●',
                    RuleOutcome::Failed => '-',
                };
                write!(f, "  {mark:^width$}", width = name.chars().count())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;

    #[test]
    fn trace_shows_alternating_rules() {
        // The §2.1 two-state machine: rlA and rlB strictly alternate.
        let mut b = DesignBuilder::new("stm");
        b.reg("st", 1, 0u64);
        b.rule("rlA", vec![guard(rd0("st").eq(k(1, 0))), wr0("st", k(1, 1))]);
        b.rule("rlB", vec![guard(rd0("st").eq(k(1, 1))), wr0("st", k(1, 0))]);
        b.schedule(["rlA", "rlB"]);
        let td = check(&b.build()).unwrap();
        let mut sim = crate::Sim::compile(&td).unwrap();
        let trace = RuleTrace::record(&mut sim, &mut [], 6);
        assert_eq!(trace.fired_count("rlA"), 3);
        assert_eq!(trace.fired_count("rlB"), 3);
        for (cycle, outcomes) in trace.cycles() {
            let expect_a = cycle % 2 == 0;
            assert_eq!(
                outcomes[0] == RuleOutcome::Fired,
                expect_a,
                "cycle {cycle}"
            );
            assert_eq!(outcomes[1] == RuleOutcome::Fired, !expect_a);
        }
        let text = trace.to_string();
        assert!(text.contains("rlA"));
        assert!(text.contains('●'));
        assert!(text.contains('-'));
    }

    #[test]
    fn tracing_is_cycle_accurate_with_plain_running() {
        use koika::device::{RegAccess, SimBackend};
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule(
            "inc",
            vec![
                guard(rd0("n").bit(2).eq(k(1, 0))),
                wr0("n", rd0("n").add(k(8, 1))),
            ],
        );
        let td = check(&b.build()).unwrap();
        let mut traced = crate::Sim::compile(&td).unwrap();
        let _ = RuleTrace::record(&mut traced, &mut [], 10);
        let mut plain = crate::Sim::compile(&td).unwrap();
        for _ in 0..10 {
            plain.cycle();
        }
        assert_eq!(
            traced.get64(td.reg_id("n")),
            plain.get64(td.reg_id("n")),
            "stepping through rules must not change behavior"
        );
    }
}
