//! The optimization ladder of §3.2/§3.3, reified.
//!
//! The paper derives its fast models through a sequence of refinements of
//! the naive transactional model, each preserving cycle accuracy. Each rung
//! is independently selectable here so that the ablation benchmark can
//! attribute the speedup to individual refinements. The rungs are cumulative:
//! every level includes all previous ones.
//!
//! Level `O0` (the naive model with interleaved read-write sets and data) is
//! the reference interpreter [`koika::interp::Interp`]; the VM ladder starts
//! at [`OptLevel::SplitRwSets`].

use std::fmt;

/// A Cuttlesim optimization level (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// §3.2 "Separate read-write sets and data": read-write bitsets live in
    /// their own arrays so clearing them is a cache-friendly memset. This is
    /// the VM baseline; it implements the exact two-log reference semantics
    /// (including "Goldbergian contraptions").
    SplitRwSets,
    /// §3.2 "Accumulate logs instead of merging them": the rule log is
    /// replaced by an accumulated `cycle ++ rule` log, making write checks
    /// single-log and rule commit a plain copy. From this level on, same-rule
    /// read-after-write contraptions are treated as conflicts (the compiler
    /// warns about them).
    AccumulatedLogs,
    /// §3.2 "Reset on failure, not on entry": the accumulated log is kept
    /// equal to the cycle log at rule boundaries, so successful rules pay no
    /// reset; failures restore the invariant instead.
    ResetOnFailure,
    /// §3.2 "Merge data0 and data1": one data field per register per log.
    MergedData,
    /// §3.2 "Eliminate beginning-of-cycle state": the logs' data fields hold
    /// the register state; end-of-cycle commits disappear entirely.
    NoBocState,
    /// §3.3 design-specific optimizations, driven by static analysis:
    /// minimized read-write sets (no port-0 read tracking), uncheck-ed
    /// accesses to *safe* registers, footprint-restricted commits and
    /// rollbacks, and rollback-free early failures.
    DesignSpecific,
}

impl OptLevel {
    /// All levels, lowest to highest.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::SplitRwSets,
        OptLevel::AccumulatedLogs,
        OptLevel::ResetOnFailure,
        OptLevel::MergedData,
        OptLevel::NoBocState,
        OptLevel::DesignSpecific,
    ];

    /// The highest level — what `cuttlesim` means by default.
    pub fn max() -> OptLevel {
        OptLevel::DesignSpecific
    }

    /// The level for a user-facing `--level` number (`1..=6`).
    pub fn from_number(n: u32) -> Option<OptLevel> {
        OptLevel::ALL.get(n.checked_sub(1)? as usize).copied()
    }

    /// The user-facing `--level` number (`1..=6`).
    pub fn number(self) -> u32 {
        OptLevel::ALL.iter().position(|&l| l == self).unwrap_or(5) as u32 + 1
    }

    /// Short name used in benchmark output (`O1`..`O6`).
    pub fn short_name(self) -> &'static str {
        match self {
            OptLevel::SplitRwSets => "O1",
            OptLevel::AccumulatedLogs => "O2",
            OptLevel::ResetOnFailure => "O3",
            OptLevel::MergedData => "O4",
            OptLevel::NoBocState => "O5",
            OptLevel::DesignSpecific => "O6",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OptLevel::SplitRwSets => "split read-write sets",
            OptLevel::AccumulatedLogs => "accumulated logs",
            OptLevel::ResetOnFailure => "reset on failure",
            OptLevel::MergedData => "merged data fields",
            OptLevel::NoBocState => "no beginning-of-cycle state",
            OptLevel::DesignSpecific => "design-specific (static analysis)",
        };
        write!(f, "{} ({name})", self.short_name())
    }
}

/// The level expanded into independent feature flags, as consulted by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCfg {
    /// The rule log is accumulated (`cycle ++ rule`).
    pub acc_logs: bool,
    /// Failures (not rule entries) restore the accumulated log.
    pub reset_on_fail: bool,
    /// `data0` and `data1` share one field.
    pub merged_data: bool,
    /// No separate beginning-of-cycle state.
    pub no_boc: bool,
    /// Analysis-driven specialization (fast ops, footprints, clean aborts).
    pub design_specific: bool,
}

impl From<OptLevel> for LevelCfg {
    fn from(level: OptLevel) -> Self {
        LevelCfg {
            acc_logs: level >= OptLevel::AccumulatedLogs,
            reset_on_fail: level >= OptLevel::ResetOnFailure,
            merged_data: level >= OptLevel::MergedData,
            no_boc: level >= OptLevel::NoBocState,
            design_specific: level >= OptLevel::DesignSpecific,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        let mut prev: Option<LevelCfg> = None;
        for level in OptLevel::ALL {
            let cfg = LevelCfg::from(level);
            if let Some(p) = prev {
                // Each flag, once on, stays on.
                assert!(!p.acc_logs || cfg.acc_logs);
                assert!(!p.reset_on_fail || cfg.reset_on_fail);
                assert!(!p.merged_data || cfg.merged_data);
                assert!(!p.no_boc || cfg.no_boc);
            }
            prev = Some(cfg);
        }
    }

    #[test]
    fn max_is_design_specific() {
        assert_eq!(OptLevel::max(), OptLevel::DesignSpecific);
        assert!(LevelCfg::from(OptLevel::max()).design_specific);
    }

    #[test]
    fn display_and_short_names() {
        assert_eq!(OptLevel::SplitRwSets.short_name(), "O1");
        assert!(OptLevel::DesignSpecific.to_string().contains("O6"));
    }
}
