//! The Cuttlesim virtual machine: a sequential, early-exit executor for
//! compiled rule programs.
//!
//! The VM embodies the paper's key observation (§2.3): Kôika's semantics let
//! a rule *exit early* — on an explicit abort or a read/write conflict — and
//! a sequential model can jump straight to the next rule, paying nothing for
//! the skipped work, whereas RTL simulation computes every rule's full
//! circuit every cycle.
//!
//! The transactional state follows the optimization ladder (see
//! [`crate::OptLevel`]): read-write bitsets live in their own flat arrays,
//! the rule log is (from O2 up) an accumulated `cycle ++ rule` log, failures
//! rather than entries restore it (O3), data fields are merged (O4), the
//! beginning-of-cycle state disappears (O5), and static analysis specializes
//! instructions, commits, and rollbacks (O6).

use crate::compile::{compile, CompileError, CompileOptions, CopyPlan, Program};
use crate::insn::{FusedBin, Insn};
use crate::level::LevelCfg;
use koika::analysis::ScheduleAssumption;
use koika::bits::word;
use koika::bits::Bits;
use koika::device::{RegAccess, SimBackend};
use koika::obs::{FailureReason, Metrics, Observer};
use koika::snapshot::{Snapshot, SnapshotError};
use koika::tir::{RegId, TDesign};
use std::fmt;

const R1: u8 = 0b0010;
const W0: u8 = 0b0100;
const W1: u8 = 0b1000;
const R0: u8 = 0b0001;

/// Why a rule stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Next,
    Jump(u32),
    Fail { clean: bool },
    Done,
    /// A VM-internal invariant was violated (miscompiled bytecode). Never
    /// produced by correctly-compiled programs; surfaced as
    /// [`VmError::CompilerBug`] so embedders (batch workers, campaign
    /// runners) can triage instead of aborting.
    Trap(&'static str),
}

/// A pre-bound instruction thunk, one per instruction, for the
/// closure-dispatch backend ([`Dispatch::Closure`]).
pub(crate) type RuleClosure = Box<dyn Fn(&mut State, LevelCfg) -> Flow + Send>;

/// A fatal error raised by the VM itself (as opposed to a rule failure,
/// which is normal Kôika semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The bytecode violated a VM invariant — e.g. an operand-stack
    /// underflow. This indicates a bug in the compiler (or a hand-built
    /// [`Program`]), not in the simulated design.
    CompilerBug {
        /// Index of the rule being executed.
        rule: usize,
        /// Instruction index within the rule.
        pc: usize,
        /// What went wrong.
        what: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::CompilerBug { rule, pc, what } => {
                write!(f, "compiler bug in rule {rule} at pc {pc}: {what}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Information about the most recent rule failure — the software analogue of
/// breaking on the paper's `FAIL()` macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailInfo {
    /// Index of the failing rule.
    pub rule: usize,
    /// Instruction index within the rule.
    pub pc: usize,
    /// The register whose check failed, if the failure was a conflict
    /// (`None` for explicit aborts).
    pub reg: Option<RegId>,
    /// Cycle in which the failure happened.
    pub cycle: u64,
}

/// The VM's mutable simulation state. Cloneable, which is what powers
/// snapshots and reverse debugging. Crate-visible so the batched engine
/// ([`crate::batch`]) can run diverged lanes through the exact scalar rule
/// executor.
#[derive(Debug, Clone)]
pub(crate) struct State {
    pub(crate) boc: Vec<u64>,
    pub(crate) cyc_rw: Vec<u8>,
    pub(crate) log_rw: Vec<u8>,
    pub(crate) cyc_d0: Vec<u64>,
    pub(crate) cyc_d1: Vec<u64>,
    pub(crate) log_d0: Vec<u64>,
    pub(crate) log_d1: Vec<u64>,
    pub(crate) stack: Vec<u64>,
    pub(crate) locals: Vec<u64>,
    pub(crate) cycles: u64,
    pub(crate) fired: u64,
    pub(crate) fired_per_rule: Vec<u64>,
    pub(crate) fail_per_rule: Vec<u64>,
    pub(crate) cov: Vec<u64>,
    pub(crate) last_fail: Option<FailInfo>,
}

impl State {
    /// A freshly-reset state for `prog` (registers at their declared
    /// initial values).
    pub(crate) fn for_program(prog: &Program) -> State {
        let n = prog.init.len();
        let cfg = prog.cfg;
        let max_locals = prog.rules.iter().fold(0, |m, r| m.max(r.nlocals as usize));
        State {
            boc: if cfg.no_boc { Vec::new() } else { prog.init.clone() },
            cyc_rw: vec![0; n],
            log_rw: vec![0; n],
            cyc_d0: prog.init.clone(),
            cyc_d1: if cfg.merged_data { Vec::new() } else { prog.init.clone() },
            log_d0: prog.init.clone(),
            log_d1: if cfg.merged_data { Vec::new() } else { prog.init.clone() },
            stack: Vec::with_capacity(64),
            locals: vec![0; max_locals],
            cycles: 0,
            fired: 0,
            fired_per_rule: vec![0; prog.rules.len()],
            fail_per_rule: vec![0; prog.rules.len()],
            cov: vec![0; prog.cov.len()],
            last_fail: None,
        }
    }
}

/// A saved copy of a simulator's complete architectural state.
///
/// Produced by [`Sim::save_state`]; restored with [`Sim::restore_state`].
/// Snapshots power the reverse-debugging workflow of the paper's case
/// study 1 (the role `rr` plays for real Cuttlesim models).
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    state: State,
}

/// How the VM dispatches instructions — the stand-in for the paper's Fig. 3
/// "GCC vs Clang" compiler-sensitivity axis (see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// A tight `match`-based interpreter loop over the stack bytecode
    /// (think: the faster compiler).
    #[default]
    Match,
    /// Pre-built closures called through fat pointers (think: the other
    /// compiler's codegen).
    Closure,
    /// Register-form (three-address) micro-ops: the stack bytecode is
    /// lowered once, at selection time, into a flat pre-decoded array of
    /// micro-ops over a per-rule slot file, with constants folded and
    /// `rd/binop/wr` chains fused into superinstructions (see
    /// [`crate::tac`]). The hot loop does no operand-stack traffic and no
    /// re-decoding.
    Tac,
    /// Compiled native code: the micro-op program is emitted as Rust
    /// source, built with `rustc` into a cdylib (cached by design
    /// fingerprint), and loaded through a hand-rolled `dlopen` shim — the
    /// paper's "compile, don't interpret" thesis applied to our own VM
    /// (see [`crate::native`]). Requires a Rust toolchain at run time;
    /// selection fails loudly (never a silent fallback) without one.
    Native,
}

impl Dispatch {
    /// Every dispatch backend, in a stable order (used by differential
    /// test matrices).
    pub const ALL: [Dispatch; 4] = [
        Dispatch::Match,
        Dispatch::Closure,
        Dispatch::Tac,
        Dispatch::Native,
    ];

    /// The CLI spelling (`--dispatch match|closure|tac|native`).
    pub fn short_name(self) -> &'static str {
        match self {
            Dispatch::Match => "match",
            Dispatch::Closure => "closure",
            Dispatch::Tac => "tac",
            Dispatch::Native => "native",
        }
    }

    /// Parses the CLI spelling.
    pub fn from_name(s: &str) -> Option<Dispatch> {
        match s {
            "match" => Some(Dispatch::Match),
            "closure" => Some(Dispatch::Closure),
            "tac" => Some(Dispatch::Tac),
            "native" => Some(Dispatch::Native),
            _ => None,
        }
    }
}

/// A Cuttlesim simulator instance.
///
/// # Examples
///
/// ```
/// use koika::{ast::*, design::DesignBuilder, check};
/// use koika::device::{RegAccess, SimBackend};
/// use cuttlesim::Sim;
///
/// let mut b = DesignBuilder::new("counter");
/// b.reg("count", 8, 0u64);
/// b.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
/// let design = check::check(&b.build())?;
///
/// let mut sim = Sim::compile(&design)?;
/// for _ in 0..5 {
///     sim.cycle();
/// }
/// assert_eq!(sim.get64(design.reg_id("count")), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Sim {
    prog: Program,
    st: State,
    dispatch: Dispatch,
    closures: Vec<Vec<RuleClosure>>,
    /// The lowered micro-op program for [`Dispatch::Tac`], built on first
    /// selection.
    tac: Option<crate::tac::TacProgram>,
    /// The loaded native engine for [`Dispatch::Native`], built (or pulled
    /// from the process-wide cache) on first selection.
    native: Option<std::sync::Arc<crate::native::NativeEngine>>,
    history: Option<History>,
    mid_cycle: bool,
    /// Per-rule executed-instruction counters (gprof-style profiling),
    /// `None` unless enabled.
    profile: Option<Vec<u64>>,
    /// Scratch buffer for `cycle_obs` boundary diffs. Lives outside `State`
    /// so snapshots and reverse debugging don't drag it along.
    obs_prev: Vec<u64>,
    /// The first VM-internal error hit, if any (see [`Sim::take_trap`]).
    trap: Option<VmError>,
}

#[derive(Debug, Clone)]
struct History {
    capacity: usize,
    snapshots: Vec<State>,
}

impl Sim {
    /// Compiles `design` at the maximum optimization level and instantiates
    /// a simulator.
    ///
    /// # Errors
    ///
    /// Fails if the design uses values wider than 64 bits
    /// ([`CompileError`]).
    pub fn compile(design: &TDesign) -> Result<Sim, CompileError> {
        Ok(Sim::new(compile(design, &CompileOptions::default())?))
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Fails if the design uses values wider than 64 bits.
    pub fn compile_with(design: &TDesign, opts: &CompileOptions) -> Result<Sim, CompileError> {
        Ok(Sim::new(compile(design, opts)?))
    }

    /// Instantiates a simulator for a pre-compiled program.
    pub fn new(prog: Program) -> Sim {
        let st = State::for_program(&prog);
        Sim {
            prog,
            st,
            dispatch: Dispatch::Match,
            closures: Vec::new(),
            tac: None,
            native: None,
            history: None,
            mid_cycle: false,
            profile: None,
            obs_prev: Vec::new(),
            trap: None,
        }
    }

    /// Starts counting executed instructions per rule (see
    /// [`crate::profile::ProfileReport`]). Adds a small per-instruction
    /// overhead while enabled.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(vec![0; self.prog.rules.len()]);
        }
    }

    /// Per-rule executed-instruction counters, if profiling is enabled.
    pub fn profile_insns(&self) -> Option<&[u64]> {
        self.profile.as_deref()
    }

    /// Selects the instruction-dispatch backend (default: [`Dispatch::Match`]).
    ///
    /// Selection eagerly prepares whatever the backend needs (the closure
    /// table, the lowered micro-op program); if that preparation is ever
    /// missing at execution time it is rebuilt there — the selected backend
    /// is always the one that runs, never a silent fallback.
    ///
    /// # Panics
    ///
    /// Panics if [`Dispatch::Native`] is requested and the engine cannot
    /// be built (no toolchain, build or load failure). Use
    /// [`Sim::try_set_dispatch`] to handle that case gracefully.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        if let Err(e) = self.try_set_dispatch(dispatch) {
            panic!("cannot select {} dispatch: {e}", dispatch.short_name());
        }
    }

    /// Fallible form of [`Sim::set_dispatch`]: the only backend whose
    /// preparation can actually fail is [`Dispatch::Native`] (it needs a
    /// `rustc` at run time); the others always succeed.
    ///
    /// # Errors
    ///
    /// [`NativeError`] when the native engine cannot be emitted, built, or
    /// loaded. The previously selected dispatch stays in effect.
    pub fn try_set_dispatch(&mut self, dispatch: Dispatch) -> Result<(), crate::NativeError> {
        match dispatch {
            Dispatch::Match => {}
            Dispatch::Closure => self.build_closures(),
            Dispatch::Tac => self.build_tac(),
            Dispatch::Native => self.build_native()?,
        }
        self.dispatch = dispatch;
        Ok(())
    }

    /// The currently selected dispatch backend.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    fn build_closures(&mut self) {
        if !self.closures.is_empty() {
            return;
        }
        self.closures = self
            .prog
            .rules
            .iter()
            .map(|r| {
                r.code
                    .iter()
                    .map(|&insn| {
                        let f: RuleClosure = Box::new(move |st, cfg| exec_insn(st, cfg, insn));
                        f
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
    }

    fn build_tac(&mut self) {
        if self.tac.is_none() {
            self.tac = Some(crate::tac::TacProgram::lower(&self.prog));
        }
    }

    fn build_native(&mut self) -> Result<(), crate::NativeError> {
        if self.native.is_none() {
            self.native = Some(crate::native::build_engine(&self.prog)?);
        }
        Ok(())
    }

    /// The compiled program backing this simulator.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Per-rule commit counts (rule-declaration order).
    pub fn fired_per_rule(&self) -> &[u64] {
        &self.st.fired_per_rule
    }

    /// Per-rule failure counts (explicit aborts and conflicts).
    pub fn fails_per_rule(&self) -> &[u64] {
        &self.st.fail_per_rule
    }

    /// The most recent rule failure, if any.
    pub fn last_fail(&self) -> Option<FailInfo> {
        self.st.last_fail
    }

    /// A [`Metrics`] snapshot built from the VM's always-on counters
    /// (commits, failures, cycles) — available without ever attaching an
    /// observer, because the VM keeps these counts on its fast path anyway.
    /// Failures are unclassified here; attach a `Metrics` observer via
    /// [`SimBackend::cycle_obs`] for per-reason breakdowns.
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = Metrics::for_design(&self.prog.design);
        m.set_counts(&self.st.fired_per_rule, &self.st.fail_per_rule, self.st.cycles);
        m
    }

    /// Raw coverage counters (parallel to `program().cov`).
    pub fn coverage_counts(&self) -> &[u64] {
        &self.st.cov
    }

    /// Keeps the last `capacity` end-of-cycle snapshots for
    /// [`Sim::step_back`]-style reverse debugging.
    pub fn enable_history(&mut self, capacity: usize) {
        self.history = Some(History {
            capacity,
            snapshots: Vec::new(),
        });
    }

    /// Saves the complete architectural state.
    pub fn save_state(&self) -> SimSnapshot {
        SimSnapshot {
            state: self.st.clone(),
        }
    }

    /// Restores a previously saved state.
    pub fn restore_state(&mut self, snapshot: &SimSnapshot) {
        self.st = snapshot.state.clone();
    }

    /// Steps back `ncycles` cycles using the recorded history. Returns `true`
    /// on success, `false` if the history does not reach back that far (or
    /// history was never enabled).
    pub fn step_back(&mut self, ncycles: usize) -> bool {
        let Some(h) = &mut self.history else {
            return false;
        };
        if ncycles == 0 || h.snapshots.len() < ncycles {
            return false;
        }
        for _ in 0..ncycles - 1 {
            h.snapshots.pop();
        }
        let Some(snap) = h.snapshots.pop() else {
            return false;
        };
        self.st = snap;
        true
    }

    /// The current value of every register, as `u64`s.
    pub fn reg_values(&self) -> Vec<u64> {
        (0..self.prog.init.len())
            .map(|i| self.read_reg(i))
            .collect()
    }

    #[inline]
    fn read_reg(&self, i: usize) -> u64 {
        if self.prog.cfg.no_boc {
            self.st.log_d0[i]
        } else {
            self.st.boc[i]
        }
    }

    /// Begins a cycle (for mid-cycle stepping; see the paper's case study 1).
    pub fn begin_cycle(&mut self) {
        let st = &mut self.st;
        for b in &mut st.cyc_rw {
            *b = 0;
        }
        if self.prog.cfg.reset_on_fail {
            for b in &mut st.log_rw {
                *b = 0;
            }
        }
        self.mid_cycle = true;
    }

    /// Executes one rule transactionally; returns `true` if it committed.
    /// Must be bracketed by [`Sim::begin_cycle`] / [`Sim::end_cycle`].
    ///
    /// A VM-internal trap (miscompiled bytecode) is recorded — retrieve it
    /// with [`Sim::take_trap`] — and reported as a non-commit.
    pub fn step_rule(&mut self, rule_idx: usize) -> bool {
        let mut executed = 0u64;
        let counting = self.profile.is_some();
        // Explicit backend selection: the dispatch the user picked is the
        // dispatch that runs. If its prepared form is missing (it never is
        // through the public API) it is rebuilt here rather than silently
        // falling back to Match.
        let outcome = match self.dispatch {
            Dispatch::Match => step_rule_impl(
                &self.prog,
                &mut self.st,
                rule_idx,
                None,
                &mut executed,
                counting,
            ),
            Dispatch::Closure => {
                if self.closures.is_empty() {
                    self.build_closures();
                }
                step_rule_impl(
                    &self.prog,
                    &mut self.st,
                    rule_idx,
                    Some(self.closures[rule_idx].as_slice()),
                    &mut executed,
                    counting,
                )
            }
            Dispatch::Tac => {
                if self.tac.is_none() {
                    self.build_tac();
                }
                let tac = self.tac.as_mut().expect("just built");
                crate::tac::step_rule_tac(
                    &self.prog,
                    &tac.rules[rule_idx],
                    &mut tac.slots[rule_idx],
                    &mut self.st,
                    rule_idx,
                    &mut executed,
                    counting,
                )
            }
            Dispatch::Native => {
                if self.native.is_none() {
                    // Rebuild-never-fallback: the public API only reaches
                    // here with the engine prepared (set_dispatch built
                    // it), so a failure now is a real environment change.
                    self.native = Some(
                        crate::native::build_engine(&self.prog)
                            .expect("native dispatch selected but engine unbuildable"),
                    );
                }
                let engine = self.native.as_ref().expect("just built");
                crate::native::step_rule_native(
                    &self.prog,
                    engine,
                    &mut self.st,
                    rule_idx,
                    &mut executed,
                    counting,
                )
            }
        };
        if let Some(profile) = &mut self.profile {
            profile[rule_idx] += executed;
        }
        match outcome {
            Ok(committed) => committed,
            Err(e) => {
                if self.trap.is_none() {
                    self.trap = Some(e);
                }
                false
            }
        }
    }

    /// The first VM-internal error recorded since the last call, if any.
    /// Cleared by the call.
    pub fn take_trap(&mut self) -> Option<VmError> {
        self.trap.take()
    }

    /// Runs one full cycle, propagating VM-internal errors instead of
    /// recording them.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::CompilerBug`] if the bytecode violates a VM
    /// invariant (never for programs produced by [`compile`]); the cycle is
    /// abandoned mid-way.
    pub fn try_cycle(&mut self) -> Result<(), VmError> {
        self.begin_cycle();
        for i in 0..self.prog.schedule.len() {
            let rule = self.prog.schedule[i];
            self.step_rule(rule);
            if let Some(e) = self.trap.take() {
                self.mid_cycle = false;
                return Err(e);
            }
        }
        self.end_cycle();
        Ok(())
    }

    /// Ends a cycle: commits the cycle log into the register state (a no-op
    /// from the no-beginning-of-cycle-state level up).
    pub fn end_cycle(&mut self) {
        let cfg = self.prog.cfg;
        let st = &mut self.st;
        if !cfg.no_boc {
            for i in 0..st.boc.len() {
                let rw = st.cyc_rw[i];
                if rw & W1 != 0 {
                    st.boc[i] = if cfg.merged_data {
                        st.cyc_d0[i]
                    } else {
                        st.cyc_d1[i]
                    };
                } else if rw & W0 != 0 {
                    st.boc[i] = st.cyc_d0[i];
                }
            }
        }
        st.cycles += 1;
        self.mid_cycle = false;
        if let Some(h) = &mut self.history {
            let snap = st.clone();
            if h.snapshots.len() == h.capacity {
                h.snapshots.remove(0);
            }
            h.snapshots.push(snap);
        }
    }

    /// Runs one cycle with an explicit rule order (the paper's case study 2:
    /// scheduler randomization).
    ///
    /// # Panics
    ///
    /// Panics if the program was compiled at the design-specific level under
    /// the [`ScheduleAssumption::Declared`] assumption — its specialization
    /// would be unsound for arbitrary orders. Compile with
    /// [`ScheduleAssumption::AnyOrder`] instead.
    pub fn cycle_with_order(&mut self, order: &[usize]) {
        assert!(
            !(self.prog.cfg.design_specific
                && self.prog.assumption == ScheduleAssumption::Declared),
            "cycle_with_order on a design-specifically optimized program requires \
             compiling with ScheduleAssumption::AnyOrder"
        );
        self.begin_cycle();
        for &idx in order {
            assert!(idx < self.prog.rules.len(), "rule index out of range");
            self.step_rule(idx);
        }
        self.end_cycle();
    }
}

/// Executes one rule transactionally against `st`: prologue, body, and
/// commit or rollback — the complete scalar per-rule semantics at every
/// level. Returns `Ok(true)` on commit, `Ok(false)` on a rule failure, and
/// `Err` on a VM-internal trap (miscompiled bytecode).
///
/// This is a free function over [`State`] (rather than a `Sim` method) so
/// the batched engine can run a diverged lane through the exact scalar
/// executor.
pub(crate) fn step_rule_impl(
    prog: &Program,
    st: &mut State,
    rule_idx: usize,
    closures: Option<&[RuleClosure]>,
    executed: &mut u64,
    counting: bool,
) -> Result<bool, VmError> {
    let cfg = prog.cfg;
    let rule = &prog.rules[rule_idx];
    let n = prog.init.len();

    rule_prologue(cfg, st);
    st.stack.clear();

    let code = &rule.code;
    let mut pc = 0usize;
    let outcome = if let Some(closures) = closures {
        loop {
            if counting {
                *executed += 1;
            }
            match closures[pc](st, cfg) {
                Flow::Next => pc += 1,
                Flow::Jump(t) => pc = t as usize,
                Flow::Fail { clean } => break Err(clean),
                Flow::Done => break Ok(()),
                Flow::Trap(what) => {
                    return Err(VmError::CompilerBug {
                        rule: rule_idx,
                        pc,
                        what,
                    })
                }
            }
        }
    } else {
        loop {
            if counting {
                *executed += 1;
            }
            match exec_insn(st, cfg, code[pc]) {
                Flow::Next => pc += 1,
                Flow::Jump(t) => pc = t as usize,
                Flow::Fail { clean } => break Err(clean),
                Flow::Done => break Ok(()),
                Flow::Trap(what) => {
                    return Err(VmError::CompilerBug {
                        rule: rule_idx,
                        pc,
                        what,
                    })
                }
            }
        }
    };

    match outcome {
        Ok(()) => {
            rule_commit(cfg, st, rule, rule_idx, n);
            Ok(true)
        }
        Err(clean) => {
            rule_failure(cfg, st, rule, rule_idx, pc, clean);
            Ok(false)
        }
    }
}

/// The rule prologue: prepares the rule log for a fresh transaction
/// (level-dependent — plain logs are cleared, accumulated reset-on-entry
/// logs copy the cycle log, reset-on-failure logs are left as-is).
pub(crate) fn rule_prologue(cfg: LevelCfg, st: &mut State) {
    if !cfg.acc_logs {
        // The log is a plain rule log: clear its read-write sets.
        for b in &mut st.log_rw {
            *b = 0;
        }
    } else if !cfg.reset_on_fail {
        // Accumulated log, reset on entry: copy the full cycle log.
        st.log_rw.copy_from_slice(&st.cyc_rw);
        st.log_d0.copy_from_slice(&st.cyc_d0);
        if !cfg.merged_data {
            st.log_d1.copy_from_slice(&st.cyc_d1);
        }
    }
}

/// Commits a successfully completed rule into the cycle log and bumps the
/// fired counters. `n` is the flat register count.
pub(crate) fn rule_commit(
    cfg: LevelCfg,
    st: &mut State,
    rule: &crate::compile::RuleCode,
    rule_idx: usize,
    n: usize,
) {
    if !cfg.acc_logs {
        // Naive merge: or the read-write sets, copy write data.
        for i in 0..n {
            let rl = st.log_rw[i];
            if rl != 0 {
                st.cyc_rw[i] |= rl;
                if rl & W0 != 0 {
                    st.cyc_d0[i] = st.log_d0[i];
                }
                if rl & W1 != 0 {
                    if cfg.merged_data {
                        st.cyc_d0[i] = st.log_d0[i];
                    } else {
                        st.cyc_d1[i] = st.log_d1[i];
                    }
                }
            }
        }
    } else {
        match &rule.commit {
            CopyPlan::Full => {
                st.cyc_rw.copy_from_slice(&st.log_rw);
                st.cyc_d0.copy_from_slice(&st.log_d0);
                if !cfg.merged_data {
                    st.cyc_d1.copy_from_slice(&st.log_d1);
                }
            }
            CopyPlan::Footprint { rw, data } => {
                for &i in rw {
                    st.cyc_rw[i as usize] = st.log_rw[i as usize];
                }
                for &i in data {
                    st.cyc_d0[i as usize] = st.log_d0[i as usize];
                    if !cfg.merged_data {
                        st.cyc_d1[i as usize] = st.log_d1[i as usize];
                    }
                }
            }
        }
    }
    st.fired += 1;
    st.fired_per_rule[rule_idx] += 1;
}

/// Records a rule failure at bytecode location `pc` and rolls the log back
/// where the level demands it. The executor already recorded the failing
/// register (if any) in `last_fail`; this fills in the location.
pub(crate) fn rule_failure(
    cfg: LevelCfg,
    st: &mut State,
    rule: &crate::compile::RuleCode,
    rule_idx: usize,
    pc: usize,
    clean: bool,
) {
    st.fail_per_rule[rule_idx] += 1;
    if let Some(f) = &mut st.last_fail {
        f.rule = rule_idx;
        f.pc = pc;
        f.cycle = st.cycles;
    }
    // Rollback (reset-on-failure levels only; earlier levels reset on
    // entry instead).
    if cfg.reset_on_fail && !clean {
        match &rule.rollback {
            CopyPlan::Full => {
                st.log_rw.copy_from_slice(&st.cyc_rw);
                st.log_d0.copy_from_slice(&st.cyc_d0);
                if !cfg.merged_data {
                    st.log_d1.copy_from_slice(&st.cyc_d1);
                }
            }
            CopyPlan::Footprint { rw, data } => {
                for &i in rw {
                    st.log_rw[i as usize] = st.cyc_rw[i as usize];
                }
                for &i in data {
                    st.log_d0[i as usize] = st.cyc_d0[i as usize];
                    if !cfg.merged_data {
                        st.log_d1[i as usize] = st.cyc_d1[i as usize];
                    }
                }
            }
        }
    }
}

#[inline(always)]
pub(crate) fn fail_conflict(st: &mut State, reg: u32, clean: bool) -> Flow {
    st.last_fail = Some(FailInfo {
        rule: usize::MAX,
        pc: usize::MAX,
        reg: Some(RegId(reg)),
        cycle: u64::MAX,
    });
    Flow::Fail { clean }
}

#[inline(always)]
pub(crate) fn rd0_at(st: &mut State, cfg: LevelCfg, i: usize, clean: bool) -> Result<u64, Flow> {
    let check = if cfg.acc_logs {
        st.log_rw[i]
    } else {
        st.cyc_rw[i]
    };
    if check & (W0 | W1) != 0 {
        return Err(fail_conflict(st, i as u32, clean));
    }
    if !cfg.design_specific {
        st.log_rw[i] |= R0;
    }
    Ok(if cfg.no_boc { st.log_d0[i] } else { st.boc[i] })
}

#[inline(always)]
pub(crate) fn rd1_at(st: &mut State, cfg: LevelCfg, i: usize, clean: bool) -> Result<u64, Flow> {
    let check = if cfg.acc_logs {
        st.log_rw[i]
    } else {
        st.cyc_rw[i]
    };
    if check & W1 != 0 {
        return Err(fail_conflict(st, i as u32, clean));
    }
    st.log_rw[i] |= R1;
    // The first two arms read the same field for *different reasons*: with
    // no beginning-of-cycle state the log data IS the value; otherwise it
    // is only valid if a write-0 happened.
    #[allow(clippy::if_same_then_else)]
    let v = if cfg.no_boc {
        st.log_d0[i]
    } else if st.log_rw[i] & W0 != 0 {
        st.log_d0[i]
    } else if !cfg.acc_logs && st.cyc_rw[i] & W0 != 0 {
        st.cyc_d0[i]
    } else {
        st.boc[i]
    };
    Ok(v)
}

#[inline(always)]
pub(crate) fn wr0_at(st: &mut State, cfg: LevelCfg, i: usize, v: u64, clean: bool) -> Result<(), Flow> {
    let check = if cfg.acc_logs {
        st.log_rw[i]
    } else {
        st.log_rw[i] | st.cyc_rw[i]
    };
    if check & (R1 | W0 | W1) != 0 {
        return Err(fail_conflict(st, i as u32, clean));
    }
    st.log_rw[i] |= W0;
    st.log_d0[i] = v;
    Ok(())
}

#[inline(always)]
pub(crate) fn wr1_at(st: &mut State, cfg: LevelCfg, i: usize, v: u64, clean: bool) -> Result<(), Flow> {
    let check = if cfg.acc_logs {
        st.log_rw[i]
    } else {
        st.log_rw[i] | st.cyc_rw[i]
    };
    if check & W1 != 0 {
        return Err(fail_conflict(st, i as u32, clean));
    }
    st.log_rw[i] |= W1;
    if cfg.merged_data {
        st.log_d0[i] = v;
    } else {
        st.log_d1[i] = v;
    }
    Ok(())
}

#[inline(always)]
pub(crate) fn fused(op: FusedBin, a: u64, b: u64, mask: u64) -> u64 {
    match op {
        FusedBin::Add => a.wrapping_add(b) & mask,
        FusedBin::Sub => a.wrapping_sub(b) & mask,
        FusedBin::Mul => a.wrapping_mul(b) & mask,
        FusedBin::And => a & b,
        FusedBin::Or => a | b,
        FusedBin::Xor => a ^ b,
        FusedBin::Shl => {
            if b >= 64 {
                0
            } else {
                (a << b) & mask
            }
        }
        FusedBin::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        FusedBin::Sra => word::sra(mask.count_ones(), a, b),
        FusedBin::Eq => (a == b) as u64,
        FusedBin::Ne => (a != b) as u64,
        FusedBin::Ult => (a < b) as u64,
        FusedBin::Ule => (a <= b) as u64,
        FusedBin::Slt => word::slt(mask.count_ones(), a, b),
        FusedBin::Sle => 1 - word::slt(mask.count_ones(), b, a),
        FusedBin::Concat { low } => word::concat(low as u32, a, b) & mask,
    }
}

#[inline(always)]
fn exec_insn(st: &mut State, cfg: LevelCfg, insn: Insn) -> Flow {
    macro_rules! pop {
        () => {
            match st.stack.pop() {
                Some(v) => v,
                None => return Flow::Trap("operand stack underflow"),
            }
        };
    }
    macro_rules! push {
        ($v:expr) => {
            st.stack.push($v)
        };
    }
    macro_rules! binop {
        (|$a:ident, $b:ident| $body:expr) => {{
            let $b = pop!();
            let $a = pop!();
            push!($body);
            Flow::Next
        }};
    }
    macro_rules! try_op {
        ($r:expr) => {
            match $r {
                Ok(v) => v,
                Err(flow) => return flow,
            }
        };
    }
    match insn {
        Insn::Const(v) => {
            push!(v);
            Flow::Next
        }
        Insn::Local(s) => {
            push!(st.locals[s as usize]);
            Flow::Next
        }
        Insn::SetLocal(s) => {
            st.locals[s as usize] = pop!();
            Flow::Next
        }
        Insn::Add { mask } => binop!(|a, b| a.wrapping_add(b) & mask),
        Insn::Sub { mask } => binop!(|a, b| a.wrapping_sub(b) & mask),
        Insn::Mul { mask } => binop!(|a, b| a.wrapping_mul(b) & mask),
        Insn::And => binop!(|a, b| a & b),
        Insn::Or => binop!(|a, b| a | b),
        Insn::Xor => binop!(|a, b| a ^ b),
        Insn::Shl { mask } => binop!(|a, b| if b >= 64 { 0 } else { (a << b) & mask }),
        Insn::Shr => binop!(|a, b| if b >= 64 { 0 } else { a >> b }),
        Insn::Sra { width } => binop!(|a, b| word::sra(width, a, b)),
        Insn::Eq => binop!(|a, b| (a == b) as u64),
        Insn::Ne => binop!(|a, b| (a != b) as u64),
        Insn::Ult => binop!(|a, b| (a < b) as u64),
        Insn::Ule => binop!(|a, b| (a <= b) as u64),
        Insn::Slt { width } => binop!(|a, b| word::slt(width, a, b)),
        Insn::Sle { width } => binop!(|a, b| 1 - word::slt(width, b, a)),
        Insn::ConcatShift { low_width, mask } => {
            binop!(|a, b| word::concat(low_width, a, b) & mask)
        }
        Insn::Not { mask } => {
            let a = pop!();
            push!(!a & mask);
            Flow::Next
        }
        Insn::Neg { mask } => {
            let a = pop!();
            push!(a.wrapping_neg() & mask);
            Flow::Next
        }
        Insn::Mask { mask } => {
            let a = pop!();
            push!(a & mask);
            Flow::Next
        }
        Insn::Sext { from, mask } => {
            let a = pop!();
            push!(word::sext(from, a) & mask);
            Flow::Next
        }
        Insn::Slice { lo, mask } => {
            let a = pop!();
            push!((a >> lo) & mask);
            Flow::Next
        }
        Insn::Select => {
            let f = pop!();
            let t = pop!();
            let c = pop!();
            push!(if c != 0 { t } else { f });
            Flow::Next
        }
        Insn::Rd0 { reg, clean } => {
            let v = try_op!(rd0_at(st, cfg, reg as usize, clean));
            push!(v);
            Flow::Next
        }
        Insn::Rd1 { reg, clean } => {
            let v = try_op!(rd1_at(st, cfg, reg as usize, clean));
            push!(v);
            Flow::Next
        }
        Insn::Wr0 { reg, clean } => {
            let v = pop!();
            try_op!(wr0_at(st, cfg, reg as usize, v, clean));
            Flow::Next
        }
        Insn::Wr1 { reg, clean } => {
            let v = pop!();
            try_op!(wr1_at(st, cfg, reg as usize, v, clean));
            Flow::Next
        }
        Insn::Rd0Fast { reg } | Insn::Rd1Fast { reg } => {
            // Safe registers: no checks, no recording; with analysis-proven
            // safety the log data field is always the right value.
            push!(st.log_d0[reg as usize]);
            Flow::Next
        }
        Insn::Wr0Fast { reg } | Insn::Wr1Fast { reg } => {
            let v = pop!();
            st.log_d0[reg as usize] = v;
            Flow::Next
        }
        Insn::Rd0Arr { base, mask, clean } => {
            let idx = pop!();
            let i = base as usize + (idx & mask as u64) as usize;
            let v = try_op!(rd0_at(st, cfg, i, clean));
            push!(v);
            Flow::Next
        }
        Insn::Rd1Arr { base, mask, clean } => {
            let idx = pop!();
            let i = base as usize + (idx & mask as u64) as usize;
            let v = try_op!(rd1_at(st, cfg, i, clean));
            push!(v);
            Flow::Next
        }
        Insn::Wr0Arr { base, mask, clean } => {
            let v = pop!();
            let idx = pop!();
            let i = base as usize + (idx & mask as u64) as usize;
            try_op!(wr0_at(st, cfg, i, v, clean));
            Flow::Next
        }
        Insn::Wr1Arr { base, mask, clean } => {
            let v = pop!();
            let idx = pop!();
            let i = base as usize + (idx & mask as u64) as usize;
            try_op!(wr1_at(st, cfg, i, v, clean));
            Flow::Next
        }
        Insn::Rd0ArrFast { base, mask } | Insn::Rd1ArrFast { base, mask } => {
            let idx = pop!();
            let i = base as usize + (idx & mask as u64) as usize;
            push!(st.log_d0[i]);
            Flow::Next
        }
        Insn::Wr0ArrFast { base, mask } | Insn::Wr1ArrFast { base, mask } => {
            let v = pop!();
            let idx = pop!();
            let i = base as usize + (idx & mask as u64) as usize;
            st.log_d0[i] = v;
            Flow::Next
        }
        Insn::BinRC { op, rhs, mask } => {
            let a = pop!();
            push!(fused(op, a, rhs, mask));
            Flow::Next
        }
        Insn::BinRL { op, rhs_slot, mask } => {
            let b = st.locals[rhs_slot as usize];
            let a = pop!();
            push!(fused(op, a, b, mask));
            Flow::Next
        }
        Insn::BinLL {
            op,
            a_slot,
            b_slot,
            mask,
        } => {
            let a = st.locals[a_slot as usize];
            let b = st.locals[b_slot as usize];
            push!(fused(op, a, b, mask));
            Flow::Next
        }
        Insn::BinLC {
            op,
            a_slot,
            rhs,
            mask,
        } => {
            let a = st.locals[a_slot as usize];
            push!(fused(op, a, rhs, mask));
            Flow::Next
        }
        Insn::SliceSext { lo, from, mask } => {
            let a = pop!();
            push!(word::sext(from, (a >> lo) & word::mask(from)) & mask);
            Flow::Next
        }
        Insn::LdFast { reg, slot } => {
            st.locals[slot as usize] = st.log_d0[reg as usize];
            Flow::Next
        }
        Insn::StFast { reg, slot } => {
            st.log_d0[reg as usize] = st.locals[slot as usize];
            Flow::Next
        }
        Insn::SetLocalK { slot, imm } => {
            st.locals[slot as usize] = imm;
            Flow::Next
        }
        Insn::Jmp(t) => Flow::Jump(t),
        Insn::Jz(t) => {
            if pop!() == 0 {
                Flow::Jump(t)
            } else {
                Flow::Next
            }
        }
        Insn::Abort => {
            st.last_fail = Some(FailInfo {
                rule: usize::MAX,
                pc: usize::MAX,
                reg: None,
                cycle: u64::MAX,
            });
            Flow::Fail { clean: false }
        }
        Insn::AbortClean => {
            st.last_fail = Some(FailInfo {
                rule: usize::MAX,
                pc: usize::MAX,
                reg: None,
                cycle: u64::MAX,
            });
            Flow::Fail { clean: true }
        }
        Insn::Cov(id) => {
            st.cov[id as usize] += 1;
            Flow::Next
        }
        Insn::End => Flow::Done,
    }
}

impl RegAccess for Sim {
    fn get64(&self, reg: RegId) -> u64 {
        self.read_reg(reg.0 as usize)
    }

    fn set64(&mut self, reg: RegId, value: u64) {
        let i = reg.0 as usize;
        let v = value & word::mask(self.prog.widths[i]);
        if self.prog.cfg.no_boc {
            self.st.log_d0[i] = v;
            self.st.cyc_d0[i] = v;
        } else {
            self.st.boc[i] = v;
        }
    }
}

impl SimBackend for Sim {
    fn cycle(&mut self) {
        debug_assert!(!self.mid_cycle, "cycle() called while stepping mid-cycle");
        // Whole-cycle fast path: the generated `koika_cycle` runs the full
        // schedule (prologue, bodies, commit/rollback, end-of-cycle merge)
        // in one native call. Only when nothing needs per-rule hooks:
        // history wants a snapshot per cycle boundary (end_cycle pushes
        // it) and profiling wants per-rule counters.
        if self.dispatch == Dispatch::Native && self.history.is_none() && self.profile.is_none() {
            if let Some(engine) = &self.native {
                if engine.has_cycle_fn() {
                    crate::native::run_cycle_native(engine, &mut self.st);
                    return;
                }
            }
        }
        self.begin_cycle();
        for i in 0..self.prog.schedule.len() {
            let rule = self.prog.schedule[i];
            self.step_rule(rule);
        }
        self.end_cycle();
    }

    fn cycle_obs(&mut self, obs: &mut dyn Observer) {
        debug_assert!(!self.mid_cycle, "cycle_obs() called while stepping mid-cycle");
        let nregs = self.prog.init.len();
        let mut prev = std::mem::take(&mut self.obs_prev);
        prev.clear();
        prev.extend((0..nregs).map(|i| self.read_reg(i)));
        let cycle = self.st.cycles;
        obs.cycle_start(cycle);
        self.begin_cycle();
        for i in 0..self.prog.schedule.len() {
            let rule = self.prog.schedule[i];
            obs.rule_attempt(rule);
            if self.step_rule(rule) {
                obs.rule_commit(rule);
            } else {
                // step_rule just refreshed `last_fail` for this failure.
                let reason = match self.st.last_fail {
                    Some(FailInfo { reg: Some(r), .. }) => FailureReason::Conflict(r),
                    Some(FailInfo { reg: None, .. }) => FailureReason::Abort,
                    None => FailureReason::Unspecified,
                };
                obs.rule_fail(rule, reason);
            }
        }
        self.end_cycle();
        for (i, &old) in prev.iter().enumerate() {
            let new = self.read_reg(i);
            if new != old {
                obs.reg_write(RegId(i as u32), old, new);
            }
        }
        self.obs_prev = prev;
        obs.cycle_end(cycle);
    }

    fn cycle_count(&self) -> u64 {
        self.st.cycles
    }

    fn rules_fired(&self) -> u64 {
        self.st.fired
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            design: self.prog.design.name.clone(),
            cycles: self.st.cycles,
            fired: self.st.fired,
            fingerprint: self.prog.design.fingerprint(),
            fired_per_rule: self.st.fired_per_rule.clone(),
            regs: (0..self.prog.init.len())
                .map(|i| Bits::new(self.prog.widths[i], self.read_reg(i)))
                .collect(),
        }
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        if self.mid_cycle {
            return Err(SnapshotError::MidCycle);
        }
        snap.check_shape(
            &self.prog.design.name,
            &self.prog.widths,
            self.prog.design.fingerprint(),
        )?;
        for (i, v) in snap.regs.iter().enumerate() {
            self.set64(RegId(i as u32), v.low_u64());
        }
        self.st.cycles = snap.cycles;
        self.st.fired = snap.fired;
        if snap.fired_per_rule.len() == self.st.fired_per_rule.len() {
            self.st.fired_per_rule.copy_from_slice(&snap.fired_per_rule);
        } else {
            self.st.fired_per_rule.fill(0);
        }
        self.st.last_fail = None;
        Ok(())
    }

    fn as_reg_access(&mut self) -> &mut dyn RegAccess {
        self
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("design", &self.prog.design.name)
            .field("level", &self.prog.level)
            .field("cycles", &self.st.cycles)
            .field("fired", &self.st.fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;

    fn counter_prog() -> Program {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let td = check(&b.build()).unwrap();
        compile(&td, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn miscompiled_bytecode_traps_instead_of_panicking() {
        let mut prog = counter_prog();
        // Corrupt the rule: a binop with an empty operand stack.
        prog.rules[0].code.insert(0, Insn::Add { mask: u64::MAX });
        let mut sim = Sim::new(prog);
        let err = sim.try_cycle().unwrap_err();
        assert_eq!(
            err,
            VmError::CompilerBug {
                rule: 0,
                pc: 0,
                what: "operand stack underflow",
            }
        );
        assert!(err.to_string().contains("compiler bug in rule 0"));
    }

    #[test]
    fn step_rule_records_trap_and_reports_non_commit() {
        let mut prog = counter_prog();
        prog.rules[0].code.insert(0, Insn::Select);
        let mut sim = Sim::new(prog);
        sim.begin_cycle();
        assert!(!sim.step_rule(0));
        sim.end_cycle();
        assert!(matches!(
            sim.take_trap(),
            Some(VmError::CompilerBug { rule: 0, .. })
        ));
        assert_eq!(sim.take_trap(), None, "trap is cleared once taken");
    }

    #[test]
    fn concat_shift_zero_width_high_half_is_guarded() {
        // Regression: `low_width == 64` (a zero-width high half) used to
        // evaluate `a << 64`, a debug-mode panic and a release-mode wrong
        // answer. The guarded lowering returns the low half.
        let mut prog = counter_prog();
        prog.rules[0].code = vec![
            Insn::Const(0xdead),
            Insn::Const(5),
            Insn::ConcatShift {
                low_width: 64,
                mask: u64::MAX,
            },
            Insn::Wr0 {
                reg: 0,
                clean: false,
            },
            Insn::End,
        ];
        let mut sim = Sim::new(prog);
        sim.try_cycle().unwrap();
        assert_eq!(sim.get64(RegId(0)), 5);
    }

    #[test]
    fn concat_shift_applies_the_result_mask() {
        // Regression: the concat result was never masked, so high-half bits
        // beyond the combined width leaked into the register.
        let mut prog = counter_prog();
        prog.rules[0].code = vec![
            Insn::Const(0xab),
            Insn::Const(0x5),
            Insn::ConcatShift {
                low_width: 4,
                mask: 0xff,
            },
            Insn::Wr0 {
                reg: 0,
                clean: false,
            },
            Insn::End,
        ];
        let mut sim = Sim::new(prog);
        sim.try_cycle().unwrap();
        assert_eq!(sim.get64(RegId(0)), 0xb5, "(0xab << 4 | 5) & 0xff");
    }

    #[test]
    fn fused_concat_is_guarded_and_masked() {
        // The same two regressions through the peephole-fused form, which
        // routes through `fused()` rather than the ConcatShift arm.
        assert_eq!(fused(FusedBin::Concat { low: 64 }, 0xdead, 5, u64::MAX), 5);
        assert_eq!(fused(FusedBin::Concat { low: 4 }, 0xab, 0x5, 0xff), 0xb5);
        let mut prog = counter_prog();
        prog.rules[0].code = vec![
            Insn::Const(0xab),
            Insn::BinRC {
                op: FusedBin::Concat { low: 4 },
                rhs: 0x5,
                mask: 0xff,
            },
            Insn::Wr0 {
                reg: 0,
                clean: false,
            },
            Insn::End,
        ];
        let mut sim = Sim::new(prog);
        sim.try_cycle().unwrap();
        assert_eq!(sim.get64(RegId(0)), 0xb5);
    }

    #[test]
    fn closure_dispatch_is_never_silently_bypassed() {
        // Regression: with `Dispatch::Closure` selected but the closure
        // table empty, `step_rule` silently fell back to Match dispatch.
        // Selection must rebuild the table and run through it.
        let mut sim = Sim::new(counter_prog());
        sim.set_dispatch(Dispatch::Closure);
        sim.closures.clear();
        sim.cycle();
        assert!(
            !sim.closures.is_empty(),
            "closure dispatch must rebuild its table, not fall back to Match"
        );
        assert_eq!(sim.get64(RegId(0)), 1);
    }

    #[test]
    fn dispatch_survives_snapshot_restore() {
        for dispatch in Dispatch::ALL {
            let mut sim = Sim::new(counter_prog());
            sim.set_dispatch(dispatch);
            let snap = sim.save_state();
            sim.cycle();
            sim.restore_state(&snap);
            assert_eq!(
                sim.dispatch(),
                dispatch,
                "restore rewinds architectural state, not backend selection"
            );
            sim.cycle();
            assert_eq!(sim.get64(RegId(0)), 1, "{dispatch:?} runs after restore");
        }
    }

    #[test]
    fn step_back_without_history_is_refused() {
        let mut sim = Sim::new(counter_prog());
        assert!(!sim.step_back(1));
        sim.enable_history(4);
        assert!(!sim.step_back(0), "zero-cycle step-back is refused");
        assert!(!sim.step_back(1), "no snapshots recorded yet");
        sim.cycle();
        sim.cycle();
        assert!(sim.step_back(2), "history reaches back to end of cycle 1");
        assert_eq!(sim.get64(RegId(0)), 1);
        assert!(!sim.step_back(1), "the restore consumed the history");
    }
}
