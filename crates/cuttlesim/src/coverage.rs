//! Gcov-style coverage reporting (the paper's §4.2, case studies 3 and 4).
//!
//! When a design is compiled with [`CompileOptions::coverage`]
//! (see [`crate::CompileOptions`]), the VM bumps one counter per statement.
//! Because the compiled model matches the source design closely, these
//! counts directly expose architectural information — rule firing rates,
//! branch mispredictions, scoreboard stalls — "without adding a single piece
//! of counting hardware".
//!
//! Counts are **dispatch-invariant**: the `tac` engine keeps every
//! coverage-bump point as its own micro-op (they are fusion barriers), so
//! the annotated listing reads identically under all three dispatchers.
//!
//! [`CompileOptions::coverage`]: crate::CompileOptions::coverage

use crate::compile::CovPoint;
use crate::vm::Sim;
use std::fmt;

/// A rendered coverage report: execution counts annotated onto the
/// paper-style model listing.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    lines: Vec<(u64, u32, String, String)>, // (count, depth, rule, label)
}

impl CoverageReport {
    /// Extracts the current coverage counts from a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's program was compiled without coverage.
    pub fn collect(sim: &Sim) -> CoverageReport {
        let cov: &[CovPoint] = &sim.program().cov;
        assert!(
            !cov.is_empty(),
            "program was compiled without coverage; set CompileOptions::coverage"
        );
        let counts = sim.coverage_counts();
        CoverageReport {
            lines: cov
                .iter()
                .zip(counts)
                .map(|(p, c)| (*c, p.depth, p.rule.clone(), p.label.clone()))
                .collect(),
        }
    }

    /// The execution count of the statement carrying the given label within
    /// the given rule (labels come from [`koika::ast::named`] blocks or from
    /// the pretty-printed statement text).
    pub fn count(&self, rule: &str, label: &str) -> Option<u64> {
        self.lines
            .iter()
            .find(|(_, _, r, l)| r == rule && l == label)
            .map(|(c, _, _, _)| *c)
    }

    /// Sums the counts of every statement whose label contains `fragment`
    /// within the given rule — convenient for counting e.g. all `FAIL()`s.
    pub fn count_matching(&self, rule: &str, fragment: &str) -> u64 {
        self.lines
            .iter()
            .filter(|(_, _, r, l)| r == rule && l.contains(fragment))
            .map(|(c, _, _, _)| *c)
            .sum()
    }

    /// Iterates over `(count, rule, label)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &str, &str)> + '_ {
        self.lines
            .iter()
            .map(|(c, _, r, l)| (*c, r.as_str(), l.as_str()))
    }
}

impl fmt::Display for CoverageReport {
    /// Renders the annotated listing, mimicking the paper's Gcov snippets:
    ///
    /// ```text
    ///     14890635: DEF_RULE(execute)
    ///     14890635:   if ((READ0(pc) != v0))
    ///      2071903:     WRITE0(pc, v0)
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (count, depth, _, label) in &self.lines {
            writeln!(
                f,
                "{count:>12}: {:indent$}{label}",
                "",
                indent = (*depth as usize) * 2
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompileOptions;
    use crate::vm::Sim;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;
    use koika::device::SimBackend;

    fn covered_sim() -> Sim {
        let mut b = DesignBuilder::new("cov");
        b.reg("n", 4, 0u64);
        b.rule(
            "count",
            vec![
                named(
                    "saturate",
                    vec![when(rd0("n").eq(k(4, 15)), vec![abort()])],
                ),
                wr0("n", rd0("n").add(k(4, 1))),
            ],
        );
        let td = check(&b.build()).unwrap();
        Sim::compile_with(
            &td,
            &CompileOptions {
                coverage: true,
                ..CompileOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn counts_track_execution() {
        let mut sim = covered_sim();
        for _ in 0..32 {
            sim.cycle();
        }
        let report = CoverageReport::collect(&sim);
        assert_eq!(report.count("count", "DEF_RULE(count)"), Some(32));
        assert_eq!(report.count("count", "saturate"), Some(32));
        // The counter saturates at 15 after 15 increments; the remaining
        // 17 cycles each hit the abort.
        assert_eq!(report.count_matching("count", "FAIL()"), 17);
        let listing = report.to_string();
        assert!(listing.contains("DEF_RULE(count)"));
        assert!(listing.contains("32:"));
    }

    #[test]
    #[should_panic(expected = "compiled without coverage")]
    fn collect_requires_coverage_build() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 4, 0u64);
        b.rule("r", vec![wr0("n", k(4, 1))]);
        let td = check(&b.build()).unwrap();
        let sim = Sim::compile(&td).unwrap();
        let _ = CoverageReport::collect(&sim);
    }
}
