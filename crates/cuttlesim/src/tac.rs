//! Register-form (three-address) micro-op lowering for the Cuttlesim VM —
//! the [`crate::Dispatch::Tac`] backend.
//!
//! The stack bytecode ([`crate::insn::Insn`]) is convenient to emit but pays
//! for itself at run time: every operand crosses the operand stack, and every
//! instruction is re-decoded on every execution. Compiled simulators win by
//! lowering toward machine-shaped code, so this module lowers each rule
//! *once*, when the backend is selected, into a flat pre-decoded array of
//! micro-ops over a per-rule **slot file**:
//!
//! * **Stack elimination.** The lowering abstract-interprets the rule's stack
//!   effects: each push becomes a virtual value slot, each pop becomes a slot
//!   operand. Compiler-produced bytecode keeps the operand stack empty at
//!   every jump target (branching is statement-level), which makes the
//!   abstract stack exact; hand-built bytecode that violates this discipline
//!   lowers to a [`Uop::Trap`] and surfaces as [`VmError::CompilerBug`] at
//!   run time, never a panic.
//! * **Constant pre-folding.** `Const` pushes never execute: constants are
//!   folded into operands at lowering time (constant × constant operations
//!   fold completely) and materialized into read-only slots that are filled
//!   once, when the slot file is built.
//! * **Superinstruction fusion.** The dominant `rd0 → binop → wr0` and
//!   `binop → guard` chains fuse into single micro-ops ([`Uop::RdBin`],
//!   [`Uop::BinWr`], [`Uop::RdBinWr`], [`Uop::BinJz`]), extending the
//!   peephole [`FusedBin`] machinery one level further.
//!
//! Observability is preserved: every micro-op carries the source bytecode pc
//! it came from (so [`crate::FailInfo`] keeps pointing into the bytecode) and
//! a weight equal to the number of bytecode instructions it absorbed (so
//! profiling counts stay on the bytecode scale that
//! [`crate::ProfileReport`] expects). Coverage micro-ops bump the same
//! counters as their bytecode counterparts, keeping
//! [`crate::CoverageReport`] exact.

use crate::compile::{fusable, Program, RuleCode};
use crate::insn::{FusedBin, Insn};
use crate::vm::{
    fused, rd0_at, rd1_at, rule_commit, rule_failure, rule_prologue, wr0_at, wr1_at, FailInfo,
    Flow, State, VmError,
};
use koika::bits::word;

/// A register-form micro-op. `u16` operands index the rule's slot file;
/// `u32` register fields index the flat register arrays, exactly like the
/// bytecode's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Uop {
    /// `slots[dst] = op(slots[a], slots[b])` under `mask`.
    Bin {
        /// Operator.
        op: FusedBin,
        /// Destination slot.
        dst: u16,
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
        /// Result mask.
        mask: u64,
    },
    /// `slots[dst] = !slots[src] & mask`.
    Not { dst: u16, src: u16, mask: u64 },
    /// `slots[dst] = (-slots[src]) & mask`.
    Neg { dst: u16, src: u16, mask: u64 },
    /// `slots[dst] = slots[src] & mask`.
    Mask { dst: u16, src: u16, mask: u64 },
    /// `slots[dst] = sext(from, slots[src]) & mask`.
    Sext { dst: u16, src: u16, from: u32, mask: u64 },
    /// `slots[dst] = (slots[src] >> lo) & mask` (`lo < 64`, guarded at
    /// lowering time).
    Slice { dst: u16, src: u16, lo: u32, mask: u64 },
    /// `slots[dst] = sext(from, (slots[src] >> lo) & mask(from)) & mask`.
    SliceSext { dst: u16, src: u16, lo: u32, from: u32, mask: u64 },
    /// `slots[dst] = if slots[c] != 0 { slots[t] } else { slots[f] }`.
    Select { dst: u16, c: u16, t: u16, f: u16 },
    /// `slots[dst] = imm`.
    Const { dst: u16, imm: u64 },
    /// `slots[dst] = slots[src]`.
    Mov { dst: u16, src: u16 },
    /// Checked port-0 read into a slot.
    Rd0 { dst: u16, reg: u32, clean: bool },
    /// Checked port-1 read into a slot.
    Rd1 { dst: u16, reg: u32, clean: bool },
    /// Checked port-0 write from a slot.
    Wr0 { src: u16, reg: u32, clean: bool },
    /// Checked port-1 write from a slot.
    Wr1 { src: u16, reg: u32, clean: bool },
    /// Unchecked safe-register read (either port — same semantics).
    RdFast { dst: u16, reg: u32 },
    /// Unchecked safe-register write (either port).
    WrFast { src: u16, reg: u32 },
    /// Checked array-element read at port 0, index from a slot.
    Rd0Arr { dst: u16, idx: u16, base: u32, amask: u32, clean: bool },
    /// Checked array-element read at port 1.
    Rd1Arr { dst: u16, idx: u16, base: u32, amask: u32, clean: bool },
    /// Checked array-element write at port 0.
    Wr0Arr { src: u16, idx: u16, base: u32, amask: u32, clean: bool },
    /// Checked array-element write at port 1.
    Wr1Arr { src: u16, idx: u16, base: u32, amask: u32, clean: bool },
    /// Unchecked safe array read.
    RdArrFast { dst: u16, idx: u16, base: u32, amask: u32 },
    /// Unchecked safe array write.
    WrArrFast { src: u16, idx: u16, base: u32, amask: u32 },
    /// Unconditional jump to a micro-op index.
    Jmp(u32),
    /// Jump if the slot is zero.
    Jz { cond: u16, target: u32 },
    /// Explicit rule abort.
    Abort { clean: bool },
    /// Bump a coverage counter (same ids as the bytecode's `Cov`).
    Cov(u32),
    /// Successful end of the rule.
    End,
    /// Lowering failed (stack-discipline violation in hand-built bytecode);
    /// surfaces as [`VmError::CompilerBug`].
    Trap(&'static str),

    /// Superinstruction: `slots[dst] = op(rd0(reg), slots[b])`.
    RdBin { op: FusedBin, dst: u16, reg: u32, b: u16, mask: u64, clean: bool },
    /// Superinstruction: `wr0(reg, op(slots[a], slots[b]))`.
    BinWr { op: FusedBin, a: u16, b: u16, mask: u64, reg: u32, clean: bool },
    /// Superinstruction: `wr0(wreg, op(rd0(rreg), slots[b]))` — a complete
    /// read-modify-write rule body in one micro-op.
    RdBinWr {
        op: FusedBin,
        rreg: u32,
        b: u16,
        mask: u64,
        wreg: u32,
        rclean: bool,
        wclean: bool,
    },
    /// Superinstruction: compute `op(slots[a], slots[b])` and jump if zero
    /// (a fused guard).
    BinJz { op: FusedBin, a: u16, b: u16, mask: u64, target: u32 },
    /// Superinstruction: `slots[dst] = op(fast_rd(reg), slots[b])` — the
    /// unchecked safe-register flavour of [`Uop::RdBin`].
    RdBinFast { op: FusedBin, dst: u16, reg: u32, b: u16, mask: u64 },
    /// Superinstruction: `fast_wr(reg, op(slots[a], slots[b]))`.
    BinWrFast { op: FusedBin, a: u16, b: u16, mask: u64, reg: u32 },
    /// Superinstruction: a complete safe-register read-modify-write — the
    /// whole body of a hot counter-style rule in one micro-op.
    RdBinWrFast { op: FusedBin, rreg: u32, b: u16, mask: u64, wreg: u32 },
}

impl Uop {
    /// The destination slot this micro-op writes, if any (used by the
    /// lowering's store-forwarding rewrite).
    fn dst_slot(&self) -> Option<u16> {
        match *self {
            Uop::Bin { dst, .. }
            | Uop::Not { dst, .. }
            | Uop::Neg { dst, .. }
            | Uop::Mask { dst, .. }
            | Uop::Sext { dst, .. }
            | Uop::Slice { dst, .. }
            | Uop::SliceSext { dst, .. }
            | Uop::Select { dst, .. }
            | Uop::Const { dst, .. }
            | Uop::Mov { dst, .. }
            | Uop::Rd0 { dst, .. }
            | Uop::Rd1 { dst, .. }
            | Uop::RdFast { dst, .. }
            | Uop::Rd0Arr { dst, .. }
            | Uop::Rd1Arr { dst, .. }
            | Uop::RdArrFast { dst, .. }
            | Uop::RdBin { dst, .. }
            | Uop::RdBinFast { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Redirects the destination slot (store forwarding: `expr; SetLocal`
    /// writes the expression straight into the local).
    fn set_dst_slot(&mut self, new: u16) {
        match self {
            Uop::Bin { dst, .. }
            | Uop::Not { dst, .. }
            | Uop::Neg { dst, .. }
            | Uop::Mask { dst, .. }
            | Uop::Sext { dst, .. }
            | Uop::Slice { dst, .. }
            | Uop::SliceSext { dst, .. }
            | Uop::Select { dst, .. }
            | Uop::Const { dst, .. }
            | Uop::Mov { dst, .. }
            | Uop::Rd0 { dst, .. }
            | Uop::Rd1 { dst, .. }
            | Uop::RdFast { dst, .. }
            | Uop::Rd0Arr { dst, .. }
            | Uop::Rd1Arr { dst, .. }
            | Uop::RdArrFast { dst, .. }
            | Uop::RdBin { dst, .. }
            | Uop::RdBinFast { dst, .. } => *dst = new,
            _ => unreachable!("set_dst_slot on a storeless micro-op"),
        }
    }
}

/// One rule lowered to micro-ops.
#[derive(Debug, Clone)]
pub(crate) struct TacRule {
    /// The flat, pre-decoded micro-op array.
    pub(crate) uops: Vec<Uop>,
    /// Source bytecode pc of each micro-op — the pc of the component whose
    /// failure is reported (`FailInfo.pc` stays a bytecode location).
    pub(crate) pcs: Vec<u32>,
    /// For [`Uop::RdBinWr`], the bytecode pc of the *write* component
    /// (everywhere else equal to `pcs`).
    pub(crate) pcs2: Vec<u32>,
    /// How many bytecode instructions each micro-op accounts for, keeping
    /// profiling counts on the bytecode scale.
    pub(crate) weights: Vec<u32>,
    /// Slot-file template: `[0, nlocals)` locals, then read-only constant
    /// slots (pre-filled), then temporaries.
    pub(crate) slot_init: Vec<u64>,
}

/// A whole program lowered to micro-ops, plus the mutable per-rule slot
/// files the scalar executor runs on.
#[derive(Debug)]
pub(crate) struct TacProgram {
    /// Lowered rules, in rule order.
    pub(crate) rules: Vec<TacRule>,
    /// Working slot files (clones of each rule's `slot_init`).
    pub(crate) slots: Vec<Vec<u64>>,
}

impl TacProgram {
    /// Lowers every rule of `prog`. Infallible: rules whose bytecode defies
    /// stack discipline lower to a trap body.
    pub(crate) fn lower(prog: &Program) -> TacProgram {
        let rules: Vec<TacRule> = prog.rules.iter().map(TacRule::lower).collect();
        let slots = rules.iter().map(|r| r.slot_init.clone()).collect();
        TacProgram { rules, slots }
    }
}

/// What a slot holds, tracked during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// A bytecode local: live across the whole rule.
    Local,
    /// A pre-folded constant: read-only, filled when the slot file is built.
    Const,
    /// A stack temporary: produced once, consumed once.
    Temp,
}

/// An abstract operand: what a bytecode stack entry lowered to.
#[derive(Debug, Clone, Copy)]
enum Opnd {
    /// The value lives in a slot.
    Slot(u16),
    /// The value is a compile-time constant (not yet materialized).
    Imm(u64),
}

/// A virtual stack entry: an operand plus the number of bytecode
/// instructions absorbed producing it without emitting a micro-op.
#[derive(Debug, Clone, Copy)]
struct VOp {
    k: Opnd,
    w: u32,
}

struct Lowerer<'a> {
    rule: &'a RuleCode,
    uops: Vec<Uop>,
    pcs: Vec<u32>,
    pcs2: Vec<u32>,
    weights: Vec<u32>,
    vstack: Vec<VOp>,
    kinds: Vec<SlotKind>,
    consts: Vec<(u64, u16)>,
    free_temps: Vec<u16>,
    /// Weight from instructions folded away entirely (e.g. a constant
    /// branch), attached to the next emitted micro-op.
    pending_w: u32,
    cur_pc: u32,
}

type Lower<T> = Result<T, &'static str>;

impl<'a> Lowerer<'a> {
    fn new(rule: &'a RuleCode) -> Lowerer<'a> {
        Lowerer {
            rule,
            uops: Vec::with_capacity(rule.code.len()),
            pcs: Vec::new(),
            pcs2: Vec::new(),
            weights: Vec::new(),
            vstack: Vec::new(),
            kinds: vec![SlotKind::Local; rule.nlocals as usize],
            consts: Vec::new(),
            free_temps: Vec::new(),
            pending_w: 0,
            cur_pc: 0,
        }
    }

    fn alloc_slot(&mut self, kind: SlotKind) -> Lower<u16> {
        if kind == SlotKind::Temp {
            if let Some(t) = self.free_temps.pop() {
                return Ok(t);
            }
        }
        let s = self.kinds.len();
        if s >= u16::MAX as usize {
            return Err("slot file overflow");
        }
        self.kinds.push(kind);
        Ok(s as u16)
    }

    fn const_slot(&mut self, v: u64) -> Lower<u16> {
        if let Some(&(_, s)) = self.consts.iter().find(|&&(c, _)| c == v) {
            return Ok(s);
        }
        let s = self.alloc_slot(SlotKind::Const)?;
        self.consts.push((v, s));
        Ok(s)
    }

    fn emit(&mut self, u: Uop, w: u32) {
        self.emit2(u, w, self.cur_pc);
    }

    /// Emits with an explicit secondary pc (for micro-ops with two fallible
    /// components).
    fn emit2(&mut self, u: Uop, w: u32, pc2: u32) {
        self.uops.push(u);
        self.pcs.push(self.cur_pc);
        self.pcs2.push(pc2);
        self.weights.push(w + self.pending_w);
        self.pending_w = 0;
    }

    fn pop(&mut self) -> Lower<VOp> {
        self.vstack.pop().ok_or("operand stack underflow")
    }

    /// Returns the operand as a slot, materializing constants into the
    /// read-only constant region.
    fn slot_of(&mut self, v: VOp) -> Lower<(u16, u32)> {
        match v.k {
            Opnd::Slot(s) => Ok((s, v.w)),
            Opnd::Imm(imm) => Ok((self.const_slot(imm)?, v.w)),
        }
    }

    /// Returns a consumed temporary to the free list.
    fn release(&mut self, v: VOp) {
        if let Opnd::Slot(s) = v.k {
            if self.kinds[s as usize] == SlotKind::Temp {
                self.free_temps.push(s);
            }
        }
    }

    /// Materializes any stacked reads of `slot` before it is overwritten
    /// (compiler output never needs this; hand-built bytecode might).
    fn flush_stale(&mut self, slot: u16) -> Lower<()> {
        for i in 0..self.vstack.len() {
            if let Opnd::Slot(s) = self.vstack[i].k {
                if s == slot {
                    let t = self.alloc_slot(SlotKind::Temp)?;
                    let w = self.vstack[i].w;
                    self.emit(Uop::Mov { dst: t, src: slot }, w);
                    self.vstack[i] = VOp { k: Opnd::Slot(t), w: 0 };
                }
            }
        }
        Ok(())
    }

    /// Pops the stack top into `slot` (a local), forwarding the store into
    /// the producing micro-op when it was the last one emitted.
    fn store_to(&mut self, slot: u16, w: u32) -> Lower<()> {
        let v = self.pop()?;
        self.flush_stale(slot)?;
        match v.k {
            Opnd::Imm(imm) => self.emit(Uop::Const { dst: slot, imm }, v.w + w),
            Opnd::Slot(s) => {
                let fwd = self.kinds[s as usize] == SlotKind::Temp
                    && self.uops.last().and_then(|u| u.dst_slot()) == Some(s);
                if fwd {
                    let last = self.uops.len() - 1;
                    self.uops[last].set_dst_slot(slot);
                    *self.weights.last_mut().expect("just indexed") += v.w + w + self.pending_w;
                    self.pending_w = 0;
                    self.free_temps.push(s);
                } else {
                    self.emit(Uop::Mov { dst: slot, src: s }, v.w + w);
                    self.release(v);
                }
            }
        }
        Ok(())
    }

    /// Lowers one binary stack operation through the shared fused-op
    /// evaluator (constant × constant folds completely).
    fn binop(&mut self, op: FusedBin, mask: u64) -> Lower<()> {
        let b = self.pop()?;
        let a = self.pop()?;
        if let (Opnd::Imm(x), Opnd::Imm(y)) = (a.k, b.k) {
            self.vstack.push(VOp {
                k: Opnd::Imm(fused(op, x, y, mask)),
                w: a.w + b.w + 1,
            });
            return Ok(());
        }
        let (bs, bw) = self.slot_of(b)?;
        let (as_, aw) = self.slot_of(a)?;
        let dst = self.alloc_slot(SlotKind::Temp)?;
        self.emit(Uop::Bin { op, dst, a: as_, b: bs, mask }, aw + bw + 1);
        self.release(a);
        self.release(b);
        self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
        Ok(())
    }

    /// Lowers a unary op, folding constants with `f`.
    fn unop(&mut self, f: impl FnOnce(u64) -> u64, mk: impl FnOnce(u16, u16) -> Uop) -> Lower<()> {
        let a = self.pop()?;
        if let Opnd::Imm(x) = a.k {
            self.vstack.push(VOp { k: Opnd::Imm(f(x)), w: a.w + 1 });
            return Ok(());
        }
        let (src, w) = self.slot_of(a)?;
        let dst = self.alloc_slot(SlotKind::Temp)?;
        self.emit(mk(dst, src), w + 1);
        self.release(a);
        self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
        Ok(())
    }

    /// Emits a checked/unchecked register read producing a fresh temp.
    fn read(&mut self, mk: impl FnOnce(u16) -> Uop) -> Lower<()> {
        let dst = self.alloc_slot(SlotKind::Temp)?;
        self.emit(mk(dst), 1);
        self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
        Ok(())
    }

    /// Pops the write value and emits the write micro-op.
    fn write(&mut self, mk: impl FnOnce(u16) -> Uop) -> Lower<()> {
        let v = self.pop()?;
        let (src, w) = self.slot_of(v)?;
        self.emit(mk(src), w + 1);
        self.release(v);
        Ok(())
    }

    fn lower_insn(&mut self, insn: Insn) -> Lower<()> {
        // Every plain binop routes through the shared fused evaluator.
        if let Some((op, mask)) = fusable(insn) {
            return self.binop(op, mask);
        }
        match insn {
            Insn::Const(v) => self.vstack.push(VOp { k: Opnd::Imm(v), w: 1 }),
            Insn::Local(s) => self.vstack.push(VOp { k: Opnd::Slot(s), w: 1 }),
            Insn::SetLocal(s) => self.store_to(s, 1)?,
            Insn::SetLocalK { slot, imm } => {
                self.flush_stale(slot)?;
                self.emit(Uop::Const { dst: slot, imm }, 1);
            }
            Insn::Not { mask } => {
                self.unop(|a| !a & mask, |dst, src| Uop::Not { dst, src, mask })?
            }
            Insn::Neg { mask } => self.unop(
                |a| a.wrapping_neg() & mask,
                |dst, src| Uop::Neg { dst, src, mask },
            )?,
            Insn::Mask { mask } => {
                self.unop(|a| a & mask, |dst, src| Uop::Mask { dst, src, mask })?
            }
            Insn::Sext { from, mask } => self.unop(
                |a| word::sext(from, a) & mask,
                |dst, src| Uop::Sext { dst, src, from, mask },
            )?,
            Insn::Slice { lo, mask } => {
                if lo >= 64 {
                    // Mirror the compiler's guard: everything shifted out.
                    self.unop(|_| 0, |dst, src| Uop::Mask { dst, src, mask: 0 })?
                } else {
                    self.unop(
                        |a| (a >> lo) & mask,
                        |dst, src| Uop::Slice { dst, src, lo, mask },
                    )?
                }
            }
            Insn::SliceSext { lo, from, mask } => {
                if lo >= 64 {
                    self.unop(|_| 0, |dst, src| Uop::Mask { dst, src, mask: 0 })?
                } else {
                    self.unop(
                        |a| word::sext(from, (a >> lo) & word::mask(from)) & mask,
                        |dst, src| Uop::SliceSext { dst, src, lo, from, mask },
                    )?
                }
            }
            Insn::Select => {
                let f = self.pop()?;
                let t = self.pop()?;
                let c = self.pop()?;
                if let Opnd::Imm(cv) = c.k {
                    // The branch not taken was still *evaluated* (its reads
                    // and their side effects already lowered); only its
                    // value is dropped.
                    let (taken, dropped) = if cv != 0 { (t, f) } else { (f, t) };
                    self.release(dropped);
                    self.vstack.push(VOp {
                        k: taken.k,
                        w: taken.w + c.w + dropped.w + 1,
                    });
                } else {
                    let (fs, fw) = self.slot_of(f)?;
                    let (ts, tw) = self.slot_of(t)?;
                    let (cs, cw) = self.slot_of(c)?;
                    let dst = self.alloc_slot(SlotKind::Temp)?;
                    self.emit(
                        Uop::Select { dst, c: cs, t: ts, f: fs },
                        fw + tw + cw + 1,
                    );
                    self.release(f);
                    self.release(t);
                    self.release(c);
                    self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
                }
            }
            Insn::Rd0 { reg, clean } => self.read(|dst| Uop::Rd0 { dst, reg, clean })?,
            Insn::Rd1 { reg, clean } => self.read(|dst| Uop::Rd1 { dst, reg, clean })?,
            Insn::Rd0Fast { reg } | Insn::Rd1Fast { reg } => {
                self.read(|dst| Uop::RdFast { dst, reg })?
            }
            Insn::Wr0 { reg, clean } => self.write(|src| Uop::Wr0 { src, reg, clean })?,
            Insn::Wr1 { reg, clean } => self.write(|src| Uop::Wr1 { src, reg, clean })?,
            Insn::Wr0Fast { reg } | Insn::Wr1Fast { reg } => {
                self.write(|src| Uop::WrFast { src, reg })?
            }
            Insn::LdFast { reg, slot } => {
                self.flush_stale(slot)?;
                self.emit(Uop::RdFast { dst: slot, reg }, 1);
            }
            Insn::StFast { reg, slot } => self.emit(Uop::WrFast { src: slot, reg }, 1),
            Insn::Rd0Arr { base, mask, clean } => self.arr_read(base, mask, |dst, idx| {
                Uop::Rd0Arr { dst, idx, base, amask: mask, clean }
            }, |reg| Uop::Rd0 { dst: 0, reg, clean })?,
            Insn::Rd1Arr { base, mask, clean } => self.arr_read(base, mask, |dst, idx| {
                Uop::Rd1Arr { dst, idx, base, amask: mask, clean }
            }, |reg| Uop::Rd1 { dst: 0, reg, clean })?,
            Insn::Rd0ArrFast { base, mask } | Insn::Rd1ArrFast { base, mask } => {
                self.arr_read(base, mask, |dst, idx| {
                    Uop::RdArrFast { dst, idx, base, amask: mask }
                }, |reg| Uop::RdFast { dst: 0, reg })?
            }
            Insn::Wr0Arr { base, mask, clean } => self.arr_write(base, mask, |src, idx| {
                Uop::Wr0Arr { src, idx, base, amask: mask, clean }
            }, |reg| Uop::Wr0 { src: 0, reg, clean })?,
            Insn::Wr1Arr { base, mask, clean } => self.arr_write(base, mask, |src, idx| {
                Uop::Wr1Arr { src, idx, base, amask: mask, clean }
            }, |reg| Uop::Wr1 { src: 0, reg, clean })?,
            Insn::Wr0ArrFast { base, mask } | Insn::Wr1ArrFast { base, mask } => {
                self.arr_write(base, mask, |src, idx| {
                    Uop::WrArrFast { src, idx, base, amask: mask }
                }, |reg| Uop::WrFast { src: 0, reg })?
            }
            Insn::Jmp(t) => {
                if !self.vstack.is_empty() {
                    return Err("operand stack not empty at a branch");
                }
                self.emit(Uop::Jmp(t), 1);
            }
            Insn::Jz(t) => {
                let c = self.pop()?;
                if !self.vstack.is_empty() {
                    return Err("operand stack not empty at a branch");
                }
                match c.k {
                    Opnd::Imm(0) => self.emit(Uop::Jmp(t), c.w + 1),
                    Opnd::Imm(_) => self.pending_w += c.w + 1,
                    Opnd::Slot(s) => {
                        self.emit(Uop::Jz { cond: s, target: t }, c.w + 1);
                        self.release(c);
                    }
                }
            }
            // The bytecode peephole's pre-fused forms: operands come from
            // immediates/locals instead of the stack, so these lower to a
            // plain `Bin` without touching the virtual stack (except BinRC,
            // whose left operand is stacked).
            Insn::BinRC { op, rhs, mask } => {
                let a = self.pop()?;
                if let Opnd::Imm(x) = a.k {
                    self.vstack.push(VOp { k: Opnd::Imm(fused(op, x, rhs, mask)), w: a.w + 1 });
                } else {
                    let (as_, aw) = self.slot_of(a)?;
                    let b = self.const_slot(rhs)?;
                    let dst = self.alloc_slot(SlotKind::Temp)?;
                    self.emit(Uop::Bin { op, dst, a: as_, b, mask }, aw + 1);
                    self.release(a);
                    self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
                }
            }
            Insn::BinRL { op, rhs_slot, mask } => {
                let a = self.pop()?;
                let (as_, aw) = self.slot_of(a)?;
                let dst = self.alloc_slot(SlotKind::Temp)?;
                self.emit(Uop::Bin { op, dst, a: as_, b: rhs_slot, mask }, aw + 1);
                self.release(a);
                self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
            }
            Insn::BinLL { op, a_slot, b_slot, mask } => {
                let dst = self.alloc_slot(SlotKind::Temp)?;
                self.emit(Uop::Bin { op, dst, a: a_slot, b: b_slot, mask }, 1);
                self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
            }
            Insn::BinLC { op, a_slot, rhs, mask } => {
                let b = self.const_slot(rhs)?;
                let dst = self.alloc_slot(SlotKind::Temp)?;
                self.emit(Uop::Bin { op, dst, a: a_slot, b, mask }, 1);
                self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
            }
            Insn::Abort => self.emit(Uop::Abort { clean: false }, 1),
            Insn::AbortClean => self.emit(Uop::Abort { clean: true }, 1),
            Insn::Cov(id) => self.emit(Uop::Cov(id), 1),
            Insn::End => self.emit(Uop::End, 1),
            // Every remaining opcode is a binop already handled by
            // `fusable` above.
            _ => return Err("unlowerable instruction"),
        }
        Ok(())
    }

    /// Array read with a constant-index fold to a plain register access.
    fn arr_read(
        &mut self,
        base: u32,
        amask: u32,
        mk: impl FnOnce(u16, u16) -> Uop,
        mk_direct: impl FnOnce(u32) -> Uop,
    ) -> Lower<()> {
        let idx = self.pop()?;
        if let Opnd::Imm(i) = idx.k {
            let reg = base + (i & amask as u64) as u32;
            let dst = self.alloc_slot(SlotKind::Temp)?;
            let mut u = mk_direct(reg);
            u.set_dst_slot(dst);
            self.emit(u, idx.w + 1);
            self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
            return Ok(());
        }
        let (is, iw) = self.slot_of(idx)?;
        let dst = self.alloc_slot(SlotKind::Temp)?;
        self.emit(mk(dst, is), iw + 1);
        self.release(idx);
        self.vstack.push(VOp { k: Opnd::Slot(dst), w: 0 });
        Ok(())
    }

    /// Array write with the same constant-index fold.
    fn arr_write(
        &mut self,
        base: u32,
        amask: u32,
        mk: impl FnOnce(u16, u16) -> Uop,
        mk_direct: impl FnOnce(u32) -> Uop,
    ) -> Lower<()> {
        let v = self.pop()?;
        let idx = self.pop()?;
        let (vs, vw) = self.slot_of(v)?;
        if let Opnd::Imm(i) = idx.k {
            let reg = base + (i & amask as u64) as u32;
            let u = match mk_direct(reg) {
                Uop::Wr0 { reg, clean, .. } => Uop::Wr0 { src: vs, reg, clean },
                Uop::Wr1 { reg, clean, .. } => Uop::Wr1 { src: vs, reg, clean },
                Uop::WrFast { reg, .. } => Uop::WrFast { src: vs, reg },
                _ => unreachable!("arr_write direct form is always a write"),
            };
            self.emit(u, idx.w + vw + 1);
            self.release(v);
            return Ok(());
        }
        let (is, iw) = self.slot_of(idx)?;
        self.emit(mk(vs, is), iw + vw + 1);
        self.release(v);
        self.release(idx);
        Ok(())
    }

    fn run(mut self) -> Lower<TacRule> {
        let code = &self.rule.code;
        let n = code.len();
        let mut is_target = vec![false; n + 1];
        for insn in code {
            match insn {
                Insn::Jmp(t) | Insn::Jz(t) => is_target[*t as usize] = true,
                _ => {}
            }
        }
        let mut bc2uop = vec![0u32; n + 1];
        for (pc, &insn) in code.iter().enumerate() {
            if is_target[pc] && !self.vstack.is_empty() {
                return Err("operand stack not empty at jump target");
            }
            bc2uop[pc] = self.uops.len() as u32;
            self.cur_pc = pc as u32;
            self.lower_insn(insn)?;
        }
        bc2uop[n] = self.uops.len() as u32;
        // Backstop for bytecode without a terminator: trap instead of
        // running off the end of the micro-op array.
        if !matches!(self.uops.last(), Some(Uop::End | Uop::Jmp(_) | Uop::Abort { .. })) {
            self.cur_pc = n as u32;
            self.emit(Uop::Trap("bytecode has no terminator"), 0);
        }
        // Patch branch targets from bytecode pcs to micro-op indices.
        for u in &mut self.uops {
            match u {
                Uop::Jmp(t) | Uop::Jz { target: t, .. } | Uop::BinJz { target: t, .. } => {
                    *t = bc2uop[*t as usize];
                }
                _ => {}
            }
        }
        let mut slot_init = vec![0u64; self.kinds.len()];
        for &(v, s) in &self.consts {
            slot_init[s as usize] = v;
        }
        let (uops, pcs, pcs2, weights) =
            fuse_superinstructions(self.uops, self.pcs, self.pcs2, self.weights, &self.kinds);
        Ok(TacRule { uops, pcs, pcs2, weights, slot_init })
    }
}

impl TacRule {
    /// Lowers one rule; stack-discipline violations produce a trap body
    /// instead of an error (they surface as [`VmError::CompilerBug`] only
    /// if the rule actually runs).
    pub(crate) fn lower(rule: &RuleCode) -> TacRule {
        Lowerer::new(rule).run().unwrap_or_else(|what| TacRule {
            uops: vec![Uop::Trap(what)],
            pcs: vec![0],
            pcs2: vec![0],
            weights: vec![1],
            slot_init: Vec::new(),
        })
    }
}

/// Whether `op(a, b) == op(b, a)` for all masked inputs.
fn commutes(op: FusedBin) -> bool {
    matches!(
        op,
        FusedBin::Add
            | FusedBin::Mul
            | FusedBin::And
            | FusedBin::Or
            | FusedBin::Xor
            | FusedBin::Eq
            | FusedBin::Ne
    )
}

/// The post-lowering peephole: fuses `rd0 → binop → wr0` chains (and the
/// `binop → guard` pattern) into single micro-ops, remapping branch targets
/// exactly like the bytecode peephole does. A pattern is only fused when no
/// branch lands inside it and the intermediate slots are single-use
/// temporaries.
#[allow(clippy::type_complexity)]
fn fuse_superinstructions(
    uops: Vec<Uop>,
    pcs: Vec<u32>,
    pcs2: Vec<u32>,
    weights: Vec<u32>,
    kinds: &[SlotKind],
) -> (Vec<Uop>, Vec<u32>, Vec<u32>, Vec<u32>) {
    let n = uops.len();
    let mut is_target = vec![false; n + 1];
    for u in &uops {
        match u {
            Uop::Jmp(t) | Uop::Jz { target: t, .. } | Uop::BinJz { target: t, .. } => {
                is_target[*t as usize] = true
            }
            _ => {}
        }
    }
    let is_temp = |s: u16| kinds[s as usize] == SlotKind::Temp;

    let mut out: Vec<Uop> = Vec::with_capacity(n);
    let mut opcs: Vec<u32> = Vec::with_capacity(n);
    let mut opcs2: Vec<u32> = Vec::with_capacity(n);
    let mut ow: Vec<u32> = Vec::with_capacity(n);
    let mut remap = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        remap[i] = out.len() as u32;
        // Orient a Bin so its temp input `t` sits in the `a` position.
        let oriented = |u: Uop, t: u16| -> Option<Uop> {
            if let Uop::Bin { op, dst, a, b, mask } = u {
                if a == t && b != t {
                    return Some(Uop::Bin { op, dst, a, b, mask });
                }
                if b == t && a != t && commutes(op) {
                    return Some(Uop::Bin { op, dst, a: b, b: a, mask });
                }
            }
            None
        };
        // Three micro-ops: read → binop → write (checked or fast flavour).
        if i + 2 < n && !is_target[i + 1] && !is_target[i + 2] {
            let rd = match uops[i] {
                Uop::Rd0 { dst, reg, clean } => Some((dst, reg, clean, false)),
                Uop::RdFast { dst, reg } => Some((dst, reg, false, true)),
                _ => None,
            };
            let wr = match uops[i + 2] {
                Uop::Wr0 { src, reg, clean } => Some((src, reg, clean, false)),
                Uop::WrFast { src, reg } => Some((src, reg, false, true)),
                _ => None,
            };
            // Only fuse when both ends share a flavour — a mixed pair would
            // give one side conflict checks it never had (or drop the ones
            // it did).
            if let (Some((t1, rreg, rclean, rfast)), Some((src, wreg, wclean, wfast))) = (rd, wr) {
                if rfast == wfast && is_temp(t1) {
                    if let Some(Uop::Bin { op, dst: t2, a: _, b, mask }) = oriented(uops[i + 1], t1)
                    {
                        if is_temp(t2) && t2 == src && b != t2 {
                            remap[i + 1] = out.len() as u32;
                            remap[i + 2] = out.len() as u32;
                            out.push(if rfast {
                                Uop::RdBinWrFast { op, rreg, b, mask, wreg }
                            } else {
                                Uop::RdBinWr { op, rreg, b, mask, wreg, rclean, wclean }
                            });
                            opcs.push(pcs[i]);
                            opcs2.push(pcs2[i + 2]);
                            ow.push(weights[i] + weights[i + 1] + weights[i + 2]);
                            i += 3;
                            continue;
                        }
                    }
                }
            }
        }
        // Two micro-ops.
        if i + 1 < n && !is_target[i + 1] {
            match (uops[i], uops[i + 1]) {
                // rd0 → binop.
                (Uop::Rd0 { dst: t, reg, clean }, second) if is_temp(t) => {
                    if let Some(Uop::Bin { op, dst, a: _, b, mask }) = oriented(second, t) {
                        remap[i + 1] = out.len() as u32;
                        out.push(Uop::RdBin { op, dst, reg, b, mask, clean });
                        opcs.push(pcs[i]);
                        opcs2.push(pcs2[i]);
                        ow.push(weights[i] + weights[i + 1]);
                        i += 2;
                        continue;
                    }
                }
                // fast read → binop.
                (Uop::RdFast { dst: t, reg }, second) if is_temp(t) => {
                    if let Some(Uop::Bin { op, dst, a: _, b, mask }) = oriented(second, t) {
                        remap[i + 1] = out.len() as u32;
                        out.push(Uop::RdBinFast { op, dst, reg, b, mask });
                        opcs.push(pcs[i]);
                        opcs2.push(pcs2[i]);
                        ow.push(weights[i] + weights[i + 1]);
                        i += 2;
                        continue;
                    }
                }
                // binop → wr0.
                (Uop::Bin { op, dst: t, a, b, mask }, Uop::Wr0 { src, reg, clean })
                    if is_temp(t) && t == src =>
                {
                    remap[i + 1] = out.len() as u32;
                    out.push(Uop::BinWr { op, a, b, mask, reg, clean });
                    opcs.push(pcs[i + 1]);
                    opcs2.push(pcs2[i + 1]);
                    ow.push(weights[i] + weights[i + 1]);
                    i += 2;
                    continue;
                }
                // binop → fast write.
                (Uop::Bin { op, dst: t, a, b, mask }, Uop::WrFast { src, reg })
                    if is_temp(t) && t == src =>
                {
                    remap[i + 1] = out.len() as u32;
                    out.push(Uop::BinWrFast { op, a, b, mask, reg });
                    opcs.push(pcs[i + 1]);
                    opcs2.push(pcs2[i + 1]);
                    ow.push(weights[i] + weights[i + 1]);
                    i += 2;
                    continue;
                }
                // binop → guard.
                (Uop::Bin { op, dst: t, a, b, mask }, Uop::Jz { cond, target })
                    if is_temp(t) && t == cond =>
                {
                    remap[i + 1] = out.len() as u32;
                    out.push(Uop::BinJz { op, a, b, mask, target });
                    opcs.push(pcs[i]);
                    opcs2.push(pcs2[i]);
                    ow.push(weights[i] + weights[i + 1]);
                    i += 2;
                    continue;
                }
                _ => {}
            }
        }
        out.push(uops[i]);
        opcs.push(pcs[i]);
        opcs2.push(pcs2[i]);
        ow.push(weights[i]);
        i += 1;
    }
    remap[n] = out.len() as u32;
    for u in &mut out {
        match u {
            Uop::Jmp(t) | Uop::Jz { target: t, .. } | Uop::BinJz { target: t, .. } => {
                *t = remap[*t as usize];
            }
            _ => {}
        }
    }
    (out, opcs, opcs2, ow)
}

/// Extracts the `clean` flag from a failure [`Flow`].
#[inline(always)]
fn flow_clean(f: Flow) -> bool {
    match f {
        Flow::Fail { clean } => clean,
        // The checked accessors only ever fail with `Flow::Fail`.
        _ => unreachable!("register accessors fail only with Flow::Fail"),
    }
}

/// Executes one rule through its micro-op form: the Tac counterpart of
/// [`crate::vm::step_rule_impl`], sharing the prologue/commit/rollback
/// helpers so the transactional semantics are identical at every level.
pub(crate) fn step_rule_tac(
    prog: &Program,
    tac: &TacRule,
    slots: &mut [u64],
    st: &mut State,
    rule_idx: usize,
    executed: &mut u64,
    counting: bool,
) -> Result<bool, VmError> {
    let cfg = prog.cfg;
    let rule = &prog.rules[rule_idx];
    let n = prog.init.len();
    rule_prologue(cfg, st);

    let uops = &tac.uops;
    let mut pc = 0usize;
    // `Err((clean, bytecode_pc))` on rule failure.
    let outcome: Result<(), (bool, u32)> = loop {
        if counting {
            *executed += tac.weights[pc] as u64;
        }
        match uops[pc] {
            Uop::Bin { op, dst, a, b, mask } => {
                slots[dst as usize] = fused(op, slots[a as usize], slots[b as usize], mask);
            }
            Uop::Not { dst, src, mask } => slots[dst as usize] = !slots[src as usize] & mask,
            Uop::Neg { dst, src, mask } => {
                slots[dst as usize] = slots[src as usize].wrapping_neg() & mask
            }
            Uop::Mask { dst, src, mask } => slots[dst as usize] = slots[src as usize] & mask,
            Uop::Sext { dst, src, from, mask } => {
                slots[dst as usize] = word::sext(from, slots[src as usize]) & mask
            }
            Uop::Slice { dst, src, lo, mask } => {
                slots[dst as usize] = (slots[src as usize] >> lo) & mask
            }
            Uop::SliceSext { dst, src, lo, from, mask } => {
                slots[dst as usize] =
                    word::sext(from, (slots[src as usize] >> lo) & word::mask(from)) & mask
            }
            Uop::Select { dst, c, t, f } => {
                slots[dst as usize] = if slots[c as usize] != 0 {
                    slots[t as usize]
                } else {
                    slots[f as usize]
                }
            }
            Uop::Const { dst, imm } => slots[dst as usize] = imm,
            Uop::Mov { dst, src } => slots[dst as usize] = slots[src as usize],
            Uop::Rd0 { dst, reg, clean } => match rd0_at(st, cfg, reg as usize, clean) {
                Ok(v) => slots[dst as usize] = v,
                Err(f) => break Err((flow_clean(f), tac.pcs[pc])),
            },
            Uop::Rd1 { dst, reg, clean } => match rd1_at(st, cfg, reg as usize, clean) {
                Ok(v) => slots[dst as usize] = v,
                Err(f) => break Err((flow_clean(f), tac.pcs[pc])),
            },
            Uop::Wr0 { src, reg, clean } => {
                if let Err(f) = wr0_at(st, cfg, reg as usize, slots[src as usize], clean) {
                    break Err((flow_clean(f), tac.pcs[pc]));
                }
            }
            Uop::Wr1 { src, reg, clean } => {
                if let Err(f) = wr1_at(st, cfg, reg as usize, slots[src as usize], clean) {
                    break Err((flow_clean(f), tac.pcs[pc]));
                }
            }
            Uop::RdFast { dst, reg } => slots[dst as usize] = st.log_d0[reg as usize],
            Uop::WrFast { src, reg } => st.log_d0[reg as usize] = slots[src as usize],
            Uop::Rd0Arr { dst, idx, base, amask, clean } => {
                let i = base as usize + (slots[idx as usize] & amask as u64) as usize;
                match rd0_at(st, cfg, i, clean) {
                    Ok(v) => slots[dst as usize] = v,
                    Err(f) => break Err((flow_clean(f), tac.pcs[pc])),
                }
            }
            Uop::Rd1Arr { dst, idx, base, amask, clean } => {
                let i = base as usize + (slots[idx as usize] & amask as u64) as usize;
                match rd1_at(st, cfg, i, clean) {
                    Ok(v) => slots[dst as usize] = v,
                    Err(f) => break Err((flow_clean(f), tac.pcs[pc])),
                }
            }
            Uop::Wr0Arr { src, idx, base, amask, clean } => {
                let i = base as usize + (slots[idx as usize] & amask as u64) as usize;
                if let Err(f) = wr0_at(st, cfg, i, slots[src as usize], clean) {
                    break Err((flow_clean(f), tac.pcs[pc]));
                }
            }
            Uop::Wr1Arr { src, idx, base, amask, clean } => {
                let i = base as usize + (slots[idx as usize] & amask as u64) as usize;
                if let Err(f) = wr1_at(st, cfg, i, slots[src as usize], clean) {
                    break Err((flow_clean(f), tac.pcs[pc]));
                }
            }
            Uop::RdArrFast { dst, idx, base, amask } => {
                let i = base as usize + (slots[idx as usize] & amask as u64) as usize;
                slots[dst as usize] = st.log_d0[i];
            }
            Uop::WrArrFast { src, idx, base, amask } => {
                let i = base as usize + (slots[idx as usize] & amask as u64) as usize;
                st.log_d0[i] = slots[src as usize];
            }
            Uop::Jmp(t) => {
                pc = t as usize;
                continue;
            }
            Uop::Jz { cond, target } => {
                if slots[cond as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
            Uop::Abort { clean } => {
                st.last_fail = Some(FailInfo {
                    rule: usize::MAX,
                    pc: usize::MAX,
                    reg: None,
                    cycle: u64::MAX,
                });
                break Err((clean, tac.pcs[pc]));
            }
            Uop::Cov(id) => st.cov[id as usize] += 1,
            Uop::End => break Ok(()),
            Uop::Trap(what) => {
                return Err(VmError::CompilerBug {
                    rule: rule_idx,
                    pc: tac.pcs[pc] as usize,
                    what,
                })
            }
            Uop::RdBin { op, dst, reg, b, mask, clean } => {
                match rd0_at(st, cfg, reg as usize, clean) {
                    Ok(v) => slots[dst as usize] = fused(op, v, slots[b as usize], mask),
                    Err(f) => break Err((flow_clean(f), tac.pcs[pc])),
                }
            }
            Uop::BinWr { op, a, b, mask, reg, clean } => {
                let v = fused(op, slots[a as usize], slots[b as usize], mask);
                if let Err(f) = wr0_at(st, cfg, reg as usize, v, clean) {
                    break Err((flow_clean(f), tac.pcs[pc]));
                }
            }
            Uop::RdBinWr { op, rreg, b, mask, wreg, rclean, wclean } => {
                match rd0_at(st, cfg, rreg as usize, rclean) {
                    Ok(v) => {
                        let r = fused(op, v, slots[b as usize], mask);
                        if let Err(f) = wr0_at(st, cfg, wreg as usize, r, wclean) {
                            break Err((flow_clean(f), tac.pcs2[pc]));
                        }
                    }
                    Err(f) => break Err((flow_clean(f), tac.pcs[pc])),
                }
            }
            Uop::BinJz { op, a, b, mask, target } => {
                if fused(op, slots[a as usize], slots[b as usize], mask) == 0 {
                    pc = target as usize;
                    continue;
                }
            }
            Uop::RdBinFast { op, dst, reg, b, mask } => {
                slots[dst as usize] = fused(op, st.log_d0[reg as usize], slots[b as usize], mask);
            }
            Uop::BinWrFast { op, a, b, mask, reg } => {
                st.log_d0[reg as usize] = fused(op, slots[a as usize], slots[b as usize], mask);
            }
            Uop::RdBinWrFast { op, rreg, b, mask, wreg } => {
                st.log_d0[wreg as usize] =
                    fused(op, st.log_d0[rreg as usize], slots[b as usize], mask);
            }
        }
        pc += 1;
    };

    match outcome {
        Ok(()) => {
            rule_commit(cfg, st, rule, rule_idx, n);
            Ok(true)
        }
        Err((clean, src_pc)) => {
            rule_failure(cfg, st, rule, rule_idx, src_pc as usize, clean);
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::level::OptLevel;
    use crate::vm::{Dispatch, Sim};
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;
    use koika::device::{RegAccess, SimBackend};
    use koika::tir::RegId;

    #[test]
    fn uop_is_small() {
        // The hot loop streams these from a flat array; keep them at most
        // 24 bytes like the bytecode's `Insn`.
        assert!(std::mem::size_of::<Uop>() <= 24);
    }

    fn counter_design() -> koika::tir::TDesign {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        check(&b.build()).unwrap()
    }

    #[test]
    fn lowering_shrinks_the_counter_rule() {
        for level in OptLevel::ALL {
            let prog = compile(
                &counter_design(),
                &CompileOptions { level, ..CompileOptions::default() },
            )
            .unwrap();
            let tac = TacProgram::lower(&prog);
            let bytecode_len = prog.rules[0].code.len();
            let uop_len = tac.rules[0].uops.len();
            assert!(
                uop_len < bytecode_len,
                "{level:?}: {uop_len} uops vs {bytecode_len} insns"
            );
            // The profiling weights account for every bytecode instruction
            // on the path actually taken; the straight-line counter rule
            // has a single path, so the totals must match exactly.
            let total_w: u32 = tac.rules[0].weights.iter().sum();
            assert_eq!(total_w as usize, bytecode_len, "{level:?}");
        }
    }

    #[test]
    fn tac_matches_match_dispatch_on_counter() {
        for level in OptLevel::ALL {
            let opts = CompileOptions { level, ..CompileOptions::default() };
            let mut a = Sim::compile_with(&counter_design(), &opts).unwrap();
            let mut b = Sim::compile_with(&counter_design(), &opts).unwrap();
            b.set_dispatch(Dispatch::Tac);
            for _ in 0..300 {
                a.cycle();
                b.cycle();
                assert_eq!(a.reg_values(), b.reg_values(), "{level:?}");
            }
            assert_eq!(a.rules_fired(), b.rules_fired());
        }
    }

    #[test]
    fn tac_profile_counts_match_match_dispatch() {
        let opts = CompileOptions::default();
        let mut a = Sim::compile_with(&counter_design(), &opts).unwrap();
        let mut b = Sim::compile_with(&counter_design(), &opts).unwrap();
        a.enable_profiling();
        b.set_dispatch(Dispatch::Tac);
        b.enable_profiling();
        for _ in 0..10 {
            a.cycle();
            b.cycle();
        }
        assert_eq!(
            a.profile_insns().unwrap(),
            b.profile_insns().unwrap(),
            "weights must keep Tac profiling on the bytecode scale"
        );
    }

    #[test]
    fn tac_coverage_counts_match_match_dispatch() {
        let opts = CompileOptions {
            coverage: true,
            ..CompileOptions::default()
        };
        let mut a = Sim::compile_with(&counter_design(), &opts).unwrap();
        let mut b = Sim::compile_with(&counter_design(), &opts).unwrap();
        b.set_dispatch(Dispatch::Tac);
        for _ in 0..10 {
            a.cycle();
            b.cycle();
        }
        assert!(!a.coverage_counts().is_empty());
        assert_eq!(
            a.coverage_counts(),
            b.coverage_counts(),
            "coverage points are fusion barriers; counts must be dispatch-invariant"
        );
    }

    #[test]
    fn stack_discipline_violation_traps() {
        let mut prog = compile(&counter_design(), &CompileOptions::default()).unwrap();
        prog.rules[0].code.insert(0, Insn::Add { mask: u64::MAX });
        let mut sim = Sim::new(prog);
        sim.set_dispatch(Dispatch::Tac);
        let err = sim.try_cycle().unwrap_err();
        assert!(matches!(
            err,
            VmError::CompilerBug { rule: 0, what: "operand stack underflow", .. }
        ));
    }

    #[test]
    fn concat_boundary_does_not_reappear_in_tac() {
        // A hand-built zero-width-high-half concat: the lowering folds the
        // constants through the same guarded evaluator as the VM.
        let mut prog = compile(&counter_design(), &CompileOptions::default()).unwrap();
        prog.rules[0].code = vec![
            Insn::Const(0xdead),
            Insn::Const(5),
            Insn::ConcatShift { low_width: 64, mask: u64::MAX },
            Insn::Wr0 { reg: 0, clean: false },
            Insn::End,
        ];
        let mut sim = Sim::new(prog);
        sim.set_dispatch(Dispatch::Tac);
        sim.try_cycle().unwrap();
        assert_eq!(sim.get64(RegId(0)), 5);
    }

    #[test]
    fn counter_rule_fuses_to_a_handful_of_uops() {
        // At the default (max) level the counter body is essentially one
        // read-modify-write; after fusion it must fit in very few micro-ops
        // (the commit/coverage scaffolding is all that may remain).
        let prog = compile(&counter_design(), &CompileOptions::default()).unwrap();
        let tac = TacProgram::lower(&prog);
        assert!(
            tac.rules[0].uops.len() <= 4,
            "expected a fused body, got {:?}",
            tac.rules[0].uops
        );
    }
}

