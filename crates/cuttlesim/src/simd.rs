//! Word-parallel kernels for the batched lock-step engine.
//!
//! The batch engine ([`crate::batch`]) holds state as structure-of-arrays
//! stripes (`reg * lanes + lane`). Everything an instruction does to a
//! stripe is data-parallel across lanes, so the kernels here process lanes
//! in fixed-width chunks the optimizer turns into vector code:
//!
//! * **wide data** (`u64` per lane) runs through `[u64; 4]`-shaped chunk
//!   loops over exact slices — no bounds checks inside the loop, no
//!   per-lane branches, so LLVM autovectorizes every kernel;
//! * **narrow bookkeeping** (the 4-bit read-write sets, one `u8` per lane)
//!   is *bit-sliced*: eight lanes share one `u64` word, and conflict gates
//!   are evaluated with SWAR arithmetic — a 64-lane batch answers a
//!   "which lanes pass this check?" query in eight word operations;
//! * **per-lane control divergence** is merged branchlessly: selects and
//!   commit/rollback/end-of-cycle merges expand a condition into an
//!   all-ones/all-zeros lane mask and blend with AND/OR, so the all-agree
//!   fast path never branches per lane.
//!
//! Every kernel is semantically identical to the scalar loop it replaces;
//! the boundary suite (`tests/boundary.rs`) pins the shift/mask edges
//! (widths 1/63/64, shift counts at and past the operand width) across
//! lane counts 1/7/32/64 so non-multiple-of-chunk tails are exercised.

use crate::insn::FusedBin;

/// Lane chunk width for wide (`u64`) kernels: one 256-bit vector register.
pub const CHUNK: usize = 4;

/// Lanes per word for bit-sliced (`u8` read-write-set) kernels.
pub const BYTE_LANES: usize = 8;

const LO_BYTES: u64 = 0x0101_0101_0101_0101;

/// All-ones when `c` is true, all-zeros otherwise — the branchless lane
/// mask every merge kernel blends with.
#[inline(always)]
pub fn lane_mask(c: bool) -> u64 {
    0u64.wrapping_sub(c as u64)
}

/// Branchless `if b >= 64 { 0 } else { (a << b) & mask }`.
#[inline(always)]
pub fn shl64(a: u64, b: u64, mask: u64) -> u64 {
    (a << (b & 63)) & mask & lane_mask(b < 64)
}

/// Branchless `if b >= 64 { 0 } else { a >> b }`.
#[inline(always)]
pub fn shr64(a: u64, b: u64) -> u64 {
    (a >> (b & 63)) & lane_mask(b < 64)
}

/// In-place unary map over a stripe: `dst[l] = f(dst[l])`.
#[inline(always)]
pub fn map1(dst: &mut [u64], f: impl Fn(u64) -> u64 + Copy) {
    let mut chunks = dst.chunks_exact_mut(CHUNK);
    for c in &mut chunks {
        for x in c {
            *x = f(*x);
        }
    }
    for x in chunks.into_remainder() {
        *x = f(*x);
    }
}

/// Unary map into a separate stripe: `dst[l] = f(src[l])`.
#[inline(always)]
pub fn map1_to(dst: &mut [u64], src: &[u64], f: impl Fn(u64) -> u64 + Copy) {
    assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut s = src.chunks_exact(CHUNK);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for i in 0..CHUNK {
            dc[i] = f(sc[i]);
        }
    }
    for (x, &y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x = f(y);
    }
}

/// In-place binary map: `dst[l] = f(dst[l], src[l])`.
#[inline(always)]
pub fn zip2(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64 + Copy) {
    assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut s = src.chunks_exact(CHUNK);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for i in 0..CHUNK {
            dc[i] = f(dc[i], sc[i]);
        }
    }
    for (x, &y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x = f(*x, y);
    }
}

/// Binary map into a separate stripe: `dst[l] = f(a[l], b[l])`.
#[inline(always)]
pub fn zip2_to(dst: &mut [u64], a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64 + Copy) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for ((dc, av), bv) in (&mut d).zip(&mut ac).zip(&mut bc) {
        for i in 0..CHUNK {
            dc[i] = f(av[i], bv[i]);
        }
    }
    for ((x, &y), &z) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *x = f(y, z);
    }
}

/// Branchless select: `c[l] = if c[l] != 0 { t[l] } else { f[l] }`.
#[inline(always)]
pub fn select(c: &mut [u64], t: &[u64], f: &[u64]) {
    assert_eq!(c.len(), t.len());
    assert_eq!(c.len(), f.len());
    let mut cc = c.chunks_exact_mut(CHUNK);
    let mut tc = t.chunks_exact(CHUNK);
    let mut fc = f.chunks_exact(CHUNK);
    for ((cv, tv), fv) in (&mut cc).zip(&mut tc).zip(&mut fc) {
        for i in 0..CHUNK {
            let m = lane_mask(cv[i] != 0);
            cv[i] = (tv[i] & m) | (fv[i] & !m);
        }
    }
    for ((x, &y), &z) in cc
        .into_remainder()
        .iter_mut()
        .zip(tc.remainder())
        .zip(fc.remainder())
    {
        let m = lane_mask(*x != 0);
        *x = (y & m) | (z & !m);
    }
}

/// Number of zero lanes in a stripe (branchless, chunked).
#[inline(always)]
pub fn count_zero(v: &[u64]) -> usize {
    let mut n = 0usize;
    let mut chunks = v.chunks_exact(CHUNK);
    for c in &mut chunks {
        for &x in c {
            n += (x == 0) as usize;
        }
    }
    for &x in chunks.remainder() {
        n += (x == 0) as usize;
    }
    n
}

/// Number of lanes whose read-write-set byte has none of `bits` set —
/// the all-lanes conflict gate, bit-sliced eight lanes per word.
///
/// Read-write-set bytes only use the low four bits (`R0..W1`), so the
/// per-byte "any of `bits` set?" answer folds into bit 0 with three
/// shifts, and a multiply-accumulate sums the eight indicator bytes.
#[inline(always)]
pub fn count_clear(rw: &[u8], bits: u8) -> usize {
    debug_assert!(bits & 0xF0 == 0, "rw sets use only the low nibble");
    let sel = LO_BYTES * u64::from(bits);
    let mut busy = 0usize;
    let mut words = rw.chunks_exact(BYTE_LANES);
    for w in &mut words {
        let x = u64::from_ne_bytes(w.try_into().expect("chunk is 8 bytes")) & sel;
        let ones = (x | (x >> 1) | (x >> 2) | (x >> 3)) & LO_BYTES;
        busy += (ones.wrapping_mul(LO_BYTES) >> 56) as usize;
    }
    for &b in words.remainder() {
        busy += (b & bits != 0) as usize;
    }
    rw.len() - busy
}

/// [`count_clear`] over the union of two read-write sets (`(a | b) & bits`),
/// for write gates at levels that consult both the rule and cycle logs.
#[inline(always)]
pub fn count_clear2(a: &[u8], b: &[u8], bits: u8) -> usize {
    debug_assert!(bits & 0xF0 == 0, "rw sets use only the low nibble");
    assert_eq!(a.len(), b.len());
    let sel = LO_BYTES * u64::from(bits);
    let mut busy = 0usize;
    let mut aw = a.chunks_exact(BYTE_LANES);
    let mut bw = b.chunks_exact(BYTE_LANES);
    for (av, bv) in (&mut aw).zip(&mut bw) {
        let x = (u64::from_ne_bytes(av.try_into().expect("chunk is 8 bytes"))
            | u64::from_ne_bytes(bv.try_into().expect("chunk is 8 bytes")))
            & sel;
        let ones = (x | (x >> 1) | (x >> 2) | (x >> 3)) & LO_BYTES;
        busy += (ones.wrapping_mul(LO_BYTES) >> 56) as usize;
    }
    for (&x, &y) in aw.remainder().iter().zip(bw.remainder()) {
        busy += ((x | y) & bits != 0) as usize;
    }
    a.len() - busy
}

/// ORs `bit` into every lane's read-write-set byte.
#[inline(always)]
pub fn or_bytes(rw: &mut [u8], bit: u8) {
    for b in rw {
        *b |= bit;
    }
}

/// Arithmetic shift right at `width`: `dst[l] = word::sra(width, dst[l],
/// sh[l])`, with the width-dependent work hoisted out of the lane loop.
#[inline(always)]
pub fn sra_zip2(dst: &mut [u64], sh: &[u64], width: u32) {
    if width == 0 {
        dst.fill(0);
        return;
    }
    let inv = 64 - width.min(64);
    let maxsh = u64::from(width - 1);
    let mask = u64::MAX >> (64 - width.min(64));
    zip2(dst, sh, move |a, s| {
        let s = s.min(maxsh) as u32;
        (((((a << inv) as i64) >> inv) >> s) as u64) & mask
    });
}

/// Signed less-than at `width`: `dst[l] = word::slt(width, dst[l], b[l])`.
#[inline(always)]
pub fn slt_zip2(dst: &mut [u64], b: &[u64], width: u32) {
    if width == 0 {
        dst.fill(0);
        return;
    }
    let inv = 64 - width.min(64);
    zip2(dst, b, move |a, b| {
        (((a << inv) as i64) < ((b << inv) as i64)) as u64
    });
}

/// Signed less-or-equal at `width`: `dst[l] = 1 - word::slt(width, b[l],
/// dst[l])`.
#[inline(always)]
pub fn sle_zip2(dst: &mut [u64], b: &[u64], width: u32) {
    if width == 0 {
        dst.fill(1);
        return;
    }
    let inv = 64 - width.min(64);
    zip2(dst, b, move |a, b| {
        (((b << inv) as i64) >= ((a << inv) as i64)) as u64
    });
}

/// Concatenation `{dst, b}` with `b` the `low`-bit low half, masked:
/// `dst[l] = word::concat(low, dst[l], b[l]) & mask`.
#[inline(always)]
pub fn concat_zip2(dst: &mut [u64], b: &[u64], low: u32, mask: u64) {
    let hi_keep = lane_mask(low < 64);
    let sh = low.min(63);
    zip2(dst, b, move |a, b| (((a << sh) & hi_keep) | b) & mask);
}

/// Sign-extension from `from` bits, masked: `dst[l] = word::sext(from,
/// dst[l]) & mask` with the width cases hoisted.
#[inline(always)]
pub fn sext_map1(dst: &mut [u64], from: u32, mask: u64) {
    if from == 0 {
        dst.fill(0);
    } else if from >= 64 {
        map1(dst, move |a| a & mask);
    } else {
        let sh = 64 - from;
        map1(dst, move |a| ((((a << sh) as i64) >> sh) as u64) & mask);
    }
}

/// `dst[l] = sext(from, (dst[l] >> lo) & mask(from)) & mask` — the fused
/// slice-then-sign-extend kernel.
#[inline(always)]
pub fn slice_sext_map1(dst: &mut [u64], lo: u32, from: u32, mask: u64) {
    if from == 0 {
        dst.fill(0);
        return;
    }
    let from_mask = u64::MAX >> (64 - from.min(64));
    let sh = 64 - from.min(64);
    map1(dst, move |a| {
        let v = (a >> lo) & from_mask;
        ((((v << sh) as i64) >> sh) as u64) & mask
    });
}

/// In-place unary map over an indexed stripe of one buffer:
/// `buf[d+l] = f(buf[s+l])`. The source and destination stripes may be
/// the same stripe (they are lane-aligned, so overlap is all-or-none);
/// the up-front bounds assertions let the optimizer drop per-element
/// checks and emit a runtime-disambiguated vector loop.
#[inline(always)]
pub fn map1_at(buf: &mut [u64], d: usize, s: usize, n: usize, f: impl Fn(u64) -> u64 + Copy) {
    assert!(d + n <= buf.len() && s + n <= buf.len());
    for l in 0..n {
        buf[d + l] = f(buf[s + l]);
    }
}

/// Indexed binary map within one buffer: `buf[d+l] = f(buf[a+l], buf[b+l])`.
/// Any of the three stripes may coincide (lane-aligned, all-or-none).
#[inline(always)]
pub fn zip2_at(
    buf: &mut [u64],
    d: usize,
    a: usize,
    b: usize,
    n: usize,
    f: impl Fn(u64, u64) -> u64 + Copy,
) {
    assert!(d + n <= buf.len() && a + n <= buf.len() && b + n <= buf.len());
    for l in 0..n {
        buf[d + l] = f(buf[a + l], buf[b + l]);
    }
}

/// Indexed branchless select within one buffer:
/// `buf[d+l] = if buf[c+l] != 0 { buf[t+l] } else { buf[f+l] }`.
#[inline(always)]
pub fn select_at(buf: &mut [u64], d: usize, c: usize, t: usize, f: usize, n: usize) {
    assert!(d + n <= buf.len() && c + n <= buf.len() && t + n <= buf.len() && f + n <= buf.len());
    for l in 0..n {
        let m = lane_mask(buf[c + l] != 0);
        buf[d + l] = (buf[t + l] & m) | (buf[f + l] & !m);
    }
}

/// Expands `$body` once per [`FusedBin`] operator with `$f` bound to a
/// monomorphic branchless closure implementing that operator at `mask` —
/// the operator match (and every width-dependent setup: shift guards,
/// sign-extension amounts, concat overflow) is performed once per stripe
/// instead of once per lane.
macro_rules! with_fused {
    ($op:expr, $mask:expr, |$f:ident| $body:expr) => {{
        let mask = $mask;
        match $op {
            FusedBin::Add => {
                let $f = move |a: u64, b: u64| a.wrapping_add(b) & mask;
                $body
            }
            FusedBin::Sub => {
                let $f = move |a: u64, b: u64| a.wrapping_sub(b) & mask;
                $body
            }
            FusedBin::Mul => {
                let $f = move |a: u64, b: u64| a.wrapping_mul(b) & mask;
                $body
            }
            FusedBin::And => {
                let $f = move |a: u64, b: u64| a & b;
                $body
            }
            FusedBin::Or => {
                let $f = move |a: u64, b: u64| a | b;
                $body
            }
            FusedBin::Xor => {
                let $f = move |a: u64, b: u64| a ^ b;
                $body
            }
            FusedBin::Shl => {
                let $f = move |a: u64, b: u64| shl64(a, b, mask);
                $body
            }
            FusedBin::Shr => {
                let $f = move |a: u64, b: u64| shr64(a, b);
                $body
            }
            FusedBin::Sra => {
                let width = mask.count_ones();
                if width == 0 {
                    let $f = move |_a: u64, _b: u64| 0u64;
                    $body
                } else {
                    let inv = 64 - width;
                    let maxsh = u64::from(width - 1);
                    let $f = move |a: u64, b: u64| {
                        let s = b.min(maxsh) as u32;
                        (((((a << inv) as i64) >> inv) >> s) as u64) & mask
                    };
                    $body
                }
            }
            FusedBin::Eq => {
                let $f = move |a: u64, b: u64| (a == b) as u64;
                $body
            }
            FusedBin::Ne => {
                let $f = move |a: u64, b: u64| (a != b) as u64;
                $body
            }
            FusedBin::Ult => {
                let $f = move |a: u64, b: u64| (a < b) as u64;
                $body
            }
            FusedBin::Ule => {
                let $f = move |a: u64, b: u64| (a <= b) as u64;
                $body
            }
            FusedBin::Slt => {
                let width = mask.count_ones();
                if width == 0 {
                    let $f = move |_a: u64, _b: u64| 0u64;
                    $body
                } else {
                    let inv = 64 - width;
                    let $f =
                        move |a: u64, b: u64| (((a << inv) as i64) < ((b << inv) as i64)) as u64;
                    $body
                }
            }
            FusedBin::Sle => {
                let width = mask.count_ones();
                if width == 0 {
                    let $f = move |_a: u64, _b: u64| 1u64;
                    $body
                } else {
                    let inv = 64 - width;
                    let $f =
                        move |a: u64, b: u64| (((b << inv) as i64) >= ((a << inv) as i64)) as u64;
                    $body
                }
            }
            FusedBin::Concat { low } => {
                let low = u32::from(low);
                let hi_keep = lane_mask(low < 64);
                let sh = low.min(63);
                let $f = move |a: u64, b: u64| (((a << sh) & hi_keep) | b) & mask;
                $body
            }
        }
    }};
}

/// `dst[l] = fused(op, dst[l], rhs, mask)` with the operator hoisted.
#[inline(always)]
pub fn fused_map1(op: FusedBin, mask: u64, rhs: u64, dst: &mut [u64]) {
    with_fused!(op, mask, |f| map1(dst, move |a| f(a, rhs)));
}

/// `dst[l] = fused(op, a[l], rhs, mask)`.
#[inline(always)]
pub fn fused_map1_to(op: FusedBin, mask: u64, rhs: u64, dst: &mut [u64], a: &[u64]) {
    with_fused!(op, mask, |f| map1_to(dst, a, move |x| f(x, rhs)));
}

/// `dst[l] = fused(op, dst[l], b[l], mask)`.
#[inline(always)]
pub fn fused_zip2(op: FusedBin, mask: u64, dst: &mut [u64], b: &[u64]) {
    with_fused!(op, mask, |f| zip2(dst, b, f));
}

/// `dst[l] = fused(op, a[l], b[l], mask)`.
#[inline(always)]
pub fn fused_zip2_to(op: FusedBin, mask: u64, dst: &mut [u64], a: &[u64], b: &[u64]) {
    with_fused!(op, mask, |f| zip2_to(dst, a, b, f));
}

/// `buf[d+l] = fused(op, buf[a+l], buf[b+l], mask)` — the tac slot-file
/// form, tolerant of `d` aliasing `a` or `b`.
#[inline(always)]
pub fn fused_zip2_at(op: FusedBin, mask: u64, buf: &mut [u64], d: usize, a: usize, b: usize, n: usize) {
    with_fused!(op, mask, |f| zip2_at(buf, d, a, b, n, f));
}

/// `buf[d+l] = fused(op, ext[l], buf[b+l], mask)` — first operand from an
/// external stripe (a register read), second from the slot file.
#[inline(always)]
pub fn fused_ext_buf_at(op: FusedBin, mask: u64, buf: &mut [u64], d: usize, ext: &[u64], b: usize, n: usize) {
    assert!(d + n <= buf.len() && b + n <= buf.len() && n <= ext.len());
    with_fused!(op, mask, |f| for l in 0..n {
        buf[d + l] = f(ext[l], buf[b + l]);
    });
}

/// `buf[d+l] = fused(op, buf[a+l], ext[l], mask)` — second operand from an
/// external stripe.
#[inline(always)]
pub fn fused_buf_ext_at(op: FusedBin, mask: u64, buf: &mut [u64], d: usize, a: usize, ext: &[u64], n: usize) {
    assert!(d + n <= buf.len() && a + n <= buf.len() && n <= ext.len());
    with_fused!(op, mask, |f| for l in 0..n {
        buf[d + l] = f(buf[a + l], ext[l]);
    });
}

/// Number of lanes for which `fused(op, buf[a+l], buf[b+l], mask) == 0`,
/// without materializing the result stripe (the `BinJz` gate).
#[inline(always)]
pub fn fused_count_zero_at(op: FusedBin, mask: u64, buf: &[u64], a: usize, b: usize, n: usize) -> usize {
    assert!(a + n <= buf.len() && b + n <= buf.len());
    with_fused!(op, mask, |f| {
        let mut nz = 0usize;
        for l in 0..n {
            nz += (f(buf[a + l], buf[b + l]) == 0) as usize;
        }
        nz
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::bits::word;

    #[test]
    fn shift_guards_match_scalar() {
        for b in [0u64, 1, 31, 62, 63, 64, 65, 1000, u64::MAX] {
            for a in [0u64, 1, 0xdead_beef, u64::MAX] {
                let mask = word::mask(17);
                let want_shl = if b >= 64 { 0 } else { (a << b) & mask };
                let want_shr = if b >= 64 { 0 } else { a >> b };
                assert_eq!(shl64(a, b, mask), want_shl, "shl a={a:#x} b={b}");
                assert_eq!(shr64(a, b), want_shr, "shr a={a:#x} b={b}");
            }
        }
    }

    #[test]
    fn sra_slt_sle_match_word_helpers() {
        let vals = [0u64, 1, 2, 0x7fff, 0x8000, u64::MAX >> 1, u64::MAX];
        let shifts = [0u64, 1, 15, 16, 62, 63, 64, 100];
        for width in [1u32, 2, 15, 16, 63, 64] {
            let m = word::mask(width);
            let a: Vec<u64> = vals.iter().map(|v| v & m).collect();
            for &s in &shifts {
                let mut dst = a.clone();
                sra_zip2(&mut dst, &vec![s; a.len()], width);
                for (i, &v) in a.iter().enumerate() {
                    assert_eq!(dst[i], word::sra(width, v, s), "sra w={width} v={v:#x} s={s}");
                }
            }
            for &bv in &vals {
                let b = vec![bv & m; a.len()];
                let mut slt = a.clone();
                slt_zip2(&mut slt, &b, width);
                let mut sle = a.clone();
                sle_zip2(&mut sle, &b, width);
                for (i, &v) in a.iter().enumerate() {
                    assert_eq!(slt[i], word::slt(width, v, b[i]), "slt w={width}");
                    assert_eq!(sle[i], 1 - word::slt(width, b[i], v), "sle w={width}");
                }
            }
        }
    }

    #[test]
    fn concat_and_sext_match_word_helpers() {
        let vals = [0u64, 1, 0xAAAA, u64::MAX];
        for low in [0u32, 1, 31, 63, 64] {
            for w in [1u32, 33, 64] {
                let mask = word::mask(w);
                for &a in &vals {
                    let b = vals;
                    let mut dst = vec![a; b.len()];
                    concat_zip2(&mut dst, &b, low, mask);
                    for (i, &bb) in b.iter().enumerate() {
                        assert_eq!(dst[i], word::concat(low, a, bb) & mask, "low={low} w={w}");
                    }
                }
            }
        }
        for from in [0u32, 1, 17, 63, 64] {
            for w in [1u32, 33, 64] {
                let mask = word::mask(w);
                let mut dst = vals.to_vec();
                sext_map1(&mut dst, from, mask);
                for (i, &v) in vals.iter().enumerate() {
                    assert_eq!(dst[i], word::sext(from, v) & mask, "from={from} w={w}");
                }
            }
        }
    }

    #[test]
    fn gates_count_exactly_at_every_length() {
        // Sweep lengths through and past the 8-lane word boundary so both
        // the SWAR body and the scalar tail are exercised; compare against
        // the obvious per-lane loop.
        for len in 0..=67usize {
            let rw: Vec<u8> = (0..len).map(|i| (i % 16) as u8).collect();
            let rw2: Vec<u8> = (0..len).map(|i| ((i * 7 + 3) % 16) as u8).collect();
            for bits in [0x01u8, 0x02, 0x04, 0x08, 0x0C, 0x0E, 0x0F] {
                let want = rw.iter().filter(|&&b| b & bits == 0).count();
                assert_eq!(count_clear(&rw, bits), want, "len={len} bits={bits:#x}");
                let want2 = rw
                    .iter()
                    .zip(&rw2)
                    .filter(|&(&a, &b)| (a | b) & bits == 0)
                    .count();
                assert_eq!(count_clear2(&rw, &rw2, bits), want2, "len={len} bits={bits:#x}");
            }
        }
    }

    #[test]
    fn select_is_branchless_and_exact() {
        let c0: Vec<u64> = (0..13).map(|i| (i % 3 == 0) as u64 * (i + 1)).collect();
        let t: Vec<u64> = (0..13).map(|i| 100 + i).collect();
        let f: Vec<u64> = (0..13).map(|i| 200 + i).collect();
        let mut c = c0.clone();
        select(&mut c, &t, &f);
        for i in 0..13 {
            assert_eq!(c[i], if c0[i] != 0 { t[i] } else { f[i] });
        }
    }

    #[test]
    fn fused_kernels_match_scalar_fused_at_boundary_widths() {
        use crate::insn::FusedBin;
        let ops = [
            FusedBin::Add,
            FusedBin::Sub,
            FusedBin::Mul,
            FusedBin::And,
            FusedBin::Or,
            FusedBin::Xor,
            FusedBin::Shl,
            FusedBin::Shr,
            FusedBin::Sra,
            FusedBin::Eq,
            FusedBin::Ne,
            FusedBin::Ult,
            FusedBin::Ule,
            FusedBin::Slt,
            FusedBin::Sle,
            FusedBin::Concat { low: 0 },
            FusedBin::Concat { low: 1 },
            FusedBin::Concat { low: 63 },
            FusedBin::Concat { low: 64 },
        ];
        let a: Vec<u64> = vec![0, 1, 2, 3, 62, 63, 64, 65, 0x8000, u64::MAX >> 1, u64::MAX];
        let b = {
            let mut v = a.clone();
            v.rotate_left(3);
            v
        };
        for width in [1u32, 2, 17, 63, 64] {
            let mask = word::mask(width);
            for &op in &ops {
                let want: Vec<u64> = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| crate::vm::fused(op, x & mask, y, mask))
                    .collect();
                let am: Vec<u64> = a.iter().map(|&x| x & mask).collect();

                let mut dst = am.clone();
                fused_zip2(op, mask, &mut dst, &b);
                assert_eq!(dst, want, "zip2 {op:?} w={width}");

                let mut dst = vec![0; am.len()];
                fused_zip2_to(op, mask, &mut dst, &am, &b);
                assert_eq!(dst, want, "zip2_to {op:?} w={width}");

                // Indexed forms over one buffer [a | b | out].
                let n = am.len();
                let mut buf = [am.clone(), b.clone(), vec![0; n]].concat();
                fused_zip2_at(op, mask, &mut buf, 2 * n, 0, n, n);
                assert_eq!(&buf[2 * n..], &want[..], "zip2_at {op:?} w={width}");
                fused_ext_buf_at(op, mask, &mut buf, 2 * n, &am, n, n);
                assert_eq!(&buf[2 * n..], &want[..], "ext_buf_at {op:?} w={width}");
                fused_buf_ext_at(op, mask, &mut buf, 2 * n, 0, &b, n);
                assert_eq!(&buf[2 * n..], &want[..], "buf_ext_at {op:?} w={width}");
                assert_eq!(
                    fused_count_zero_at(op, mask, &buf, 0, n, n),
                    want.iter().filter(|&&w| w == 0).count(),
                    "count_zero_at {op:?} w={width}"
                );

                // Constant-rhs forms, one rhs at a time.
                for (i, &rhs) in b.iter().enumerate() {
                    let mut dst = am.clone();
                    fused_map1(op, mask, rhs, &mut dst);
                    let w: Vec<u64> = am
                        .iter()
                        .map(|&x| crate::vm::fused(op, x, rhs, mask))
                        .collect();
                    assert_eq!(dst, w, "map1 {op:?} w={width} rhs#{i}");
                    let mut dst = vec![0; n];
                    fused_map1_to(op, mask, rhs, &mut dst, &am);
                    assert_eq!(dst, w, "map1_to {op:?} w={width} rhs#{i}");
                }
            }
        }
    }

    #[test]
    fn count_zero_counts_every_tail_shape() {
        for len in 0..=9usize {
            let v: Vec<u64> = (0..len).map(|i| (i % 2) as u64).collect();
            assert_eq!(count_zero(&v), v.iter().filter(|&&x| x == 0).count());
        }
    }
}
