//! Batched lock-step simulation: N instances of one compiled design,
//! structure-of-arrays state, one dispatch per instruction per cycle.
//!
//! Fault campaigns and fuzz sweeps run *thousands* of near-identical
//! instances of the same design; the scalar VM pays full dispatch and
//! log-bookkeeping cost for each. [`BatchSim`] amortizes those costs by
//! running `lanes` instances in lock-step over structure-of-arrays register
//! state: every flat array of the scalar [`State`](crate::vm) becomes
//! `reg[r * lanes + lane]`, and the interpreter executes each bytecode op
//! once *across the whole batch*. Rule scheduling, instruction dispatch, and
//! the optimization ladder's log-maintenance memcpys (prologue copies,
//! commit plans, rollbacks) all become single strided or contiguous
//! operations over the batch.
//!
//! # Divergence fallback
//!
//! Lanes stay in lock-step only while control flow agrees. At every
//! control-flow-relevant point — a checked register access, a conditional
//! jump — the batch tests all lanes:
//!
//! * **all lanes agree** → one batched step (the fast path);
//! * **all lanes fail** a check → one batched rule failure, with per-lane
//!   [`FailInfo`] recorded exactly as the scalar VM would;
//! * **lanes disagree** → the rule *diverges*: the engine restores the
//!   batch to its state at rule entry (a snapshot taken after the rule
//!   prologue, which is idempotent at every level) and re-runs the rule
//!   per-lane through the *exact scalar executor*
//!   ([`step_rule_impl`](crate::vm)) — only this rule, only this cycle;
//!   the next rule starts in lock-step again.
//!
//! Because the fallback path *is* the scalar semantics and the lock-step
//! path executes the same checks and side effects lane-wise, per-lane
//! architectural state and commit/failure bookkeeping are bit-identical to
//! `lanes` independent scalar [`Sim`](crate::Sim)s at every
//! [`OptLevel`](crate::OptLevel). The differential suite
//! (`tests/batched.rs`) enforces this with per-cycle commit digests.
//!
//! # Quick start
//!
//! ```
//! use koika::{ast::*, design::DesignBuilder, check};
//! use cuttlesim::batch::BatchSim;
//! use koika::tir::RegId;
//!
//! let mut b = DesignBuilder::new("counter");
//! b.reg("count", 8, 0u64);
//! b.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
//! let design = check::check(&b.build())?;
//!
//! let mut batch = BatchSim::compile(&design, 4)?;
//! batch.lane_set64(2, design.reg_id("count"), 10);
//! batch.cycle()?;
//! assert_eq!(batch.lane_get64(0, design.reg_id("count")), 1);
//! assert_eq!(batch.lane_get64(2, design.reg_id("count")), 11);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::compile::{compile, CompileError, CompileOptions, CopyPlan, Program};
use crate::insn::Insn;
use crate::simd;
use crate::simd::lane_mask;
use crate::tac::{TacRule, Uop};
use crate::vm::{step_rule_impl, Dispatch, FailInfo, State, VmError};
use koika::bits::word;
use koika::device::{BatchBackend, RegAccess};
use koika::tir::{RegId, TDesign};

const R0: u8 = 0b0001;
const R1: u8 = 0b0010;
const W0: u8 = 0b0100;
const W1: u8 = 0b1000;

/// Why a batched instruction stopped the lock-step loop.
enum BatchFlow {
    Next,
    Jump(u32),
    /// Every lane failed the same check: one batched rule failure.
    FailAll { clean: bool },
    Done,
    /// Lanes disagreed on control flow: fall back to per-lane execution.
    Diverge,
    Trap(&'static str),
}

/// Per-rule facts precomputed at construction: which flat register indices
/// the rule can write (bounding the data snapshot needed for divergence
/// restore) and the rule's coverage-counter range.
#[derive(Debug, Default)]
struct RuleMeta {
    /// Sorted, deduplicated flat register indices of every write-class
    /// instruction in the rule (array writes contribute their whole range).
    writes: Vec<u32>,
    /// Sorted, deduplicated union of the rule's checked reads and writes —
    /// the only registers whose read-write-set bytes the lock-step engine
    /// can mutate, bounding the rw-plane snapshot and the O1 commit merge.
    touched: Vec<u32>,
    /// First coverage counter id owned by this rule.
    cov_start: u32,
    /// Number of coverage counters owned by this rule.
    cov_len: u32,
}

fn rule_metas(prog: &Program) -> Vec<RuleMeta> {
    prog.rules
        .iter()
        .map(|rule| {
            let mut writes: Vec<u32> = Vec::new();
            let mut reads: Vec<u32> = Vec::new();
            let mut cov_min = u32::MAX;
            let mut cov_max = 0u32;
            for insn in &rule.code {
                match *insn {
                    Insn::Wr0 { reg, .. }
                    | Insn::Wr1 { reg, .. }
                    | Insn::Wr0Fast { reg }
                    | Insn::Wr1Fast { reg }
                    | Insn::StFast { reg, .. } => writes.push(reg),
                    Insn::Wr0Arr { base, mask, .. }
                    | Insn::Wr1Arr { base, mask, .. }
                    | Insn::Wr0ArrFast { base, mask }
                    | Insn::Wr1ArrFast { base, mask } => writes.extend(base..=base + mask),
                    Insn::Rd0 { reg, .. } | Insn::Rd1 { reg, .. } => reads.push(reg),
                    Insn::Rd0Arr { base, mask, .. } | Insn::Rd1Arr { base, mask, .. } => {
                        reads.extend(base..=base + mask);
                    }
                    Insn::Cov(id) => {
                        cov_min = cov_min.min(id);
                        cov_max = cov_max.max(id);
                    }
                    _ => {}
                }
            }
            writes.sort_unstable();
            writes.dedup();
            let mut touched = writes.clone();
            touched.extend(reads);
            touched.sort_unstable();
            touched.dedup();
            let (cov_start, cov_len) = if cov_min == u32::MAX {
                (0, 0)
            } else {
                (cov_min, cov_max - cov_min + 1)
            };
            RuleMeta {
                writes,
                touched,
                cov_start,
                cov_len,
            }
        })
        .collect()
}

/// A batched simulator: `lanes` instances of one compiled design executing
/// in lock-step over structure-of-arrays state.
///
/// All per-register arrays are laid out `reg * lanes + lane`, so one
/// register's values across the batch are contiguous — the lock-step
/// interpreter touches them as stripes, and the ladder's log-maintenance
/// copies become whole-array `memcpy`s regardless of batch width.
pub struct BatchSim {
    prog: Program,
    lanes: usize,
    // SoA architectural and log state (reg-major, `reg * lanes + lane`).
    boc: Vec<u64>,
    cyc_rw: Vec<u8>,
    log_rw: Vec<u8>,
    cyc_d0: Vec<u64>,
    cyc_d1: Vec<u64>,
    log_d0: Vec<u64>,
    log_d1: Vec<u64>,
    /// Operand stack, slot-major: slot `s` occupies
    /// `[s * lanes, (s + 1) * lanes)`. Grows on demand, never shrinks.
    stack: Vec<u64>,
    /// Local-variable slots, slot-major.
    locals: Vec<u64>,
    /// Coverage counters, id-major.
    cov: Vec<u64>,
    cycles: u64,
    // Per-lane bookkeeping (bit-identical to the scalar VM's).
    fired: Vec<u64>,
    fired_per_rule: Vec<u64>,
    fail_per_rule: Vec<u64>,
    last_fail: Vec<Option<FailInfo>>,
    /// Rules committed this cycle, per lane, in schedule order — the raw
    /// material for commit digests (the batched/scalar equivalence oracle).
    commits: Vec<Vec<u32>>,
    // Lock-step bookkeeping bases. A lock-step outcome is identical across
    // lanes by construction, so the hot arms bump one base counter instead
    // of `lanes` overlay slots; a lane's observable count is always
    // `base + overlay`, and the divergence fallback keeps bumping the
    // per-lane overlays above.
    fired_base: u64,
    fired_per_rule_base: Vec<u64>,
    fail_per_rule_base: Vec<u64>,
    /// Most recent lock-step failure (identical for every lane). Shadows
    /// the per-lane `last_fail` entries until a divergence (or a dispatch
    /// switch) materializes it into them.
    last_fail_uniform: Option<FailInfo>,
    /// This cycle's commits while every lane still agrees; the first
    /// divergence of the cycle copies it into the per-lane vectors and
    /// flips `commits_split`.
    commits_uniform: Vec<u32>,
    commits_split: bool,
    // Divergence-fallback machinery.
    rule_meta: Vec<RuleMeta>,
    /// Scalar scratch state for running diverged lanes through the exact
    /// scalar rule executor.
    scratch: State,
    // Rule-entry snapshot buffers (post-prologue). Only the rw byte plane
    // and coverage counters are ever saved — data stripes and locals are
    // recoverable without a snapshot (see `step_rule_batch_inner`).
    snap_rw: Vec<u8>,
    snap_cov: Vec<u64>,
    // Lock-step effectiveness counters.
    lockstep_rules: u64,
    fallback_rules: u64,
    // Dispatch selection (mirrors the scalar VM's).
    dispatch: Dispatch,
    /// Micro-op programs for `Dispatch::Tac` (built by `set_dispatch`).
    tac: Option<crate::tac::TacProgram>,
    /// Per-rule SoA slot files, slot-major (`slot * lanes + lane`), with
    /// constant slots pre-broadcast across all lanes.
    tac_slots: Vec<Vec<u64>>,
    /// Loaded native engine for `Dispatch::Native` (built by
    /// `set_dispatch`; shared with scalar sims via the process-wide cache).
    native: Option<std::sync::Arc<crate::native::NativeEngine>>,
    /// Per-rule SoA slot files for the batched native entry points — the
    /// same layout and lifecycle as `tac_slots` (the generated lane loops
    /// index `slot * lanes + lane` exactly like the micro-op interpreter).
    native_slots: Vec<Vec<u64>>,
}

/// Builds one SoA slot file per rule (`slot * lanes + lane`), constant
/// slots pre-broadcast across all lanes. Non-constant slots start at zero
/// and are def-before-use by construction, so the files can persist across
/// rules and cycles untouched.
fn soa_slot_files(tac: &crate::tac::TacProgram, lanes: usize) -> Vec<Vec<u64>> {
    tac.rules
        .iter()
        .map(|r| {
            let mut soa = vec![0u64; r.slot_init.len() * lanes];
            for (s, &v) in r.slot_init.iter().enumerate() {
                soa[s * lanes..(s + 1) * lanes].fill(v);
            }
            soa
        })
        .collect()
}

impl BatchSim {
    /// Compiles `design` at the maximum optimization level and instantiates
    /// a `lanes`-wide batch.
    ///
    /// # Errors
    ///
    /// Fails if the design uses values wider than 64 bits.
    pub fn compile(design: &TDesign, lanes: usize) -> Result<BatchSim, CompileError> {
        Ok(BatchSim::new(
            compile(design, &CompileOptions::default())?,
            lanes,
        ))
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Fails if the design uses values wider than 64 bits.
    pub fn compile_with(
        design: &TDesign,
        opts: &CompileOptions,
        lanes: usize,
    ) -> Result<BatchSim, CompileError> {
        Ok(BatchSim::new(compile(design, opts)?, lanes))
    }

    /// Instantiates a batch of `lanes` instances of a pre-compiled program,
    /// every lane starting from the declared initial register values.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(prog: Program, lanes: usize) -> BatchSim {
        assert!(lanes >= 1, "a batch needs at least one lane");
        let n = prog.init.len();
        let cfg = prog.cfg;
        let max_locals = prog.rules.iter().fold(0, |m, r| m.max(r.nlocals as usize));
        let nrules = prog.rules.len();
        let mut init_soa = vec![0u64; n * lanes];
        for r in 0..n {
            init_soa[r * lanes..(r + 1) * lanes].fill(prog.init[r]);
        }
        let scratch = State::for_program(&prog);
        let rule_meta = rule_metas(&prog);
        let ncov = prog.cov.len();
        BatchSim {
            lanes,
            boc: if cfg.no_boc {
                Vec::new()
            } else {
                init_soa.clone()
            },
            cyc_rw: vec![0; n * lanes],
            log_rw: vec![0; n * lanes],
            cyc_d0: init_soa.clone(),
            cyc_d1: if cfg.merged_data {
                Vec::new()
            } else {
                init_soa.clone()
            },
            log_d0: init_soa.clone(),
            log_d1: if cfg.merged_data { Vec::new() } else { init_soa },
            stack: Vec::new(),
            locals: vec![0; max_locals * lanes],
            cov: vec![0; ncov * lanes],
            cycles: 0,
            fired: vec![0; lanes],
            fired_per_rule: vec![0; nrules * lanes],
            fail_per_rule: vec![0; nrules * lanes],
            last_fail: vec![None; lanes],
            commits: vec![Vec::new(); lanes],
            fired_base: 0,
            fired_per_rule_base: vec![0; nrules],
            fail_per_rule_base: vec![0; nrules],
            last_fail_uniform: None,
            commits_uniform: Vec::new(),
            commits_split: false,
            rule_meta,
            scratch,
            snap_rw: vec![0; n * lanes],
            snap_cov: vec![0; ncov * lanes],
            lockstep_rules: 0,
            fallback_rules: 0,
            dispatch: Dispatch::default(),
            tac: None,
            tac_slots: Vec::new(),
            native: None,
            native_slots: Vec::new(),
            prog,
        }
    }

    /// Selects the instruction-dispatch strategy for the lock-step engine.
    ///
    /// [`Dispatch::Tac`] runs rules through their register-form micro-op
    /// programs, decoding each micro-op once per cycle for all lanes.
    /// [`Dispatch::Closure`] has no batched analogue (closures are built
    /// around the scalar state), so it selects the same lock-step bytecode
    /// interpreter as [`Dispatch::Match`]. [`Dispatch::Native`] runs each
    /// rule through its compiled batched entry point: straight-line lane
    /// loops with no interpreter dispatch at all — the fastest lock-step
    /// path. On divergence the native dispatch re-runs lanes through the
    /// compiled *scalar* rule functions (never a silent interpreter
    /// fallback); the interpreted dispatches re-run through the exact
    /// scalar bytecode executor. All of these are bit-identical by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if [`Dispatch::Native`] is requested and the engine cannot
    /// be built; use [`BatchSim::try_set_dispatch`] to handle that.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        if let Err(e) = self.try_set_dispatch(dispatch) {
            panic!("cannot select {} dispatch: {e}", dispatch.short_name());
        }
    }

    /// Fallible form of [`BatchSim::set_dispatch`]; only
    /// [`Dispatch::Native`] preparation can fail.
    ///
    /// # Errors
    ///
    /// [`crate::NativeError`] when the native engine cannot be emitted,
    /// built, or loaded. The previous dispatch stays selected.
    pub fn try_set_dispatch(&mut self, dispatch: Dispatch) -> Result<(), crate::NativeError> {
        if dispatch != self.dispatch {
            // The interpreted dispatches record per-lane failure info
            // directly, so a pending lock-step uniform from the native arm
            // must be materialized before it could be shadowed by stale
            // per-lane entries.
            if let Some(fi) = self.last_fail_uniform.take() {
                self.last_fail.fill(Some(fi));
            }
        }
        if dispatch == Dispatch::Native && self.native.is_none() {
            self.native = Some(crate::native::build_engine_batched(&self.prog, self.lanes)?);
            // The generated lane loops run over the same slot-file shape
            // the micro-op interpreter uses (lowering is deterministic, so
            // this matches what the engine was emitted against).
            let tac = crate::tac::TacProgram::lower(&self.prog);
            self.native_slots = soa_slot_files(&tac, self.lanes);
        }
        self.dispatch = dispatch;
        if dispatch == Dispatch::Tac && self.tac.is_none() {
            let tac = crate::tac::TacProgram::lower(&self.prog);
            self.tac_slots = soa_slot_files(&tac, self.lanes);
            self.tac = Some(tac);
        }
        Ok(())
    }

    /// The currently selected dispatch strategy.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The compiled program shared by every lane.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Cycles executed so far (identical across lanes, by construction).
    pub fn cycle_count(&self) -> u64 {
        self.cycles
    }

    /// Rules that executed fully in lock-step (all lanes together).
    pub fn lockstep_rules(&self) -> u64 {
        self.lockstep_rules
    }

    /// Rules that diverged and were re-run per-lane by the scalar executor.
    pub fn fallback_rules(&self) -> u64 {
        self.fallback_rules
    }

    /// One lane's current value of `reg` (the same observable as the scalar
    /// VM's `get64`).
    pub fn lane_get64(&self, lane: usize, reg: RegId) -> u64 {
        let i = reg.0 as usize * self.lanes + lane;
        if self.prog.cfg.no_boc {
            self.log_d0[i]
        } else {
            self.boc[i]
        }
    }

    /// Sets `reg` in one lane, masked to the register's width (the same
    /// observable as the scalar VM's `set64`). Lanes seeded with different
    /// values are exactly what exercises the divergence fallback.
    pub fn lane_set64(&mut self, lane: usize, reg: RegId, value: u64) {
        let r = reg.0 as usize;
        let i = r * self.lanes + lane;
        let v = value & word::mask(self.prog.widths[r]);
        if self.prog.cfg.no_boc {
            self.log_d0[i] = v;
            self.cyc_d0[i] = v;
        } else {
            self.boc[i] = v;
        }
    }

    /// One lane's current value of every register.
    pub fn lane_reg_values(&self, lane: usize) -> Vec<u64> {
        (0..self.prog.init.len())
            .map(|r| self.lane_get64(lane, RegId(r as u32)))
            .collect()
    }

    /// Total rules committed by one lane (lock-step base plus the lane's
    /// divergence-fallback overlay).
    pub fn lane_fired(&self, lane: usize) -> u64 {
        self.fired_base + self.fired[lane]
    }

    /// One lane's per-rule commit counts (rule-declaration order).
    pub fn lane_fired_per_rule(&self, lane: usize) -> Vec<u64> {
        (0..self.prog.rules.len())
            .map(|r| self.fired_per_rule_base[r] + self.fired_per_rule[r * self.lanes + lane])
            .collect()
    }

    /// One lane's per-rule failure counts.
    pub fn lane_fails_per_rule(&self, lane: usize) -> Vec<u64> {
        (0..self.prog.rules.len())
            .map(|r| self.fail_per_rule_base[r] + self.fail_per_rule[r * self.lanes + lane])
            .collect()
    }

    /// One lane's most recent rule failure, if any.
    pub fn lane_last_fail(&self, lane: usize) -> Option<FailInfo> {
        self.last_fail_uniform.or(self.last_fail[lane])
    }

    /// The rules one lane committed during the most recent cycle, as rule
    /// indices in schedule order — feed these to a commit-fingerprint to
    /// compare against a scalar run.
    pub fn lane_commits(&self, lane: usize) -> &[u32] {
        assert!(lane < self.lanes, "lane out of range");
        if self.commits_split {
            &self.commits[lane]
        } else {
            &self.commits_uniform
        }
    }

    /// A [`RegAccess`] view of one lane, for devices that tick against a
    /// single instance.
    pub fn lane(&mut self, lane: usize) -> BatchLane<'_> {
        assert!(lane < self.lanes, "lane out of range");
        BatchLane { sim: self, lane }
    }

    /// Runs one full cycle across every lane.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::CompilerBug`] if the bytecode violates a VM
    /// invariant (never for programs produced by
    /// [`compile`](crate::compile::compile)); the cycle is abandoned
    /// mid-way and the batch state is unspecified (but memory-safe).
    pub fn cycle(&mut self) -> Result<(), VmError> {
        // begin_cycle, vectorized.
        self.cyc_rw.fill(0);
        if self.prog.cfg.reset_on_fail {
            self.log_rw.fill(0);
        }
        // While every lane agrees the cycle's commits live in the shared
        // `commits_uniform`; the per-lane vectors (possibly stale from an
        // earlier split cycle) only become visible again after a divergence
        // re-materializes them.
        self.commits_uniform.clear();
        self.commits_split = false;
        for i in 0..self.prog.schedule.len() {
            let rule = self.prog.schedule[i];
            self.step_rule_batch(rule)?;
        }
        // end_cycle, vectorized and branchless: expand each lane's W0/W1
        // bits into full-word masks and blend — no per-element branches.
        let cfg = self.prog.cfg;
        if !cfg.no_boc {
            let d1 = if cfg.merged_data {
                &self.cyc_d0
            } else {
                &self.cyc_d1
            };
            for (((b, &rw), &v0), &v1) in self
                .boc
                .iter_mut()
                .zip(&self.cyc_rw)
                .zip(&self.cyc_d0)
                .zip(d1)
            {
                let m1 = lane_mask(rw & W1 != 0);
                let m0 = lane_mask(rw & W0 != 0) & !m1;
                *b = (v1 & m1) | (v0 & m0) | (*b & !(m0 | m1));
            }
        }
        self.cycles += 1;
        Ok(())
    }

    fn step_rule_batch(&mut self, rule_idx: usize) -> Result<(), VmError> {
        // Take the meta out so the inner method can borrow `self` freely.
        let meta = std::mem::take(&mut self.rule_meta[rule_idx]);
        let res = self.step_rule_batch_inner(rule_idx, &meta);
        self.rule_meta[rule_idx] = meta;
        res
    }

    fn step_rule_batch_inner(&mut self, rule_idx: usize, meta: &RuleMeta) -> Result<(), VmError> {
        let cfg = self.prog.cfg;
        let lanes = self.lanes;
        // The ABI v4 batched entry points are self-merging: on a unanimous
        // outcome the compiled shell already performed the commit (or
        // rollback) plane merge, so the lock-step arms below skip theirs.
        let kernel_merged = self.dispatch == Dispatch::Native;

        // Rule prologue, vectorized — this is the SoA payoff: the ladder's
        // per-rule log maintenance is a fixed number of whole-array copies
        // regardless of batch width.
        if !cfg.acc_logs {
            self.log_rw.fill(0);
        } else if !cfg.reset_on_fail {
            self.log_rw.copy_from_slice(&self.cyc_rw);
            self.log_d0.copy_from_slice(&self.cyc_d0);
            if !cfg.merged_data {
                self.log_d1.copy_from_slice(&self.cyc_d1);
            }
        }

        // Rule-entry snapshot. Almost everything the rule can clobber is
        // recoverable without one, so only two narrow saves remain:
        //
        // * `log_rw`, `reset_on_fail` levels only: stale R bits from earlier
        //   cleanly-failed rules legitimately linger in the accumulated log
        //   (they are not in `cyc_rw`), so the touched stripes must be saved
        //   — a u8 plane, 1/8th the width of a data save. At lower levels
        //   the scalar fallback's own prologue rebuilds rule-entry log state
        //   (zero-fill below `acc_logs`, a `cyc → log` copy above it), so
        //   nothing needs saving at all.
        // * `cov`: coverage counters bumped by an aborted lock-step run
        //   would double-count after the scalar re-run.
        //
        // Data stripes need no snapshot: at `reset_on_fail` levels
        // `log_d0/log_d1 == cyc_d0/cyc_d1` at every rule boundary (commits
        // copy log → cyc on the footprint, unclean failures roll back
        // cyc → log, clean failures touch no data), so the divergence path
        // restores from `cyc_*` directly. Locals are not snapshotted either:
        // every `Local` read is dominated by a `SetLocal` from the same
        // invocation (Kôika `let` scoping compiles the binding's store
        // before any use, including across `Jz` joins), so values clobbered
        // by an aborted lock-step run are never observed by the scalar
        // re-run — the same def-before-use argument that lets `tac_slots`
        // skip restoration.
        if cfg.reset_on_fail {
            for &r in &meta.touched {
                let s = r as usize * lanes;
                self.snap_rw[s..s + lanes].copy_from_slice(&self.log_rw[s..s + lanes]);
            }
        }
        for c in 0..meta.cov_len as usize {
            let s = (meta.cov_start as usize + c) * lanes;
            self.snap_cov[s..s + lanes].copy_from_slice(&self.cov[s..s + lanes]);
        }

        // Lock-step execution: compiled-native, micro-op, or bytecode form,
        // per dispatch.
        let outcome = if self.dispatch == Dispatch::Native {
            // The compiled batched entry point: straight-line lane loops,
            // no interpreter dispatch. It returns the scalar outcome
            // protocol extended with 6 = divergence; unanimous outcomes
            // feed the shared commit/failure arms below, divergence the
            // shared per-lane fallback. Only the bare function pointer is
            // copied out — the hot path never touches the `Arc` refcount.
            let f = self
                .native
                .as_ref()
                .expect("set_dispatch built the native engine")
                .batch_fn(rule_idx);
            let mut slots = std::mem::take(&mut self.native_slots[rule_idx]);
            let mut ctx = crate::native::NativeBatchCtx {
                boc: self.boc.as_mut_ptr(),
                cyc_rw: self.cyc_rw.as_mut_ptr(),
                log_rw: self.log_rw.as_mut_ptr(),
                cyc_d0: self.cyc_d0.as_mut_ptr(),
                cyc_d1: self.cyc_d1.as_mut_ptr(),
                log_d0: self.log_d0.as_mut_ptr(),
                log_d1: self.log_d1.as_mut_ptr(),
                cov: self.cov.as_mut_ptr(),
                slots: slots.as_mut_ptr(),
                lanes,
                fail_reg: 0,
                pad: 0,
            };
            // Every plane pointer covers the full `reg * lanes` SoA array
            // of the program the engine was built from (planes the level
            // leaves empty are never dereferenced — the emitter baked the
            // level in), `slots` was sized by the same lowering, and the
            // engine was built for exactly `self.lanes` lanes.
            let ret = crate::native::run_rule_batch_native(f, &mut ctx);
            let fail_reg = ctx.fail_reg;
            self.native_slots[rule_idx] = slots;
            let code = ret & 0xff;
            let payload = (ret >> 8) as usize;
            let cycle = self.cycles;
            match code {
                0 => Some(Ok(())),
                1 | 2 => {
                    self.last_fail_uniform = Some(FailInfo {
                        rule: rule_idx,
                        pc: payload,
                        reg: Some(RegId(fail_reg)),
                        cycle,
                    });
                    Some(Err(code == 2))
                }
                3 | 4 => {
                    self.last_fail_uniform = Some(FailInfo {
                        rule: rule_idx,
                        pc: payload,
                        reg: None,
                        cycle,
                    });
                    Some(Err(code == 4))
                }
                6 => None,
                5 => {
                    let engine = self.native.as_ref().expect("checked above");
                    let (pc, what) = engine.trap(payload);
                    return Err(VmError::CompilerBug { rule: rule_idx, pc: pc as usize, what });
                }
                7 => {
                    return Err(VmError::CompilerBug {
                        rule: rule_idx,
                        pc: 0,
                        what: "batched entry point rejected the lane count",
                    })
                }
                _ => {
                    return Err(VmError::CompilerBug {
                        rule: rule_idx,
                        pc: 0,
                        what: "native batch rule returned an invalid status code",
                    })
                }
            }
        } else if self.dispatch == Dispatch::Tac {
            let tac = self.tac.take().expect("set_dispatch prepared the micro-op programs");
            let mut slots = std::mem::take(&mut self.tac_slots[rule_idx]);
            let out = self.run_uops_batch(&tac.rules[rule_idx], &mut slots, rule_idx);
            self.tac_slots[rule_idx] = slots;
            self.tac = Some(tac);
            out?
        } else {
            let mut pc = 0usize;
            let mut sp = 0usize;
            loop {
                let insn = self.prog.rules[rule_idx].code[pc];
                match self.exec_batch_insn(insn, &mut sp, rule_idx, pc) {
                    BatchFlow::Next => pc += 1,
                    BatchFlow::Jump(t) => pc = t as usize,
                    BatchFlow::FailAll { clean } => break Some(Err(clean)),
                    BatchFlow::Done => break Some(Ok(())),
                    BatchFlow::Diverge => break None,
                    BatchFlow::Trap(what) => {
                        return Err(VmError::CompilerBug {
                            rule: rule_idx,
                            pc,
                            what,
                        })
                    }
                }
            }
        };

        match outcome {
            Some(Ok(())) => {
                // Batched commit.
                self.lockstep_rules += 1;
                let BatchSim {
                    prog,
                    cyc_rw,
                    log_rw,
                    cyc_d0,
                    log_d0,
                    cyc_d1,
                    log_d1,
                    ..
                } = self;
                if kernel_merged {
                    // Plane merge already done by the compiled shell.
                } else if !cfg.acc_logs {
                    // The prologue zeroed `log_rw`, so only the rule's own
                    // touched registers can carry bits — merge just those
                    // stripes, branchlessly.
                    for &r in &meta.touched {
                        let s = r as usize * lanes;
                        let lrw = &log_rw[s..s + lanes];
                        for (c, &rl) in cyc_rw[s..s + lanes].iter_mut().zip(lrw) {
                            *c |= rl;
                        }
                        if cfg.merged_data {
                            for ((c, &d), &rl) in cyc_d0[s..s + lanes]
                                .iter_mut()
                                .zip(&log_d0[s..s + lanes])
                                .zip(lrw)
                            {
                                let m = lane_mask(rl & (W0 | W1) != 0);
                                *c = (d & m) | (*c & !m);
                            }
                        } else {
                            for ((c, &d), &rl) in cyc_d0[s..s + lanes]
                                .iter_mut()
                                .zip(&log_d0[s..s + lanes])
                                .zip(lrw)
                            {
                                let m = lane_mask(rl & W0 != 0);
                                *c = (d & m) | (*c & !m);
                            }
                            for ((c, &d), &rl) in cyc_d1[s..s + lanes]
                                .iter_mut()
                                .zip(&log_d1[s..s + lanes])
                                .zip(lrw)
                            {
                                let m = lane_mask(rl & W1 != 0);
                                *c = (d & m) | (*c & !m);
                            }
                        }
                    }
                } else {
                    match &prog.rules[rule_idx].commit {
                        CopyPlan::Full => {
                            cyc_rw.copy_from_slice(log_rw);
                            cyc_d0.copy_from_slice(log_d0);
                            if !cfg.merged_data {
                                cyc_d1.copy_from_slice(log_d1);
                            }
                        }
                        CopyPlan::Footprint { rw, data } => {
                            for &r in rw {
                                let s = r as usize * lanes;
                                cyc_rw[s..s + lanes].copy_from_slice(&log_rw[s..s + lanes]);
                            }
                            for &r in data {
                                let s = r as usize * lanes;
                                cyc_d0[s..s + lanes].copy_from_slice(&log_d0[s..s + lanes]);
                                if !cfg.merged_data {
                                    cyc_d1[s..s + lanes].copy_from_slice(&log_d1[s..s + lanes]);
                                }
                            }
                        }
                    }
                }
                self.fired_base += 1;
                self.fired_per_rule_base[rule_idx] += 1;
                if self.commits_split {
                    for c in &mut self.commits {
                        c.push(rule_idx as u32);
                    }
                } else {
                    self.commits_uniform.push(rule_idx as u32);
                }
                Ok(())
            }
            Some(Err(clean)) => {
                // Batched failure: every lane failed the same check.
                // `exec_batch_insn` already recorded per-lane FailInfo
                // (the native arm set the lock-step uniform instead).
                self.lockstep_rules += 1;
                self.fail_per_rule_base[rule_idx] += 1;
                if cfg.reset_on_fail && !clean && !kernel_merged {
                    let BatchSim {
                        prog,
                        cyc_rw,
                        log_rw,
                        cyc_d0,
                        log_d0,
                        cyc_d1,
                        log_d1,
                        ..
                    } = self;
                    match &prog.rules[rule_idx].rollback {
                        CopyPlan::Full => {
                            log_rw.copy_from_slice(cyc_rw);
                            log_d0.copy_from_slice(cyc_d0);
                            if !cfg.merged_data {
                                log_d1.copy_from_slice(cyc_d1);
                            }
                        }
                        CopyPlan::Footprint { rw, data } => {
                            for &r in rw {
                                let s = r as usize * lanes;
                                log_rw[s..s + lanes].copy_from_slice(&cyc_rw[s..s + lanes]);
                            }
                            for &r in data {
                                let s = r as usize * lanes;
                                log_d0[s..s + lanes].copy_from_slice(&cyc_d0[s..s + lanes]);
                                if !cfg.merged_data {
                                    log_d1[s..s + lanes].copy_from_slice(&cyc_d1[s..s + lanes]);
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            None => {
                // Divergence: restore to rule entry and re-run every lane
                // through the exact scalar executor. Below `reset_on_fail`
                // the scalar prologue rebuilds rule-entry log state itself,
                // so only the `reset_on_fail` levels restore anything: the
                // saved rw stripes, and data stripes straight from `cyc_*`
                // (equal to the log at rule entry — see the snapshot
                // comment above).
                self.fallback_rules += 1;
                // Materialize the lock-step bookkeeping the per-lane
                // executors are about to diverge from: the shared commit
                // list becomes per-lane vectors, and a pending uniform
                // failure is written through so `scatter_lane` can overlay
                // fresher per-lane failures on top of it.
                if !self.commits_split {
                    let BatchSim {
                        commits,
                        commits_uniform,
                        ..
                    } = self;
                    for c in commits.iter_mut() {
                        c.clear();
                        c.extend_from_slice(commits_uniform);
                    }
                    self.commits_split = true;
                }
                if let Some(fi) = self.last_fail_uniform.take() {
                    self.last_fail.fill(Some(fi));
                }
                if cfg.reset_on_fail {
                    for &r in &meta.touched {
                        let s = r as usize * lanes;
                        self.log_rw[s..s + lanes].copy_from_slice(&self.snap_rw[s..s + lanes]);
                    }
                    for &r in &meta.writes {
                        let s = r as usize * lanes;
                        self.log_d0[s..s + lanes].copy_from_slice(&self.cyc_d0[s..s + lanes]);
                        if !cfg.merged_data {
                            self.log_d1[s..s + lanes]
                                .copy_from_slice(&self.cyc_d1[s..s + lanes]);
                        }
                    }
                }
                for c in 0..meta.cov_len as usize {
                    let s = (meta.cov_start as usize + c) * lanes;
                    self.cov[s..s + lanes].copy_from_slice(&self.snap_cov[s..s + lanes]);
                }
                let mut executed = 0u64;
                if self.dispatch == Dispatch::Native {
                    // Native stays native: diverged lanes re-run through
                    // the compiled scalar rule functions (the scalar
                    // re-prologue inside is idempotent at every level).
                    let engine = std::sync::Arc::clone(
                        self.native.as_ref().expect("set_dispatch built the native engine"),
                    );
                    for l in 0..lanes {
                        self.gather_lane(l);
                        let committed = crate::native::step_rule_native(
                            &self.prog,
                            &engine,
                            &mut self.scratch,
                            rule_idx,
                            &mut executed,
                            false,
                        )?;
                        self.scatter_lane(l, rule_idx, committed);
                    }
                } else {
                    for l in 0..lanes {
                        self.gather_lane(l);
                        let committed = step_rule_impl(
                            &self.prog,
                            &mut self.scratch,
                            rule_idx,
                            None,
                            &mut executed,
                            false,
                        )?;
                        self.scatter_lane(l, rule_idx, committed);
                    }
                }
                Ok(())
            }
        }
    }

    /// Copies one lane's column of every array into the scalar scratch
    /// state.
    fn gather_lane(&mut self, l: usize) {
        let lanes = self.lanes;
        let BatchSim {
            boc,
            cyc_rw,
            log_rw,
            cyc_d0,
            cyc_d1,
            log_d0,
            log_d1,
            locals,
            cov,
            scratch,
            last_fail,
            cycles,
            ..
        } = self;
        // Strided column reads via `step_by` zips: no bounds checks, no
        // per-element index arithmetic. `get(l..)` keeps the arrays that a
        // level leaves empty (`boc`, `cyc_d1`) safe to slice at any lane.
        macro_rules! gather {
            ($dst:expr, $src:expr) => {
                for (dst, &src) in $dst
                    .iter_mut()
                    .zip($src.get(l..).unwrap_or(&[]).iter().step_by(lanes))
                {
                    *dst = src;
                }
            };
        }
        gather!(scratch.boc, boc);
        gather!(scratch.cyc_rw, cyc_rw);
        gather!(scratch.log_rw, log_rw);
        gather!(scratch.cyc_d0, cyc_d0);
        gather!(scratch.cyc_d1, cyc_d1);
        gather!(scratch.log_d0, log_d0);
        gather!(scratch.log_d1, log_d1);
        gather!(scratch.locals, locals);
        gather!(scratch.cov, cov);
        scratch.stack.clear();
        scratch.cycles = *cycles;
        scratch.last_fail = last_fail[l];
    }

    /// Copies the scalar scratch state back into one lane's column and
    /// updates the lane's commit/failure bookkeeping.
    fn scatter_lane(&mut self, l: usize, rule_idx: usize, committed: bool) {
        let lanes = self.lanes;
        {
            let BatchSim {
                cyc_rw,
                log_rw,
                cyc_d0,
                cyc_d1,
                log_d0,
                log_d1,
                locals,
                cov,
                scratch,
                last_fail,
                ..
            } = self;
            // `boc` is read-only during a rule: no need to scatter it back.
            macro_rules! scatter {
                ($src:expr, $dst:expr) => {
                    for (&src, dst) in $src
                        .iter()
                        .zip($dst.get_mut(l..).unwrap_or(&mut []).iter_mut().step_by(lanes))
                    {
                        *dst = src;
                    }
                };
            }
            scatter!(scratch.cyc_rw, cyc_rw);
            scatter!(scratch.log_rw, log_rw);
            scatter!(scratch.cyc_d0, cyc_d0);
            scatter!(scratch.cyc_d1, cyc_d1);
            scatter!(scratch.log_d0, log_d0);
            scatter!(scratch.log_d1, log_d1);
            scatter!(scratch.locals, locals);
            scatter!(scratch.cov, cov);
            last_fail[l] = scratch.last_fail;
        }
        if committed {
            self.fired[l] += 1;
            self.fired_per_rule[rule_idx * lanes + l] += 1;
            self.commits[l].push(rule_idx as u32);
        } else {
            self.fail_per_rule[rule_idx * lanes + l] += 1;
        }
    }

    /// Executes one instruction across every lane. Returns `Diverge` the
    /// moment lanes disagree on control flow, leaving batch state to be
    /// discarded by the caller's rule-entry restore.
    #[allow(clippy::too_many_lines)]
    #[inline(always)]
    fn exec_batch_insn(
        &mut self,
        insn: Insn,
        sp: &mut usize,
        rule_idx: usize,
        pc: usize,
    ) -> BatchFlow {
        let cfg = self.prog.cfg;
        let cycle = self.cycles;
        let BatchSim {
            lanes,
            stack,
            boc,
            cyc_rw,
            log_rw,
            cyc_d0,
            log_d0,
            log_d1,
            locals,
            cov,
            last_fail,
            ..
        } = self;
        let lanes = *lanes;

        // Ensures the stack can hold one more stripe.
        macro_rules! grow {
            () => {
                if stack.len() < (*sp + 1) * lanes {
                    stack.resize((*sp + 1) * lanes, 0);
                }
            };
        }
        macro_rules! need {
            ($k:expr) => {
                if *sp < $k {
                    return BatchFlow::Trap("operand stack underflow");
                }
            };
        }
        // The top two stripes as exact (dst, src) subslices — adjacent on
        // the stack, so one `split_at_mut` yields both without overlap.
        macro_rules! top2 {
            () => {{
                need!(2);
                let base = (*sp - 2) * lanes;
                stack[base..base + 2 * lanes].split_at_mut(lanes)
            }};
        }
        // Binary op over the top two stripes via the chunked SIMD kernels;
        // result replaces the lower stripe.
        macro_rules! vbin {
            (|$a:ident, $b:ident| $body:expr) => {{
                let (d, s) = top2!();
                simd::zip2(d, s, |$a, $b| $body);
                *sp -= 1;
                BatchFlow::Next
            }};
        }
        // Binary op through a dedicated width-hoisted kernel.
        macro_rules! vbin_kern {
            ($kern:expr) => {{
                let (d, s) = top2!();
                $kern(d, s);
                *sp -= 1;
                BatchFlow::Next
            }};
        }
        // Unary op over the top stripe, in place, chunked.
        macro_rules! vun {
            (|$a:ident| $body:expr) => {{
                need!(1);
                let base = (*sp - 1) * lanes;
                simd::map1(&mut stack[base..base + lanes], |$a| $body);
                BatchFlow::Next
            }};
        }

        match insn {
            Insn::Const(v) => {
                grow!();
                stack[*sp * lanes..(*sp + 1) * lanes].fill(v);
                *sp += 1;
                BatchFlow::Next
            }
            Insn::Local(s) => {
                grow!();
                let (src, dst) = (s as usize * lanes, *sp * lanes);
                stack[dst..dst + lanes].copy_from_slice(&locals[src..src + lanes]);
                *sp += 1;
                BatchFlow::Next
            }
            Insn::SetLocal(s) => {
                need!(1);
                let (src, dst) = ((*sp - 1) * lanes, s as usize * lanes);
                locals[dst..dst + lanes].copy_from_slice(&stack[src..src + lanes]);
                *sp -= 1;
                BatchFlow::Next
            }
            Insn::Add { mask } => vbin!(|a, b| a.wrapping_add(b) & mask),
            Insn::Sub { mask } => vbin!(|a, b| a.wrapping_sub(b) & mask),
            Insn::Mul { mask } => vbin!(|a, b| a.wrapping_mul(b) & mask),
            Insn::And => vbin!(|a, b| a & b),
            Insn::Or => vbin!(|a, b| a | b),
            Insn::Xor => vbin!(|a, b| a ^ b),
            Insn::Shl { mask } => vbin!(|a, b| simd::shl64(a, b, mask)),
            Insn::Shr => vbin!(|a, b| simd::shr64(a, b)),
            Insn::Sra { width } => vbin_kern!(|d, s| simd::sra_zip2(d, s, width)),
            Insn::Eq => vbin!(|a, b| (a == b) as u64),
            Insn::Ne => vbin!(|a, b| (a != b) as u64),
            Insn::Ult => vbin!(|a, b| (a < b) as u64),
            Insn::Ule => vbin!(|a, b| (a <= b) as u64),
            Insn::Slt { width } => vbin_kern!(|d, s| simd::slt_zip2(d, s, width)),
            Insn::Sle { width } => vbin_kern!(|d, s| simd::sle_zip2(d, s, width)),
            Insn::ConcatShift { low_width, mask } => {
                vbin_kern!(|d, s| simd::concat_zip2(d, s, low_width, mask))
            }
            Insn::Not { mask } => vun!(|a| !a & mask),
            Insn::Neg { mask } => vun!(|a| a.wrapping_neg() & mask),
            Insn::Mask { mask } => vun!(|a| a & mask),
            Insn::Sext { from, mask } => {
                need!(1);
                let base = (*sp - 1) * lanes;
                simd::sext_map1(&mut stack[base..base + lanes], from, mask);
                BatchFlow::Next
            }
            Insn::Slice { lo, mask } => vun!(|a| (a >> lo) & mask),
            Insn::SliceSext { lo, from, mask } => {
                need!(1);
                let base = (*sp - 1) * lanes;
                simd::slice_sext_map1(&mut stack[base..base + lanes], lo, from, mask);
                BatchFlow::Next
            }
            Insn::Select => {
                // Pure data selection: no divergence regardless of lanes'
                // conditions — a branchless mask blend.
                need!(3);
                let cbase = (*sp - 3) * lanes;
                let (c, tf) = stack[cbase..cbase + 3 * lanes].split_at_mut(lanes);
                let (t, f) = tf.split_at(lanes);
                simd::select(c, t, f);
                *sp -= 2;
                BatchFlow::Next
            }
            Insn::Rd0 { reg, clean } => {
                let s = reg as usize * lanes;
                let chk = if cfg.acc_logs {
                    &log_rw[s..s + lanes]
                } else {
                    &cyc_rw[s..s + lanes]
                };
                let npass = simd::count_clear(chk, W0 | W1);
                if npass == 0 {
                    last_fail.fill(Some(FailInfo {
                        rule: rule_idx,
                        pc,
                        reg: Some(RegId(reg)),
                        cycle,
                    }));
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                grow!();
                let dst = *sp * lanes;
                if !cfg.design_specific {
                    simd::or_bytes(&mut log_rw[s..s + lanes], R0);
                }
                let src = if cfg.no_boc {
                    &log_d0[s..s + lanes]
                } else {
                    &boc[s..s + lanes]
                };
                stack[dst..dst + lanes].copy_from_slice(src);
                *sp += 1;
                BatchFlow::Next
            }
            Insn::Rd1 { reg, clean } => {
                let s = reg as usize * lanes;
                let chk = if cfg.acc_logs {
                    &log_rw[s..s + lanes]
                } else {
                    &cyc_rw[s..s + lanes]
                };
                let npass = simd::count_clear(chk, W1);
                if npass == 0 {
                    last_fail.fill(Some(FailInfo {
                        rule: rule_idx,
                        pc,
                        reg: Some(RegId(reg)),
                        cycle,
                    }));
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                grow!();
                let dst = *sp * lanes;
                simd::or_bytes(&mut log_rw[s..s + lanes], R1);
                let out = &mut stack[dst..dst + lanes];
                let ld0 = &log_d0[s..s + lanes];
                if cfg.no_boc {
                    out.copy_from_slice(ld0);
                } else {
                    // Branchless forwarding: a rule-log write-0 shadows the
                    // cycle log, which shadows the beginning-of-cycle value.
                    let lrw = &log_rw[s..s + lanes];
                    let bo = &boc[s..s + lanes];
                    if cfg.acc_logs {
                        for (((o, &w), &d), &b) in
                            out.iter_mut().zip(lrw).zip(ld0).zip(bo)
                        {
                            let m = lane_mask(w & W0 != 0);
                            *o = (d & m) | (b & !m);
                        }
                    } else {
                        let crw = &cyc_rw[s..s + lanes];
                        let cd0 = &cyc_d0[s..s + lanes];
                        for (((((o, &w), &d), &b), &cw), &cd) in out
                            .iter_mut()
                            .zip(lrw)
                            .zip(ld0)
                            .zip(bo)
                            .zip(crw)
                            .zip(cd0)
                        {
                            let m0 = lane_mask(w & W0 != 0);
                            let m1 = lane_mask(cw & W0 != 0);
                            *o = (d & m0) | (((cd & m1) | (b & !m1)) & !m0);
                        }
                    }
                }
                *sp += 1;
                BatchFlow::Next
            }
            Insn::Wr0 { reg, clean } => {
                need!(1);
                let s = reg as usize * lanes;
                let npass = if cfg.acc_logs {
                    simd::count_clear(&log_rw[s..s + lanes], R1 | W0 | W1)
                } else {
                    simd::count_clear2(&log_rw[s..s + lanes], &cyc_rw[s..s + lanes], R1 | W0 | W1)
                };
                if npass == 0 {
                    last_fail.fill(Some(FailInfo {
                        rule: rule_idx,
                        pc,
                        reg: Some(RegId(reg)),
                        cycle,
                    }));
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                let vbase = (*sp - 1) * lanes;
                simd::or_bytes(&mut log_rw[s..s + lanes], W0);
                log_d0[s..s + lanes].copy_from_slice(&stack[vbase..vbase + lanes]);
                *sp -= 1;
                BatchFlow::Next
            }
            Insn::Wr1 { reg, clean } => {
                need!(1);
                let s = reg as usize * lanes;
                let npass = if cfg.acc_logs {
                    simd::count_clear(&log_rw[s..s + lanes], W1)
                } else {
                    simd::count_clear2(&log_rw[s..s + lanes], &cyc_rw[s..s + lanes], W1)
                };
                if npass == 0 {
                    last_fail.fill(Some(FailInfo {
                        rule: rule_idx,
                        pc,
                        reg: Some(RegId(reg)),
                        cycle,
                    }));
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                let vbase = (*sp - 1) * lanes;
                simd::or_bytes(&mut log_rw[s..s + lanes], W1);
                let dst = if cfg.merged_data {
                    &mut log_d0[s..s + lanes]
                } else {
                    &mut log_d1[s..s + lanes]
                };
                dst.copy_from_slice(&stack[vbase..vbase + lanes]);
                *sp -= 1;
                BatchFlow::Next
            }
            Insn::Rd0Fast { reg } | Insn::Rd1Fast { reg } => {
                grow!();
                let (src, dst) = (reg as usize * lanes, *sp * lanes);
                stack[dst..dst + lanes].copy_from_slice(&log_d0[src..src + lanes]);
                *sp += 1;
                BatchFlow::Next
            }
            Insn::Wr0Fast { reg } | Insn::Wr1Fast { reg } => {
                need!(1);
                let (src, dst) = ((*sp - 1) * lanes, reg as usize * lanes);
                log_d0[dst..dst + lanes].copy_from_slice(&stack[src..src + lanes]);
                *sp -= 1;
                BatchFlow::Next
            }
            Insn::Rd0Arr { base, mask, clean } => {
                need!(1);
                let ibase = (*sp - 1) * lanes;
                let mut npass = 0usize;
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    let check = if cfg.acc_logs { log_rw[i] } else { cyc_rw[i] };
                    if check & (W0 | W1) == 0 {
                        npass += 1;
                    }
                }
                if npass == 0 {
                    for (l, lf) in last_fail.iter_mut().enumerate() {
                        let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                        *lf = Some(FailInfo {
                            rule: rule_idx,
                            pc,
                            reg: Some(RegId(r as u32)),
                            cycle,
                        });
                    }
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                // Replace the index stripe with the value stripe in place.
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    if !cfg.design_specific {
                        log_rw[i] |= R0;
                    }
                    stack[ibase + l] = if cfg.no_boc { log_d0[i] } else { boc[i] };
                }
                BatchFlow::Next
            }
            Insn::Rd1Arr { base, mask, clean } => {
                need!(1);
                let ibase = (*sp - 1) * lanes;
                let mut npass = 0usize;
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    let check = if cfg.acc_logs { log_rw[i] } else { cyc_rw[i] };
                    if check & W1 == 0 {
                        npass += 1;
                    }
                }
                if npass == 0 {
                    for (l, lf) in last_fail.iter_mut().enumerate() {
                        let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                        *lf = Some(FailInfo {
                            rule: rule_idx,
                            pc,
                            reg: Some(RegId(r as u32)),
                            cycle,
                        });
                    }
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    log_rw[i] |= R1;
                    stack[ibase + l] = if cfg.no_boc || log_rw[i] & W0 != 0 {
                        log_d0[i]
                    } else if !cfg.acc_logs && cyc_rw[i] & W0 != 0 {
                        cyc_d0[i]
                    } else {
                        boc[i]
                    };
                }
                BatchFlow::Next
            }
            Insn::Wr0Arr { base, mask, clean } => {
                need!(2);
                let vbase = (*sp - 1) * lanes;
                let ibase = (*sp - 2) * lanes;
                let mut npass = 0usize;
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    let check = if cfg.acc_logs {
                        log_rw[i]
                    } else {
                        log_rw[i] | cyc_rw[i]
                    };
                    if check & (R1 | W0 | W1) == 0 {
                        npass += 1;
                    }
                }
                if npass == 0 {
                    for (l, lf) in last_fail.iter_mut().enumerate() {
                        let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                        *lf = Some(FailInfo {
                            rule: rule_idx,
                            pc,
                            reg: Some(RegId(r as u32)),
                            cycle,
                        });
                    }
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    log_rw[i] |= W0;
                    log_d0[i] = stack[vbase + l];
                }
                *sp -= 2;
                BatchFlow::Next
            }
            Insn::Wr1Arr { base, mask, clean } => {
                need!(2);
                let vbase = (*sp - 1) * lanes;
                let ibase = (*sp - 2) * lanes;
                let mut npass = 0usize;
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    let check = if cfg.acc_logs {
                        log_rw[i]
                    } else {
                        log_rw[i] | cyc_rw[i]
                    };
                    if check & W1 == 0 {
                        npass += 1;
                    }
                }
                if npass == 0 {
                    for (l, lf) in last_fail.iter_mut().enumerate() {
                        let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                        *lf = Some(FailInfo {
                            rule: rule_idx,
                            pc,
                            reg: Some(RegId(r as u32)),
                            cycle,
                        });
                    }
                    return BatchFlow::FailAll { clean };
                }
                if npass < lanes {
                    return BatchFlow::Diverge;
                }
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    let i = r * lanes + l;
                    log_rw[i] |= W1;
                    if cfg.merged_data {
                        log_d0[i] = stack[vbase + l];
                    } else {
                        log_d1[i] = stack[vbase + l];
                    }
                }
                *sp -= 2;
                BatchFlow::Next
            }
            Insn::Rd0ArrFast { base, mask } | Insn::Rd1ArrFast { base, mask } => {
                need!(1);
                let ibase = (*sp - 1) * lanes;
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    stack[ibase + l] = log_d0[r * lanes + l];
                }
                BatchFlow::Next
            }
            Insn::Wr0ArrFast { base, mask } | Insn::Wr1ArrFast { base, mask } => {
                need!(2);
                let vbase = (*sp - 1) * lanes;
                let ibase = (*sp - 2) * lanes;
                for l in 0..lanes {
                    let r = base as usize + (stack[ibase + l] & mask as u64) as usize;
                    log_d0[r * lanes + l] = stack[vbase + l];
                }
                *sp -= 2;
                BatchFlow::Next
            }
            Insn::BinRC { op, rhs, mask } => {
                need!(1);
                let base = (*sp - 1) * lanes;
                simd::fused_map1(op, mask, rhs, &mut stack[base..base + lanes]);
                BatchFlow::Next
            }
            Insn::BinRL { op, rhs_slot, mask } => {
                need!(1);
                let base = (*sp - 1) * lanes;
                let rbase = rhs_slot as usize * lanes;
                simd::fused_zip2(
                    op,
                    mask,
                    &mut stack[base..base + lanes],
                    &locals[rbase..rbase + lanes],
                );
                BatchFlow::Next
            }
            Insn::BinLL {
                op,
                a_slot,
                b_slot,
                mask,
            } => {
                grow!();
                let dst = *sp * lanes;
                let (abase, bbase) = (a_slot as usize * lanes, b_slot as usize * lanes);
                simd::fused_zip2_to(
                    op,
                    mask,
                    &mut stack[dst..dst + lanes],
                    &locals[abase..abase + lanes],
                    &locals[bbase..bbase + lanes],
                );
                *sp += 1;
                BatchFlow::Next
            }
            Insn::BinLC {
                op,
                a_slot,
                rhs,
                mask,
            } => {
                grow!();
                let dst = *sp * lanes;
                let abase = a_slot as usize * lanes;
                simd::fused_map1_to(
                    op,
                    mask,
                    rhs,
                    &mut stack[dst..dst + lanes],
                    &locals[abase..abase + lanes],
                );
                *sp += 1;
                BatchFlow::Next
            }
            Insn::LdFast { reg, slot } => {
                let (src, dst) = (reg as usize * lanes, slot as usize * lanes);
                locals[dst..dst + lanes].copy_from_slice(&log_d0[src..src + lanes]);
                BatchFlow::Next
            }
            Insn::StFast { reg, slot } => {
                let (src, dst) = (slot as usize * lanes, reg as usize * lanes);
                log_d0[dst..dst + lanes].copy_from_slice(&locals[src..src + lanes]);
                BatchFlow::Next
            }
            Insn::SetLocalK { slot, imm } => {
                let dst = slot as usize * lanes;
                locals[dst..dst + lanes].fill(imm);
                BatchFlow::Next
            }
            Insn::Jmp(t) => BatchFlow::Jump(t),
            Insn::Jz(t) => {
                need!(1);
                let base = (*sp - 1) * lanes;
                let nz = simd::count_zero(&stack[base..base + lanes]);
                *sp -= 1;
                if nz == 0 {
                    BatchFlow::Next
                } else if nz == lanes {
                    BatchFlow::Jump(t)
                } else {
                    BatchFlow::Diverge
                }
            }
            Insn::Abort => {
                last_fail.fill(Some(FailInfo {
                    rule: rule_idx,
                    pc,
                    reg: None,
                    cycle,
                }));
                BatchFlow::FailAll { clean: false }
            }
            Insn::AbortClean => {
                last_fail.fill(Some(FailInfo {
                    rule: rule_idx,
                    pc,
                    reg: None,
                    cycle,
                }));
                BatchFlow::FailAll { clean: true }
            }
            Insn::Cov(id) => {
                let base = id as usize * lanes;
                for c in &mut cov[base..base + lanes] {
                    *c += 1;
                }
                BatchFlow::Next
            }
            Insn::End => BatchFlow::Done,
        }
    }

    /// Lock-step executor for the register-form micro-op program: each
    /// micro-op is decoded once and applied across every lane, with the
    /// same all-pass / all-fail / diverge protocol as the bytecode loop.
    ///
    /// Returns `Ok(Some(Ok(())))` on a batched commit, `Ok(Some(Err(clean)))`
    /// on a batched failure, and `Ok(None)` on divergence (the caller
    /// restores the rule-entry snapshot and falls back to the scalar
    /// bytecode executor, which is bit-identical to the micro-op form).
    #[allow(clippy::too_many_lines)]
    fn run_uops_batch(
        &mut self,
        tac: &TacRule,
        slots: &mut [u64],
        rule_idx: usize,
    ) -> Result<Option<Result<(), bool>>, VmError> {
        let cfg = self.prog.cfg;
        let cycle = self.cycles;
        let BatchSim {
            lanes,
            stack,
            boc,
            cyc_rw,
            log_rw,
            cyc_d0,
            log_d0,
            log_d1,
            cov,
            last_fail,
            ..
        } = self;
        let lanes = *lanes;
        // One scratch stripe for superinstruction intermediates.
        if stack.len() < lanes {
            stack.resize(lanes, 0);
        }
        let uops = &tac.uops;
        let mut pc = 0usize;

        macro_rules! sl {
            ($s:expr, $l:expr) => {
                slots[$s as usize * lanes + $l]
            };
        }
        // All-lanes conflict failure on one register.
        macro_rules! fail_all {
            ($reg:expr, $clean:expr, $src_pc:expr) => {{
                last_fail.fill(Some(FailInfo {
                    rule: rule_idx,
                    pc: $src_pc as usize,
                    reg: $reg,
                    cycle,
                }));
                return Ok(Some(Err($clean)));
            }};
        }
        // Checked-access gates: count passing lanes with the bit-sliced
        // SWAR kernels (eight lanes per word over the rw-set byte plane),
        // then fail-all / diverge / proceed — identical to the bytecode
        // arms.
        macro_rules! rd0_gate {
            ($r:expr, $clean:expr) => {{
                let s = $r * lanes;
                let chk = if cfg.acc_logs {
                    &log_rw[s..s + lanes]
                } else {
                    &cyc_rw[s..s + lanes]
                };
                let npass = simd::count_clear(chk, W0 | W1);
                if npass == 0 {
                    fail_all!(Some(RegId($r as u32)), $clean, tac.pcs[pc]);
                }
                if npass < lanes {
                    return Ok(None);
                }
            }};
        }
        macro_rules! rd1_gate {
            ($r:expr, $clean:expr) => {{
                let s = $r * lanes;
                let chk = if cfg.acc_logs {
                    &log_rw[s..s + lanes]
                } else {
                    &cyc_rw[s..s + lanes]
                };
                let npass = simd::count_clear(chk, W1);
                if npass == 0 {
                    fail_all!(Some(RegId($r as u32)), $clean, tac.pcs[pc]);
                }
                if npass < lanes {
                    return Ok(None);
                }
            }};
        }
        macro_rules! wr0_gate {
            ($r:expr, $clean:expr, $src_pc:expr) => {{
                let s = $r * lanes;
                let npass = if cfg.acc_logs {
                    simd::count_clear(&log_rw[s..s + lanes], R1 | W0 | W1)
                } else {
                    simd::count_clear2(&log_rw[s..s + lanes], &cyc_rw[s..s + lanes], R1 | W0 | W1)
                };
                if npass == 0 {
                    fail_all!(Some(RegId($r as u32)), $clean, $src_pc);
                }
                if npass < lanes {
                    return Ok(None);
                }
            }};
        }
        macro_rules! wr1_gate {
            ($r:expr, $clean:expr) => {{
                let s = $r * lanes;
                let npass = if cfg.acc_logs {
                    simd::count_clear(&log_rw[s..s + lanes], W1)
                } else {
                    simd::count_clear2(&log_rw[s..s + lanes], &cyc_rw[s..s + lanes], W1)
                };
                if npass == 0 {
                    fail_all!(Some(RegId($r as u32)), $clean, tac.pcs[pc]);
                }
                if npass < lanes {
                    return Ok(None);
                }
            }};
        }
        // Whole-stripe read application: record the read in the rw plane,
        // then blend the forwarded value branchlessly (the stripe forms of
        // `rd0_val!` / `rd1_val!`, used by the non-indexed register ops).
        macro_rules! rd0_stripe {
            ($r:expr, $out:expr) => {{
                let s = $r * lanes;
                if !cfg.design_specific {
                    simd::or_bytes(&mut log_rw[s..s + lanes], R0);
                }
                let src = if cfg.no_boc {
                    &log_d0[s..s + lanes]
                } else {
                    &boc[s..s + lanes]
                };
                $out.copy_from_slice(src);
            }};
        }
        macro_rules! rd1_stripe {
            ($r:expr, $out:expr) => {{
                let s = $r * lanes;
                simd::or_bytes(&mut log_rw[s..s + lanes], R1);
                let out = $out;
                let ld0 = &log_d0[s..s + lanes];
                if cfg.no_boc {
                    out.copy_from_slice(ld0);
                } else {
                    let lrw = &log_rw[s..s + lanes];
                    let bo = &boc[s..s + lanes];
                    if cfg.acc_logs {
                        for (((o, &w), &d), &b) in out.iter_mut().zip(lrw).zip(ld0).zip(bo) {
                            let m = lane_mask(w & W0 != 0);
                            *o = (d & m) | (b & !m);
                        }
                    } else {
                        let crw = &cyc_rw[s..s + lanes];
                        let cd0 = &cyc_d0[s..s + lanes];
                        for (((((o, &w), &d), &b), &cw), &cd) in
                            out.iter_mut().zip(lrw).zip(ld0).zip(bo).zip(crw).zip(cd0)
                        {
                            let m0 = lane_mask(w & W0 != 0);
                            let m1 = lane_mask(cw & W0 != 0);
                            *o = (d & m0) | (((cd & m1) | (b & !m1)) & !m0);
                        }
                    }
                }
            }};
        }
        // Post-gate read applications (record + fetch), per the bytecode
        // semantics of Rd0/Rd1.
        macro_rules! rd0_val {
            ($i:expr) => {{
                let i = $i;
                if !cfg.design_specific {
                    log_rw[i] |= R0;
                }
                if cfg.no_boc {
                    log_d0[i]
                } else {
                    boc[i]
                }
            }};
        }
        macro_rules! rd1_val {
            ($i:expr) => {{
                let i = $i;
                log_rw[i] |= R1;
                if cfg.no_boc || log_rw[i] & W0 != 0 {
                    log_d0[i]
                } else if !cfg.acc_logs && cyc_rw[i] & W0 != 0 {
                    cyc_d0[i]
                } else {
                    boc[i]
                }
            }};
        }

        loop {
            match uops[pc] {
                Uop::Bin { op, dst, a, b, mask } => {
                    simd::fused_zip2_at(
                        op,
                        mask,
                        slots,
                        dst as usize * lanes,
                        a as usize * lanes,
                        b as usize * lanes,
                        lanes,
                    );
                }
                Uop::Not { dst, src, mask } => {
                    simd::map1_at(slots, dst as usize * lanes, src as usize * lanes, lanes, |a| {
                        !a & mask
                    });
                }
                Uop::Neg { dst, src, mask } => {
                    simd::map1_at(slots, dst as usize * lanes, src as usize * lanes, lanes, |a| {
                        a.wrapping_neg() & mask
                    });
                }
                Uop::Mask { dst, src, mask } => {
                    simd::map1_at(slots, dst as usize * lanes, src as usize * lanes, lanes, |a| {
                        a & mask
                    });
                }
                Uop::Sext { dst, src, from, mask } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    if from == 0 {
                        slots[d..d + lanes].fill(0);
                    } else if from >= 64 {
                        simd::map1_at(slots, d, s, lanes, move |a| a & mask);
                    } else {
                        let sh = 64 - from;
                        simd::map1_at(slots, d, s, lanes, move |a| {
                            ((((a << sh) as i64) >> sh) as u64) & mask
                        });
                    }
                }
                Uop::Slice { dst, src, lo, mask } => {
                    simd::map1_at(slots, dst as usize * lanes, src as usize * lanes, lanes, |a| {
                        (a >> lo) & mask
                    });
                }
                Uop::SliceSext { dst, src, lo, from, mask } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    if from == 0 {
                        slots[d..d + lanes].fill(0);
                    } else {
                        let from_mask = u64::MAX >> (64 - from.min(64));
                        let sh = 64 - from.min(64);
                        simd::map1_at(slots, d, s, lanes, move |a| {
                            let v = (a >> lo) & from_mask;
                            ((((v << sh) as i64) >> sh) as u64) & mask
                        });
                    }
                }
                Uop::Select { dst, c, t, f } => {
                    simd::select_at(
                        slots,
                        dst as usize * lanes,
                        c as usize * lanes,
                        t as usize * lanes,
                        f as usize * lanes,
                        lanes,
                    );
                }
                Uop::Const { dst, imm } => {
                    let d = dst as usize * lanes;
                    slots[d..d + lanes].fill(imm);
                }
                Uop::Mov { dst, src } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    slots.copy_within(s..s + lanes, d);
                }
                Uop::Rd0 { dst, reg, clean } => {
                    let r = reg as usize;
                    rd0_gate!(r, clean);
                    let d = dst as usize * lanes;
                    rd0_stripe!(r, &mut slots[d..d + lanes]);
                }
                Uop::Rd1 { dst, reg, clean } => {
                    let r = reg as usize;
                    rd1_gate!(r, clean);
                    let d = dst as usize * lanes;
                    rd1_stripe!(r, &mut slots[d..d + lanes]);
                }
                Uop::Wr0 { src, reg, clean } => {
                    let r = reg as usize;
                    wr0_gate!(r, clean, tac.pcs[pc]);
                    let (s, d) = (src as usize * lanes, r * lanes);
                    simd::or_bytes(&mut log_rw[d..d + lanes], W0);
                    log_d0[d..d + lanes].copy_from_slice(&slots[s..s + lanes]);
                }
                Uop::Wr1 { src, reg, clean } => {
                    let r = reg as usize;
                    wr1_gate!(r, clean);
                    let (s, d) = (src as usize * lanes, r * lanes);
                    simd::or_bytes(&mut log_rw[d..d + lanes], W1);
                    let dst = if cfg.merged_data {
                        &mut log_d0[d..d + lanes]
                    } else {
                        &mut log_d1[d..d + lanes]
                    };
                    dst.copy_from_slice(&slots[s..s + lanes]);
                }
                Uop::RdFast { dst, reg } => {
                    let (s, d) = (reg as usize * lanes, dst as usize * lanes);
                    slots[d..d + lanes].copy_from_slice(&log_d0[s..s + lanes]);
                }
                Uop::WrFast { src, reg } => {
                    let (s, d) = (src as usize * lanes, reg as usize * lanes);
                    log_d0[d..d + lanes].copy_from_slice(&slots[s..s + lanes]);
                }
                Uop::Rd0Arr { dst, idx, base, amask, clean } => {
                    let chk = if cfg.acc_logs { &*log_rw } else { &*cyc_rw };
                    let mut npass = 0usize;
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        npass += (chk[r * lanes + l] & (W0 | W1) == 0) as usize;
                    }
                    if npass == 0 {
                        for (l, lf) in last_fail.iter_mut().enumerate() {
                            let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                            *lf = Some(FailInfo {
                                rule: rule_idx,
                                pc: tac.pcs[pc] as usize,
                                reg: Some(RegId(r as u32)),
                                cycle,
                            });
                        }
                        return Ok(Some(Err(clean)));
                    }
                    if npass < lanes {
                        return Ok(None);
                    }
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        sl!(dst, l) = rd0_val!(r * lanes + l);
                    }
                }
                Uop::Rd1Arr { dst, idx, base, amask, clean } => {
                    let chk = if cfg.acc_logs { &*log_rw } else { &*cyc_rw };
                    let mut npass = 0usize;
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        npass += (chk[r * lanes + l] & W1 == 0) as usize;
                    }
                    if npass == 0 {
                        for (l, lf) in last_fail.iter_mut().enumerate() {
                            let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                            *lf = Some(FailInfo {
                                rule: rule_idx,
                                pc: tac.pcs[pc] as usize,
                                reg: Some(RegId(r as u32)),
                                cycle,
                            });
                        }
                        return Ok(Some(Err(clean)));
                    }
                    if npass < lanes {
                        return Ok(None);
                    }
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        sl!(dst, l) = rd1_val!(r * lanes + l);
                    }
                }
                Uop::Wr0Arr { src, idx, base, amask, clean } => {
                    let acc = cfg.acc_logs;
                    let mut npass = 0usize;
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        let i = r * lanes + l;
                        let check = log_rw[i] | (cyc_rw[i] & lane_mask(!acc) as u8);
                        npass += (check & (R1 | W0 | W1) == 0) as usize;
                    }
                    if npass == 0 {
                        for (l, lf) in last_fail.iter_mut().enumerate() {
                            let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                            *lf = Some(FailInfo {
                                rule: rule_idx,
                                pc: tac.pcs[pc] as usize,
                                reg: Some(RegId(r as u32)),
                                cycle,
                            });
                        }
                        return Ok(Some(Err(clean)));
                    }
                    if npass < lanes {
                        return Ok(None);
                    }
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        let i = r * lanes + l;
                        log_rw[i] |= W0;
                        log_d0[i] = sl!(src, l);
                    }
                }
                Uop::Wr1Arr { src, idx, base, amask, clean } => {
                    let acc = cfg.acc_logs;
                    let mut npass = 0usize;
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        let i = r * lanes + l;
                        let check = log_rw[i] | (cyc_rw[i] & lane_mask(!acc) as u8);
                        npass += (check & W1 == 0) as usize;
                    }
                    if npass == 0 {
                        for (l, lf) in last_fail.iter_mut().enumerate() {
                            let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                            *lf = Some(FailInfo {
                                rule: rule_idx,
                                pc: tac.pcs[pc] as usize,
                                reg: Some(RegId(r as u32)),
                                cycle,
                            });
                        }
                        return Ok(Some(Err(clean)));
                    }
                    if npass < lanes {
                        return Ok(None);
                    }
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        let i = r * lanes + l;
                        log_rw[i] |= W1;
                        if cfg.merged_data {
                            log_d0[i] = sl!(src, l);
                        } else {
                            log_d1[i] = sl!(src, l);
                        }
                    }
                }
                Uop::RdArrFast { dst, idx, base, amask } => {
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        sl!(dst, l) = log_d0[r * lanes + l];
                    }
                }
                Uop::WrArrFast { src, idx, base, amask } => {
                    for l in 0..lanes {
                        let r = base as usize + (sl!(idx, l) & amask as u64) as usize;
                        log_d0[r * lanes + l] = sl!(src, l);
                    }
                }
                Uop::Jmp(t) => {
                    pc = t as usize;
                    continue;
                }
                Uop::Jz { cond, target } => {
                    let c = cond as usize * lanes;
                    let nz = simd::count_zero(&slots[c..c + lanes]);
                    if nz == lanes {
                        pc = target as usize;
                        continue;
                    }
                    if nz != 0 {
                        return Ok(None);
                    }
                }
                Uop::Abort { clean } => {
                    fail_all!(None, clean, tac.pcs[pc]);
                }
                Uop::Cov(id) => {
                    let base = id as usize * lanes;
                    for c in &mut cov[base..base + lanes] {
                        *c += 1;
                    }
                }
                Uop::End => return Ok(Some(Ok(()))),
                Uop::Trap(what) => {
                    return Err(VmError::CompilerBug {
                        rule: rule_idx,
                        pc: tac.pcs[pc] as usize,
                        what,
                    })
                }
                Uop::RdBin { op, dst, reg, b, mask, clean } => {
                    let r = reg as usize;
                    rd0_gate!(r, clean);
                    let s = r * lanes;
                    if !cfg.design_specific {
                        simd::or_bytes(&mut log_rw[s..s + lanes], R0);
                    }
                    let vals = if cfg.no_boc {
                        &log_d0[s..s + lanes]
                    } else {
                        &boc[s..s + lanes]
                    };
                    simd::fused_ext_buf_at(
                        op,
                        mask,
                        slots,
                        dst as usize * lanes,
                        vals,
                        b as usize * lanes,
                        lanes,
                    );
                }
                Uop::BinWr { op, a, b, mask, reg, clean } => {
                    let r = reg as usize;
                    wr0_gate!(r, clean, tac.pcs[pc]);
                    let d = r * lanes;
                    simd::or_bytes(&mut log_rw[d..d + lanes], W0);
                    simd::fused_zip2_to(
                        op,
                        mask,
                        &mut log_d0[d..d + lanes],
                        &slots[a as usize * lanes..][..lanes],
                        &slots[b as usize * lanes..][..lanes],
                    );
                }
                Uop::RdBinWr { op, rreg, b, mask, wreg, rclean, wclean } => {
                    let r = rreg as usize;
                    rd0_gate!(r, rclean);
                    // The read's effects (recording, value fetch) land
                    // before the write gate, exactly like the unfused pair.
                    let s = r * lanes;
                    if !cfg.design_specific {
                        simd::or_bytes(&mut log_rw[s..s + lanes], R0);
                    }
                    {
                        let vals = if cfg.no_boc {
                            &log_d0[s..s + lanes]
                        } else {
                            &boc[s..s + lanes]
                        };
                        simd::fused_zip2_to(
                            op,
                            mask,
                            &mut stack[..lanes],
                            vals,
                            &slots[b as usize * lanes..][..lanes],
                        );
                    }
                    let w = wreg as usize;
                    wr0_gate!(w, wclean, tac.pcs2[pc]);
                    let d = w * lanes;
                    simd::or_bytes(&mut log_rw[d..d + lanes], W0);
                    log_d0[d..d + lanes].copy_from_slice(&stack[..lanes]);
                }
                Uop::BinJz { op, a, b, mask, target } => {
                    let nz = simd::fused_count_zero_at(
                        op,
                        mask,
                        slots,
                        a as usize * lanes,
                        b as usize * lanes,
                        lanes,
                    );
                    if nz == lanes {
                        pc = target as usize;
                        continue;
                    }
                    if nz != 0 {
                        return Ok(None);
                    }
                }
                Uop::RdBinFast { op, dst, reg, b, mask } => {
                    let r = reg as usize * lanes;
                    simd::fused_ext_buf_at(
                        op,
                        mask,
                        slots,
                        dst as usize * lanes,
                        &log_d0[r..r + lanes],
                        b as usize * lanes,
                        lanes,
                    );
                }
                Uop::BinWrFast { op, a, b, mask, reg } => {
                    let r = reg as usize * lanes;
                    simd::fused_zip2_to(
                        op,
                        mask,
                        &mut log_d0[r..r + lanes],
                        &slots[a as usize * lanes..][..lanes],
                        &slots[b as usize * lanes..][..lanes],
                    );
                }
                Uop::RdBinWrFast { op, rreg, b, mask, wreg } => {
                    simd::fused_buf_ext_at(
                        op,
                        mask,
                        log_d0,
                        wreg as usize * lanes,
                        rreg as usize * lanes,
                        &slots[b as usize * lanes..][..lanes],
                        lanes,
                    );
                }
            }
            pc += 1;
        }
    }
}

impl BatchBackend for BatchSim {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn cycle_count(&self) -> u64 {
        self.cycles
    }

    fn cycle(&mut self) -> Result<(), String> {
        BatchSim::cycle(self).map_err(|e| e.to_string())
    }

    fn lane_commits(&self, lane: usize) -> &[u32] {
        BatchSim::lane_commits(self, lane)
    }

    fn lane_get64(&self, lane: usize, reg: RegId) -> u64 {
        BatchSim::lane_get64(self, lane, reg)
    }

    fn lane_set64(&mut self, lane: usize, reg: RegId, value: u64) {
        BatchSim::lane_set64(self, lane, reg, value);
    }
}

impl std::fmt::Debug for BatchSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSim")
            .field("design", &self.prog.design.name)
            .field("level", &self.prog.level)
            .field("lanes", &self.lanes)
            .field("cycles", &self.cycles)
            .field("lockstep_rules", &self.lockstep_rules)
            .field("fallback_rules", &self.fallback_rules)
            .finish()
    }
}

/// A [`RegAccess`] view of one lane of a [`BatchSim`], so devices and
/// injectors written against the scalar interface can drive a single
/// batched instance.
pub struct BatchLane<'a> {
    sim: &'a mut BatchSim,
    lane: usize,
}

impl RegAccess for BatchLane<'_> {
    fn get64(&self, reg: RegId) -> u64 {
        self.sim.lane_get64(self.lane, reg)
    }

    fn set64(&mut self, reg: RegId, value: u64) {
        self.sim.lane_set64(self.lane, reg, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Sim;
    use crate::OptLevel;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;
    use koika::device::SimBackend;

    fn collatz() -> koika::tir::TDesign {
        let mut b = DesignBuilder::new("collatz");
        b.reg("x", 16, 7u64);
        b.rule(
            "even",
            vec![iff(
                rd0("x").and(k(16, 1)).eq(k(16, 0)),
                vec![wr0("x", rd0("x").shr(k(16, 1)))],
                vec![],
            )],
        );
        b.rule(
            "odd",
            vec![iff(
                rd1("x").and(k(16, 1)).eq(k(16, 1)),
                vec![wr1("x", rd1("x").mul(k(16, 3)).add(k(16, 1)))],
                vec![],
            )],
        );
        check(&b.build()).unwrap()
    }

    #[test]
    fn lanes_match_scalar_sims_same_inits() {
        let td = collatz();
        for level in OptLevel::ALL {
            let opts = CompileOptions {
                level,
                ..CompileOptions::default()
            };
            let mut batch = BatchSim::compile_with(&td, &opts, 4).unwrap();
            let mut scalars: Vec<Sim> =
                (0..4).map(|_| Sim::compile_with(&td, &opts).unwrap()).collect();
            for _ in 0..64 {
                batch.cycle().unwrap();
                for (l, s) in scalars.iter_mut().enumerate() {
                    s.cycle();
                    assert_eq!(batch.lane_reg_values(l), s.reg_values(), "{level} lane {l}");
                }
            }
        }
    }

    #[test]
    fn divergent_lanes_match_scalar_sims() {
        let td = collatz();
        let x = td.reg_id("x");
        for level in OptLevel::ALL {
            let opts = CompileOptions {
                level,
                ..CompileOptions::default()
            };
            let mut batch = BatchSim::compile_with(&td, &opts, 4).unwrap();
            let mut scalars: Vec<Sim> =
                (0..4).map(|_| Sim::compile_with(&td, &opts).unwrap()).collect();
            // Different seeds per lane force the divergence fallback (odd
            // vs even parity takes different branches).
            for (l, seed) in [7u64, 6, 27, 1].into_iter().enumerate() {
                batch.lane_set64(l, x, seed);
                scalars[l].set64(x, seed);
            }
            for cyc in 0..128 {
                batch.cycle().unwrap();
                for (l, s) in scalars.iter_mut().enumerate() {
                    s.cycle();
                    assert_eq!(
                        batch.lane_reg_values(l),
                        s.reg_values(),
                        "{level} lane {l} cycle {cyc}"
                    );
                    assert_eq!(batch.lane_fired(l), s.rules_fired(), "{level} lane {l}");
                }
            }
            assert!(
                batch.fallback_rules() > 0,
                "{level}: divergent seeds must exercise the fallback"
            );
        }
    }

    #[test]
    fn tac_dispatch_matches_scalar_sims() {
        let td = collatz();
        let x = td.reg_id("x");
        for level in OptLevel::ALL {
            let opts = CompileOptions {
                level,
                ..CompileOptions::default()
            };
            let mut batch = BatchSim::compile_with(&td, &opts, 4).unwrap();
            batch.set_dispatch(Dispatch::Tac);
            let mut scalars: Vec<Sim> =
                (0..4).map(|_| Sim::compile_with(&td, &opts).unwrap()).collect();
            // Divergent seeds: the micro-op engine must take the same
            // fall-back decisions and the fallback (scalar bytecode) must
            // agree with the micro-op lanes bit-for-bit.
            for (l, seed) in [7u64, 6, 27, 1].into_iter().enumerate() {
                batch.lane_set64(l, x, seed);
                scalars[l].set64(x, seed);
            }
            for cyc in 0..128 {
                batch.cycle().unwrap();
                for (l, s) in scalars.iter_mut().enumerate() {
                    s.cycle();
                    assert_eq!(
                        batch.lane_reg_values(l),
                        s.reg_values(),
                        "{level} lane {l} cycle {cyc}"
                    );
                    assert_eq!(batch.lane_fired(l), s.rules_fired(), "{level} lane {l}");
                }
            }
        }
    }

    #[test]
    fn native_dispatch_matches_scalar_sims() {
        if !crate::native::toolchain_available() {
            eprintln!("SKIP native_dispatch_matches_scalar_sims: no rustc toolchain");
            return;
        }
        let td = collatz();
        let x = td.reg_id("x");
        for level in OptLevel::ALL {
            let opts = CompileOptions {
                level,
                ..CompileOptions::default()
            };
            let mut batch = BatchSim::compile_with(&td, &opts, 4).unwrap();
            batch.set_dispatch(Dispatch::Native);
            let mut scalars: Vec<Sim> =
                (0..4).map(|_| Sim::compile_with(&td, &opts).unwrap()).collect();
            // Divergent seeds: the per-lane compiled-native path must agree
            // with the scalar bytecode interpreter bit-for-bit even when
            // lanes take different control paths.
            for (l, seed) in [7u64, 6, 27, 1].into_iter().enumerate() {
                batch.lane_set64(l, x, seed);
                scalars[l].set64(x, seed);
            }
            for cyc in 0..128 {
                batch.cycle().unwrap();
                for (l, s) in scalars.iter_mut().enumerate() {
                    s.cycle();
                    assert_eq!(
                        batch.lane_reg_values(l),
                        s.reg_values(),
                        "{level} lane {l} cycle {cyc}"
                    );
                    assert_eq!(batch.lane_fired(l), s.rules_fired(), "{level} lane {l}");
                }
            }
        }
    }

    #[test]
    fn concat_shift_boundary_is_guarded_in_lanes() {
        // Regression: a zero-width high half (`low_width == 64`) used to
        // overflow the batched `(a << low_width) | b` lowering; the result
        // must also be masked.
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let td = check(&b.build()).unwrap();
        let mut prog = compile(&td, &CompileOptions::default()).unwrap();
        prog.rules[0].code = vec![
            Insn::Const(0xdead),
            Insn::Const(5),
            Insn::ConcatShift {
                low_width: 64,
                mask: u64::MAX,
            },
            Insn::Wr0 {
                reg: 0,
                clean: false,
            },
            Insn::End,
        ];
        let mut batch = BatchSim::new(prog, 3);
        batch.cycle().unwrap();
        for l in 0..3 {
            assert_eq!(batch.lane_get64(l, RegId(0)), 5, "lane {l}");
        }
    }

    #[test]
    fn single_lane_never_diverges() {
        let td = collatz();
        let mut batch = BatchSim::compile(&td, 1).unwrap();
        for _ in 0..64 {
            batch.cycle().unwrap();
        }
        assert_eq!(batch.fallback_rules(), 0);
    }

    #[test]
    fn miscompiled_bytecode_traps() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let td = check(&b.build()).unwrap();
        let mut prog = compile(&td, &CompileOptions::default()).unwrap();
        prog.rules[0].code.insert(0, Insn::Add { mask: u64::MAX });
        let mut batch = BatchSim::new(prog, 3);
        let err = batch.cycle().unwrap_err();
        assert_eq!(
            err,
            VmError::CompilerBug {
                rule: 0,
                pc: 0,
                what: "operand stack underflow",
            }
        );
    }
}
