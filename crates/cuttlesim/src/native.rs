//! Native compiled-Rust dispatch backend ([`crate::Dispatch::Native`]) —
//! the paper's real endgame, transplanted: Cuttlesim wins by *compiling*
//! designs to straight-line software instead of interpreting them, and this
//! module does the same for our VM. Each compiled design's typed
//! [`crate::tac::Uop`] arrays are lowered once more, into Rust source — one
//! `#[no_mangle] extern "C"` function per rule (plus a whole-cycle fast
//! path), rule bodies as straight-line code over the slot file with the
//! optimization level's log discipline baked in at emit time — then built
//! with `rustc` into a cdylib cached by design fingerprint and loaded
//! through a minimal hand-rolled `dlopen` shim.
//!
//! Observability is preserved the same way `tac` preserves it: every
//! emitted failure site carries its *bytecode* pc as an immediate, the
//! profiling variant of each rule function accumulates the same bytecode
//! weights, and coverage counters are bumped through a side table pointer,
//! so [`crate::FailInfo`], [`crate::ProfileReport`] and
//! [`crate::CoverageReport`] stay byte-identical to the interpreter.
//!
//! The generated code communicates with the host through a `#[repr(C)]`
//! context of raw pointers into [`State`]'s flat arrays (the slot-file
//! ABI). Return values encode the outcome: `(payload << 8) | code` with
//! `0` = committed, `1`/`2` = conflict (dirty/clean, payload = bytecode pc,
//! failing register in `ctx.fail_reg`), `3`/`4` = abort (dirty/clean,
//! payload = bytecode pc), `5` = VM trap (payload = ordinal into the
//! host-retained trap table). Commit/rollback for the per-rule entry points
//! run on the host through the exact [`rule_commit`]/[`rule_failure`]
//! helpers every other dispatcher uses, so the transactional semantics are
//! identical at every level by construction.
//!
//! When a batch width is requested ([`build_engine_batched`]), each rule
//! is additionally emitted in a *batched lock-step* form
//! (`koika_rule_{k}_batch`) for [`crate::BatchSim`]: the same micro-op
//! program, but every micro-op is a lane loop over the batch's
//! structure-of-arrays stripes (`reg * lanes + lane`), with the operation,
//! the level's log discipline, *and the lane count itself* constant-folded
//! into straight-line code — constant trip counts mean no remainder loops,
//! and the loop bodies take each plane as a distinct `&mut` slice, so the
//! optimizer vectorizes them without runtime overlap checks. Conflict
//! gates count passing lanes; a unanimous outcome uses the scalar return
//! protocol above, while a *mixed* gate (or a mixed `Jz`) returns code `6`
//! = divergence, and the host re-runs the rule per lane through the scalar
//! executor — so batched native output stays byte-identical to N scalar
//! `Sim`s by construction. Code `7` rejects a `ctx.lanes` that differs
//! from the baked width. Unanimous outcomes are *self-merging*: before
//! returning code `0` the entry point performs the commit plane merge
//! itself (and, at `reset_on_fail` levels, the rollback merge before
//! codes `1`/`3`) as baked `BL`-wide lane loops, so the host's lock-step
//! arms do no plane work at all — only counters.

use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::compile::{CopyPlan, Program, RuleCode};
use crate::insn::FusedBin;
use crate::level::LevelCfg;
use crate::tac::{TacProgram, TacRule, Uop};
use crate::vm::{rule_commit, rule_failure, rule_prologue, FailInfo, State, VmError};
use koika::tir::RegId;

/// Bumped whenever the generated-source ABI (the `Ctx`/`BCtx` layouts, the
/// exported symbol set, or the return-code encoding) changes; part of the
/// cache key via the source header, so stale cached cdylibs can never be
/// loaded. v2 added the batched lock-step entry points
/// (`koika_rule_*_batch`); v3 made them lane-count-specialized (emitted
/// only on request, baked batch width, status code `7` for a mismatched
/// `ctx.lanes`); v4 made them self-merging (the entry point performs the
/// unanimous commit or rollback plane merge itself before returning, so
/// code `0` now means *committed and merged* and codes `1`/`3` mean
/// *failed and rolled back*).
const ABI_VERSION: u32 = 4;

/// Why the native backend could not be selected. Unlike rule failures
/// (normal Kôika semantics) these are environment or lowering problems:
/// the selected backend never silently falls back, it reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeError {
    /// No working `rustc` was found (checked via `rustc --version`; the
    /// `KOIKA_RUSTC` environment variable overrides the binary name).
    NoToolchain(String),
    /// The lowered micro-op program uses a shape the emitter does not
    /// support (e.g. a backward jump) or fails bounds validation.
    Unsupported(String),
    /// `rustc` was found but the generated crate failed to build.
    Build(String),
    /// The built cdylib could not be loaded or a symbol was missing.
    Load(String),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::NoToolchain(what) => {
                write!(f, "no Rust toolchain for the native backend: {what}")
            }
            NativeError::Unsupported(what) => {
                write!(f, "native backend cannot compile this program: {what}")
            }
            NativeError::Build(what) => write!(f, "native backend build failed: {what}"),
            NativeError::Load(what) => write!(f, "native backend load failed: {what}"),
        }
    }
}

impl std::error::Error for NativeError {}

fn rustc_cmd() -> String {
    std::env::var("KOIKA_RUSTC").unwrap_or_else(|_| "rustc".to_string())
}

fn rustc_version() -> Option<&'static str> {
    static V: OnceLock<Option<String>> = OnceLock::new();
    V.get_or_init(|| {
        std::process::Command::new(rustc_cmd())
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    })
    .as_deref()
}

/// True if a working `rustc` is available for the native backend.
///
/// Probed once per process (`rustc --version`); the `KOIKA_RUSTC`
/// environment variable overrides the binary name. Harnesses use this to
/// *skip loudly* rather than fail when the toolchain is absent.
pub fn toolchain_available() -> bool {
    rustc_version().is_some()
}

/// The directory generated sources and cdylibs are cached under:
/// `KOIKA_NATIVE_CACHE` if set (the CLI's `--native-cache` flag sets it),
/// else `<tmp>/koika-native-cache`.
pub fn cache_dir() -> PathBuf {
    std::env::var_os("KOIKA_NATIVE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("koika-native-cache"))
}

// ---------------------------------------------------------------------------
// The slot-file ABI: the host side of the generated crate's `Ctx`.
// ---------------------------------------------------------------------------

/// The `#[repr(C)]` context handed to generated functions — raw pointers
/// into [`State`]'s flat arrays plus out-params for failure reporting and
/// profiling. Field order must match the `Ctx` struct the emitter writes
/// into every generated crate ([`ABI_VERSION`] guards drift).
#[repr(C)]
pub(crate) struct NativeCtx {
    boc: *mut u64,
    cyc_rw: *mut u8,
    log_rw: *mut u8,
    cyc_d0: *mut u64,
    cyc_d1: *mut u64,
    log_d0: *mut u64,
    log_d1: *mut u64,
    cov: *mut u64,
    fired: *mut u64,
    fired_per_rule: *mut u64,
    fail_per_rule: *mut u64,
    /// Out: failing register index for per-rule conflict returns.
    fail_reg: u32,
    /// Out (whole-cycle): rule index of the most recent failure.
    last_rule: u32,
    /// Out (whole-cycle): bytecode pc of the most recent failure.
    last_pc: u32,
    /// Out (whole-cycle): failing register of the most recent conflict.
    last_reg: u32,
    /// Out (whole-cycle): 0 = no failure, 1 = conflict, 2 = abort.
    last_kind: u32,
    pad: u32,
    /// Out: bytecode-weighted instruction count (profiling variants only).
    executed: u64,
}

impl NativeCtx {
    fn for_state(st: &mut State) -> NativeCtx {
        NativeCtx {
            boc: st.boc.as_mut_ptr(),
            cyc_rw: st.cyc_rw.as_mut_ptr(),
            log_rw: st.log_rw.as_mut_ptr(),
            cyc_d0: st.cyc_d0.as_mut_ptr(),
            cyc_d1: st.cyc_d1.as_mut_ptr(),
            log_d0: st.log_d0.as_mut_ptr(),
            log_d1: st.log_d1.as_mut_ptr(),
            cov: st.cov.as_mut_ptr(),
            fired: &mut st.fired,
            fired_per_rule: st.fired_per_rule.as_mut_ptr(),
            fail_per_rule: st.fail_per_rule.as_mut_ptr(),
            fail_reg: 0,
            last_rule: 0,
            last_pc: 0,
            last_reg: 0,
            last_kind: 0,
            pad: 0,
            executed: 0,
        }
    }
}

/// The `#[repr(C)]` context for the batched lock-step entry points — raw
/// pointers into [`crate::BatchSim`]'s structure-of-arrays planes
/// (`reg * lanes + lane`) plus the rule's persistent SoA slot file. Field
/// order must match the `BCtx` struct the emitter writes ([`ABI_VERSION`]
/// guards drift).
#[repr(C)]
pub(crate) struct NativeBatchCtx {
    pub(crate) boc: *mut u64,
    pub(crate) cyc_rw: *mut u8,
    pub(crate) log_rw: *mut u8,
    pub(crate) cyc_d0: *mut u64,
    pub(crate) cyc_d1: *mut u64,
    pub(crate) log_d0: *mut u64,
    pub(crate) log_d1: *mut u64,
    pub(crate) cov: *mut u64,
    /// The rule's slot file, slot-major (`slot * lanes + lane`), with
    /// constant slots pre-broadcast (the generated code never re-derives
    /// them — the same def-before-use argument the Tac batch path uses).
    pub(crate) slots: *mut u64,
    pub(crate) lanes: usize,
    /// Out: failing register index for unanimous conflict returns.
    pub(crate) fail_reg: u32,
    pub(crate) pad: u32,
}

// ---------------------------------------------------------------------------
// Source emission.
// ---------------------------------------------------------------------------

struct Emitted {
    source: String,
    traps: Vec<(u32, &'static str)>,
    has_cycle_fn: bool,
}

fn hex(v: u64) -> String {
    format!("0x{v:x}u64")
}

fn bin_expr(op: FusedBin, a: &str, b: &str, mask: u64) -> String {
    let m = hex(mask);
    let w = mask.count_ones();
    match op {
        FusedBin::Add => format!("({a}.wrapping_add({b}) & {m})"),
        FusedBin::Sub => format!("({a}.wrapping_sub({b}) & {m})"),
        FusedBin::Mul => format!("({a}.wrapping_mul({b}) & {m})"),
        FusedBin::And => format!("({a} & {b})"),
        FusedBin::Or => format!("({a} | {b})"),
        FusedBin::Xor => format!("({a} ^ {b})"),
        FusedBin::Shl => format!("(if {b} >= 64 {{ 0u64 }} else {{ ({a} << {b}) & {m} }})"),
        FusedBin::Shr => format!("(if {b} >= 64 {{ 0u64 }} else {{ {a} >> {b} }})"),
        FusedBin::Sra => format!("sra({w}u32, {a}, {b})"),
        FusedBin::Eq => format!("(({a} == {b}) as u64)"),
        FusedBin::Ne => format!("(({a} != {b}) as u64)"),
        FusedBin::Ult => format!("(({a} < {b}) as u64)"),
        FusedBin::Ule => format!("(({a} <= {b}) as u64)"),
        FusedBin::Slt => format!("slt({w}u32, {a}, {b})"),
        FusedBin::Sle => format!("(1u64 - slt({w}u32, {b}, {a}))"),
        FusedBin::Concat { low } => format!("(concat({low}u32, {a}, {b}) & {m})"),
    }
}

/// Where a rule body's terminal statements land: a standalone per-rule
/// `extern "C"` function (outcome via return value) or inline in the
/// whole-cycle function (outcome via `break 'r`).
#[derive(Clone, Copy)]
enum BodyKind {
    Rule { prof: bool },
    Cycle,
}

struct BodyEmitter<'a> {
    cfg: LevelCfg,
    kind: BodyKind,
    rule_idx: usize,
    tac: &'a TacRule,
    trap_ords: &'a HashMap<(usize, usize), usize>,
    falloff_ord: usize,
    out: &'a mut String,
}

impl BodyEmitter<'_> {
    /// `ctx.executed = w; ` where the profiling counter must be flushed
    /// before leaving the function.
    fn flush_w(&self) -> &'static str {
        match self.kind {
            BodyKind::Rule { prof: true } => "ctx.executed = w; ",
            _ => "",
        }
    }

    fn fail_conflict_stmt(&self, idx: &str, pc: u32, clean: bool) -> String {
        match self.kind {
            BodyKind::Rule { .. } => {
                let v = ((pc as u64) << 8) | if clean { 2 } else { 1 };
                format!(
                    "{{ ctx.fail_reg = ({idx}) as u32; {}return {v}u64; }}",
                    self.flush_w()
                )
            }
            BodyKind::Cycle => {
                let c: u64 = if clean { 2 } else { 1 };
                format!(
                    "{{ ctx.last_rule = {r}u32; ctx.last_pc = {pc}u32; \
                     ctx.last_reg = ({idx}) as u32; ctx.last_kind = 1u32; break 'r {c}u64; }}",
                    r = self.rule_idx
                )
            }
        }
    }

    fn emit_abort(&mut self, pc: u32, clean: bool) {
        match self.kind {
            BodyKind::Rule { .. } => {
                let v = ((pc as u64) << 8) | if clean { 4 } else { 3 };
                let _ = write!(self.out, "{}return {v}u64;", self.flush_w());
            }
            BodyKind::Cycle => {
                let c: u64 = if clean { 4 } else { 3 };
                let _ = write!(
                    self.out,
                    "ctx.last_rule = {r}u32; ctx.last_pc = {pc}u32; \
                     ctx.last_kind = 2u32; break 'r {c}u64;",
                    r = self.rule_idx
                );
            }
        }
    }

    fn emit_end(&mut self) {
        match self.kind {
            BodyKind::Rule { .. } => {
                let _ = write!(self.out, "{}return 0u64;", self.flush_w());
            }
            BodyKind::Cycle => {
                let _ = write!(self.out, "break 'r 0u64;");
            }
        }
    }

    fn emit_trap(&mut self, ord: usize) {
        match self.kind {
            BodyKind::Rule { .. } => {
                let v = ((ord as u64) << 8) | 5;
                let _ = write!(self.out, "{}return {v}u64;", self.flush_w());
            }
            // Eligibility for the whole-cycle function excludes trap
            // bodies; the emitter never routes one here.
            BodyKind::Cycle => unreachable!("trap body in whole-cycle emission"),
        }
    }

    /// The checked port-0 read: mirror of [`crate::vm::rd0_at`] with the
    /// level configuration baked in.
    fn emit_rd0(&mut self, idx: &str, clean: bool, pc: u32, assign: &str) {
        let fail = self.fail_conflict_stmt(idx, pc, clean);
        let chk = if self.cfg.acc_logs { "log_rw" } else { "cyc_rw" };
        let _ = write!(self.out, "let _c = {chk}[{idx}]; if _c & 0xc != 0 {fail} ");
        if !self.cfg.design_specific {
            let _ = write!(self.out, "log_rw[{idx}] |= 0x1; ");
        }
        let src = if self.cfg.no_boc { "log_d0" } else { "boc" };
        let _ = write!(self.out, "{assign} {src}[{idx}]; ");
    }

    /// The checked port-1 read: mirror of [`crate::vm::rd1_at`].
    fn emit_rd1(&mut self, idx: &str, clean: bool, pc: u32, assign: &str) {
        let fail = self.fail_conflict_stmt(idx, pc, clean);
        let chk = if self.cfg.acc_logs { "log_rw" } else { "cyc_rw" };
        let _ = write!(
            self.out,
            "let _c = {chk}[{idx}]; if _c & 0x8 != 0 {fail} log_rw[{idx}] |= 0x2; "
        );
        let val = if self.cfg.no_boc {
            format!("log_d0[{idx}]")
        } else {
            let tail = if !self.cfg.acc_logs {
                format!("if cyc_rw[{idx}] & 0x4 != 0 {{ cyc_d0[{idx}] }} else {{ boc[{idx}] }}")
            } else {
                format!("{{ boc[{idx}] }}")
            };
            format!("if log_rw[{idx}] & 0x4 != 0 {{ log_d0[{idx}] }} else {tail}")
        };
        let _ = write!(self.out, "{assign} {val}; ");
    }

    /// The checked port-0 write: mirror of [`crate::vm::wr0_at`].
    fn emit_wr0(&mut self, idx: &str, val: &str, clean: bool, pc: u32) {
        let fail = self.fail_conflict_stmt(idx, pc, clean);
        let chk = if self.cfg.acc_logs {
            format!("log_rw[{idx}]")
        } else {
            format!("log_rw[{idx}] | cyc_rw[{idx}]")
        };
        let _ = write!(
            self.out,
            "let _c = {chk}; if _c & 0xe != 0 {fail} log_rw[{idx}] |= 0x4; log_d0[{idx}] = {val}; "
        );
    }

    /// The checked port-1 write: mirror of [`crate::vm::wr1_at`].
    fn emit_wr1(&mut self, idx: &str, val: &str, clean: bool, pc: u32) {
        let fail = self.fail_conflict_stmt(idx, pc, clean);
        let chk = if self.cfg.acc_logs {
            format!("log_rw[{idx}]")
        } else {
            format!("log_rw[{idx}] | cyc_rw[{idx}]")
        };
        let dst = if self.cfg.merged_data { "log_d0" } else { "log_d1" };
        let _ = write!(
            self.out,
            "let _c = {chk}; if _c & 0x8 != 0 {fail} log_rw[{idx}] |= 0x8; {dst}[{idx}] = {val}; "
        );
    }

    fn emit_uop(&mut self, i: usize) {
        let pc = self.tac.pcs[i];
        let _ = write!(self.out, "{{ ");
        if let BodyKind::Rule { prof: true } = self.kind {
            let _ = write!(self.out, "w += {}u64; ", self.tac.weights[i]);
        }
        match self.tac.uops[i] {
            Uop::Bin { op, dst, a, b, mask } => {
                let e = bin_expr(op, &format!("s{a}"), &format!("s{b}"), mask);
                let _ = write!(self.out, "s{dst} = {e};");
            }
            Uop::Not { dst, src, mask } => {
                let _ = write!(self.out, "s{dst} = !s{src} & {};", hex(mask));
            }
            Uop::Neg { dst, src, mask } => {
                let _ = write!(self.out, "s{dst} = s{src}.wrapping_neg() & {};", hex(mask));
            }
            Uop::Mask { dst, src, mask } => {
                let _ = write!(self.out, "s{dst} = s{src} & {};", hex(mask));
            }
            Uop::Sext { dst, src, from, mask } => {
                let _ = write!(self.out, "s{dst} = sext({from}u32, s{src}) & {};", hex(mask));
            }
            Uop::Slice { dst, src, lo, mask } => {
                let _ = write!(self.out, "s{dst} = (s{src} >> {lo}u32) & {};", hex(mask));
            }
            Uop::SliceSext { dst, src, lo, from, mask } => {
                // `word::mask(from)` folded at emit time (`from` is 1..=64,
                // enforced by the lowering just as the Tac executor relies
                // on).
                let mof = if from >= 64 { u64::MAX } else { (1u64 << from) - 1 };
                let _ = write!(
                    self.out,
                    "s{dst} = sext({from}u32, (s{src} >> {lo}u32) & {}) & {};",
                    hex(mof),
                    hex(mask)
                );
            }
            Uop::Select { dst, c, t, f } => {
                let _ = write!(self.out, "s{dst} = if s{c} != 0 {{ s{t} }} else {{ s{f} }};");
            }
            Uop::Const { dst, imm } => {
                let _ = write!(self.out, "s{dst} = {};", hex(imm));
            }
            Uop::Mov { dst, src } => {
                let _ = write!(self.out, "s{dst} = s{src};");
            }
            Uop::Rd0 { dst, reg, clean } => {
                self.emit_rd0(&format!("{reg}usize"), clean, pc, &format!("s{dst} ="));
            }
            Uop::Rd1 { dst, reg, clean } => {
                self.emit_rd1(&format!("{reg}usize"), clean, pc, &format!("s{dst} ="));
            }
            Uop::Wr0 { src, reg, clean } => {
                self.emit_wr0(&format!("{reg}usize"), &format!("s{src}"), clean, pc);
            }
            Uop::Wr1 { src, reg, clean } => {
                self.emit_wr1(&format!("{reg}usize"), &format!("s{src}"), clean, pc);
            }
            Uop::RdFast { dst, reg } => {
                let _ = write!(self.out, "s{dst} = log_d0[{reg}usize];");
            }
            Uop::WrFast { src, reg } => {
                let _ = write!(self.out, "log_d0[{reg}usize] = s{src};");
            }
            Uop::Rd0Arr { dst, idx, base, amask, clean } => {
                let _ = write!(
                    self.out,
                    "let _i = {base}usize + ((s{idx} & 0x{amask:x}u64) as usize); "
                );
                self.emit_rd0("_i", clean, pc, &format!("s{dst} ="));
            }
            Uop::Rd1Arr { dst, idx, base, amask, clean } => {
                let _ = write!(
                    self.out,
                    "let _i = {base}usize + ((s{idx} & 0x{amask:x}u64) as usize); "
                );
                self.emit_rd1("_i", clean, pc, &format!("s{dst} ="));
            }
            Uop::Wr0Arr { src, idx, base, amask, clean } => {
                let _ = write!(
                    self.out,
                    "let _i = {base}usize + ((s{idx} & 0x{amask:x}u64) as usize); "
                );
                self.emit_wr0("_i", &format!("s{src}"), clean, pc);
            }
            Uop::Wr1Arr { src, idx, base, amask, clean } => {
                let _ = write!(
                    self.out,
                    "let _i = {base}usize + ((s{idx} & 0x{amask:x}u64) as usize); "
                );
                self.emit_wr1("_i", &format!("s{src}"), clean, pc);
            }
            Uop::RdArrFast { dst, idx, base, amask } => {
                let _ = write!(
                    self.out,
                    "let _i = {base}usize + ((s{idx} & 0x{amask:x}u64) as usize); \
                     s{dst} = log_d0[_i];"
                );
            }
            Uop::WrArrFast { src, idx, base, amask } => {
                let _ = write!(
                    self.out,
                    "let _i = {base}usize + ((s{idx} & 0x{amask:x}u64) as usize); \
                     log_d0[_i] = s{src};"
                );
            }
            Uop::Jmp(t) => {
                let _ = write!(self.out, "break 'l{t};");
            }
            Uop::Jz { cond, target } => {
                let _ = write!(self.out, "if s{cond} == 0 {{ break 'l{target}; }}");
            }
            Uop::Abort { clean } => self.emit_abort(pc, clean),
            Uop::Cov(id) => {
                let _ = write!(self.out, "cov[{id}usize] += 1;");
            }
            Uop::End => self.emit_end(),
            Uop::Trap(_) => {
                let ord = self.trap_ords[&(self.rule_idx, i)];
                self.emit_trap(ord);
            }
            Uop::RdBin { op, dst, reg, b, mask, clean } => {
                self.emit_rd0(&format!("{reg}usize"), clean, pc, "let _v =");
                let e = bin_expr(op, "_v", &format!("s{b}"), mask);
                let _ = write!(self.out, "s{dst} = {e};");
            }
            Uop::BinWr { op, a, b, mask, reg, clean } => {
                let e = bin_expr(op, &format!("s{a}"), &format!("s{b}"), mask);
                let _ = write!(self.out, "let _v = {e}; ");
                self.emit_wr0(&format!("{reg}usize"), "_v", clean, pc);
            }
            Uop::RdBinWr { op, rreg, b, mask, wreg, rclean, wclean } => {
                self.emit_rd0(&format!("{rreg}usize"), rclean, pc, "let _v =");
                let e = bin_expr(op, "_v", &format!("s{b}"), mask);
                let _ = write!(self.out, "let _r = {e}; ");
                self.emit_wr0(&format!("{wreg}usize"), "_r", wclean, self.tac.pcs2[i]);
            }
            Uop::BinJz { op, a, b, mask, target } => {
                let e = bin_expr(op, &format!("s{a}"), &format!("s{b}"), mask);
                let _ = write!(self.out, "if {e} == 0 {{ break 'l{target}; }}");
            }
            Uop::RdBinFast { op, dst, reg, b, mask } => {
                let e = bin_expr(op, &format!("log_d0[{reg}usize]"), &format!("s{b}"), mask);
                let _ = write!(self.out, "s{dst} = {e};");
            }
            Uop::BinWrFast { op, a, b, mask, reg } => {
                let e = bin_expr(op, &format!("s{a}"), &format!("s{b}"), mask);
                let _ = write!(self.out, "log_d0[{reg}usize] = {e};");
            }
            Uop::RdBinWrFast { op, rreg, b, mask, wreg } => {
                let e = bin_expr(op, &format!("log_d0[{rreg}usize]"), &format!("s{b}"), mask);
                let _ = write!(self.out, "log_d0[{wreg}usize] = {e};");
            }
        }
        let _ = writeln!(self.out, " }}");
    }

    /// Emits slot declarations plus the relooped body. Jumps are forward
    /// only (validated earlier), so every jump target `t` becomes a labeled
    /// block spanning micro-ops `[0, t)`; blocks nest by target and a jump
    /// is a `break` out of the matching block.
    fn emit_body(&mut self) {
        for (j, &v) in self.tac.slot_init.iter().enumerate() {
            let _ = writeln!(self.out, "let mut s{j}: u64 = {};", hex(v));
        }
        let mut targets: Vec<usize> = self
            .tac
            .uops
            .iter()
            .filter_map(|u| match *u {
                Uop::Jmp(t) => Some(t as usize),
                Uop::Jz { target, .. } | Uop::BinJz { target, .. } => Some(target as usize),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for &t in targets.iter().rev() {
            let _ = writeln!(self.out, "'l{t}: {{");
        }
        let mut close = targets.into_iter().peekable();
        for i in 0..self.tac.uops.len() {
            while close.peek() == Some(&i) {
                close.next();
                let _ = writeln!(self.out, "}}");
            }
            self.emit_uop(i);
        }
        while close.next().is_some() {
            let _ = writeln!(self.out, "}}");
        }
        // Fall-off backstop: valid lowerings always terminate, but a jump
        // to one-past-the-end lands here and must trap, not fall through.
        match self.kind {
            BodyKind::Rule { .. } => self.emit_trap(self.falloff_ord),
            // Excluded by `has_cycle_fn` eligibility; the tail value is the
            // `'r` block's (dead) result expression, emitted by the caller.
            BodyKind::Cycle => {}
        }
    }
}

/// Emits the batched lock-step form of one rule body: every micro-op is a
/// lane loop over SoA stripes (`reg * lanes + lane` planes,
/// `slot * lanes + lane` slot file) with the operation and log discipline
/// constant-folded — the loops carry no per-lane branches, so the
/// optimizer autovectorizes them. Conflict gates count passing lanes and
/// triage: all pass → fall through, none pass → the scalar failure
/// protocol, mixed → return `6`, i.e. divergence; the host re-runs lanes
/// through the scalar executor.
struct BatchBodyEmitter<'a> {
    cfg: LevelCfg,
    tac: &'a TacRule,
    rule_idx: usize,
    trap_ords: &'a HashMap<(usize, usize), usize>,
    falloff_ord: usize,
    out: &'a mut String,
}

impl BatchBodyEmitter<'_> {
    /// A self-contained gate over one register stripe: count lanes whose
    /// check byte has none of `bits` set, then triage. `wr` selects the
    /// write-gate check plane (log | cyc below `acc_logs`).
    fn emit_gate(&mut self, reg: u32, bits: u8, wr: bool, clean: bool, pc: u32) {
        let chk = self.chk_expr("_g + l", wr);
        let v = ((pc as u64) << 8) | if clean { 2 } else { 1 };
        let _ = writeln!(
            self.out,
            "{{ let _g = {reg}usize * lanes; let mut _np = 0usize; \
             for l in 0..lanes {{ _np += (({chk} & 0x{bits:x}) == 0) as usize; }} \
             if _np != lanes {{ if _np == 0 {{ *fail_reg = {reg}u32; return {v}u64; }} \
             return 6u64; }} }}"
        );
    }

    /// The per-lane conflict-check byte at flat index `i` (an expression).
    fn chk_expr(&self, i: &str, wr: bool) -> String {
        if self.cfg.acc_logs {
            format!("log_rw[{i}]")
        } else if wr {
            format!("(log_rw[{i}] | cyc_rw[{i}])")
        } else {
            format!("cyc_rw[{i}]")
        }
    }

    /// The flat plane index of an array access: `(base + (idx & amask)) *
    /// lanes + l`, recomputed per lane.
    fn arr_idx(idx: u16, base: u32, amask: u32) -> String {
        format!(
            "({base}usize + ((sp[{idx}usize * lanes + l] & 0x{amask:x}u64) as usize)) \
             * lanes + l"
        )
    }

    /// Gate for indexed (array-window) accesses. Unanimous failures also
    /// diverge: the failing register differs per lane, so `FailInfo` must
    /// come from the scalar fallback, which reproduces it byte-identically.
    fn emit_arr_gate(&mut self, idx: u16, base: u32, amask: u32, bits: u8, wr: bool) {
        let i = Self::arr_idx(idx, base, amask);
        let chk = self.chk_expr("_i", wr);
        let _ = writeln!(
            self.out,
            "{{ let mut _np = 0usize; \
             for l in 0..lanes {{ let _i = {i}; _np += (({chk} & 0x{bits:x}) == 0) as usize; }} \
             if _np != lanes {{ return 6u64; }} }}"
        );
    }

    /// Port-0 read recording at flat index `i` (a statement, possibly
    /// empty: design-specific levels skip R0 bookkeeping entirely).
    fn rd0_record_stmt(&self, i: &str) -> String {
        if self.cfg.design_specific {
            String::new()
        } else {
            format!("log_rw[{i}] |= 0x1; ")
        }
    }

    /// The port-0 read value at flat index `i` (an expression).
    fn rd0_val_expr(&self, i: &str) -> String {
        if self.cfg.no_boc {
            format!("log_d0[{i}]")
        } else {
            format!("boc[{i}]")
        }
    }

    /// The port-1 read value at flat index `i`: the forwarding chain
    /// (own W0 → earlier rules' W0 → beginning-of-cycle), blended
    /// branchlessly so the lane loop stays vector-shaped.
    fn rd1_val_expr(&self, i: &str) -> String {
        if self.cfg.no_boc {
            format!("log_d0[{i}]")
        } else if self.cfg.acc_logs {
            format!(
                "{{ let _m = lmask(log_rw[{i}] & 0x4 != 0); \
                 (log_d0[{i}] & _m) | (boc[{i}] & !_m) }}"
            )
        } else {
            format!(
                "{{ let _m0 = lmask(log_rw[{i}] & 0x4 != 0); \
                 let _m1 = lmask(cyc_rw[{i}] & 0x4 != 0); \
                 (log_d0[{i}] & _m0) | \
                 (((cyc_d0[{i}] & _m1) | (boc[{i}] & !_m1)) & !_m0) }}"
            )
        }
    }

    /// The log plane port-1 writes land in.
    fn w1_plane(&self) -> &'static str {
        if self.cfg.merged_data {
            "log_d0"
        } else {
            "log_d1"
        }
    }

    fn emit_uop(&mut self, i: usize) {
        let pc = self.tac.pcs[i];
        let _ = write!(self.out, "{{ ");
        match self.tac.uops[i] {
            Uop::Bin { op, dst, a, b, mask } => {
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _d = {dst}usize * lanes; let _a = {a}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ let _x = sp[_a + l]; let _y = sp[_b + l]; \
                     sp[_d + l] = {e}; }}"
                );
            }
            Uop::Not { dst, src, mask } => self.emit_map1(dst, src, &format!("!_x & {}", hex(mask))),
            Uop::Neg { dst, src, mask } => {
                self.emit_map1(dst, src, &format!("_x.wrapping_neg() & {}", hex(mask)));
            }
            Uop::Mask { dst, src, mask } => self.emit_map1(dst, src, &format!("_x & {}", hex(mask))),
            Uop::Sext { dst, src, from, mask } => {
                self.emit_map1(dst, src, &format!("sext({from}u32, _x) & {}", hex(mask)));
            }
            Uop::Slice { dst, src, lo, mask } => {
                self.emit_map1(dst, src, &format!("(_x >> {lo}u32) & {}", hex(mask)));
            }
            Uop::SliceSext { dst, src, lo, from, mask } => {
                let mof = if from >= 64 { u64::MAX } else { (1u64 << from) - 1 };
                self.emit_map1(
                    dst,
                    src,
                    &format!("sext({from}u32, (_x >> {lo}u32) & {}) & {}", hex(mof), hex(mask)),
                );
            }
            Uop::Select { dst, c, t, f } => {
                let _ = write!(
                    self.out,
                    "let _d = {dst}usize * lanes; let _c = {c}usize * lanes; \
                     let _t = {t}usize * lanes; let _f = {f}usize * lanes; \
                     for l in 0..lanes {{ let _m = lmask(sp[_c + l] != 0); \
                     sp[_d + l] = (sp[_t + l] & _m) | (sp[_f + l] & !_m); }}"
                );
            }
            Uop::Const { dst, imm } => {
                let _ = write!(
                    self.out,
                    "let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ sp[_d + l] = {}; }}",
                    hex(imm)
                );
            }
            Uop::Mov { dst, src } => self.emit_map1(dst, src, "_x"),
            Uop::Rd0 { dst, reg, clean } => {
                self.emit_gate(reg, 0xc, false, clean, pc);
                let rec = self.rd0_record_stmt("_r + l");
                let val = self.rd0_val_expr("_r + l");
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ {rec}sp[_d + l] = {val}; }}"
                );
            }
            Uop::Rd1 { dst, reg, clean } => {
                self.emit_gate(reg, 0x8, false, clean, pc);
                let val = self.rd1_val_expr("_r + l");
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ log_rw[_r + l] |= 0x2; sp[_d + l] = {val}; }}"
                );
            }
            Uop::Wr0 { src, reg, clean } => {
                self.emit_gate(reg, 0xe, true, clean, pc);
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _s = {src}usize * lanes; \
                     for l in 0..lanes {{ log_rw[_r + l] |= 0x4; \
                     log_d0[_r + l] = sp[_s + l]; }}"
                );
            }
            Uop::Wr1 { src, reg, clean } => {
                self.emit_gate(reg, 0x8, true, clean, pc);
                let plane = self.w1_plane();
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _s = {src}usize * lanes; \
                     for l in 0..lanes {{ log_rw[_r + l] |= 0x8; \
                     {plane}[_r + l] = sp[_s + l]; }}"
                );
            }
            Uop::RdFast { dst, reg } => {
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ sp[_d + l] = log_d0[_r + l]; }}"
                );
            }
            Uop::WrFast { src, reg } => {
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _s = {src}usize * lanes; \
                     for l in 0..lanes {{ log_d0[_r + l] = sp[_s + l]; }}"
                );
            }
            Uop::Rd0Arr { dst, idx, base, amask, clean } => {
                let _ = clean;
                self.emit_arr_gate(idx, base, amask, 0xc, false);
                let i = Self::arr_idx(idx, base, amask);
                let rec = self.rd0_record_stmt("_i");
                let val = self.rd0_val_expr("_i");
                let _ = write!(
                    self.out,
                    "let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ let _i = {i}; {rec}sp[_d + l] = {val}; }}"
                );
            }
            Uop::Rd1Arr { dst, idx, base, amask, clean } => {
                let _ = clean;
                self.emit_arr_gate(idx, base, amask, 0x8, false);
                let i = Self::arr_idx(idx, base, amask);
                let val = self.rd1_val_expr("_i");
                let _ = write!(
                    self.out,
                    "let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ let _i = {i}; log_rw[_i] |= 0x2; \
                     sp[_d + l] = {val}; }}"
                );
            }
            Uop::Wr0Arr { src, idx, base, amask, clean } => {
                let _ = clean;
                self.emit_arr_gate(idx, base, amask, 0xe, true);
                let i = Self::arr_idx(idx, base, amask);
                let _ = write!(
                    self.out,
                    "let _s = {src}usize * lanes; \
                     for l in 0..lanes {{ let _i = {i}; log_rw[_i] |= 0x4; \
                     log_d0[_i] = sp[_s + l]; }}"
                );
            }
            Uop::Wr1Arr { src, idx, base, amask, clean } => {
                let _ = clean;
                self.emit_arr_gate(idx, base, amask, 0x8, true);
                let i = Self::arr_idx(idx, base, amask);
                let plane = self.w1_plane();
                let _ = write!(
                    self.out,
                    "let _s = {src}usize * lanes; \
                     for l in 0..lanes {{ let _i = {i}; log_rw[_i] |= 0x8; \
                     {plane}[_i] = sp[_s + l]; }}"
                );
            }
            Uop::RdArrFast { dst, idx, base, amask } => {
                let i = Self::arr_idx(idx, base, amask);
                let _ = write!(
                    self.out,
                    "let _d = {dst}usize * lanes; \
                     for l in 0..lanes {{ let _i = {i}; sp[_d + l] = log_d0[_i]; }}"
                );
            }
            Uop::WrArrFast { src, idx, base, amask } => {
                let i = Self::arr_idx(idx, base, amask);
                let _ = write!(
                    self.out,
                    "let _s = {src}usize * lanes; \
                     for l in 0..lanes {{ let _i = {i}; log_d0[_i] = sp[_s + l]; }}"
                );
            }
            Uop::Jmp(t) => {
                let _ = write!(self.out, "break 'l{t};");
            }
            Uop::Jz { cond, target } => {
                let _ = write!(
                    self.out,
                    "let _c = {cond}usize * lanes; let mut _nz = 0usize; \
                     for l in 0..lanes {{ _nz += (sp[_c + l] == 0) as usize; }} \
                     if _nz == lanes {{ break 'l{target}; }} if _nz != 0 {{ return 6u64; }}"
                );
            }
            Uop::BinJz { op, a, b, mask, target } => {
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _a = {a}usize * lanes; let _b = {b}usize * lanes; \
                     let mut _nz = 0usize; \
                     for l in 0..lanes {{ let _x = sp[_a + l]; let _y = sp[_b + l]; \
                     _nz += ({e} == 0) as usize; }} \
                     if _nz == lanes {{ break 'l{target}; }} if _nz != 0 {{ return 6u64; }}"
                );
            }
            Uop::Abort { clean } => {
                let v = ((pc as u64) << 8) | if clean { 4 } else { 3 };
                let _ = write!(self.out, "return {v}u64;");
            }
            Uop::Cov(id) => {
                let _ = write!(
                    self.out,
                    "let _c = {id}usize * lanes; \
                     for l in 0..lanes {{ cov[_c + l] += 1; }}"
                );
            }
            Uop::End => {
                let _ = write!(self.out, "return 0u64;");
            }
            Uop::Trap(_) => {
                let ord = self.trap_ords[&(self.rule_idx, i)];
                let v = ((ord as u64) << 8) | 5;
                let _ = write!(self.out, "return {v}u64;");
            }
            Uop::RdBin { op, dst, reg, b, mask, clean } => {
                self.emit_gate(reg, 0xc, false, clean, pc);
                let rec = self.rd0_record_stmt("_r + l");
                let val = self.rd0_val_expr("_r + l");
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _d = {dst}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ {rec}let _x = {val}; let _y = sp[_b + l]; \
                     sp[_d + l] = {e}; }}"
                );
            }
            Uop::BinWr { op, a, b, mask, reg, clean } => {
                self.emit_gate(reg, 0xe, true, clean, pc);
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _a = {a}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ log_rw[_r + l] |= 0x4; \
                     let _x = sp[_a + l]; let _y = sp[_b + l]; \
                     log_d0[_r + l] = {e}; }}"
                );
            }
            Uop::RdBinWr { op, rreg, b, mask, wreg, rclean, wclean } => {
                self.emit_gate(rreg, 0xc, false, rclean, pc);
                // R0 is recorded before the write gate, so a unanimous
                // write conflict leaves the same log the scalar path does.
                let rec = self.rd0_record_stmt("_r + l");
                if !rec.is_empty() {
                    let _ = write!(
                        self.out,
                        "{{ let _r = {rreg}usize * lanes; for l in 0..lanes {{ {rec}}} }} "
                    );
                }
                self.emit_gate(wreg, 0xe, true, wclean, self.tac.pcs2[i]);
                let val = self.rd0_val_expr("_r + l");
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _r = {rreg}usize * lanes; let _w = {wreg}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ log_rw[_w + l] |= 0x4; \
                     let _x = {val}; let _y = sp[_b + l]; \
                     log_d0[_w + l] = {e}; }}"
                );
            }
            Uop::RdBinFast { op, dst, reg, b, mask } => {
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _d = {dst}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ let _x = log_d0[_r + l]; \
                     let _y = sp[_b + l]; sp[_d + l] = {e}; }}"
                );
            }
            Uop::BinWrFast { op, a, b, mask, reg } => {
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _r = {reg}usize * lanes; let _a = {a}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ let _x = sp[_a + l]; let _y = sp[_b + l]; \
                     log_d0[_r + l] = {e}; }}"
                );
            }
            Uop::RdBinWrFast { op, rreg, b, mask, wreg } => {
                let e = bin_expr(op, "_x", "_y", mask);
                let _ = write!(
                    self.out,
                    "let _r = {rreg}usize * lanes; let _w = {wreg}usize * lanes; \
                     let _b = {b}usize * lanes; \
                     for l in 0..lanes {{ let _x = log_d0[_r + l]; \
                     let _y = sp[_b + l]; log_d0[_w + l] = {e}; }}"
                );
            }
        }
        let _ = writeln!(self.out, " }}");
    }

    /// A unary slot-to-slot lane loop (`_x` is the source element).
    fn emit_map1(&mut self, dst: u16, src: u16, expr: &str) {
        let _ = write!(
            self.out,
            "let _d = {dst}usize * lanes; let _s = {src}usize * lanes; \
             for l in 0..lanes {{ let _x = sp[_s + l]; sp[_d + l] = {expr}; }}"
        );
    }

    /// The relooped body: the same forward-jump-to-labeled-block scheme the
    /// scalar emitter uses, with the batch falloff backstop.
    fn emit_body(&mut self) {
        let mut targets: Vec<usize> = self
            .tac
            .uops
            .iter()
            .filter_map(|u| match *u {
                Uop::Jmp(t) => Some(t as usize),
                Uop::Jz { target, .. } | Uop::BinJz { target, .. } => Some(target as usize),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for &t in targets.iter().rev() {
            let _ = writeln!(self.out, "'l{t}: {{");
        }
        let mut close = targets.into_iter().peekable();
        for i in 0..self.tac.uops.len() {
            while close.peek() == Some(&i) {
                close.next();
                let _ = writeln!(self.out, "}}");
            }
            self.emit_uop(i);
        }
        while close.next().is_some() {
            let _ = writeln!(self.out, "}}");
        }
        let v = ((self.falloff_ord as u64) << 8) | 5;
        let _ = writeln!(self.out, "return {v}u64;");
    }
}

/// Validates the parts of a lowered rule whose violation would be
/// undefined behavior (raw-slice indices) or unmappable control flow
/// (backward jumps) in generated code. Slot indices need no check: an
/// out-of-range slot becomes an undeclared variable and fails to compile.
fn validate_rule(prog: &Program, tac: &TacRule, rule_idx: usize) -> Result<(), NativeError> {
    let n = prog.init.len();
    let ncov = prog.cov.len();
    let len = tac.uops.len();
    let err = |i: usize, what: String| {
        Err(NativeError::Unsupported(format!(
            "rule {rule_idx} uop {i}: {what}"
        )))
    };
    for (i, u) in tac.uops.iter().enumerate() {
        let reg_ok = |r: u32| (r as usize) < n;
        match *u {
            Uop::Rd0 { reg, .. }
            | Uop::Rd1 { reg, .. }
            | Uop::Wr0 { reg, .. }
            | Uop::Wr1 { reg, .. }
            | Uop::RdFast { reg, .. }
            | Uop::WrFast { reg, .. }
            | Uop::RdBin { reg, .. }
            | Uop::BinWr { reg, .. }
            | Uop::RdBinFast { reg, .. }
            | Uop::BinWrFast { reg, .. }
                if !reg_ok(reg) =>
            {
                return err(i, format!("register {reg} out of range (n = {n})"));
            }
            Uop::RdBinWr { rreg, wreg, .. } | Uop::RdBinWrFast { rreg, wreg, .. }
                if !reg_ok(rreg) || !reg_ok(wreg) =>
            {
                return err(i, format!("register out of range (n = {n})"));
            }
            Uop::Rd0Arr { base, amask, .. }
            | Uop::Rd1Arr { base, amask, .. }
            | Uop::Wr0Arr { base, amask, .. }
            | Uop::Wr1Arr { base, amask, .. }
            | Uop::RdArrFast { base, amask, .. }
            | Uop::WrArrFast { base, amask, .. }
                if base as usize + amask as usize >= n =>
            {
                return err(i, format!("array window {base}+{amask} out of range (n = {n})"));
            }
            Uop::Cov(id) if id as usize >= ncov => {
                return err(i, format!("coverage id {id} out of range ({ncov} points)"));
            }
            Uop::Jmp(t) if (t as usize) <= i || (t as usize) > len => {
                return err(i, format!("non-forward jump to {t}"));
            }
            Uop::Jz { target, .. } | Uop::BinJz { target, .. }
                if (target as usize) <= i || (target as usize) > len =>
            {
                return err(i, format!("non-forward jump to {target}"));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Emits the complete generated crate for `prog`: the `Ctx` mirror, the
/// word-arithmetic helpers (exact duplicates of `koika::bits::word`), two
/// `extern "C"` functions per rule (plain + profiling), and — when the
/// design is eligible — a whole-design `koika_cycle` fast path.
///
/// With `batch_lanes = Some(n)` the crate additionally carries one batched
/// lock-step entry point per rule, specialized to exactly `n` lanes: the
/// lane count is baked in as a constant so every lane loop has a
/// compile-time trip count (no remainder loops, constant stripe offsets),
/// and the loop bodies live in an inner function taking each SoA plane as
/// a distinct `&mut` slice, which hands LLVM the no-alias guarantees the
/// raw `BCtx` pointers cannot express. An engine built with one lane count
/// must only be driven at that width — the entry points reject any other
/// `ctx.lanes` with status code `7`.
fn emit_source(
    prog: &Program,
    tac: &TacProgram,
    batch_lanes: Option<usize>,
) -> Result<Emitted, NativeError> {
    let cfg = prog.cfg;
    let n = prog.init.len();
    let nrules = prog.rules.len();

    // Pre-scan: trap ordinals (shared between the plain and profiling
    // variants of a rule so payloads mean the same thing) plus one
    // fall-off backstop ordinal per rule.
    let mut traps: Vec<(u32, &'static str)> = Vec::new();
    let mut trap_ords: HashMap<(usize, usize), usize> = HashMap::new();
    let mut falloff_ords: Vec<usize> = Vec::with_capacity(nrules);
    let mut has_cycle_fn = true;
    for (k, tr) in tac.rules.iter().enumerate() {
        validate_rule(prog, tr, k)?;
        for (i, u) in tr.uops.iter().enumerate() {
            match *u {
                Uop::Trap(what) => {
                    trap_ords.insert((k, i), traps.len());
                    traps.push((tr.pcs[i], what));
                    has_cycle_fn = false;
                }
                Uop::Jmp(t) if t as usize == tr.uops.len() => has_cycle_fn = false,
                Uop::Jz { target, .. } | Uop::BinJz { target, .. }
                    if target as usize == tr.uops.len() =>
                {
                    has_cycle_fn = false
                }
                _ => {}
            }
        }
        falloff_ords.push(traps.len());
        traps.push((0, "micro-op execution fell off the end"));
    }

    let mut out = String::with_capacity(1 << 16);
    let _ = writeln!(out, "// koika-native-abi v{ABI_VERSION}");
    let _ = writeln!(
        out,
        "// design: {} fingerprint: {:016x} level: {} regs: {} cov: {} \
         cfg: acc={} rof={} merged={} noboc={} ds={}",
        prog.design.name,
        prog.design.fingerprint(),
        prog.level.short_name(),
        n,
        prog.cov.len(),
        cfg.acc_logs,
        cfg.reset_on_fail,
        cfg.merged_data,
        cfg.no_boc,
        cfg.design_specific
    );
    out.push_str(
        "#![allow(unused_variables, unused_mut, unused_assignments, unreachable_code, \
         unused_labels, unused_parens, dead_code, unused_unsafe)]\n",
    );
    out.push_str(
        "#[repr(C)]\npub struct Ctx {\n\
         pub boc: *mut u64,\n\
         pub cyc_rw: *mut u8,\n\
         pub log_rw: *mut u8,\n\
         pub cyc_d0: *mut u64,\n\
         pub cyc_d1: *mut u64,\n\
         pub log_d0: *mut u64,\n\
         pub log_d1: *mut u64,\n\
         pub cov: *mut u64,\n\
         pub fired: *mut u64,\n\
         pub fired_per_rule: *mut u64,\n\
         pub fail_per_rule: *mut u64,\n\
         pub fail_reg: u32,\n\
         pub last_rule: u32,\n\
         pub last_pc: u32,\n\
         pub last_reg: u32,\n\
         pub last_kind: u32,\n\
         pub pad: u32,\n\
         pub executed: u64,\n\
         }\n",
    );
    out.push_str(
        "#[repr(C)]\npub struct BCtx {\n\
         pub boc: *mut u64,\n\
         pub cyc_rw: *mut u8,\n\
         pub log_rw: *mut u8,\n\
         pub cyc_d0: *mut u64,\n\
         pub cyc_d1: *mut u64,\n\
         pub log_d0: *mut u64,\n\
         pub log_d1: *mut u64,\n\
         pub cov: *mut u64,\n\
         pub slots: *mut u64,\n\
         pub lanes: usize,\n\
         pub fail_reg: u32,\n\
         pub pad: u32,\n\
         }\n",
    );
    let _ = writeln!(out, "const N: usize = {n};");
    let _ = writeln!(out, "const BOC_LEN: usize = {};", if cfg.no_boc { 0 } else { n });
    let _ = writeln!(out, "const D1_LEN: usize = {};", if cfg.merged_data { 0 } else { n });
    let _ = writeln!(out, "const NCOV: usize = {};", prog.cov.len());
    let _ = writeln!(out, "const NRULES: usize = {nrules};");
    if let Some(bl) = batch_lanes {
        let _ = writeln!(out, "const BL: usize = {bl};");
    }
    // Word-arithmetic helpers: exact duplicates of `koika::bits::word` so
    // the generated code computes bit-for-bit what every interpreter does.
    out.push_str(
        "#[inline(always)]\nfn mask(w: u32) -> u64 { u64::MAX >> (64 - w) }\n\
         #[inline(always)]\nfn sext(w: u32, a: u64) -> u64 {\n\
         if w == 0 { 0 } else if w >= 64 { a } \
         else { (((a << (64 - w)) as i64) >> (64 - w)) as u64 }\n}\n\
         #[inline(always)]\nfn sra(w: u32, a: u64, sh: u64) -> u64 {\n\
         if w == 0 { return 0; }\n\
         let sh = sh.min(w as u64 - 1);\n\
         (((sext(w, a) as i64) >> sh) as u64) & mask(w)\n}\n\
         #[inline(always)]\nfn slt(w: u32, a: u64, b: u64) -> u64 {\n\
         ((sext(w, a) as i64) < (sext(w, b) as i64)) as u64\n}\n\
         #[inline(always)]\nfn concat(low: u32, a: u64, b: u64) -> u64 {\n\
         if low >= 64 { b } else { (a << low) | b }\n}\n\
         #[inline(always)]\nfn lmask(c: bool) -> u64 { 0u64.wrapping_sub(c as u64) }\n",
    );

    let emit_slices = |out: &mut String| {
        out.push_str(
            "let ctx = &mut *ctx;\n\
             let boc: &mut [u64] = core::slice::from_raw_parts_mut(ctx.boc, BOC_LEN);\n\
             let cyc_rw: &mut [u8] = core::slice::from_raw_parts_mut(ctx.cyc_rw, N);\n\
             let log_rw: &mut [u8] = core::slice::from_raw_parts_mut(ctx.log_rw, N);\n\
             let cyc_d0: &mut [u64] = core::slice::from_raw_parts_mut(ctx.cyc_d0, N);\n\
             let cyc_d1: &mut [u64] = core::slice::from_raw_parts_mut(ctx.cyc_d1, D1_LEN);\n\
             let log_d0: &mut [u64] = core::slice::from_raw_parts_mut(ctx.log_d0, N);\n\
             let log_d1: &mut [u64] = core::slice::from_raw_parts_mut(ctx.log_d1, D1_LEN);\n\
             let cov: &mut [u64] = core::slice::from_raw_parts_mut(ctx.cov, NCOV);\n",
        );
    };

    // Per-rule entry points (plain + profiling flavours).
    for (k, tr) in tac.rules.iter().enumerate() {
        for prof in [false, true] {
            let name = if prof {
                format!("koika_rule_{k}_prof")
            } else {
                format!("koika_rule_{k}")
            };
            let _ = writeln!(
                out,
                "#[no_mangle]\npub extern \"C\" fn {name}(ctx: *mut Ctx) -> u64 {{ unsafe {{"
            );
            emit_slices(&mut out);
            if prof {
                out.push_str("let mut w: u64 = 0u64;\n");
            }
            let mut be = BodyEmitter {
                cfg,
                kind: BodyKind::Rule { prof },
                rule_idx: k,
                tac: tr,
                trap_ords: &trap_ords,
                falloff_ord: falloff_ords[k],
                out: &mut out,
            };
            be.emit_body();
            out.push_str("\n} }\n");
        }
    }

    // Batched lock-step entry points, only when a lane count was requested.
    // The `extern "C"` shell turns the `BCtx` pointers into exactly-sized
    // `&mut` slices (empty planes become zero-length slices, so the
    // dangling pointers of never-allocated level-elided arrays are fine)
    // and calls an inner Rust function — distinct `&mut` arguments carry
    // the no-alias guarantee that lets the lane loops vectorize without
    // runtime overlap checks, and the baked `BL` trip count removes
    // remainder loops and makes every stripe offset a constant. Unanimous
    // outcomes are merged here too (ABI v4): the shell routes code `0`
    // through the baked commit lane loops and codes `1`/`3` through the
    // baked rollback, so the host never touches the planes on a lock-step
    // outcome.
    if batch_lanes.is_some() {
        for (k, tr) in tac.rules.iter().enumerate() {
            let nslots = tr.slot_init.len();
            let _ = writeln!(
                out,
                "fn rule_{k}_batch_go(boc: &mut [u64], cyc_rw: &mut [u8], \
                 log_rw: &mut [u8], cyc_d0: &mut [u64], log_d0: &mut [u64], \
                 log_d1: &mut [u64], cov: &mut [u64], sp: &mut [u64], \
                 fail_reg: &mut u32) -> u64 {{\nlet lanes = BL;"
            );
            let mut be = BatchBodyEmitter {
                cfg,
                tac: tr,
                rule_idx: k,
                trap_ords: &trap_ords,
                falloff_ord: falloff_ords[k],
                out: &mut out,
            };
            be.emit_body();
            out.push_str("}\n");
            let _ = writeln!(
                out,
                "fn rule_{k}_batch_commit(cyc_rw: &mut [u8], log_rw: &[u8], \
                 cyc_d0: &mut [u64], log_d0: &[u64], \
                 cyc_d1: &mut [u64], log_d1: &[u64]) {{"
            );
            emit_batch_commit(&mut out, cfg, &prog.rules[k]);
            out.push_str("}\n");
            if cfg.reset_on_fail {
                let _ = writeln!(
                    out,
                    "fn rule_{k}_batch_rollback(cyc_rw: &[u8], log_rw: &mut [u8], \
                     cyc_d0: &[u64], log_d0: &mut [u64], \
                     cyc_d1: &[u64], log_d1: &mut [u64]) {{"
                );
                emit_batch_rollback(&mut out, cfg, &prog.rules[k]);
                out.push_str("}\n");
            }
            let rollback_arm = if cfg.reset_on_fail {
                format!(
                    "else if _c == 1u64 || _c == 3u64 {{\n\
                     rule_{k}_batch_rollback(\n\
                     core::slice::from_raw_parts(ctx.cyc_rw, N * BL),\n\
                     core::slice::from_raw_parts_mut(ctx.log_rw, N * BL),\n\
                     core::slice::from_raw_parts(ctx.cyc_d0, N * BL),\n\
                     core::slice::from_raw_parts_mut(ctx.log_d0, N * BL),\n\
                     core::slice::from_raw_parts(ctx.cyc_d1, D1_LEN * BL),\n\
                     core::slice::from_raw_parts_mut(ctx.log_d1, D1_LEN * BL));\n\
                     }}\n"
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "#[no_mangle]\npub extern \"C\" fn koika_rule_{k}_batch(ctx: *mut BCtx) -> u64 {{ \
                 unsafe {{\n\
                 let ctx = &mut *ctx;\n\
                 if ctx.lanes != BL {{ return 7u64; }}\n\
                 let _r = rule_{k}_batch_go(\n\
                 core::slice::from_raw_parts_mut(ctx.boc, BOC_LEN * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.cyc_rw, N * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.log_rw, N * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.cyc_d0, N * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.log_d0, N * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.log_d1, D1_LEN * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.cov, NCOV * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.slots, {nslots}usize * BL),\n\
                 &mut ctx.fail_reg);\n\
                 let _c = _r & 0xffu64;\n\
                 if _c == 0u64 {{\n\
                 rule_{k}_batch_commit(\n\
                 core::slice::from_raw_parts_mut(ctx.cyc_rw, N * BL),\n\
                 core::slice::from_raw_parts(ctx.log_rw, N * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.cyc_d0, N * BL),\n\
                 core::slice::from_raw_parts(ctx.log_d0, N * BL),\n\
                 core::slice::from_raw_parts_mut(ctx.cyc_d1, D1_LEN * BL),\n\
                 core::slice::from_raw_parts(ctx.log_d1, D1_LEN * BL));\n\
                 }} {rollback_arm}\
                 _r\n\
                 }} }}"
            );
        }
    }

    if has_cycle_fn {
        emit_cycle_fn(&mut out, prog, tac, &trap_ords, &falloff_ords, emit_slices);
    }

    Ok(Emitted { source: out, traps, has_cycle_fn })
}

/// Emits the whole-design `koika_cycle` function: begin-cycle reset, every
/// scheduled rule inline (outcome via label-break-value), baked
/// commit/rollback per the rule's [`CopyPlan`], and the end-of-cycle
/// beginning-of-cycle-state merge. Returns `1` if any rule failed.
fn emit_cycle_fn(
    out: &mut String,
    prog: &Program,
    tac: &TacProgram,
    trap_ords: &HashMap<(usize, usize), usize>,
    falloff_ords: &[usize],
    emit_slices: impl Fn(&mut String),
) {
    let cfg = prog.cfg;
    let _ = writeln!(
        out,
        "#[no_mangle]\npub extern \"C\" fn koika_cycle(ctx: *mut Ctx) -> u64 {{ unsafe {{"
    );
    emit_slices(out);
    out.push_str(
        "let fired_per_rule: &mut [u64] = \
         core::slice::from_raw_parts_mut(ctx.fired_per_rule, NRULES);\n\
         let fail_per_rule: &mut [u64] = \
         core::slice::from_raw_parts_mut(ctx.fail_per_rule, NRULES);\n\
         let mut _any_fail: u64 = 0u64;\n",
    );
    // begin_cycle
    out.push_str("for _b in cyc_rw.iter_mut() { *_b = 0; }\n");
    if cfg.reset_on_fail {
        out.push_str("for _b in log_rw.iter_mut() { *_b = 0; }\n");
    }
    for &k in &prog.schedule {
        let tr = &tac.rules[k];
        let rule = &prog.rules[k];
        let _ = writeln!(out, "// rule {k}: {}", rule.name);
        // rule_prologue, baked.
        if !cfg.acc_logs {
            out.push_str("for _b in log_rw.iter_mut() { *_b = 0; }\n");
        } else if !cfg.reset_on_fail {
            out.push_str("log_rw.copy_from_slice(cyc_rw);\nlog_d0.copy_from_slice(cyc_d0);\n");
            if !cfg.merged_data {
                out.push_str("log_d1.copy_from_slice(cyc_d1);\n");
            }
        }
        out.push_str("let _res: u64 = 'r: {\n");
        let mut be = BodyEmitter {
            cfg,
            kind: BodyKind::Cycle,
            rule_idx: k,
            tac: tr,
            trap_ords,
            falloff_ord: falloff_ords[k],
            out,
        };
        be.emit_body();
        out.push_str("1u64\n};\n");
        out.push_str("if _res == 0 {\n");
        emit_commit(out, cfg, rule);
        let _ = writeln!(out, "*ctx.fired += 1; fired_per_rule[{k}usize] += 1;");
        out.push_str("} else {\n");
        let _ = writeln!(out, "_any_fail = 1u64; fail_per_rule[{k}usize] += 1;");
        if cfg.reset_on_fail {
            out.push_str("if _res == 1u64 || _res == 3u64 {\n");
            emit_rollback(out, cfg, rule);
            out.push_str("}\n");
        }
        out.push_str("}\n");
    }
    // end_cycle: merge the cycle log into the beginning-of-cycle state.
    if !cfg.no_boc {
        let d1 = if cfg.merged_data { "cyc_d0" } else { "cyc_d1" };
        let _ = writeln!(
            out,
            "for _i in 0..BOC_LEN {{ let _rw = cyc_rw[_i]; \
             if _rw & 0x8 != 0 {{ boc[_i] = {d1}[_i]; }} \
             else if _rw & 0x4 != 0 {{ boc[_i] = cyc_d0[_i]; }} }}"
        );
    }
    out.push_str("_any_fail\n} }\n");
}

fn usize_list(xs: &[u32]) -> String {
    let mut s = String::from("[");
    for (j, x) in xs.iter().enumerate() {
        if j > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{x}usize");
    }
    s.push(']');
    s
}

/// Baked mirror of [`rule_commit`] (minus the fired counters, emitted by
/// the caller).
fn emit_commit(out: &mut String, cfg: LevelCfg, rule: &RuleCode) {
    if !cfg.acc_logs {
        let w1 = if cfg.merged_data {
            "cyc_d0[_i] = log_d0[_i];"
        } else {
            "cyc_d1[_i] = log_d1[_i];"
        };
        let _ = writeln!(
            out,
            "for _i in 0..N {{ let _rl = log_rw[_i]; if _rl != 0 {{ \
             cyc_rw[_i] |= _rl; \
             if _rl & 0x4 != 0 {{ cyc_d0[_i] = log_d0[_i]; }} \
             if _rl & 0x8 != 0 {{ {w1} }} }} }}"
        );
    } else {
        match &rule.commit {
            CopyPlan::Full => {
                out.push_str("cyc_rw.copy_from_slice(log_rw);\ncyc_d0.copy_from_slice(log_d0);\n");
                if !cfg.merged_data {
                    out.push_str("cyc_d1.copy_from_slice(log_d1);\n");
                }
            }
            CopyPlan::Footprint { rw, data } => {
                if !rw.is_empty() {
                    let _ = writeln!(
                        out,
                        "for _i in {} {{ cyc_rw[_i] = log_rw[_i]; }}",
                        usize_list(rw)
                    );
                }
                if !data.is_empty() {
                    let d1 = if cfg.merged_data {
                        ""
                    } else {
                        " cyc_d1[_i] = log_d1[_i];"
                    };
                    let _ = writeln!(
                        out,
                        "for _i in {} {{ cyc_d0[_i] = log_d0[_i];{d1} }}",
                        usize_list(data)
                    );
                }
            }
        }
    }
}

/// Baked mirror of the rollback half of [`rule_failure`].
fn emit_rollback(out: &mut String, cfg: LevelCfg, rule: &RuleCode) {
    match &rule.rollback {
        CopyPlan::Full => {
            out.push_str("log_rw.copy_from_slice(cyc_rw);\nlog_d0.copy_from_slice(cyc_d0);\n");
            if !cfg.merged_data {
                out.push_str("log_d1.copy_from_slice(cyc_d1);\n");
            }
        }
        CopyPlan::Footprint { rw, data } => {
            if !rw.is_empty() {
                let _ = writeln!(out, "for _i in {} {{ log_rw[_i] = cyc_rw[_i]; }}", usize_list(rw));
            }
            if !data.is_empty() {
                let d1 = if cfg.merged_data {
                    ""
                } else {
                    " log_d1[_i] = cyc_d1[_i];"
                };
                let _ = writeln!(
                    out,
                    "for _i in {} {{ log_d0[_i] = cyc_d0[_i];{d1} }}",
                    usize_list(data)
                );
            }
        }
    }
}

/// Emits one batched stripe copy (`dst[r*BL+l] = src[r*BL+l]` for every
/// lane) per register in `regs` — constant stripe offsets, constant `BL`
/// trip count, so each compiles to straight vector moves.
fn emit_batch_stripe_copies(out: &mut String, dst: &str, src: &str, regs: &[u32]) {
    for &r in regs {
        let _ = writeln!(
            out,
            "for _l in 0..BL {{ {dst}[{r}usize * BL + _l] = {src}[{r}usize * BL + _l]; }}"
        );
    }
}

/// Baked batched mirror of the host's lock-step commit arm: the same plane
/// merge `BatchSim::step_rule_batch_inner` performs on a unanimous commit,
/// as `BL`-wide lane loops. Below `acc_logs` the rule prologue zero-filled
/// `log_rw`, so a whole-plane branchless blend merges exactly the rule's
/// own writes; at `acc_logs` levels the rule's [`CopyPlan`] footprint is
/// unrolled into constant-offset stripe copies.
fn emit_batch_commit(out: &mut String, cfg: LevelCfg, rule: &RuleCode) {
    if !cfg.acc_logs {
        out.push_str("for _i in 0..N * BL { cyc_rw[_i] |= log_rw[_i]; }\n");
        if cfg.merged_data {
            out.push_str(
                "for _i in 0..N * BL { let _m = lmask(log_rw[_i] & 0xcu8 != 0); \
                 cyc_d0[_i] = (log_d0[_i] & _m) | (cyc_d0[_i] & !_m); }\n\
                 let _ = (cyc_d1, log_d1);\n",
            );
        } else {
            out.push_str(
                "for _i in 0..N * BL { let _m = lmask(log_rw[_i] & 0x4u8 != 0); \
                 cyc_d0[_i] = (log_d0[_i] & _m) | (cyc_d0[_i] & !_m); }\n\
                 for _i in 0..D1_LEN * BL { let _m = lmask(log_rw[_i] & 0x8u8 != 0); \
                 cyc_d1[_i] = (log_d1[_i] & _m) | (cyc_d1[_i] & !_m); }\n",
            );
        }
        return;
    }
    match &rule.commit {
        CopyPlan::Full => {
            out.push_str("cyc_rw.copy_from_slice(log_rw);\ncyc_d0.copy_from_slice(log_d0);\n");
            if !cfg.merged_data {
                out.push_str("cyc_d1.copy_from_slice(log_d1);\n");
            } else {
                out.push_str("let _ = (cyc_d1, log_d1);\n");
            }
        }
        CopyPlan::Footprint { rw, data } => {
            emit_batch_stripe_copies(out, "cyc_rw", "log_rw", rw);
            emit_batch_stripe_copies(out, "cyc_d0", "log_d0", data);
            if !cfg.merged_data {
                emit_batch_stripe_copies(out, "cyc_d1", "log_d1", data);
            } else {
                out.push_str("let _ = (cyc_d1, log_d1);\n");
            }
        }
    }
}

/// Baked batched mirror of the rollback half of the host's lock-step
/// failure arm (`reset_on_fail` levels only — below that the next rule's
/// prologue rebuilds log state and nothing is emitted or called).
fn emit_batch_rollback(out: &mut String, cfg: LevelCfg, rule: &RuleCode) {
    match &rule.rollback {
        CopyPlan::Full => {
            out.push_str("log_rw.copy_from_slice(cyc_rw);\nlog_d0.copy_from_slice(cyc_d0);\n");
            if !cfg.merged_data {
                out.push_str("log_d1.copy_from_slice(cyc_d1);\n");
            } else {
                out.push_str("let _ = (cyc_d1, log_d1);\n");
            }
        }
        CopyPlan::Footprint { rw, data } => {
            emit_batch_stripe_copies(out, "log_rw", "cyc_rw", rw);
            emit_batch_stripe_copies(out, "log_d0", "cyc_d0", data);
            if !cfg.merged_data {
                emit_batch_stripe_copies(out, "log_d1", "cyc_d1", data);
            } else {
                out.push_str("let _ = (cyc_d1, log_d1);\n");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Build cache and loading.
// ---------------------------------------------------------------------------

/// A generated rule/cycle entry point inside the loaded cdylib.
type RuleFn = unsafe extern "C" fn(*mut NativeCtx) -> u64;

/// A generated batched lock-step rule entry point.
pub(crate) type BatchFn = unsafe extern "C" fn(*mut NativeBatchCtx) -> u64;

/// A loaded native engine for one `(design, level, coverage)` compilation:
/// the open cdylib plus its resolved entry points and the host-retained
/// trap table. Shared via `Arc` through a process-wide cache, so a fuzz
/// matrix instantiating hundreds of `Sim`s compiles each design once.
pub struct NativeEngine {
    _lib: dl::Handle,
    rule_fns: Vec<RuleFn>,
    rule_prof_fns: Vec<RuleFn>,
    batch_fns: Vec<BatchFn>,
    cycle_fn: Option<RuleFn>,
    traps: Vec<(u32, &'static str)>,
    so_path: PathBuf,
}

impl NativeEngine {
    /// Path of the cached cdylib this engine was loaded from.
    pub fn so_path(&self) -> &Path {
        &self.so_path
    }

    /// Whether the design was eligible for the whole-cycle fast path.
    pub fn has_cycle_fn(&self) -> bool {
        self.cycle_fn.is_some()
    }

    /// The trap table entry a code-5 return's payload names.
    pub(crate) fn trap(&self, ord: usize) -> (u32, &'static str) {
        self.traps[ord]
    }

    /// The batched lock-step entry point for one rule, as a bare function
    /// pointer — the hot per-rule path copies this out instead of keeping
    /// an engine borrow (or touching the `Arc` refcount) across the call.
    /// Only engines from [`build_engine_batched`] have these.
    ///
    /// # Panics
    ///
    /// Panics if the engine was built without batched entry points.
    pub(crate) fn batch_fn(&self, rule_idx: usize) -> BatchFn {
        self.batch_fns[rule_idx]
    }
}

/// Runs one rule's batched lock-step entry point. Returns the scalar
/// outcome protocol extended with `6` = divergence and `7` = lane-count
/// mismatch (the engine was built for a different batch width).
///
/// The caller guarantees `f` came from [`NativeEngine::batch_fn`] and that
/// every pointer in `ctx` covers a full `reg * lanes`-shaped plane of the
/// program the engine was built for, at the lane count it was built for
/// (planes a level leaves empty are never dereferenced — the emitter baked
/// the level in), and that `ctx.slots` holds the rule's
/// `slot_init.len() * lanes` slot file.
pub(crate) fn run_rule_batch_native(f: BatchFn, ctx: &mut NativeBatchCtx) -> u64 {
    // SAFETY: per the contract above; the cache key ties the cdylib to the
    // emitter version, so the symbol has exactly this signature, and the
    // generated shell re-checks `ctx.lanes` against its baked width before
    // touching any plane.
    unsafe { f(ctx) }
}

impl fmt::Debug for NativeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeEngine")
            .field("so_path", &self.so_path)
            .field("rules", &self.rule_fns.len())
            .field("has_cycle_fn", &self.cycle_fn.is_some())
            .finish()
    }
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The cache key: FNV-1a over the design fingerprint and the full emitted
/// source (whose header carries the ABI version, level, and cfg flags, so
/// any change to design shape, optimization level, or emitter invalidates).
fn cache_key(prog: &Program, source: &str) -> u64 {
    let h = fnv1a(0xcbf29ce484222325, &prog.design.fingerprint().to_le_bytes());
    fnv1a(h, source.as_bytes())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

fn artifact_stem(prog: &Program, key: u64) -> String {
    format!("{}-{key:016x}", sanitize(&prog.design.name))
}

/// The on-disk cdylib path `prog` would build to, without building it.
/// The path embeds the design fingerprint and full source hash, which is
/// what the cache-invalidation guarantee rests on (and what the
/// fingerprint-invalidation test asserts).
///
/// # Errors
///
/// [`NativeError::Unsupported`] if the lowered program cannot be emitted.
pub fn cache_path_for(prog: &Program) -> Result<PathBuf, NativeError> {
    let tac = TacProgram::lower(prog);
    let emitted = emit_source(prog, &tac, None)?;
    let key = cache_key(prog, &emitted.source);
    Ok(cache_dir().join(format!("{}.so", artifact_stem(prog, key))))
}

fn engine_cache() -> &'static Mutex<HashMap<u64, Arc<NativeEngine>>> {
    static C: OnceLock<Mutex<HashMap<u64, Arc<NativeEngine>>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Emits, builds (or reuses from cache), loads, and resolves the native
/// engine for `prog` (scalar entry points only).
pub(crate) fn build_engine(prog: &Program) -> Result<Arc<NativeEngine>, NativeError> {
    build_engine_inner(prog, None)
}

/// Like [`build_engine`], but the generated crate additionally carries the
/// batched lock-step entry points specialized to exactly `lanes` lanes.
/// The lane count is part of the emitted source and therefore of the cache
/// key, so every batch width gets (and reuses) its own cdylib; the scalar
/// entry points inside it are identical to [`build_engine`]'s, which is
/// what the divergence fallback runs.
pub(crate) fn build_engine_batched(
    prog: &Program,
    lanes: usize,
) -> Result<Arc<NativeEngine>, NativeError> {
    build_engine_inner(prog, Some(lanes))
}

fn build_engine_inner(
    prog: &Program,
    batch_lanes: Option<usize>,
) -> Result<Arc<NativeEngine>, NativeError> {
    let tac = TacProgram::lower(prog);
    let emitted = emit_source(prog, &tac, batch_lanes)?;
    let key = cache_key(prog, &emitted.source);
    if let Some(e) = engine_cache().lock().unwrap().get(&key) {
        return Ok(Arc::clone(e));
    }
    let so_path = ensure_built(prog, &emitted.source, key)?;
    let engine = Arc::new(load_engine(
        &so_path,
        prog.rules.len(),
        emitted.traps,
        emitted.has_cycle_fn,
        batch_lanes.is_some(),
    )?);
    engine_cache()
        .lock()
        .unwrap()
        .insert(key, Arc::clone(&engine));
    Ok(engine)
}

/// Ensures the cdylib for `source` exists in the on-disk cache, invoking
/// `rustc` only on a miss. Concurrent builders race benignly: each writes
/// to a pid-suffixed temporary and renames into place.
fn ensure_built(prog: &Program, source: &str, key: u64) -> Result<PathBuf, NativeError> {
    let dir = cache_dir();
    let stem = artifact_stem(prog, key);
    let so_path = dir.join(format!("{stem}.so"));
    if so_path.exists() {
        return Ok(so_path);
    }
    if !toolchain_available() {
        return Err(NativeError::NoToolchain(format!(
            "`{} --version` failed; install rustc or point KOIKA_RUSTC at one",
            rustc_cmd()
        )));
    }
    std::fs::create_dir_all(&dir)
        .map_err(|e| NativeError::Build(format!("cannot create cache dir {dir:?}: {e}")))?;
    let rs_path = dir.join(format!("{stem}.rs"));
    std::fs::write(&rs_path, source)
        .map_err(|e| NativeError::Build(format!("cannot write {rs_path:?}: {e}")))?;
    let tmp = dir.join(format!("{stem}.{}.tmp.so", std::process::id()));
    let output = std::process::Command::new(rustc_cmd())
        .args([
            "--edition",
            "2021",
            "--crate-type",
            "cdylib",
            "-C",
            "opt-level=3",
            "-C",
            "codegen-units=1",
            "-C",
            "panic=abort",
            "-C",
            "debuginfo=0",
            "-o",
        ])
        .arg(&tmp)
        .arg(&rs_path)
        .output()
        .map_err(|e| NativeError::Build(format!("cannot run {}: {e}", rustc_cmd())))?;
    if !output.status.success() {
        let _ = std::fs::remove_file(&tmp);
        return Err(NativeError::Build(format!(
            "rustc failed on {rs_path:?}:\n{}",
            String::from_utf8_lossy(&output.stderr)
        )));
    }
    std::fs::rename(&tmp, &so_path)
        .map_err(|e| NativeError::Build(format!("cannot publish {so_path:?}: {e}")))?;
    Ok(so_path)
}

fn load_engine(
    so_path: &Path,
    nrules: usize,
    traps: Vec<(u32, &'static str)>,
    has_cycle_fn: bool,
    has_batch_fns: bool,
) -> Result<NativeEngine, NativeError> {
    let lib = dl::open(so_path).map_err(NativeError::Load)?;
    let mut rule_fns = Vec::with_capacity(nrules);
    let mut rule_prof_fns = Vec::with_capacity(nrules);
    let mut batch_fns = Vec::new();
    for k in 0..nrules {
        let p = dl::sym(&lib, &format!("koika_rule_{k}")).map_err(NativeError::Load)?;
        let pp = dl::sym(&lib, &format!("koika_rule_{k}_prof")).map_err(NativeError::Load)?;
        // SAFETY: the symbols were emitted by us with exactly this
        // signature; the cache key ties the cdylib to the emitter version.
        rule_fns.push(unsafe { std::mem::transmute::<*mut std::os::raw::c_void, RuleFn>(p) });
        rule_prof_fns.push(unsafe { std::mem::transmute::<*mut std::os::raw::c_void, RuleFn>(pp) });
        if has_batch_fns {
            let pb = dl::sym(&lib, &format!("koika_rule_{k}_batch")).map_err(NativeError::Load)?;
            // SAFETY: as above.
            batch_fns.push(unsafe { std::mem::transmute::<*mut std::os::raw::c_void, BatchFn>(pb) });
        }
    }
    let cycle_fn = if has_cycle_fn {
        let p = dl::sym(&lib, "koika_cycle").map_err(NativeError::Load)?;
        Some(unsafe { std::mem::transmute::<*mut std::os::raw::c_void, RuleFn>(p) })
    } else {
        None
    };
    Ok(NativeEngine {
        _lib: lib,
        rule_fns,
        rule_prof_fns,
        batch_fns,
        cycle_fn,
        traps,
        so_path: so_path.to_path_buf(),
    })
}

/// Minimal hand-rolled dynamic-loading shim. Unix `dlopen`/`dlsym` only —
/// the symbols come from the libc the standard library already links, so
/// no new dependency is introduced. Handles are intentionally never
/// `dlclose`d: engines are process-lifetime cached and function pointers
/// into them must stay valid.
#[cfg(unix)]
mod dl {
    use std::ffi::CString;
    use std::os::raw::{c_char, c_int, c_void};

    extern "C" {
        fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        fn dlerror() -> *mut c_char;
    }

    const RTLD_NOW: c_int = 2;

    /// An open shared-object handle (never closed; see module docs).
    pub struct Handle(#[allow(dead_code)] *mut c_void);

    // SAFETY: the handle is an opaque token; dlopen/dlsym are thread-safe.
    unsafe impl Send for Handle {}
    unsafe impl Sync for Handle {}

    fn take_error(fallback: &str) -> String {
        // SAFETY: dlerror returns a thread-local NUL-terminated string or
        // null; we copy it out immediately.
        unsafe {
            let e = dlerror();
            if e.is_null() {
                fallback.to_string()
            } else {
                std::ffi::CStr::from_ptr(e).to_string_lossy().into_owned()
            }
        }
    }

    pub fn open(path: &std::path::Path) -> Result<Handle, String> {
        let c = CString::new(path.to_string_lossy().as_bytes())
            .map_err(|_| "path contains a NUL byte".to_string())?;
        // SAFETY: valid NUL-terminated path.
        let h = unsafe { dlopen(c.as_ptr(), RTLD_NOW) };
        if h.is_null() {
            Err(take_error("dlopen failed"))
        } else {
            Ok(Handle(h))
        }
    }

    pub fn sym(h: &Handle, name: &str) -> Result<*mut c_void, String> {
        let c = CString::new(name).map_err(|_| "symbol contains a NUL byte".to_string())?;
        // SAFETY: live handle, valid NUL-terminated symbol name.
        let p = unsafe { dlsym(h.0, c.as_ptr()) };
        if p.is_null() {
            Err(format!("missing symbol {name}: {}", take_error("dlsym failed")))
        } else {
            Ok(p)
        }
    }
}

#[cfg(not(unix))]
mod dl {
    use std::os::raw::c_void;

    /// Stub handle for platforms without `dlopen`.
    pub struct Handle;

    pub fn open(_path: &std::path::Path) -> Result<Handle, String> {
        Err("dynamic loading is not supported on this platform".to_string())
    }

    pub fn sym(_h: &Handle, _name: &str) -> Result<*mut c_void, String> {
        Err("dynamic loading is not supported on this platform".to_string())
    }
}

// ---------------------------------------------------------------------------
// Host-side executors.
// ---------------------------------------------------------------------------

/// Executes one rule through its compiled-native form: the exact
/// counterpart of [`crate::tac::step_rule_tac`], sharing the
/// prologue/commit/rollback helpers so the transactional semantics are
/// identical at every level.
pub(crate) fn step_rule_native(
    prog: &Program,
    engine: &NativeEngine,
    st: &mut State,
    rule_idx: usize,
    executed: &mut u64,
    counting: bool,
) -> Result<bool, VmError> {
    let cfg = prog.cfg;
    let rule = &prog.rules[rule_idx];
    let n = prog.init.len();
    rule_prologue(cfg, st);
    let f = if counting {
        engine.rule_prof_fns[rule_idx]
    } else {
        engine.rule_fns[rule_idx]
    };
    let mut ctx = NativeCtx::for_state(st);
    // SAFETY: the context pointers cover exactly the lengths the generated
    // code was emitted with (validated against this program's register and
    // coverage counts), and `st` is not touched while the call runs.
    let ret = unsafe { f(&mut ctx) };
    if counting {
        *executed += ctx.executed;
    }
    let code = ret & 0xff;
    let payload = (ret >> 8) as usize;
    match code {
        0 => {
            rule_commit(cfg, st, rule, rule_idx, n);
            Ok(true)
        }
        1 | 2 => {
            st.last_fail = Some(FailInfo {
                rule: usize::MAX,
                pc: usize::MAX,
                reg: Some(RegId(ctx.fail_reg)),
                cycle: u64::MAX,
            });
            rule_failure(cfg, st, rule, rule_idx, payload, code == 2);
            Ok(false)
        }
        3 | 4 => {
            st.last_fail = Some(FailInfo {
                rule: usize::MAX,
                pc: usize::MAX,
                reg: None,
                cycle: u64::MAX,
            });
            rule_failure(cfg, st, rule, rule_idx, payload, code == 4);
            Ok(false)
        }
        5 => {
            let (pc, what) = engine.traps[payload];
            Err(VmError::CompilerBug { rule: rule_idx, pc: pc as usize, what })
        }
        _ => Err(VmError::CompilerBug {
            rule: rule_idx,
            pc: 0,
            what: "native rule returned an invalid status code",
        }),
    }
}

/// Runs one full cycle through the generated `koika_cycle` fast path.
/// Caller must have checked [`NativeEngine::has_cycle_fn`]; only valid when
/// neither history nor profiling is active (those need per-rule stepping).
pub(crate) fn run_cycle_native(engine: &NativeEngine, st: &mut State) {
    let f = engine.cycle_fn.expect("caller checked has_cycle_fn");
    let mut ctx = NativeCtx::for_state(st);
    // SAFETY: as in `step_rule_native`.
    let any_fail = unsafe { f(&mut ctx) };
    if any_fail != 0 {
        st.last_fail = Some(FailInfo {
            rule: ctx.last_rule as usize,
            pc: ctx.last_pc as usize,
            reg: if ctx.last_kind == 1 {
                Some(RegId(ctx.last_reg))
            } else {
                None
            },
            cycle: st.cycles,
        });
    }
    st.cycles += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::insn::Insn;
    use crate::level::OptLevel;
    use crate::vm::{Dispatch, Sim};
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;
    use koika::device::SimBackend;

    /// Every native test must skip loudly (not silently, not by failing)
    /// on machines without a toolchain.
    fn available(test: &str) -> bool {
        if toolchain_available() {
            true
        } else {
            eprintln!("SKIP {test}: no rustc toolchain");
            false
        }
    }

    fn collatz() -> koika::tir::TDesign {
        let mut b = DesignBuilder::new("native-collatz");
        b.reg("x", 16, 7u64);
        b.rule(
            "even",
            vec![iff(
                rd0("x").and(k(16, 1)).eq(k(16, 0)),
                vec![wr0("x", rd0("x").shr(k(16, 1)))],
                vec![],
            )],
        );
        b.rule(
            "odd",
            vec![iff(
                rd1("x").and(k(16, 1)).eq(k(16, 1)),
                vec![wr1("x", rd1("x").mul(k(16, 3)).add(k(16, 1)))],
                vec![],
            )],
        );
        check(&b.build()).unwrap()
    }

    /// Two rules racing for the same register: the second write conflicts
    /// every cycle, exercising failure paths and `FailInfo`.
    fn clash() -> koika::tir::TDesign {
        let mut b = DesignBuilder::new("native-clash");
        b.reg("n", 8, 0u64);
        b.rule("a", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        b.rule("b", vec![wr0("n", rd0("n").add(k(8, 2)))]);
        check(&b.build()).unwrap()
    }

    #[test]
    fn native_matches_match_across_levels() {
        if !available("native_matches_match_across_levels") {
            return;
        }
        for td in [collatz(), clash()] {
            for level in OptLevel::ALL {
                for coverage in [false, true] {
                    let opts = CompileOptions { level, coverage, ..CompileOptions::default() };
                    let mut a = Sim::compile_with(&td, &opts).unwrap();
                    let mut b = Sim::compile_with(&td, &opts).unwrap();
                    b.set_dispatch(Dispatch::Native);
                    for cyc in 0..200 {
                        a.cycle();
                        b.cycle();
                        assert_eq!(
                            a.reg_values(),
                            b.reg_values(),
                            "{} {level} cov={coverage} cycle {cyc}",
                            td.name
                        );
                    }
                    assert_eq!(a.rules_fired(), b.rules_fired(), "{} {level}", td.name);
                    assert_eq!(
                        a.coverage_counts(),
                        b.coverage_counts(),
                        "{} {level} cov={coverage}",
                        td.name
                    );
                }
            }
        }
    }

    #[test]
    fn native_failinfo_matches_interpreter() {
        if !available("native_failinfo_matches_interpreter") {
            return;
        }
        for level in OptLevel::ALL {
            let opts = CompileOptions { level, ..CompileOptions::default() };
            let mut a = Sim::compile_with(&clash(), &opts).unwrap();
            let mut b = Sim::compile_with(&clash(), &opts).unwrap();
            b.set_dispatch(Dispatch::Native);
            for _ in 0..5 {
                a.cycle();
                b.cycle();
                assert_eq!(a.last_fail(), b.last_fail(), "{level}");
            }
            assert!(b.last_fail().is_some(), "{level}: the clash design must conflict");
        }
    }

    #[test]
    fn native_profile_counts_match_interpreter() {
        if !available("native_profile_counts_match_interpreter") {
            return;
        }
        for level in OptLevel::ALL {
            let opts = CompileOptions { level, ..CompileOptions::default() };
            let mut a = Sim::compile_with(&collatz(), &opts).unwrap();
            let mut b = Sim::compile_with(&collatz(), &opts).unwrap();
            a.enable_profiling();
            b.set_dispatch(Dispatch::Native);
            b.enable_profiling();
            for _ in 0..50 {
                a.cycle();
                b.cycle();
            }
            assert_eq!(
                a.profile_insns().unwrap(),
                b.profile_insns().unwrap(),
                "{level}: native profiling must stay on the bytecode scale"
            );
        }
    }

    #[test]
    fn whole_cycle_fast_path_matches_per_rule_stepping() {
        if !available("whole_cycle_fast_path_matches_per_rule_stepping") {
            return;
        }
        for td in [collatz(), clash()] {
            let opts = CompileOptions::default();
            // `a` runs the koika_cycle fast path (no history/profiling);
            // `b` is forced onto per-rule stepping by enabling profiling.
            let mut a = Sim::compile_with(&td, &opts).unwrap();
            let mut b = Sim::compile_with(&td, &opts).unwrap();
            a.set_dispatch(Dispatch::Native);
            b.set_dispatch(Dispatch::Native);
            b.enable_profiling();
            for cyc in 0..200 {
                a.cycle();
                b.cycle();
                assert_eq!(a.reg_values(), b.reg_values(), "{} cycle {cyc}", td.name);
                assert_eq!(a.last_fail(), b.last_fail(), "{} cycle {cyc}", td.name);
            }
            assert_eq!(a.rules_fired(), b.rules_fired(), "{}", td.name);
        }
    }

    #[test]
    fn stack_discipline_violation_traps_in_native() {
        if !available("stack_discipline_violation_traps_in_native") {
            return;
        }
        let mut prog = compile(&clash(), &CompileOptions::default()).unwrap();
        prog.rules[0].code.insert(0, Insn::Add { mask: u64::MAX });
        let mut sim = Sim::new(prog);
        sim.set_dispatch(Dispatch::Native);
        let err = sim.try_cycle().unwrap_err();
        assert!(matches!(
            err,
            VmError::CompilerBug { rule: 0, what: "operand stack underflow", .. }
        ));
    }

    #[test]
    fn cache_path_is_stable_and_fingerprint_sensitive() {
        // Pure emission — no toolchain needed, no skip.
        let prog_a = compile(&collatz(), &CompileOptions::default()).unwrap();
        let prog_a2 = compile(&collatz(), &CompileOptions::default()).unwrap();
        assert_eq!(
            cache_path_for(&prog_a).unwrap(),
            cache_path_for(&prog_a2).unwrap(),
            "same design, same options: the cache must hit"
        );
        // A different design fingerprint (extra register) must invalidate.
        let mut b = DesignBuilder::new("native-collatz");
        b.reg("x", 16, 7u64);
        b.reg("extra", 8, 0u64);
        b.rule(
            "even",
            vec![iff(
                rd0("x").and(k(16, 1)).eq(k(16, 0)),
                vec![wr0("x", rd0("x").shr(k(16, 1)))],
                vec![],
            )],
        );
        b.rule(
            "odd",
            vec![iff(
                rd1("x").and(k(16, 1)).eq(k(16, 1)),
                vec![wr1("x", rd1("x").mul(k(16, 3)).add(k(16, 1)))],
                vec![],
            )],
        );
        let td = check(&b.build()).unwrap();
        let prog_b = compile(&td, &CompileOptions::default()).unwrap();
        assert_ne!(
            cache_path_for(&prog_a).unwrap(),
            cache_path_for(&prog_b).unwrap(),
            "a changed design fingerprint must invalidate the cache"
        );
        // A different optimization level must too (the generated code
        // bakes the log discipline in).
        let prog_o1 = compile(
            &collatz(),
            &CompileOptions { level: OptLevel::SplitRwSets, ..CompileOptions::default() },
        )
        .unwrap();
        assert_ne!(
            cache_path_for(&prog_a).unwrap(),
            cache_path_for(&prog_o1).unwrap()
        );
    }

    #[test]
    fn engine_is_shared_through_the_process_cache() {
        if !available("engine_is_shared_through_the_process_cache") {
            return;
        }
        let prog = compile(&collatz(), &CompileOptions::default()).unwrap();
        let e1 = build_engine(&prog).unwrap();
        let prog2 = compile(&collatz(), &CompileOptions::default()).unwrap();
        let e2 = build_engine(&prog2).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2), "identical compilations must share one engine");
        assert!(e1.so_path().exists());
        assert!(e1.has_cycle_fn());
    }

    #[test]
    fn snapshot_restore_keeps_native_dispatch_exact() {
        if !available("snapshot_restore_keeps_native_dispatch_exact") {
            return;
        }
        let td = collatz();
        let opts = CompileOptions::default();
        let mut sim = Sim::compile_with(&td, &opts).unwrap();
        sim.set_dispatch(Dispatch::Native);
        for _ in 0..10 {
            sim.cycle();
        }
        let snap = sim.save_state();
        let vals = sim.reg_values();
        for _ in 0..10 {
            sim.cycle();
        }
        sim.restore_state(&snap);
        assert_eq!(sim.reg_values(), vals);
        // And it keeps running natively afterwards, in agreement with a
        // fresh interpreter advanced the same number of cycles.
        let mut reference = Sim::compile_with(&td, &opts).unwrap();
        for _ in 0..15 {
            reference.cycle();
        }
        for _ in 0..5 {
            sim.cycle();
        }
        assert_eq!(sim.reg_values(), reference.reg_values());
    }
}

