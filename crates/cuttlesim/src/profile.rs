//! Rule-level profiling — the gprof view of a running design.
//!
//! The paper's workflow profiles generated C++ models with gprof and maps
//! the hot functions straight back to rules. Our models are bytecode, so
//! the equivalent is a per-rule work profile: instructions executed,
//! commits, and failures. Because a failing rule stops at its first
//! failing check, the instruction counts directly expose how much of each
//! rule's body actually runs — the early-exit behavior §2.3 is about.
//!
//! The counts are **dispatch-invariant**: the `tac` engine executes fused
//! micro-ops, but each micro-op carries the weight of the bytecode span it
//! replaced, so a profile reads identically under `match`, `closure`, and
//! `tac` dispatch (asserted by `tac::tests`).

use crate::vm::Sim;
use koika::obs::Metrics;
use std::fmt;

/// A per-rule work profile extracted from a [`Sim`].
#[derive(Debug, Clone)]
pub struct ProfileReport {
    rows: Vec<ProfileRow>,
    total_insns: u64,
}

/// One rule's row in the profile.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Rule name.
    pub rule: String,
    /// VM instructions executed inside the rule (all invocations).
    pub insns: u64,
    /// Successful (committed) executions.
    pub fired: u64,
    /// Failed executions (conflicts or explicit aborts).
    pub failed: u64,
    /// Static length of the compiled rule body.
    pub body_len: usize,
}

impl ProfileRow {
    /// Average instructions per invocation — low values mean the rule
    /// usually exits early.
    pub fn avg_insns(&self) -> f64 {
        let inv = self.fired + self.failed;
        if inv == 0 {
            0.0
        } else {
            self.insns as f64 / inv as f64
        }
    }
}

impl ProfileReport {
    /// Extracts the profile accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if profiling was never enabled on the simulator
    /// ([`Sim::enable_profiling`]).
    pub fn collect(sim: &Sim) -> ProfileReport {
        let insns = sim
            .profile_insns()
            .expect("profiling not enabled; call Sim::enable_profiling() first");
        let body_lens: Vec<usize> = sim.program().rules.iter().map(|r| r.code.len()).collect();
        ProfileReport::from_metrics(&sim.metrics_snapshot(), insns, &body_lens)
    }

    /// Builds a report as a view over a [`Metrics`] snapshot, pairing its
    /// per-rule commit/failure counts with instruction counts and static
    /// body lengths (both indexed in rule-declaration order).
    pub fn from_metrics(metrics: &Metrics, insns: &[u64], body_lens: &[usize]) -> ProfileReport {
        let rows: Vec<ProfileRow> = metrics
            .rules()
            .iter()
            .enumerate()
            .map(|(i, r)| ProfileRow {
                rule: r.name.clone(),
                insns: insns.get(i).copied().unwrap_or(0),
                fired: r.fired,
                failed: r.failed(),
                body_len: body_lens.get(i).copied().unwrap_or(0),
            })
            .collect();
        let total_insns = rows.iter().map(|r| r.insns).sum();
        ProfileReport { rows, total_insns }
    }

    /// Rows, hottest first.
    pub fn rows(&self) -> Vec<&ProfileRow> {
        let mut rows: Vec<&ProfileRow> = self.rows.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.insns));
        rows
    }

    /// Total instructions executed across all rules.
    pub fn total_insns(&self) -> u64 {
        self.total_insns
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "rule", "%time", "insns", "fired", "failed", "avg-insns"
        )?;
        for row in self.rows() {
            writeln!(
                f,
                "{:<16} {:>7.1}% {:>12} {:>10} {:>10} {:>10.1}",
                row.rule,
                100.0 * row.insns as f64 / self.total_insns.max(1) as f64,
                row.insns,
                row.fired,
                row.failed,
                row.avg_insns(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;
    use koika::device::SimBackend;

    #[test]
    fn early_exits_show_up_as_low_average_instruction_counts() {
        // A rule that is guarded off 3 cycles out of 4 should execute far
        // fewer instructions per invocation than its body length.
        let mut b = DesignBuilder::new("p");
        b.reg("tick", 4, 0u64);
        b.reg("acc", 32, 0u64);
        b.rule(
            "rare",
            vec![
                guard(rd0("tick").slice(0, 2).eq(k(2, 0))),
                wr0(
                    "acc",
                    rd0("acc")
                        .mul(k(32, 7))
                        .add(k(32, 13))
                        .xor(rd0("acc").shl(k(4, 3)))
                        .add(rd0("acc").shr(k(4, 5))),
                ),
            ],
        );
        b.rule("t", vec![wr0("tick", rd0("tick").add(k(4, 1)))]);
        b.schedule(["rare", "t"]);
        let td = check(&b.build()).unwrap();
        let mut sim = crate::Sim::compile(&td).unwrap();
        sim.enable_profiling();
        for _ in 0..400 {
            sim.cycle();
        }
        let report = ProfileReport::collect(&sim);
        let rows = report.rows.clone();
        let rare = rows.iter().find(|r| r.rule == "rare").unwrap();
        let t = rows.iter().find(|r| r.rule == "t").unwrap();
        assert_eq!(rare.fired, 100);
        assert_eq!(rare.failed, 300);
        // Early exits: average well under the full body length.
        assert!(
            rare.avg_insns() < rare.body_len as f64 * 0.6,
            "avg {} vs body {}",
            rare.avg_insns(),
            rare.body_len
        );
        // The always-firing rule runs its whole (short) body every time.
        assert!(t.avg_insns() >= t.body_len as f64 - 1.0);
        let text = report.to_string();
        assert!(text.contains("rare"));
        assert!(text.contains("%time"));
    }

    #[test]
    #[should_panic(expected = "profiling not enabled")]
    fn collect_requires_profiling() {
        let mut b = DesignBuilder::new("p");
        b.reg("x", 4, 0u64);
        b.rule("r", vec![wr0("x", k(4, 1))]);
        let td = check(&b.build()).unwrap();
        let sim = crate::Sim::compile(&td).unwrap();
        let _ = ProfileReport::collect(&sim);
    }
}
