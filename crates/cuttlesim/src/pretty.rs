//! Tiny pretty-printer for the typed IR, shared by coverage labels and the
//! readable-C++ code generator. The output deliberately mimics the macro
//! style of the paper's generated models (`READ0(st)`, `WRITE0(x, ...)`).

use koika::ast::{BinOp, Port, UnOp};
use koika::tir::{TAction, TDesign, TExpr};

/// Renders an expression in the paper's C++-model style.
pub fn expr_str(d: &TDesign, e: &TExpr) -> String {
    match e {
        TExpr::Const { v, .. } => format!("{v}"),
        TExpr::Var { slot, .. } => format!("v{slot}"),
        TExpr::Read { port, reg, .. } => {
            format!("READ{}({})", port_num(*port), d.regs[reg.0 as usize].name)
        }
        TExpr::ReadArr {
            port, base, idx, ..
        } => format!(
            "READ{}({}[{}])",
            port_num(*port),
            sym_name(d, *base),
            expr_str(d, idx)
        ),
        TExpr::Un { op, a, .. } => match op {
            UnOp::Not => format!("~{}", expr_str(d, a)),
            UnOp::Neg => format!("-{}", expr_str(d, a)),
            UnOp::Zext(w) => format!("zext<{w}>({})", expr_str(d, a)),
            UnOp::Sext(w) => format!("sext<{w}>({})", expr_str(d, a)),
            UnOp::Slice { lo, width } => {
                format!("slice<{lo}, {width}>({})", expr_str(d, a))
            }
        },
        TExpr::Bin { op, a, b, .. } => {
            let (sa, sb) = (expr_str(d, a), expr_str(d, b));
            match op {
                BinOp::Add => format!("({sa} + {sb})"),
                BinOp::Sub => format!("({sa} - {sb})"),
                BinOp::Mul => format!("({sa} * {sb})"),
                BinOp::And => format!("({sa} & {sb})"),
                BinOp::Or => format!("({sa} | {sb})"),
                BinOp::Xor => format!("({sa} ^ {sb})"),
                BinOp::Shl => format!("({sa} << {sb})"),
                BinOp::Shr => format!("({sa} >> {sb})"),
                BinOp::Sra => format!("asr({sa}, {sb})"),
                BinOp::Eq => format!("({sa} == {sb})"),
                BinOp::Ne => format!("({sa} != {sb})"),
                BinOp::Ult => format!("({sa} < {sb})"),
                BinOp::Ule => format!("({sa} <= {sb})"),
                BinOp::Slt => format!("slt({sa}, {sb})"),
                BinOp::Sle => format!("sle({sa}, {sb})"),
                BinOp::Concat => format!("concat({sa}, {sb})"),
            }
        }
        TExpr::Select { c, t, f, .. } => format!(
            "({} ? {} : {})",
            expr_str(d, c),
            expr_str(d, t),
            expr_str(d, f)
        ),
    }
}

/// Renders the head of a statement (one line, no nested bodies).
pub fn stmt_head(d: &TDesign, a: &TAction) -> String {
    match a {
        TAction::Let { slot, e } => format!("v{slot} = {}", expr_str(d, e)),
        TAction::Write { port, reg, e } => format!(
            "WRITE{}({}, {})",
            port_num(*port),
            d.regs[reg.0 as usize].name,
            expr_str(d, e)
        ),
        TAction::WriteArr {
            port, base, idx, e, ..
        } => format!(
            "WRITE{}({}[{}], {})",
            port_num(*port),
            sym_name(d, *base),
            expr_str(d, idx),
            expr_str(d, e)
        ),
        TAction::If { c, .. } => format!("if ({})", expr_str(d, c)),
        TAction::Abort => "FAIL()".to_string(),
        TAction::Named { label, .. } => format!("// {label}"),
    }
}

fn port_num(p: Port) -> u32 {
    match p {
        Port::P0 => 0,
        Port::P1 => 1,
    }
}

fn sym_name(d: &TDesign, base: koika::tir::RegId) -> String {
    let sym = d.regs[base.0 as usize].sym;
    d.syms[sym.0 as usize].name.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;

    #[test]
    fn renders_paper_style() {
        let mut b = DesignBuilder::new("t");
        b.reg("st", 1, 0u64);
        b.reg("x", 8, 0u64);
        b.rule(
            "rlA",
            vec![guard(rd0("st").eq(k(1, 0))), wr0("x", rd1("x").add(k(8, 1)))],
        );
        let td = check(&b.build()).unwrap();
        match &td.rules[0].body[0] {
            koika::tir::TAction::If { c, .. } => {
                assert_eq!(expr_str(&td, c), "(READ0(st) == 1'h0)");
            }
            _ => unreachable!(),
        }
        assert_eq!(
            stmt_head(&td, &td.rules[0].body[1]),
            "WRITE0(x, (READ1(x) + 8'h1))"
        );
    }
}
