//! Regenerates Table 1: per-benchmark source-line counts (Kôika design,
//! generated Cuttlesim C++ model, generated Verilog), design sizes, and the
//! simulated cycle count of the standard workload.

use cuttlesim::codegen_cpp;
use cuttlesim_bench::{all_benches, PRIMES_LIMIT};
use koika::check::check;
use koika::device::SimBackend;
use koika_designs::harness::{golden_run, run_until_retired, MEM_WORDS};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, verilog, Scheme};

fn main() {
    println!("Table 1: benchmarks (cf. paper Table 1)");
    println!(
        "{:<16} {:>6} {:>10} {:>8} {:>6} {:>6} {:>8} {:>12}",
        "design", "koika", "cuttlesim", "verilog", "regs", "rules", "gates", "cycles"
    );
    for bench in all_benches() {
        let design = (bench.design)();
        let td = check(&design).unwrap();
        let model = rtl_compile(&td, Scheme::Dynamic).unwrap();
        let cycles = workload_cycles(bench.name);
        println!(
            "{:<16} {:>6} {:>10} {:>8} {:>6} {:>6} {:>8} {:>12}",
            bench.name,
            design.sloc(),
            codegen_cpp::sloc(&td),
            verilog::sloc(&model),
            td.num_regs(),
            td.rules.len(),
            model.netlist.len(),
            cycles,
        );
    }
}

/// Cycles the standard workload takes (to completion for the cores, the
/// default budget for the free-running designs).
fn workload_cycles(name: &str) -> u64 {
    let core = |design: koika::design::Design, prefix: &str, program: Vec<u32>| -> u64 {
        let td = check(&design).unwrap();
        let golden = golden_run(&program, 200_000_000);
        let mut sim = cuttlesim::Sim::compile(&td).unwrap();
        let mut mem = MagicMemory::new(
            &td,
            &[&format!("{prefix}imem"), &format!("{prefix}dmem")],
            &program,
            MEM_WORDS,
        );
        let run = run_until_retired(&mut sim, &mut mem, &td, prefix, golden.retired, 500_000_000);
        assert!(run.completed, "{name} did not finish");
        run.cycles
    };
    match name {
        "rv32i-primes" => core(rv32::rv32i(), "", programs::primes(PRIMES_LIMIT)),
        "rv32e-primes" => core(rv32::rv32e(), "", programs::primes(PRIMES_LIMIT)),
        "rv32i-bp-primes" => core(rv32::rv32i_bp(), "", programs::primes(PRIMES_LIMIT)),
        "rv32i-mc-primes" => {
            // Both cores run primes; report cycles until both complete.
            let td = check(&rv32::rv32i_mc()).unwrap();
            let p0 = programs::primes_at(PRIMES_LIMIT, 0x1800);
            let p1 = programs::primes_at(PRIMES_LIMIT, 0x1900);
            let golden = golden_run(&p0, 200_000_000);
            let mut sim = cuttlesim::Sim::compile(&td).unwrap();
            let mut mem = MagicMemory::new(
                &td,
                &["c0_imem", "c0_dmem", "c1_imem", "c1_dmem"],
                &p0,
                MEM_WORDS,
            );
            mem.load(rv32::MC_CORE1_PC, &p1);
            let c0 = td.reg_id("c0_retired");
            let c1 = td.reg_id("c1_retired");
            let mut cycles = 0u64;
            use koika::device::Device;
            while sim.as_reg_access().get64(c0) < golden.retired
                || sim.as_reg_access().get64(c1) < golden.retired
            {
                mem.tick(cycles, sim.as_reg_access());
                sim.cycle();
                cycles += 1;
            }
            cycles
        }
        _ => {
            let bench = all_benches()
                .into_iter()
                .find(|b| b.name == name)
                .unwrap();
            bench.default_cycles
        }
    }
}
