//! Regenerates Figure 3: sensitivity to compiler choice. The paper compiles
//! its C++ models with GCC and Clang; our stand-in varies the VM's code
//! path the same way a different compiler backend would — `match` dispatch
//! versus closure (fat-pointer) dispatch.
//!
//! Expected shape (paper): absolute runtimes shift, but Cuttlesim's
//! advantage over the RTL simulator is stable.

use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, run_bench, scaled, BackendKind};
use koika_rtl::Scheme;

fn main() {
    println!("Figure 3: dispatch (compiler stand-in) sensitivity");
    println!(
        "{:<16} {:>16} {:>18} {:>14} {:>10} {:>10}",
        "design", "cuttlesim-match", "cuttlesim-closure", "rtl-koika", "spd-match", "spd-clos"
    );
    for bench in all_benches() {
        let cycles = scaled(bench.default_cycles / 2);
        let m = run_bench(
            &bench,
            BackendKind::Vm(OptLevel::max(), Dispatch::Match),
            cycles,
        );
        let c = run_bench(
            &bench,
            BackendKind::Vm(OptLevel::max(), Dispatch::Closure),
            cycles,
        );
        let rtl = run_bench(&bench, BackendKind::Rtl(Scheme::Dynamic), cycles);
        println!(
            "{:<16} {:>13.0}c/s {:>15.0}c/s {:>11.0}c/s {:>9.2}x {:>9.2}x",
            bench.name,
            m.cps(),
            c.cps(),
            rtl.cps(),
            m.cps() / rtl.cps(),
            c.cps() / rtl.cps(),
        );
    }
}
