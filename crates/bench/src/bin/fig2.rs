//! Regenerates Figure 2: is Cuttlesim's advantage only due to Kôika's
//! compiler generating inefficient Verilog? Compare against a
//! "Bluespec-style" compilation scheme (static conflict resolution, leaner
//! circuits).
//!
//! Expected shape (paper): the two RTL variants land within ~2x of each
//! other; Cuttlesim beats both.

use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, run_bench, scaled, BackendKind};
use koika_rtl::Scheme;

fn main() {
    println!("Figure 2: equivalent designs under both RTL schemes vs Cuttlesim");
    println!(
        "{:<16} {:>14} {:>14} {:>18}",
        "design", "cuttlesim(c/s)", "rtl-koika(c/s)", "rtl-bsc-style(c/s)"
    );
    for bench in all_benches() {
        let cycles = scaled(bench.default_cycles);
        let fast = run_bench(
            &bench,
            BackendKind::Vm(OptLevel::max(), Dispatch::Match),
            cycles,
        );
        let dynamic = run_bench(&bench, BackendKind::Rtl(Scheme::Dynamic), cycles);
        let stat = run_bench(&bench, BackendKind::Rtl(Scheme::Static), cycles);
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>18.0}",
            bench.name,
            fast.cps(),
            dynamic.cps(),
            stat.cps(),
        );
    }
}
