//! Load driver for the multi-tenant simulation session server: spawns an
//! in-process server and floods it with sessions over real TCP
//! connections, exercising the whole lifecycle — create, step, inject,
//! snapshot, evict, transparent rehydration, close — then writes a
//! machine-readable record to `BENCH_PR7.json`.
//!
//! ```text
//! Usage: server_bench [--quick] [--out FILE] [--smoke FILE] [--chaos SEED]
//!                     [--sessions N] [--conns N] [--jobs J]
//!   --quick        small session count (CI smoke: validates the JSON
//!                  shape, asserts nothing about performance)
//!   --out FILE     where to write the JSON record (default BENCH_PR7.json;
//!                  BENCH_CHAOS.json in --chaos mode)
//!   --smoke FILE   deterministic mode: one connection drives a fixed
//!                  200-session script and every reply line is written to
//!                  FILE verbatim; two runs against two fresh servers must
//!                  produce byte-identical files (CI diffs them). No JSON
//!                  record is written.
//!   --chaos SEED   chaos mode (SEED decimal or 0x-hex): runs a durable
//!                  server (`state_dir` set) with seeded disk-fault
//!                  injection and layers client-side faults on top —
//!                  dropped and duplicated connections, delayed requests,
//!                  mid-step device panics. Asserts zero cross-session
//!                  blast radius, at-most-once req_id semantics, and that
//!                  a kill -9 (`abort`) followed by a restart from the
//!                  state directory reproduces every surviving session
//!                  byte-identically. Exits nonzero on any violation.
//!   --sessions N   session count for the load mode (default 10000)
//!   --conns N      client connections for the load mode (default 32)
//!   --jobs J       server worker threads (default 4)
//! ```
//!
//! The load mode's traffic mix is drawn from a fixed-seed xorshift PRNG,
//! so the *request* stream is reproducible; the JSON record carries both
//! wall-clock throughput and the server's own (deterministic) counters.

use koika_server::json::Json;
use koika_server::{spawn, DesignProvider, IoChaos, ServerConfig, ServerHandle};
use koika::check::check;
use koika::device::{Device, RegAccess};
use koika::tir::TDesign;
use koika_designs::small;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Serves the small combinational designs — the bench measures session
/// multiplexing, not core throughput, so cheap designs keep the signal
/// on the server.
struct BenchProvider {
    designs: Mutex<HashMap<String, Arc<TDesign>>>,
}

impl BenchProvider {
    fn new() -> BenchProvider {
        BenchProvider {
            designs: Mutex::new(HashMap::new()),
        }
    }
}

impl DesignProvider for BenchProvider {
    fn design(&self, name: &str) -> Option<Arc<TDesign>> {
        let mut cache = self.designs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(td) = cache.get(name) {
            return Some(Arc::clone(td));
        }
        let design = match name {
            "collatz" => small::collatz(),
            "fir" => small::fir(),
            // collatz plus a device that detonates at cycle 5 — the chaos
            // mode's mid-step-panic fault.
            "boom" => small::collatz(),
            _ => return None,
        };
        let td = Arc::new(check(&design).ok()?);
        cache.insert(name.to_string(), Arc::clone(&td));
        Some(td)
    }

    fn devices(&self, name: &str, _td: &TDesign) -> Vec<Box<dyn Device + Send>> {
        match name {
            "boom" => vec![Box::new(BoomDevice { ticks: 0 })],
            _ => Vec::new(),
        }
    }
}

/// Panics once the simulation reaches cycle 5; lets the chaos mode
/// detonate a session mid-step on demand.
struct BoomDevice {
    ticks: u64,
}

impl Device for BoomDevice {
    fn tick(&mut self, cycle: u64, _regs: &mut dyn RegAccess) {
        self.ticks += 1;
        assert!(cycle < 5, "boom device detonated at cycle {cycle}");
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.ticks.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let bytes: [u8; 8] = state.try_into().map_err(|_| "bad blob".to_string())?;
        self.ticks = u64::from_le_bytes(bytes);
        Ok(())
    }
}

/// xorshift64* — fixed-seed traffic mix, no external PRNG needed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        // Without this, Nagle + delayed ACK turns each ping-pong request
        // into a ~40 ms stall and the bench measures the kernel, not the
        // server.
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }
}

fn session_of(reply: &str) -> Option<u64> {
    Json::parse(reply).ok()?.get("session")?.as_u64()
}

fn is_ok(reply: &str) -> bool {
    Json::parse(reply)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        == Some(true)
}

/// The typed error kind of a failed reply (`None` for `ok` replies).
fn err_of(reply: &str) -> Option<String> {
    let v = Json::parse(reply).ok()?;
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        return None;
    }
    Some(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap_or("unparsable")
            .to_string(),
    )
}

fn u_of(reply: &str, key: &str) -> Option<u64> {
    Json::parse(reply).ok()?.get(key)?.as_u64()
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn server_config(jobs: usize) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.runner.jobs = jobs;
    cfg.spool_dir = std::env::temp_dir().join(format!("koika-server-bench-{}", std::process::id()));
    cfg
}

/// The deterministic 200-session smoke script: every reply is appended to
/// `out`, and the full transcript must be byte-identical run after run.
fn run_smoke(path: &str) -> ExitCode {
    let cfg = server_config(2);
    let spool = cfg.spool_dir.clone();
    let handle = spawn(cfg, Arc::new(BenchProvider::new()), "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(&handle);
    let mut out = String::new();
    let mut log = |reply: String| {
        out.push_str(&reply);
        out.push('\n');
    };

    for i in 0u64..200 {
        let design = if i % 3 == 0 { "fir" } else { "collatz" };
        let tenant = format!("t{}", i % 4);
        let create = c.send(&format!(
            r#"{{"op":"create","design":"{design}","tenant":"{tenant}"}}"#
        ));
        let id = session_of(&create).expect("create must admit");
        log(create);
        log(c.send(&format!(r#"{{"op":"step","session":{id},"n":{}}}"#, 10 + i % 5)));
        if i % 3 == 1 {
            log(c.send(&format!(
                r#"{{"op":"inject","session":{id},"cycle":{},"reg":"x","bit":{}}}"#,
                20 + i % 7,
                i % 8
            )));
            log(c.send(&format!(r#"{{"op":"step","session":{id},"n":15}}"#)));
        }
        if i % 2 == 0 {
            log(c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#)));
        }
        if i % 4 == 0 {
            log(c.send(&format!(r#"{{"op":"evict","session":{id}}}"#)));
            log(c.send(&format!(r#"{{"op":"step","session":{id},"n":2}}"#)));
        }
        if i % 10 == 9 {
            log(c.send(&format!(r#"{{"op":"close","session":{id}}}"#)));
        }
    }
    log(c.send(r#"{"op":"query-regs","session":2}"#));
    log(c.send(r#"{"op":"metrics"}"#));
    log(c.send(r#"{"op":"shutdown"}"#));
    handle.wait();
    std::fs::remove_dir_all(&spool).ok();

    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("smoke transcript: 200 sessions, {} reply lines -> {path}", out.lines().count());
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// Sends `line`, retrying the transient outcomes chaos injects: `read-only`
/// while the disk is "failing" (the next probe heals it), and
/// `busy`/`session-busy` while a dropped connection's request drains.
/// Returns the first settled reply.
fn send_settled(c: &mut Client, line: &str) -> String {
    let mut last = String::new();
    for _ in 0..500 {
        last = c.send(line);
        match err_of(&last).as_deref() {
            Some("read-only") | Some("busy") | Some("session-busy") => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            _ => return last,
        }
    }
    last
}

fn parse_seed(s: &str) -> u64 {
    let t = s.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("bad --chaos seed: {s}");
        std::process::exit(2);
    })
}

/// The chaos soak: a durable server under seeded disk faults plus
/// client-side connection faults, then a simulated kill -9 and a recovery
/// check. Every invariant failure is collected (not asserted) so one run
/// reports the full blast radius; any violation fails the run.
fn run_chaos(seed: u64, quick: bool, out: &str) -> ExitCode {
    let dir = std::env::temp_dir().join(format!("koika-server-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let chaos = Arc::new(IoChaos::new(seed, 5));
    let mut cfg = server_config(2);
    cfg.state_dir = Some(dir.clone());
    cfg.chaos = Some(Arc::clone(&chaos));
    let handle = spawn(cfg, Arc::new(BenchProvider::new()), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let mut c = Client::connect(&handle);
    let mut rng = Rng(seed | 1);
    let mut violations: Vec<String> = Vec::new();
    let mut rid: u64 = 0;
    let mut next_rid = || {
        rid += 1;
        rid
    };

    // Session population: healthy collatz/fir sessions (the op mix targets
    // these) plus armed "boom" sessions held in reserve for the
    // mid-step-panic fault.
    let n_sessions: u64 = if quick { 24 } else { 80 };
    let n_ops: u64 = if quick { 160 } else { 600 };
    let mut live: Vec<u64> = Vec::new();
    let mut boom: Vec<u64> = Vec::new();
    let mut detonated: Vec<u64> = Vec::new();
    for i in 0..n_sessions {
        let (design, tenant) = if i % 8 == 7 {
            ("boom", "boom".to_string())
        } else if i % 2 == 0 {
            ("collatz", format!("t{}", i % 4))
        } else {
            ("fir", format!("t{}", i % 4))
        };
        let r = send_settled(
            &mut c,
            &format!(
                r#"{{"op":"create","design":"{design}","tenant":"{tenant}","req_id":{}}}"#,
                next_rid()
            ),
        );
        match session_of(&r) {
            Some(id) if design == "boom" => boom.push(id),
            Some(id) => live.push(id),
            None => violations.push(format!("create never settled: {r}")),
        }
    }
    let canary = live[0];

    let mut ops = 0u64;
    let mut panics = 0u64;
    for _ in 0..n_ops {
        ops += 1;
        let id = live[rng.below(live.len() as u64) as usize];
        match rng.below(13) {
            6 => {
                // Pending injection far in the future: carried across
                // evictions, checkpoints, and recovery.
                let r = send_settled(
                    &mut c,
                    &format!(
                        r#"{{"op":"inject","session":{id},"cycle":1000000,"reg":"0","bit":0,"req_id":{}}}"#,
                        next_rid()
                    ),
                );
                if !is_ok(&r) {
                    violations.push(format!("inject {id}: {r}"));
                }
            }
            7 => {
                let r = send_settled(&mut c, &format!(r#"{{"op":"evict","session":{id}}}"#));
                if !is_ok(&r) {
                    violations.push(format!("evict {id}: {r}"));
                }
            }
            8 => {
                // Duplicated request: the same req_id twice; the second
                // reply must be the cached byte-identical first.
                chaos.note("dup-request");
                let line = format!(
                    r#"{{"op":"step","session":{id},"n":3,"req_id":{}}}"#,
                    next_rid()
                );
                let r1 = send_settled(&mut c, &line);
                let r2 = send_settled(&mut c, &line);
                if is_ok(&r1) && r1 != r2 {
                    violations.push(format!("dup req not idempotent: {r1} vs {r2}"));
                }
            }
            9 => {
                // Dropped connection: fire a step on a throwaway socket,
                // hang up without reading, then re-submit the same req_id
                // on the main connection. At-most-once means the settled
                // cycle count advances by exactly n.
                chaos.note("drop-conn");
                let before = u_of(
                    &send_settled(&mut c, &format!(r#"{{"op":"query-regs","session":{id}}}"#)),
                    "cycles",
                );
                let line = format!(
                    r#"{{"op":"step","session":{id},"n":4,"req_id":{}}}"#,
                    next_rid()
                );
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.set_nodelay(true);
                    let _ = writeln!(s, "{line}");
                    drop(s);
                }
                let r = send_settled(&mut c, &line);
                match (before, u_of(&r, "cycles")) {
                    (Some(b), Some(after)) if after != b + 4 => violations.push(format!(
                        "drop-conn resubmit applied twice on {id}: {b} -> {after}"
                    )),
                    (_, None) => violations.push(format!("drop-conn resubmit failed: {r}")),
                    _ => {}
                }
            }
            10 => {
                chaos.note("delay");
                std::thread::sleep(std::time::Duration::from_millis(1 + rng.below(3)));
                let r = send_settled(
                    &mut c,
                    &format!(r#"{{"op":"step","session":{id},"n":1,"req_id":{}}}"#, next_rid()),
                );
                if !is_ok(&r) {
                    violations.push(format!("delayed step {id}: {r}"));
                }
            }
            11 => {
                // Mid-step panic: detonate an armed boom session, then
                // immediately verify the blast radius stopped at its
                // session boundary.
                if let Some(bid) = boom.pop() {
                    chaos.note("mid-step-panic");
                    panics += 1;
                    let r = send_settled(&mut c, &format!(r#"{{"op":"step","session":{bid},"n":10}}"#));
                    if err_of(&r).as_deref() != Some("panic") {
                        violations.push(format!("boom {bid} expected panic reply: {r}"));
                    }
                    detonated.push(bid);
                    let canary_r = send_settled(
                        &mut c,
                        &format!(r#"{{"op":"step","session":{canary},"n":1,"req_id":{}}}"#, next_rid()),
                    );
                    if !is_ok(&canary_r) {
                        violations
                            .push(format!("blast radius: canary failed after panic: {canary_r}"));
                    }
                }
            }
            12 => {
                if live.len() > 2 && id != canary {
                    let r = send_settled(&mut c, &format!(r#"{{"op":"close","session":{id}}}"#));
                    if !is_ok(&r) {
                        violations.push(format!("close {id}: {r}"));
                    }
                    live.retain(|&s| s != id);
                }
            }
            _ => {
                let r = send_settled(
                    &mut c,
                    &format!(
                        r#"{{"op":"step","session":{id},"n":{},"req_id":{}}}"#,
                        1 + rng.below(16),
                        next_rid()
                    ),
                );
                if !is_ok(&r) {
                    violations.push(format!("step {id}: {r}"));
                }
            }
        }
    }
    // Guarantee the panic fault kind fired at least once.
    if panics == 0 {
        if let Some(bid) = boom.pop() {
            chaos.note("mid-step-panic");
            let r = send_settled(&mut c, &format!(r#"{{"op":"step","session":{bid},"n":10}}"#));
            if err_of(&r).as_deref() != Some("panic") {
                violations.push(format!("boom {bid} expected panic reply: {r}"));
            }
            detonated.push(bid);
        }
    }

    // Quiesce the disk and record what the clients observed as committed:
    // the snapshot of every surviving session, byte for byte.
    chaos.set_every(0);
    let mut expect: Vec<(u64, String)> = Vec::new();
    for &id in live.iter().chain(boom.iter()) {
        let r = send_settled(&mut c, &format!(r#"{{"op":"snapshot","session":{id}}}"#));
        match Json::parse(&r)
            .ok()
            .and_then(|v| v.get("ksnap").and_then(|k| k.as_str().map(String::from)))
        {
            Some(hex) => expect.push((id, hex)),
            None => violations.push(format!("pre-crash snapshot {id}: {r}")),
        }
    }
    let counts = chaos.counts();
    let kinds = counts.iter().filter(|(_, n)| *n > 0).count();
    if kinds < 5 {
        violations.push(format!("only {kinds} fault kinds fired: {counts:?}"));
    }

    // Kill -9 (no drain, no flush), then recover from the state directory.
    let stats = handle.abort();
    let mut cfg2 = server_config(2);
    cfg2.state_dir = Some(dir.clone());
    let handle2 = spawn(cfg2, Arc::new(BenchProvider::new()), "127.0.0.1:0").expect("rebind");
    let recovered = handle2.recovered_sessions();
    let lost = handle2.lost_sessions();
    if recovered != expect.len() as u64 {
        violations.push(format!("recovered {recovered} of {} sessions", expect.len()));
    }
    if lost != 0 {
        violations.push(format!("{lost} sessions lost in recovery"));
    }
    let mut c2 = Client::connect(&handle2);
    let mut verified = 0u64;
    for (id, hex) in &expect {
        let r = c2.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#));
        let got = Json::parse(&r)
            .ok()
            .and_then(|v| v.get("ksnap").and_then(|k| k.as_str().map(String::from)));
        if got.as_deref() == Some(hex.as_str()) {
            verified += 1;
        } else {
            violations.push(format!("session {id} diverged after recovery: {r}"));
        }
    }
    for bid in &detonated {
        let r = c2.send(&format!(r#"{{"op":"step","session":{bid},"n":1}}"#));
        if err_of(&r).as_deref() != Some("unknown-session") {
            violations.push(format!("detonated {bid} resurrected: {r}"));
        }
    }
    // Recovered sessions must still be steppable, not just readable.
    let r = send_settled(&mut c2, &format!(r#"{{"op":"step","session":{canary},"n":3}}"#));
    if !is_ok(&r) {
        violations.push(format!("post-recovery canary step: {r}"));
    }
    c2.send(r#"{"op":"shutdown"}"#);
    handle2.wait();
    std::fs::remove_dir_all(&dir).ok();

    let mut kinds_json = String::new();
    for (i, (label, n)) in counts.iter().enumerate() {
        let _ = write!(kinds_json, "{}\"{label}\": {n}", if i == 0 { "" } else { ", " });
    }
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"server_chaos\",\n  \"git_rev\": \"{}\",\n  \"seed\": \"{seed:#x}\",\n  \
         \"quick\": {quick},\n  \"sessions\": {n_sessions},\n  \"ops\": {ops},\n  \
         \"fault_kinds\": {{ {kinds_json} }},\n  \"panics_contained\": {},\n  \
         \"recovered\": {recovered},\n  \"lost\": {lost},\n  \"verified_identical\": {verified},\n  \
         \"violations\": {}\n}}\n",
        git_rev(),
        stats.panics_contained,
        violations.len(),
    );
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "chaos seed {seed:#x}: {ops} ops over {n_sessions} sessions, {kinds} fault kinds, \
         {recovered} recovered, {verified} byte-identical -> {out}"
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut smoke: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut sessions: u64 = 10_000;
    let mut conns: u64 = 32;
    let mut jobs: usize = 4;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(value("--out")),
            "--smoke" => smoke = Some(value("--smoke")),
            "--chaos" => chaos_seed = Some(parse_seed(&value("--chaos"))),
            "--sessions" => sessions = value("--sessions").parse().expect("--sessions"),
            "--conns" => conns = value("--conns").parse().expect("--conns"),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs"),
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = smoke {
        return run_smoke(&path);
    }
    if let Some(seed) = chaos_seed {
        let out = out.unwrap_or_else(|| "BENCH_CHAOS.json".to_string());
        return run_chaos(seed, quick, &out);
    }
    let out = out.unwrap_or_else(|| "BENCH_PR7.json".to_string());
    if quick {
        sessions = sessions.min(500);
        conns = conns.min(8);
    }

    let cfg = server_config(jobs);
    let spool = cfg.spool_dir.clone();
    let handle = spawn(cfg, Arc::new(BenchProvider::new()), "127.0.0.1:0").expect("bind");
    let started = Instant::now();

    // Each connection owns `sessions / conns` sessions and walks them
    // through a seeded mix of steps, injections, evictions, and closes.
    let per_conn = sessions / conns;
    let ops_total: u64 = std::thread::scope(|s| {
        let handle = &handle;
        let workers: Vec<_> = (0..conns)
            .map(|w| {
                s.spawn(move || {
                    let mut c = Client::connect(handle);
                    let mut rng = Rng(0x5EED_0000 + w + 1);
                    let mut ops = 0u64;
                    let mut ids = Vec::with_capacity(per_conn as usize);
                    for i in 0..per_conn {
                        let design = if i % 2 == 0 { "collatz" } else { "fir" };
                        let r = c.send(&format!(
                            r#"{{"op":"create","design":"{design}","tenant":"w{w}"}}"#
                        ));
                        ops += 1;
                        if let Some(id) = session_of(&r) {
                            ids.push(id);
                        }
                        // Touch a random earlier session between creates so
                        // the table churns instead of filling linearly.
                        if !ids.is_empty() {
                            let id = ids[rng.below(ids.len() as u64) as usize];
                            let reply = match rng.below(10) {
                                0 => c.send(&format!(r#"{{"op":"evict","session":{id}}}"#)),
                                // Register by flat index — valid for any
                                // design in the mix.
                                1 => c.send(&format!(
                                    r#"{{"op":"inject","session":{id},"cycle":1000000,"reg":"0","bit":0}}"#
                                )),
                                2 => c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#)),
                                _ => c.send(&format!(
                                    r#"{{"op":"step","session":{id},"n":{}}}"#,
                                    1 + rng.below(32)
                                )),
                            };
                            ops += 1;
                            assert!(is_ok(&reply), "bench traffic must succeed: {reply}");
                        }
                    }
                    // Final sweep: step every session once more, then close
                    // a third of them.
                    for (i, id) in ids.iter().enumerate() {
                        ops += 1;
                        let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":5}}"#));
                        assert!(is_ok(&r), "{r}");
                        if i % 3 == 0 {
                            ops += 1;
                            c.send(&format!(r#"{{"op":"close","session":{id}}}"#));
                        }
                    }
                    ops
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("worker")).sum()
    });

    let mut c = Client::connect(&handle);
    let metrics_reply = c.send(r#"{"op":"metrics"}"#);
    let wall = started.elapsed();
    let metrics = Json::parse(&metrics_reply).expect("metrics reply");
    let m = metrics.get("metrics").expect("metrics body");
    let sum = |key: &str| -> u64 {
        match m.get("tenants") {
            Some(Json::Obj(tenants)) => tenants
                .iter()
                .filter_map(|(_, t)| t.get(key).and_then(Json::as_u64))
                .sum(),
            _ => 0,
        }
    };
    let cycles = sum("cycles");
    let stats = handle.join();
    std::fs::remove_dir_all(&spool).ok();

    let wall_ms = wall.as_secs_f64() * 1e3;
    let ops_per_sec = ops_total as f64 / wall.as_secs_f64();
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"server_bench\",\n  \"git_rev\": \"{}\",\n  \"quick\": {quick},\n  \
         \"sessions\": {sessions},\n  \"connections\": {conns},\n  \"jobs\": {jobs},\n  \
         \"ops\": {ops_total},\n  \"cycles\": {cycles},\n  \"wall_ms\": {wall_ms:.3},\n  \
         \"ops_per_sec\": {ops_per_sec:.1},\n  \"steps\": {},\n  \"evictions\": {},\n  \
         \"rehydrations\": {},\n  \"injections\": {},\n  \"busy_rejections\": {},\n  \
         \"packed_steps\": {},\n  \"panics_contained\": {},\n  \"sessions_spilled\": {},\n  \
         \"protocol_errors\": {}\n}}\n",
        git_rev(),
        sum("steps"),
        sum("evictions"),
        sum("rehydrations"),
        sum("injections"),
        sum("busy_rejections"),
        sum("packed_steps"),
        stats.panics_contained,
        stats.sessions_spilled,
        stats.protocol_errors,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{sessions} sessions over {conns} connections: {ops_total} ops in {wall_ms:.0} ms \
         ({ops_per_sec:.0} ops/s, {cycles} cycles) -> {out}"
    );
    if stats.panics_contained > 0 || stats.protocol_errors > 0 {
        eprintln!("bench traffic must be clean; server reported errors");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
