//! Load driver for the multi-tenant simulation session server: spawns an
//! in-process server and floods it with sessions over real TCP
//! connections, exercising the whole lifecycle — create, step, inject,
//! snapshot, evict, transparent rehydration, close — then writes a
//! machine-readable record to `BENCH_PR7.json`.
//!
//! ```text
//! Usage: server_bench [--quick] [--out FILE] [--smoke FILE]
//!                     [--sessions N] [--conns N] [--jobs J]
//!   --quick        small session count (CI smoke: validates the JSON
//!                  shape, asserts nothing about performance)
//!   --out FILE     where to write the JSON record (default BENCH_PR7.json)
//!   --smoke FILE   deterministic mode: one connection drives a fixed
//!                  200-session script and every reply line is written to
//!                  FILE verbatim; two runs against two fresh servers must
//!                  produce byte-identical files (CI diffs them). No JSON
//!                  record is written.
//!   --sessions N   session count for the load mode (default 10000)
//!   --conns N      client connections for the load mode (default 32)
//!   --jobs J       server worker threads (default 4)
//! ```
//!
//! The load mode's traffic mix is drawn from a fixed-seed xorshift PRNG,
//! so the *request* stream is reproducible; the JSON record carries both
//! wall-clock throughput and the server's own (deterministic) counters.

use koika_server::json::Json;
use koika_server::{spawn, DesignProvider, ServerConfig, ServerHandle};
use koika::check::check;
use koika::device::Device;
use koika::tir::TDesign;
use koika_designs::small;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Serves the small combinational designs — the bench measures session
/// multiplexing, not core throughput, so cheap designs keep the signal
/// on the server.
struct BenchProvider {
    designs: Mutex<HashMap<String, Arc<TDesign>>>,
}

impl BenchProvider {
    fn new() -> BenchProvider {
        BenchProvider {
            designs: Mutex::new(HashMap::new()),
        }
    }
}

impl DesignProvider for BenchProvider {
    fn design(&self, name: &str) -> Option<Arc<TDesign>> {
        let mut cache = self.designs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(td) = cache.get(name) {
            return Some(Arc::clone(td));
        }
        let design = match name {
            "collatz" => small::collatz(),
            "fir" => small::fir(),
            _ => return None,
        };
        let td = Arc::new(check(&design).ok()?);
        cache.insert(name.to_string(), Arc::clone(&td));
        Some(td)
    }

    fn devices(&self, _name: &str, _td: &TDesign) -> Vec<Box<dyn Device + Send>> {
        Vec::new()
    }
}

/// xorshift64* — fixed-seed traffic mix, no external PRNG needed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        // Without this, Nagle + delayed ACK turns each ping-pong request
        // into a ~40 ms stall and the bench measures the kernel, not the
        // server.
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }
}

fn session_of(reply: &str) -> Option<u64> {
    Json::parse(reply).ok()?.get("session")?.as_u64()
}

fn is_ok(reply: &str) -> bool {
    Json::parse(reply)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        == Some(true)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn server_config(jobs: usize) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.runner.jobs = jobs;
    cfg.spool_dir = std::env::temp_dir().join(format!("koika-server-bench-{}", std::process::id()));
    cfg
}

/// The deterministic 200-session smoke script: every reply is appended to
/// `out`, and the full transcript must be byte-identical run after run.
fn run_smoke(path: &str) -> ExitCode {
    let cfg = server_config(2);
    let spool = cfg.spool_dir.clone();
    let handle = spawn(cfg, Arc::new(BenchProvider::new()), "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(&handle);
    let mut out = String::new();
    let mut log = |reply: String| {
        out.push_str(&reply);
        out.push('\n');
    };

    for i in 0u64..200 {
        let design = if i % 3 == 0 { "fir" } else { "collatz" };
        let tenant = format!("t{}", i % 4);
        let create = c.send(&format!(
            r#"{{"op":"create","design":"{design}","tenant":"{tenant}"}}"#
        ));
        let id = session_of(&create).expect("create must admit");
        log(create);
        log(c.send(&format!(r#"{{"op":"step","session":{id},"n":{}}}"#, 10 + i % 5)));
        if i % 3 == 1 {
            log(c.send(&format!(
                r#"{{"op":"inject","session":{id},"cycle":{},"reg":"x","bit":{}}}"#,
                20 + i % 7,
                i % 8
            )));
            log(c.send(&format!(r#"{{"op":"step","session":{id},"n":15}}"#)));
        }
        if i % 2 == 0 {
            log(c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#)));
        }
        if i % 4 == 0 {
            log(c.send(&format!(r#"{{"op":"evict","session":{id}}}"#)));
            log(c.send(&format!(r#"{{"op":"step","session":{id},"n":2}}"#)));
        }
        if i % 10 == 9 {
            log(c.send(&format!(r#"{{"op":"close","session":{id}}}"#)));
        }
    }
    log(c.send(r#"{"op":"query-regs","session":2}"#));
    log(c.send(r#"{"op":"metrics"}"#));
    log(c.send(r#"{"op":"shutdown"}"#));
    handle.wait();
    std::fs::remove_dir_all(&spool).ok();

    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("smoke transcript: 200 sessions, {} reply lines -> {path}", out.lines().count());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_PR7.json".to_string();
    let mut smoke: Option<String> = None;
    let mut sessions: u64 = 10_000;
    let mut conns: u64 = 32;
    let mut jobs: usize = 4;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = value("--out"),
            "--smoke" => smoke = Some(value("--smoke")),
            "--sessions" => sessions = value("--sessions").parse().expect("--sessions"),
            "--conns" => conns = value("--conns").parse().expect("--conns"),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs"),
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = smoke {
        return run_smoke(&path);
    }
    if quick {
        sessions = sessions.min(500);
        conns = conns.min(8);
    }

    let cfg = server_config(jobs);
    let spool = cfg.spool_dir.clone();
    let handle = spawn(cfg, Arc::new(BenchProvider::new()), "127.0.0.1:0").expect("bind");
    let started = Instant::now();

    // Each connection owns `sessions / conns` sessions and walks them
    // through a seeded mix of steps, injections, evictions, and closes.
    let per_conn = sessions / conns;
    let ops_total: u64 = std::thread::scope(|s| {
        let handle = &handle;
        let workers: Vec<_> = (0..conns)
            .map(|w| {
                s.spawn(move || {
                    let mut c = Client::connect(handle);
                    let mut rng = Rng(0x5EED_0000 + w + 1);
                    let mut ops = 0u64;
                    let mut ids = Vec::with_capacity(per_conn as usize);
                    for i in 0..per_conn {
                        let design = if i % 2 == 0 { "collatz" } else { "fir" };
                        let r = c.send(&format!(
                            r#"{{"op":"create","design":"{design}","tenant":"w{w}"}}"#
                        ));
                        ops += 1;
                        if let Some(id) = session_of(&r) {
                            ids.push(id);
                        }
                        // Touch a random earlier session between creates so
                        // the table churns instead of filling linearly.
                        if !ids.is_empty() {
                            let id = ids[rng.below(ids.len() as u64) as usize];
                            let reply = match rng.below(10) {
                                0 => c.send(&format!(r#"{{"op":"evict","session":{id}}}"#)),
                                // Register by flat index — valid for any
                                // design in the mix.
                                1 => c.send(&format!(
                                    r#"{{"op":"inject","session":{id},"cycle":1000000,"reg":"0","bit":0}}"#
                                )),
                                2 => c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#)),
                                _ => c.send(&format!(
                                    r#"{{"op":"step","session":{id},"n":{}}}"#,
                                    1 + rng.below(32)
                                )),
                            };
                            ops += 1;
                            assert!(is_ok(&reply), "bench traffic must succeed: {reply}");
                        }
                    }
                    // Final sweep: step every session once more, then close
                    // a third of them.
                    for (i, id) in ids.iter().enumerate() {
                        ops += 1;
                        let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":5}}"#));
                        assert!(is_ok(&r), "{r}");
                        if i % 3 == 0 {
                            ops += 1;
                            c.send(&format!(r#"{{"op":"close","session":{id}}}"#));
                        }
                    }
                    ops
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("worker")).sum()
    });

    let mut c = Client::connect(&handle);
    let metrics_reply = c.send(r#"{"op":"metrics"}"#);
    let wall = started.elapsed();
    let metrics = Json::parse(&metrics_reply).expect("metrics reply");
    let m = metrics.get("metrics").expect("metrics body");
    let sum = |key: &str| -> u64 {
        match m.get("tenants") {
            Some(Json::Obj(tenants)) => tenants
                .iter()
                .filter_map(|(_, t)| t.get(key).and_then(Json::as_u64))
                .sum(),
            _ => 0,
        }
    };
    let cycles = sum("cycles");
    let stats = handle.join();
    std::fs::remove_dir_all(&spool).ok();

    let wall_ms = wall.as_secs_f64() * 1e3;
    let ops_per_sec = ops_total as f64 / wall.as_secs_f64();
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"server_bench\",\n  \"git_rev\": \"{}\",\n  \"quick\": {quick},\n  \
         \"sessions\": {sessions},\n  \"connections\": {conns},\n  \"jobs\": {jobs},\n  \
         \"ops\": {ops_total},\n  \"cycles\": {cycles},\n  \"wall_ms\": {wall_ms:.3},\n  \
         \"ops_per_sec\": {ops_per_sec:.1},\n  \"steps\": {},\n  \"evictions\": {},\n  \
         \"rehydrations\": {},\n  \"injections\": {},\n  \"busy_rejections\": {},\n  \
         \"packed_steps\": {},\n  \"panics_contained\": {},\n  \"sessions_spilled\": {},\n  \
         \"protocol_errors\": {}\n}}\n",
        git_rev(),
        sum("steps"),
        sum("evictions"),
        sum("rehydrations"),
        sum("injections"),
        sum("busy_rejections"),
        sum("packed_steps"),
        stats.panics_contained,
        stats.sessions_spilled,
        stats.protocol_errors,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{sessions} sessions over {conns} connections: {ops_total} ops in {wall_ms:.0} ms \
         ({ops_per_sec:.0} ops/s, {cycles} cycles) -> {out}"
    );
    if stats.panics_contained > 0 || stats.protocol_errors > 0 {
        eprintln!("bench traffic must be clean; server reported errors");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
