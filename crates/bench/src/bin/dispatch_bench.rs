//! Measures the four VM dispatch engines against each other and writes a
//! machine-readable baseline to `BENCH_PR9.json`.
//!
//! For each of `collatz`, `fir`, and `rv32i-primes` at the top
//! optimization level, the bytecode `match` dispatcher is timed first,
//! then the pre-bound `closure` dispatcher, then the register-form
//! micro-op (`tac`) engine, then the ahead-of-time compiled `native`
//! engine (rustc-built cdylib; skipped loudly when no toolchain is
//! present). The speedup column is relative to `match` on the same
//! design — the native engine's whole-cycle compiled functions are the
//! PR-9 tentpole, and its ratio over tac on `rv32i-primes` is the number
//! the baseline tracks.
//!
//! ```text
//! Usage: dispatch_bench [--quick] [--out FILE]
//!   --quick    tiny cycle budgets (CI smoke: validates the JSON shape,
//!              asserts nothing about performance)
//!   --out FILE where to write the JSON baseline (default BENCH_PR9.json)
//! ```
//!
//! Cycle budgets also honor `CUTTLE_BENCH_SCALE`.

use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, run_bench, scaled, BackendKind, RunStats};
use std::fmt::Write as _;
use std::process::ExitCode;

/// The designs this baseline tracks.
const DESIGNS: [&str; 3] = ["collatz", "fir", "rv32i-primes"];

struct Row {
    design: &'static str,
    dispatch: Dispatch,
    stats: RunStats,
    /// Speedup over the `match` dispatcher on the same design.
    speedup: f64,
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_PR9.json".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match argv.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("missing value for --out");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option {other} (dispatch_bench takes --quick and --out FILE)");
                return ExitCode::from(2);
            }
        }
    }

    let level = OptLevel::max();
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<14} {:>9} {:>12} {:>10} {:>14} {:>8}",
        "design", "dispatch", "cycles", "wall ms", "cycles/s", "speedup"
    );
    for bench in all_benches() {
        if !DESIGNS.contains(&bench.name) {
            continue;
        }
        let cycles = if quick {
            5_000
        } else {
            scaled(bench.default_cycles)
        };
        let mut match_cps = 0.0;
        for dispatch in Dispatch::ALL {
            if dispatch == Dispatch::Native && !cuttlesim::toolchain_available() {
                eprintln!(
                    "SKIP {}/native: no rustc toolchain (install rustc or set KOIKA_RUSTC)",
                    bench.name
                );
                continue;
            }
            let stats = run_bench(&bench, BackendKind::Vm(level, dispatch), cycles);
            if dispatch == Dispatch::Match {
                match_cps = stats.cps();
            }
            let speedup = stats.cps() / match_cps;
            println!(
                "{:<14} {:>9} {:>12} {:>10.1} {:>14.0} {:>7.2}x",
                bench.name,
                dispatch.short_name(),
                stats.cycles,
                stats.secs * 1e3,
                stats.cps(),
                speedup,
            );
            rows.push(Row {
                design: bench.name,
                dispatch,
                stats,
                speedup,
            });
        }
    }

    let json = render_json(&rows, quick);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn render_json(rows: &[Row], quick: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"dispatch_bench\",");
    let _ = writeln!(s, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(s, "  \"level\": \"{}\",", OptLevel::max().short_name());
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"design\": \"{}\", \"dispatch\": \"{}\", \"cycles\": {}, \
             \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}, \"speedup_vs_match\": {:.3}}}{}",
            r.design,
            r.dispatch.short_name(),
            r.stats.cycles,
            r.stats.secs * 1e3,
            r.stats.cps(),
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
