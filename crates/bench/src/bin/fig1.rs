//! Regenerates Figure 1: Cuttlesim versus the RTL simulator (Verilator
//! stand-in) on Kôika-compiled circuits — runtime and cycles/second per
//! benchmark.
//!
//! Expected shape (paper): Cuttlesim wins everywhere; by the largest factor
//! on the control-heavy processor cores, more narrowly on the combinational
//! fir/fft designs.

use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, run_bench, scaled, BackendKind};
use koika_rtl::Scheme;

fn main() {
    println!("Figure 1: performance of RTL (verilator stand-in) and Cuttlesim models");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>14} {:>8}",
        "design", "cuttlesim(s)", "cuttlesim(c/s)", "rtl-koika(s)", "rtl-koika(c/s)", "speedup"
    );
    for bench in all_benches() {
        let cycles = scaled(bench.default_cycles);
        let fast = run_bench(
            &bench,
            BackendKind::Vm(OptLevel::max(), Dispatch::Match),
            cycles,
        );
        let rtl = run_bench(&bench, BackendKind::Rtl(Scheme::Dynamic), cycles);
        println!(
            "{:<16} {:>12.3} {:>14.0} {:>12.3} {:>14.0} {:>7.2}x",
            bench.name,
            fast.secs,
            fast.cps(),
            rtl.secs,
            rtl.cps(),
            rtl.secs / fast.secs,
        );
    }
}
