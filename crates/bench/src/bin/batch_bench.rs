//! Measures the batched lock-step SoA engine against the scalar Cuttlesim
//! VM and writes a machine-readable baseline to `BENCH_PR10.json`.
//!
//! For each of `collatz`, `fir`, and `rv32i-primes`, the scalar VM at the
//! top optimization level is timed first, then the batched engine at lane
//! widths 16 and 32 with identical per-lane stimulus (identical lanes never
//! diverge, so this is the engine's pure lock-step throughput). Batched
//! rows are measured on the Tac micro-op interpreter and — when a `rustc`
//! toolchain is available — the compiled native batch kernels, and report
//! *instance*-cycles per second — `cycles * lanes / wall` — which is the
//! number comparable to the scalar cycles/sec.
//!
//! ```text
//! Usage: batch_bench [--quick] [--out FILE] [--only NAMES]
//!   --quick      tiny cycle budgets (CI smoke: validates the JSON shape,
//!                asserts nothing about performance)
//!   --out FILE   where to write the JSON baseline (default BENCH_PR10.json)
//!   --only NAMES comma-separated design filter (e.g. `--only collatz`)
//! ```
//!
//! Cycle budgets also honor `CUTTLE_BENCH_SCALE`.

use cuttlesim::{toolchain_available, Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, run_bench, run_bench_batched, scaled, BackendKind, RunStats};
use std::fmt::Write as _;
use std::process::ExitCode;

/// The designs this baseline tracks.
const DESIGNS: [&str; 3] = ["collatz", "fir", "rv32i-primes"];

/// Batch widths measured per design.
const WIDTHS: [usize; 2] = [16, 32];

struct Row {
    design: &'static str,
    lanes: usize,
    dispatch: Dispatch,
    stats: RunStats,
    /// Instance-cycles per second (== `stats.cps()` for the scalar row).
    ips: f64,
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_PR10.json".to_string();
    let mut only: Option<Vec<String>> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match argv.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("missing value for --out");
                    return ExitCode::from(2);
                }
            },
            "--only" => match argv.next() {
                Some(v) => only = Some(v.split(',').map(|s| s.to_string()).collect()),
                None => {
                    eprintln!("missing value for --only");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown option {other} (batch_bench takes --quick, --out FILE, --only NAMES)"
                );
                return ExitCode::from(2);
            }
        }
    }

    let level = OptLevel::max();
    let mut dispatches = vec![Dispatch::Tac];
    if toolchain_available() {
        dispatches.push(Dispatch::Native);
    } else {
        eprintln!("note: no rustc toolchain found; skipping native batch rows");
    }
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<14} {:>8} {:>6} {:>12} {:>10} {:>16} {:>8}",
        "design", "dispatch", "lanes", "cycles", "wall ms", "inst-cycles/s", "speedup"
    );
    for bench in all_benches() {
        if !DESIGNS.contains(&bench.name) {
            continue;
        }
        if let Some(f) = &only {
            if !f.iter().any(|n| n == bench.name) {
                continue;
            }
        }
        let cycles = if quick {
            5_000
        } else {
            scaled(bench.default_cycles)
        };
        let scalar = run_bench(&bench, BackendKind::Vm(level, Dispatch::Match), cycles);
        let scalar_cps = scalar.cps();
        print_row(bench.name, Dispatch::Match, 1, &scalar, scalar_cps, 1.0);
        rows.push(Row {
            design: bench.name,
            lanes: 1,
            dispatch: Dispatch::Match,
            stats: scalar,
            ips: scalar_cps,
        });
        for &dispatch in &dispatches {
            for lanes in WIDTHS {
                let stats = run_bench_batched(&bench, level, dispatch, cycles, lanes);
                let ips = stats.cps() * lanes as f64;
                print_row(bench.name, dispatch, lanes, &stats, ips, ips / scalar_cps);
                rows.push(Row {
                    design: bench.name,
                    lanes,
                    dispatch,
                    stats,
                    ips,
                });
            }
        }
    }

    let json = render_json(&rows, quick);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn print_row(
    design: &str,
    dispatch: Dispatch,
    lanes: usize,
    stats: &RunStats,
    ips: f64,
    speedup: f64,
) {
    println!(
        "{:<14} {:>8} {:>6} {:>12} {:>10.1} {:>16.0} {:>7.2}x",
        design,
        dispatch.short_name(),
        lanes,
        stats.cycles,
        stats.secs * 1e3,
        ips,
        speedup,
    );
}

fn render_json(rows: &[Row], quick: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"batch_bench\",");
    let _ = writeln!(s, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(s, "  \"level\": \"{}\",", OptLevel::max().short_name());
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"design\": \"{}\", \"backend\": \"{}\", \"dispatch\": \"{}\", \
             \"batch\": {}, \"cycles\": {}, \
             \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}}}{}",
            r.design,
            if r.lanes == 1 {
                "cuttlesim-scalar"
            } else {
                "cuttlesim-batch"
            },
            r.dispatch.short_name(),
            r.lanes,
            r.stats.cycles,
            r.stats.secs * 1e3,
            r.ips,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
