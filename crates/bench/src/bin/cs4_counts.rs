//! Regenerates the case-study-4 numbers: Gcov-style coverage counts on the
//! baseline and branch-predicted cores running the branchy workload —
//! mispredictions drop sharply with the BTB+BHT, scoreboard stalls barely
//! move (the paper's 2'071'903 -> 165'753 mispredictions observation).

use cuttlesim::{CompileOptions, CoverageReport, Sim};
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika_designs::harness::{golden_run, MEM_WORDS};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;

fn main() {
    let iters = std::env::var("CUTTLE_CS4_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000u32);
    let program = programs::branchy(iters);
    let golden = golden_run(&program, 2_000_000_000);

    println!("Case study 4: branch-prediction exploration via coverage (branchy x{iters})");
    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>10}",
        "design", "cycles", "mispredicts", "sb-stall-aborts", "IPC"
    );
    for (name, design) in [
        ("baseline", rv32::rv32i()),
        ("bp", rv32::rv32i_bp()),
    ] {
        let td = check(&design).unwrap();
        let mut sim = Sim::compile_with(
            &td,
            &CompileOptions {
                coverage: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
        let retired = td.reg_id("retired");
        let mut cycles = 0u64;
        while sim.get64(retired) < golden.retired {
            mem.tick(cycles, sim.as_reg_access());
            sim.cycle();
            cycles += 1;
        }
        let report = CoverageReport::collect(&sim);
        // Count executions of the statements *inside* the labeled blocks.
        let mispredicts: u64 = report
            .iter()
            .filter(|(_, _, l)| l.contains("WRITE0(pc,"))
            .map(|(c, _, _)| c)
            .sum();
        let stalls = report.count_matching("decode", "FAIL()");
        println!(
            "{:<12} {:>12} {:>14} {:>16} {:>10.3}",
            name,
            cycles,
            mispredicts,
            stalls,
            golden.retired as f64 / cycles as f64,
        );
    }
    println!();
    println!("(Counts come from per-statement coverage on the running model —");
    println!(" no hardware counters were added, exactly as in the paper.)");
}
