//! Ablation of the §3.2/§3.3 optimization ladder: cycles/second of the
//! naive interpreter (O0) and every VM level O1..O6, per benchmark.
//!
//! Expected shape: monotone improvement up the ladder, with the largest
//! jumps from bytecode compilation (O0→O1), accumulated logs (O2), and the
//! design-specific pass (O6) on register-heavy designs.

use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, run_bench, scaled, BackendKind};

fn main() {
    println!("Ablation: optimization-ladder cycles/second");
    print!("{:<16}", "design");
    print!(" {:>10}", "O0");
    for level in OptLevel::ALL {
        print!(" {:>10}", level.short_name());
    }
    println!();
    for bench in all_benches() {
        let budget = scaled(bench.default_cycles / 4);
        print!("{:<16}", bench.name);
        let interp = run_bench(&bench, BackendKind::Interp, (budget / 8).max(1000));
        print!(" {:>10.0}", interp.cps());
        for level in OptLevel::ALL {
            let stats = run_bench(
                &bench,
                BackendKind::Vm(level, Dispatch::Match),
                budget,
            );
            print!(" {:>10.0}", stats.cps());
        }
        println!();
    }
}
