//! Benchmark harness regenerating the tables and figures of the Cuttlesim
//! paper's evaluation (§4.1).
//!
//! The benchmark set mirrors Table 1: `collatz`, `fir`, `fft`,
//! `rv32e-primes`, `rv32i-primes`, `rv32i-bp-primes`, and `rv32i-mc-primes`.
//! Each can be run on any backend ([`BackendKind`]): the reference
//! interpreter (the naive O0 model), the Cuttlesim VM at any optimization
//! level and with either dispatch strategy, or the RTL netlist simulator
//! under either compilation scheme. The binaries in `src/bin/` print one
//! table/figure each; `benches/` holds the Criterion versions.
//!
//! See EXPERIMENTS.md at the workspace root for the paper-vs-measured
//! record.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use cuttlesim::{BatchSim, CompileOptions, Dispatch, OptLevel, Sim};
use koika::check::check;
use koika::design::Design;
use koika::device::{Device, LaneAccess, RegAccess, SimBackend};
use koika::interp::Interp;
use koika::testgen::SplitMix64;
use koika::tir::TDesign;
use koika_designs::memdev::MagicMemory;
use koika_designs::{rv32, small};
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};
use std::time::Instant;

/// Which simulation backend to run a workload on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The reference interpreter — the naive model, "O0".
    Interp,
    /// The Cuttlesim VM at a given level, with a given dispatcher.
    Vm(OptLevel, Dispatch),
    /// The RTL netlist simulator (the Verilator stand-in).
    Rtl(Scheme),
}

impl BackendKind {
    /// Short label used in printed tables.
    pub fn label(self) -> String {
        match self {
            BackendKind::Interp => "interp-O0".to_string(),
            BackendKind::Vm(level, Dispatch::Match) => {
                format!("cuttlesim-{}", level.short_name())
            }
            BackendKind::Vm(level, Dispatch::Closure) => {
                format!("cuttlesim-{}-closure", level.short_name())
            }
            BackendKind::Vm(level, Dispatch::Tac) => {
                format!("cuttlesim-{}-tac", level.short_name())
            }
            BackendKind::Vm(level, Dispatch::Native) => {
                format!("cuttlesim-{}-native", level.short_name())
            }
            BackendKind::Rtl(Scheme::Dynamic) => "rtl-koika".to_string(),
            BackendKind::Rtl(Scheme::Static) => "rtl-bluespec-style".to_string(),
        }
    }
}

/// A Table-1 benchmark: a design plus its standard stimulus.
pub struct Bench {
    /// Row name (Table 1 spelling).
    pub name: &'static str,
    /// Builds the design.
    pub design: fn() -> Design,
    /// Builds the cycle-boundary devices for a checked design.
    pub devices: fn(&TDesign) -> Vec<Box<dyn Device>>,
    /// Default cycle budget at scale 1.0.
    pub default_cycles: u64,
}

/// A closure-backed device, for simple stimulus generators.
pub struct FnDevice<F>(pub F);

impl<F: FnMut(u64, &mut dyn RegAccess)> Device for FnDevice<F> {
    fn tick(&mut self, cycle: u64, regs: &mut dyn RegAccess) {
        (self.0)(cycle, regs)
    }
}

fn collatz_devices(_td: &TDesign) -> Vec<Box<dyn Device>> {
    Vec::new() // self-restarting
}

fn fir_devices(td: &TDesign) -> Vec<Box<dyn Device>> {
    let input = td.reg_id("input");
    let mut rng = SplitMix64::new(1);
    vec![Box::new(FnDevice(move |_c, regs: &mut dyn RegAccess| {
        regs.set64(input, rng.next_u64() & 0xffff);
    }))]
}

fn fft_devices(td: &TDesign) -> Vec<Box<dyn Device>> {
    let ins: Vec<_> = (0..small::FFT_POINTS)
        .map(|i| td.reg_id(&format!("in{i}")))
        .collect();
    let mut rng = SplitMix64::new(2);
    vec![Box::new(FnDevice(move |_c, regs: &mut dyn RegAccess| {
        for &r in &ins {
            regs.set64(r, rng.next_u64() & 0x0fff_0fff);
        }
    }))]
}

/// The prime-counting limit used by the core benchmarks.
pub const PRIMES_LIMIT: u32 = 400;

fn core_devices(td: &TDesign) -> Vec<Box<dyn Device>> {
    vec![Box::new(MagicMemory::new(
        td,
        &["imem", "dmem"],
        &programs::primes(PRIMES_LIMIT),
        koika_designs::harness::MEM_WORDS,
    ))]
}

fn mc_devices(td: &TDesign) -> Vec<Box<dyn Device>> {
    let mut mem = MagicMemory::new(
        td,
        &["c0_imem", "c0_dmem", "c1_imem", "c1_dmem"],
        &programs::primes_at(PRIMES_LIMIT, 0x1800),
        koika_designs::harness::MEM_WORDS,
    );
    mem.load(rv32::MC_CORE1_PC, &programs::primes_at(PRIMES_LIMIT, 0x1900));
    vec![Box::new(mem)]
}

/// The seven benchmarks of Table 1.
pub fn all_benches() -> Vec<Bench> {
    vec![
        Bench {
            name: "collatz",
            design: small::collatz,
            devices: collatz_devices,
            default_cycles: 2_000_000,
        },
        Bench {
            name: "fir",
            design: small::fir,
            devices: fir_devices,
            default_cycles: 1_000_000,
        },
        Bench {
            name: "fft",
            design: small::fft,
            devices: fft_devices,
            default_cycles: 300_000,
        },
        Bench {
            name: "rv32e-primes",
            design: rv32::rv32e,
            devices: core_devices,
            default_cycles: 1_000_000,
        },
        Bench {
            name: "rv32i-primes",
            design: rv32::rv32i,
            devices: core_devices,
            default_cycles: 1_000_000,
        },
        Bench {
            name: "rv32i-bp-primes",
            design: rv32::rv32i_bp,
            devices: core_devices,
            default_cycles: 1_000_000,
        },
        Bench {
            name: "rv32i-mc-primes",
            design: rv32::rv32i_mc,
            devices: mc_devices,
            default_cycles: 600_000,
        },
    ]
}

/// One measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Simulated rule commits.
    pub rules_fired: u64,
}

impl RunStats {
    /// Simulation speed in cycles per second.
    pub fn cps(&self) -> f64 {
        self.cycles as f64 / self.secs
    }
}

/// Instantiates the backend for a checked design.
///
/// # Panics
///
/// Panics if the design cannot be compiled for the requested backend (all
/// Table-1 designs can).
pub fn make_backend(td: &TDesign, kind: BackendKind) -> Box<dyn SimBackend> {
    match kind {
        BackendKind::Interp => Box::new(Interp::new(td)),
        BackendKind::Vm(level, dispatch) => {
            let mut sim = Sim::compile_with(
                td,
                &CompileOptions {
                    level,
                    ..CompileOptions::default()
                },
            )
            .expect("benchmark designs fit the fast path");
            sim.set_dispatch(dispatch);
            Box::new(sim)
        }
        BackendKind::Rtl(scheme) => Box::new(RtlSim::new(
            rtl_compile(td, scheme).expect("benchmark designs are RTL-compilable"),
        )),
    }
}

/// Runs a benchmark for `cycles` cycles on the given backend and measures
/// wall-clock time.
pub fn run_bench(bench: &Bench, kind: BackendKind, cycles: u64) -> RunStats {
    let td = check(&(bench.design)()).expect("benchmark designs typecheck");
    let mut devices = (bench.devices)(&td);
    let mut sim = make_backend(&td, kind);
    let start = Instant::now();
    for cycle in 0..cycles {
        for d in devices.iter_mut() {
            d.tick(cycle, sim.as_reg_access());
        }
        sim.cycle();
    }
    RunStats {
        cycles,
        secs: start.elapsed().as_secs_f64(),
        rules_fired: sim.rules_fired(),
    }
}

/// Runs a benchmark as `lanes` identical instances of the batched
/// lock-step SoA engine, each lane with its own copy of the standard
/// stimulus devices. Identical lanes never diverge, so this measures the
/// engine's pure lock-step throughput; `rules_fired` sums over all lanes,
/// and the interesting figure is *instance*-cycles per second:
/// `stats.cps() * lanes as f64`.
///
/// # Panics
///
/// Panics if the design cannot be compiled, the requested dispatch cannot
/// be selected, or a cycle reports an engine error (no Table-1 design
/// does on any dispatch).
pub fn run_bench_batched(
    bench: &Bench,
    level: OptLevel,
    dispatch: Dispatch,
    cycles: u64,
    lanes: usize,
) -> RunStats {
    let td = check(&(bench.design)()).expect("benchmark designs typecheck");
    let mut lane_devices: Vec<Vec<Box<dyn Device>>> =
        (0..lanes).map(|_| (bench.devices)(&td)).collect();
    let mut sim = BatchSim::compile_with(
        &td,
        &CompileOptions {
            level,
            ..CompileOptions::default()
        },
        lanes,
    )
    .expect("benchmark designs fit the fast path");
    sim.set_dispatch(dispatch);
    // Device-free designs (collatz is self-restarting) skip the whole
    // stimulus walk: at tight per-cycle budgets the empty LaneAccess loop
    // is measurable harness overhead, not engine time.
    let has_devices = lane_devices.iter().any(|d| !d.is_empty());
    let start = Instant::now();
    for cycle in 0..cycles {
        if has_devices {
            for (l, devices) in lane_devices.iter_mut().enumerate() {
                let mut access = LaneAccess::new(&mut sim, l);
                for d in devices.iter_mut() {
                    d.tick(cycle, &mut access);
                }
            }
        }
        sim.cycle().expect("benchmark designs execute cleanly");
    }
    RunStats {
        cycles,
        secs: start.elapsed().as_secs_f64(),
        rules_fired: (0..lanes).map(|l| sim.lane_fired(l)).sum(),
    }
}

/// The scale factor from the `CUTTLE_BENCH_SCALE` environment variable
/// (default 1.0) — lets CI and quick runs shrink every cycle budget.
pub fn scale() -> f64 {
    std::env::var("CUTTLE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Applies [`scale`] to a cycle budget (keeping at least 1000 cycles).
pub fn scaled(cycles: u64) -> u64 {
    ((cycles as f64 * scale()) as u64).max(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benches_run_everywhere_briefly() {
        for bench in all_benches() {
            for kind in [
                BackendKind::Interp,
                BackendKind::Vm(OptLevel::max(), Dispatch::Match),
                BackendKind::Rtl(Scheme::Dynamic),
            ] {
                let stats = run_bench(&bench, kind, 500);
                assert_eq!(stats.cycles, 500, "{} on {}", bench.name, kind.label());
                assert!(
                    stats.rules_fired > 0,
                    "{} on {}: no rules fired",
                    bench.name,
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn batched_fired_counts_match_scalar_times_lanes() {
        for bench in all_benches() {
            let scalar = run_bench(&bench, BackendKind::Vm(OptLevel::max(), Dispatch::Match), 300);
            let batched = run_bench_batched(&bench, OptLevel::max(), Dispatch::Tac, 300, 4);
            assert_eq!(
                batched.rules_fired,
                scalar.rules_fired * 4,
                "{}: identical lanes must fire identically",
                bench.name
            );
        }
    }

    #[test]
    fn fired_counts_agree_across_backends() {
        for bench in all_benches() {
            let mut counts = Vec::new();
            for kind in [
                BackendKind::Interp,
                BackendKind::Vm(OptLevel::SplitRwSets, Dispatch::Match),
                BackendKind::Vm(OptLevel::max(), Dispatch::Closure),
                BackendKind::Rtl(Scheme::Dynamic),
            ] {
                counts.push(run_bench(&bench, kind, 300).rules_fired);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{}: fired counts diverge across backends: {counts:?}",
                bench.name
            );
        }
    }
}
