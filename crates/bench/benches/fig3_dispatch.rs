//! Criterion version of Figure 3: sensitivity to the VM dispatch strategy
//! (the GCC-vs-Clang stand-in; see DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, make_backend, BackendKind};
use koika::check::check;
use std::time::Duration;

const CYCLES_PER_ITER: u64 = 2000;

fn bench_fig3(c: &mut Criterion) {
    for bench in all_benches()
        .into_iter()
        .filter(|b| matches!(b.name, "collatz" | "rv32i-primes"))
    {
        let mut group = c.benchmark_group(format!("fig3/{}", bench.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(CYCLES_PER_ITER));
        for dispatch in [Dispatch::Match, Dispatch::Closure, Dispatch::Tac] {
            let kind = BackendKind::Vm(OptLevel::max(), dispatch);
            let td = check(&(bench.design)()).unwrap();
            let mut devices = (bench.devices)(&td);
            let mut sim = make_backend(&td, kind);
            let mut cycle = 0u64;
            group.bench_function(kind.label(), |b| {
                b.iter(|| {
                    for _ in 0..CYCLES_PER_ITER {
                        for d in devices.iter_mut() {
                            d.tick(cycle, sim.as_reg_access());
                        }
                        sim.cycle();
                        cycle += 1;
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
