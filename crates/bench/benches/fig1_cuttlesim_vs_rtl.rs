//! Criterion version of Figure 1: Cuttlesim (max level) vs the RTL netlist
//! simulator, steady-state cycles. A representative subset keeps
//! `cargo bench` fast; `cargo run --release -p cuttlesim-bench --bin fig1`
//! prints the full figure.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cuttlesim::{Dispatch, OptLevel};
use cuttlesim_bench::{all_benches, make_backend, BackendKind};
use koika::check::check;
use koika_rtl::Scheme;
use std::time::Duration;

const CYCLES_PER_ITER: u64 = 2000;

fn bench_fig1(c: &mut Criterion) {
    for bench in all_benches()
        .into_iter()
        .filter(|b| matches!(b.name, "collatz" | "fir" | "rv32i-primes"))
    {
        let mut group = c.benchmark_group(format!("fig1/{}", bench.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(CYCLES_PER_ITER));
        for kind in [
            BackendKind::Vm(OptLevel::max(), Dispatch::Match),
            BackendKind::Rtl(Scheme::Dynamic),
        ] {
            let td = check(&(bench.design)()).unwrap();
            let mut devices = (bench.devices)(&td);
            let mut sim = make_backend(&td, kind);
            let mut cycle = 0u64;
            group.bench_function(kind.label(), |b| {
                b.iter(|| {
                    for _ in 0..CYCLES_PER_ITER {
                        for d in devices.iter_mut() {
                            d.tick(cycle, sim.as_reg_access());
                        }
                        sim.cycle();
                        cycle += 1;
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
