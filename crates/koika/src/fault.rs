//! The resilience-testing harness: seeded SEU fault-injection campaigns,
//! watchdog budgets, and deterministic replay with shrinking.
//!
//! The paper's case studies (§4) demonstrate that compiling Kôika designs
//! to software makes them *debuggable* — state can be inspected, perturbed,
//! and replayed with ordinary software tooling. This module packages that
//! capability as a harness: flip a single bit of architectural state (a
//! single-event upset, the canonical soft-error model) at a chosen cycle,
//! run the design to completion under a [`Watchdog`], and classify what the
//! perturbation did by comparing against an unperturbed *golden run*:
//!
//! * **masked** — the final architectural state is identical to golden: the
//!   design absorbed the upset;
//! * **SDC** (silent data corruption) — the rule-commit stream is identical
//!   to golden, but the final state differs: the design "ran the same" yet
//!   produced wrong data, silently;
//! * **divergence** — the commit stream itself diverged (control flow
//!   changed), and the final state differs;
//! * **hang** — the watchdog tripped: no rule committed for the configured
//!   number of consecutive cycles, or a budget was exhausted.
//!
//! Campaigns are **deterministic**: every member's injection schedule is
//! derived from the campaign seed alone, so a campaign report is
//! byte-for-byte reproducible across invocations, any failing member can be
//! replayed in isolation from its recorded schedule ([`ReplayLog`]), and a
//! multi-injection failure shrinks to a minimal single-injection reproducer
//! ([`FaultEngine::shrink`]).
//!
//! The engine is backend-agnostic: it drives any [`SimBackend`] through
//! factory closures, so campaigns run on the reference interpreter, the
//! Cuttlesim VM, or the RTL simulator — and injections and watchdog trips
//! surface as [`Observer`] events, so they appear in metrics and Perfetto
//! timelines alongside ordinary rule activity.

use crate::device::{BatchBackend, Device, LaneAccess, RegAccess, SimBackend};
use crate::obs::Observer;
use crate::runner::{self, contain, JobError, JobUpdate, RunnerConfig, RunnerStats};
use crate::testgen::SplitMix64;
use crate::tir::{RegId, TDesign};
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One SEU: flip bit `bit` of register `reg` just before cycle `cycle`
/// executes (after devices have ticked, so the injected value wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Injection {
    /// Cycle before which the flip is applied.
    pub cycle: u64,
    /// Target register (flattened space).
    pub reg: RegId,
    /// Bit to flip (0 = least significant; must be below the register
    /// width).
    pub bit: u32,
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.cycle, self.reg.0, self.bit)
    }
}

impl Injection {
    /// Parses a `cycle:reg:bit` spec. The register may be a name from the
    /// design or a flat index; the bit must be inside the register width.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str, td: &TDesign) -> Result<Injection, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [cycle, reg, bit] = parts.as_slice() else {
            return Err(format!(
                "bad injection spec {spec:?}: expected cycle:reg:bit (e.g. 12:x:3)"
            ));
        };
        let cycle: u64 = cycle
            .parse()
            .map_err(|_| format!("bad injection cycle {cycle:?}"))?;
        let reg_idx = match td.regs.iter().position(|r| r.name == *reg) {
            Some(i) => i,
            None => reg
                .parse::<usize>()
                .ok()
                .filter(|&i| i < td.regs.len())
                .ok_or_else(|| format!("unknown register {reg:?} in injection spec"))?,
        };
        let bit: u32 = bit
            .parse()
            .map_err(|_| format!("bad injection bit {bit:?}"))?;
        let width = td.regs[reg_idx].width;
        if bit >= width {
            return Err(format!(
                "injection bit {bit} out of range for {} ({width} bits)",
                td.regs[reg_idx].name
            ));
        }
        Ok(Injection {
            cycle,
            reg: RegId(reg_idx as u32),
            bit,
        })
    }

    /// Renders the spec with the register's name, for user-facing output.
    pub fn display_with(&self, td: &TDesign) -> String {
        let name = td
            .regs
            .get(self.reg.0 as usize)
            .map(|r| r.name.as_str())
            .unwrap_or("?");
        format!("{}:{}:{}", self.cycle, name, self.bit)
    }
}

/// How an injected run ended relative to the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Final state identical to golden — the upset was absorbed.
    Masked,
    /// Commit stream identical, final state differs: silent data
    /// corruption.
    Sdc,
    /// The commit stream diverged first at the given cycle.
    Divergence {
        /// First cycle whose commit set differed from golden.
        first_cycle: u64,
    },
    /// The watchdog aborted the run before the given cycle on a
    /// **deterministic** budget (stall or cycle count).
    Hang {
        /// Cycle count when the watchdog tripped.
        cycle: u64,
    },
    /// The member panicked; the panic was contained by the runner and the
    /// message recorded in [`MemberReport::detail`].
    Panic,
    /// Only the wall-clock budget tripped, and kept tripping after every
    /// retry. Unlike `Hang`, this is a statement about the *machine* (load,
    /// scheduling), not the design — which is why wall-only trips get their
    /// own class and never pollute the deterministic `hang` counts.
    Flaky,
}

impl Outcome {
    /// The outcome class, ignoring detection cycles — what campaign
    /// counters and shrinking compare.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Divergence { .. } => "divergence",
            Outcome::Hang { .. } => "hang",
            Outcome::Panic => "panic",
            Outcome::Flaky => "flaky",
        }
    }

    /// True for every class except [`Outcome::Masked`].
    pub fn is_failure(&self) -> bool {
        !matches!(self, Outcome::Masked)
    }

    fn to_token(self) -> String {
        match self {
            Outcome::Masked => "masked".into(),
            Outcome::Sdc => "sdc".into(),
            Outcome::Divergence { first_cycle } => format!("divergence@{first_cycle}"),
            Outcome::Hang { cycle } => format!("hang@{cycle}"),
            Outcome::Panic => "panic".into(),
            Outcome::Flaky => "flaky".into(),
        }
    }

    fn from_token(tok: &str) -> Result<Outcome, String> {
        let (kind, at) = match tok.split_once('@') {
            Some((k, c)) => (
                k,
                Some(c.parse::<u64>().map_err(|_| format!("bad outcome cycle in {tok:?}"))?),
            ),
            None => (tok, None),
        };
        match (kind, at) {
            ("masked", None) => Ok(Outcome::Masked),
            ("sdc", None) => Ok(Outcome::Sdc),
            ("divergence", Some(c)) => Ok(Outcome::Divergence { first_cycle: c }),
            ("hang", Some(c)) => Ok(Outcome::Hang { cycle: c }),
            ("panic", None) => Ok(Outcome::Panic),
            ("flaky", None) => Ok(Outcome::Flaky),
            _ => Err(format!("bad outcome token {tok:?}")),
        }
    }
}

/// All outcome class labels, in the order [`CampaignReport::counts`] uses.
pub const OUTCOME_CLASSES: [&str; 6] = ["masked", "sdc", "divergence", "hang", "panic", "flaky"];

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_token())
    }
}

/// Per-run execution budgets. A tripped watchdog aborts the run with a
/// classifiable reason instead of spinning forever.
///
/// Stall detection (`stall_cycles`) is the deterministic trigger —
/// campaigns rely on it exclusively, so classification never depends on
/// wall-clock time. The wall-clock budget is a backstop for interactive
/// use.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    /// Abort once this many cycles have executed in total.
    pub max_cycles: Option<u64>,
    /// Abort after this many consecutive cycles with zero rule commits.
    pub stall_cycles: Option<u64>,
    /// Abort after this much wall-clock time.
    pub wall_budget: Option<Duration>,
}

impl Watchdog {
    /// A watchdog with only deterministic stall detection enabled.
    pub fn stall_only(stall_cycles: u64) -> Watchdog {
        Watchdog {
            stall_cycles: Some(stall_cycles),
            ..Watchdog::default()
        }
    }

    /// Arms the watchdog for one run. The armed watchdog owns a copy of the
    /// budget configuration so long-lived holders (e.g. server session
    /// tables) need no borrow of the original.
    pub fn arm(&self) -> ArmedWatchdog {
        ArmedWatchdog {
            cfg: self.clone(),
            start: Instant::now(),
            stalled: 0,
            paused_at: None,
        }
    }
}

/// Which budget a watchdog trip exhausted.
///
/// Stall and cycle budgets are pure functions of the simulation, so their
/// trips reproduce on any machine; a wall-clock trip depends on load and
/// scheduling, which is why campaign classification treats it as
/// retry-then-`flaky` rather than `hang`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripKind {
    /// Deterministic: too many consecutive commit-free cycles.
    Stall,
    /// Deterministic: total cycle budget exhausted.
    CycleBudget,
    /// Machine-dependent: wall-clock budget exhausted.
    Wall,
}

impl TripKind {
    /// True for budgets that are pure functions of the simulation.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, TripKind::Wall)
    }
}

/// Why a watchdog aborted a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// Cycle count when the trip happened.
    pub cycle: u64,
    /// Which budget tripped.
    pub kind: TripKind,
    /// Human-readable trigger.
    pub reason: String,
}

impl fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "watchdog trip at cycle {}: {}", self.cycle, self.reason)
    }
}

/// A [`Watchdog`] armed for one run; see [`ArmedWatchdog::observe`].
#[derive(Debug)]
pub struct ArmedWatchdog {
    cfg: Watchdog,
    start: Instant,
    stalled: u64,
    paused_at: Option<Instant>,
}

impl ArmedWatchdog {
    /// Stops the wall clock, e.g. while an interactive debugger is sitting
    /// at its prompt or replaying history. Time spent paused never counts
    /// toward the wall budget, so a long pause cannot be misclassified as a
    /// hang. Stall and cycle budgets are unaffected (they count simulated
    /// cycles, which do not advance while paused). Idempotent.
    pub fn pause(&mut self) {
        if self.paused_at.is_none() {
            self.paused_at = Some(Instant::now());
        }
    }

    /// Restarts the wall clock after [`ArmedWatchdog::pause`], shifting the
    /// arm time forward by the paused duration. Idempotent.
    pub fn resume(&mut self) {
        if let Some(p) = self.paused_at.take() {
            self.start += p.elapsed();
        }
    }

    /// Wall-clock time elapsed since arming, excluding paused intervals.
    pub fn wall_elapsed(&self) -> Duration {
        match self.paused_at {
            // While paused, the clock is frozen at the pause instant.
            Some(p) => p.duration_since(self.start),
            None => self.start.elapsed(),
        }
    }

    /// Rewinds the wall clock so [`ArmedWatchdog::wall_elapsed`] reads
    /// `mark` again. Used when a machine-dependent wall trip is retried:
    /// the retry should restart from the budget position recorded before
    /// the failed attempt rather than instantly re-tripping. Marks in the
    /// future of the current reading are ignored (the clock never moves
    /// forward under a rewind).
    pub fn wall_rewind_to(&mut self, mark: Duration) {
        let now_mark = self.wall_elapsed();
        if mark >= now_mark {
            return;
        }
        // Shift the arm time forward by the amount being forgiven.
        self.start += now_mark - mark;
    }

    /// Number of consecutive zero-commit cycles observed so far. The stall
    /// counter is part of a session's durable state: a checkpoint taken
    /// mid-stall must record it so that deterministic replay after a crash
    /// trips the stall budget on exactly the same cycle as the original run.
    pub fn stall_count(&self) -> u64 {
        self.stalled
    }

    /// Restores the consecutive-stall counter, e.g. when re-arming a
    /// watchdog from a recovery checkpoint. See [`ArmedWatchdog::stall_count`].
    pub fn set_stall_count(&mut self, stalled: u64) {
        self.stalled = stalled;
    }

    /// Reports one completed cycle (with the number of rule commits it
    /// made); returns a trip if any budget is now exhausted.
    pub fn observe(&mut self, cycles_done: u64, commits: u64) -> Option<WatchdogTrip> {
        if commits == 0 {
            self.stalled += 1;
        } else {
            self.stalled = 0;
        }
        if let Some(k) = self.cfg.stall_cycles {
            if self.stalled >= k {
                return Some(WatchdogTrip {
                    cycle: cycles_done,
                    kind: TripKind::Stall,
                    reason: format!("no rule committed for {k} consecutive cycles"),
                });
            }
        }
        if let Some(max) = self.cfg.max_cycles {
            if cycles_done >= max {
                return Some(WatchdogTrip {
                    cycle: cycles_done,
                    kind: TripKind::CycleBudget,
                    reason: format!("cycle budget of {max} exhausted"),
                });
            }
        }
        if let Some(budget) = self.cfg.wall_budget {
            if self.wall_elapsed() > budget {
                return Some(WatchdogTrip {
                    cycle: cycles_done,
                    kind: TripKind::Wall,
                    reason: format!("wall-clock budget of {budget:?} exhausted"),
                });
            }
        }
        None
    }
}

/// An [`Observer`] that folds each cycle's committed-rule sequence into one
/// 64-bit fingerprint (FNV-1a over schedule-ordered rule indices). Two runs
/// whose per-cycle fingerprints agree committed exactly the same rules in
/// the same order.
#[derive(Debug, Clone, Default)]
pub struct CommitFingerprint {
    /// One fingerprint per completed cycle.
    pub per_cycle: Vec<u64>,
    cur: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl CommitFingerprint {
    /// A digest of the whole commit stream (order-sensitive).
    pub fn digest(&self) -> u64 {
        digest_fps(&self.per_cycle)
    }
}

fn digest_fps(fps: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &fp in fps {
        h = (h ^ fp).wrapping_mul(FNV_PRIME);
    }
    h
}

impl Observer for CommitFingerprint {
    fn cycle_start(&mut self, _cycle: u64) {
        self.cur = FNV_OFFSET;
    }

    fn rule_commit(&mut self, rule: usize) {
        self.cur = (self.cur ^ (rule as u64 + 1)).wrapping_mul(FNV_PRIME);
    }

    fn cycle_end(&mut self, _cycle: u64) {
        self.per_cycle.push(self.cur);
    }
}

/// Runs `ncycles` cycles with device ticks, scheduled injections, and a
/// watchdog; events go to `obs` when one is attached.
///
/// Injections fire after the cycle's device ticks (so the flipped value is
/// what the cycle sees) and are matched by **absolute** cycle number, which
/// makes them stable across snapshot/restore.
///
/// # Errors
///
/// Returns the [`WatchdogTrip`] if a budget was exhausted; the simulator is
/// left at the cycle boundary where the trip fired.
pub fn run_watchdogged(
    sim: &mut dyn SimBackend,
    devices: &mut [Box<dyn Device>],
    ncycles: u64,
    injections: &[Injection],
    watchdog: &Watchdog,
    mut obs: Option<&mut dyn Observer>,
) -> Result<(), WatchdogTrip> {
    let mut armed = watchdog.arm();
    for _ in 0..ncycles {
        let cycle = sim.cycle_count();
        for d in devices.iter_mut() {
            d.tick(cycle, sim.as_reg_access());
        }
        for inj in injections.iter().filter(|i| i.cycle == cycle) {
            let regs = sim.as_reg_access();
            let old = regs.get64(inj.reg);
            let new = old ^ (1u64 << inj.bit);
            regs.set64(inj.reg, new);
            if let Some(o) = obs.as_deref_mut() {
                o.fault_injected(cycle, inj.reg, inj.bit, old, new);
            }
        }
        let before = sim.rules_fired();
        match obs.as_deref_mut() {
            Some(o) => sim.cycle_obs(o),
            None => sim.cycle(),
        }
        let commits = sim.rules_fired().wrapping_sub(before);
        if let Some(trip) = armed.observe(sim.cycle_count(), commits) {
            if let Some(o) = obs.as_deref_mut() {
                o.watchdog_trip(trip.cycle, &trip.reason);
            }
            return Err(trip);
        }
    }
    Ok(())
}

/// The recorded golden (fault-free) run a campaign classifies against.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Per-cycle commit fingerprints.
    pub fps: Vec<u64>,
    /// Final register values (low 64 bits, flattened-register-space order).
    pub final_regs: Vec<u64>,
}

impl GoldenRun {
    /// Order-sensitive digest of the whole golden commit stream — recorded
    /// in replay logs to guard against replaying into a different
    /// design/backend/workload configuration.
    pub fn digest(&self) -> u64 {
        digest_fps(&self.fps)
    }
}

/// Classifies an injected run against the golden run — a pure function of
/// the two runs' fingerprints, final states, and whether the watchdog
/// tripped.
pub fn classify(
    golden: &GoldenRun,
    fps: &[u64],
    final_regs: &[u64],
    hang: Option<u64>,
) -> Outcome {
    if let Some(cycle) = hang {
        return Outcome::Hang { cycle };
    }
    if final_regs == golden.final_regs.as_slice() {
        return Outcome::Masked;
    }
    let diverged = golden
        .fps
        .iter()
        .zip(fps)
        .position(|(a, b)| a != b)
        .map(|i| i as u64);
    match diverged {
        Some(first_cycle) => Outcome::Divergence { first_cycle },
        None => Outcome::Sdc,
    }
}

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// PRNG seed every member's injection schedule derives from.
    pub seed: u64,
    /// Number of campaign members (injected runs).
    pub members: usize,
    /// Cycles per run.
    pub cycles: u64,
    /// Each member draws between 1 and this many injections.
    pub max_injections: u32,
    /// Hang detection: consecutive commit-free cycles before the watchdog
    /// trips.
    pub stall_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0FFEE,
            members: 100,
            cycles: 1000,
            max_injections: 3,
            stall_cycles: 256,
        }
    }
}

/// One campaign member's schedule and result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberReport {
    /// Member index within the campaign.
    pub index: usize,
    /// The injections applied, in cycle order.
    pub injections: Vec<Injection>,
    /// How the run ended.
    pub outcome: Outcome,
    /// Supporting evidence for `panic` (the contained panic message) and
    /// `flaky` (the wall trip reason) outcomes; `None` for the classes
    /// derived from golden-run comparison.
    pub detail: Option<String>,
}

/// Errors from campaign setup (never from individual members — those
/// always classify).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A register is wider than 64 bits; the engine compares `u64` state.
    WideDesign(String),
    /// The design has no registers to inject into.
    NoRegisters,
    /// The *golden* run tripped the watchdog — the configuration itself
    /// never makes progress, so no member can be classified against it.
    GoldenHang(WatchdogTrip),
    /// The *golden* run panicked; the string is the contained panic
    /// message. No member can be classified without a golden run.
    GoldenPanic(String),
    /// A simulator could not be built (factory reported an error).
    Setup(String),
    /// A replay log's recorded golden digest does not match the golden run
    /// observed in this environment.
    DigestMismatch {
        /// Digest recorded in the log.
        recorded: u64,
        /// Digest observed on replay.
        observed: u64,
    },
    /// A replayed injection does not fit the design (register index or bit
    /// out of range).
    BadInjection(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::WideDesign(reg) => {
                write!(f, "fault injection requires <=64-bit registers; {reg} is wider")
            }
            FaultError::NoRegisters => write!(f, "design has no registers to inject into"),
            FaultError::GoldenHang(trip) => {
                write!(f, "golden run made no progress ({trip}); nothing to classify against")
            }
            FaultError::GoldenPanic(msg) => {
                write!(f, "golden run panicked ({msg}); nothing to classify against")
            }
            FaultError::Setup(msg) => write!(f, "simulator setup failed: {msg}"),
            FaultError::DigestMismatch { recorded, observed } => write!(
                f,
                "golden digest {observed:#018x} does not match recorded {recorded:#018x} — \
                 different design/backend/workload than the recording"
            ),
            FaultError::BadInjection(msg) => write!(f, "bad injection in replay log: {msg}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// The backend-agnostic campaign driver: owns factories that produce fresh
/// simulator instances and their (deterministic) devices.
pub struct FaultEngine<'a> {
    /// The design under test.
    pub td: &'a TDesign,
    /// Produces a fresh simulator at reset state.
    pub make_sim: &'a mut dyn FnMut() -> Box<dyn SimBackend>,
    /// Produces the matching device set (must be deterministic — campaign
    /// reproducibility depends on it).
    pub make_devices: &'a mut dyn FnMut() -> Vec<Box<dyn Device>>,
}

/// Checks that every register of the design fits the engine's `u64`-based
/// state comparison.
fn check_design_regs(td: &TDesign) -> Result<(), FaultError> {
    if td.regs.is_empty() {
        return Err(FaultError::NoRegisters);
    }
    match td.regs.iter().find(|r| r.width > 64) {
        Some(r) => Err(FaultError::WideDesign(r.name.clone())),
        None => Ok(()),
    }
}

/// Reads the full flattened register file (low 64 bits each).
fn read_final_regs(td: &TDesign, sim: &mut dyn SimBackend) -> Vec<u64> {
    (0..td.regs.len())
        .map(|i| sim.as_reg_access().get64(RegId(i as u32)))
        .collect()
}

/// Checks that injections (typically parsed from a replay log) actually fit
/// the design: register index in range, bit inside the register's width.
///
/// # Errors
///
/// [`FaultError::BadInjection`] naming the first offending spec. Without
/// this check a hand-edited log could drive the simulator into an
/// out-of-bounds register access or an oversized shift — a panic on a
/// user-reachable path.
pub fn validate_injections(td: &TDesign, injections: &[Injection]) -> Result<(), FaultError> {
    for inj in injections {
        let Some(reg) = td.regs.get(inj.reg.0 as usize) else {
            return Err(FaultError::BadInjection(format!(
                "register index {} out of range ({} registers)",
                inj.reg.0,
                td.regs.len()
            )));
        };
        if inj.bit >= reg.width {
            return Err(FaultError::BadInjection(format!(
                "bit {} out of range for {} ({} bits)",
                inj.bit, reg.name, reg.width
            )));
        }
    }
    Ok(())
}

impl FaultEngine<'_> {
    fn check_design(&self) -> Result<(), FaultError> {
        check_design_regs(self.td)
    }

    fn final_regs(&self, sim: &mut dyn SimBackend) -> Vec<u64> {
        read_final_regs(self.td, sim)
    }

    /// Executes the fault-free golden run.
    ///
    /// # Errors
    ///
    /// [`FaultError::GoldenHang`] if even the unperturbed design stalls.
    pub fn golden(&mut self, cycles: u64, stall_cycles: u64) -> Result<GoldenRun, FaultError> {
        self.check_design()?;
        let mut sim = (self.make_sim)();
        let mut devices = (self.make_devices)();
        let mut fp = CommitFingerprint::default();
        run_watchdogged(
            &mut *sim,
            &mut devices,
            cycles,
            &[],
            &Watchdog::stall_only(stall_cycles),
            Some(&mut fp),
        )
        .map_err(FaultError::GoldenHang)?;
        let final_regs = self.final_regs(&mut *sim);
        Ok(GoldenRun {
            fps: fp.per_cycle,
            final_regs,
        })
    }

    /// Runs one injection schedule and classifies it against `golden`.
    pub fn classify_injections(
        &mut self,
        injections: &[Injection],
        cycles: u64,
        stall_cycles: u64,
        golden: &GoldenRun,
    ) -> Outcome {
        let mut sim = (self.make_sim)();
        let mut devices = (self.make_devices)();
        let mut fp = CommitFingerprint::default();
        let hang = run_watchdogged(
            &mut *sim,
            &mut devices,
            cycles,
            injections,
            &Watchdog::stall_only(stall_cycles),
            Some(&mut fp),
        )
        .err()
        .map(|trip| trip.cycle);
        let final_regs = self.final_regs(&mut *sim);
        classify(golden, &fp.per_cycle, &final_regs, hang)
    }

    /// Draws member `index`'s injection schedule from the campaign seed —
    /// see [`draw_schedule`].
    pub fn draw_member(&self, cfg: &CampaignConfig, index: usize) -> Vec<Injection> {
        draw_schedule(self.td, cfg, index)
    }

    /// Runs a full campaign: golden run, then every member, classified.
    ///
    /// # Errors
    ///
    /// Only from setup ([`FaultError`]); members always classify (hangs are
    /// caught by the watchdog, never escape).
    pub fn run_campaign(&mut self, cfg: &CampaignConfig) -> Result<CampaignReport, FaultError> {
        let golden = self.golden(cfg.cycles, cfg.stall_cycles)?;
        let mut members = Vec::with_capacity(cfg.members);
        for index in 0..cfg.members {
            let injections = self.draw_member(cfg, index);
            let outcome =
                self.classify_injections(&injections, cfg.cycles, cfg.stall_cycles, &golden);
            members.push(MemberReport {
                index,
                injections,
                outcome,
                detail: None,
            });
        }
        Ok(CampaignReport {
            design: self.td.name.clone(),
            reg_names: self.td.regs.iter().map(|r| r.name.clone()).collect(),
            config: cfg.clone(),
            golden_digest: golden.digest(),
            members,
        })
    }

    /// Shrinks a failing member to a minimal reproducer: the first single
    /// injection from its schedule that alone reproduces the same outcome
    /// class. Returns `None` if no single injection does (the failure
    /// needs the combination) or the member was masked.
    pub fn shrink(
        &mut self,
        member: &MemberReport,
        cycles: u64,
        stall_cycles: u64,
        golden: &GoldenRun,
    ) -> Option<Injection> {
        if !member.outcome.is_failure() {
            return None;
        }
        if let [only] = member.injections.as_slice() {
            return Some(*only);
        }
        member.injections.iter().copied().find(|&inj| {
            self.classify_injections(&[inj], cycles, stall_cycles, golden)
                .label()
                == member.outcome.label()
        })
    }
}

/// Draws member `index`'s injection schedule from the campaign seed — a
/// pure function of `(cfg.seed, index)` and the design's register shapes,
/// which is what lets any member be reproduced in isolation.
pub fn draw_schedule(td: &TDesign, cfg: &CampaignConfig, index: usize) -> Vec<Injection> {
    let mut rng =
        SplitMix64::new(cfg.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1));
    let count = 1 + rng.below(cfg.max_injections.max(1) as u64) as usize;
    let mut injections: Vec<Injection> = (0..count)
        .map(|_| {
            let reg = rng.below(td.regs.len() as u64) as usize;
            let width = td.regs[reg].width;
            Injection {
                cycle: rng.below(cfg.cycles.max(1)),
                reg: RegId(reg as u32),
                bit: rng.below(width as u64) as u32,
            }
        })
        .collect();
    injections.sort();
    injections.dedup();
    injections
}

/// Thread-safe simulator/device factories, for campaigns whose members run
/// on a worker pool. Unlike [`FaultEngine`]'s `FnMut` factories these are
/// `Fn + Sync` — invoked concurrently from every worker — and the simulator
/// factory is fallible so a build error becomes a classified result
/// instead of a `panic!`/`exit` somewhere inside a worker.
pub struct ParallelFactories<'a> {
    /// The design under test.
    pub td: &'a TDesign,
    /// Produces a fresh simulator at reset state.
    pub make_sim: &'a (dyn Fn() -> Result<Box<dyn SimBackend>, String> + Sync),
    /// Produces the matching device set (must be deterministic — campaign
    /// reproducibility depends on it).
    pub make_devices: &'a (dyn Fn() -> Vec<Box<dyn Device>> + Sync),
}

/// Execution policy for [`run_campaign_parallel`]: worker-pool shape plus
/// the per-member wall-clock deadline.
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Worker count, retry budget, and backoff.
    pub runner: RunnerConfig,
    /// Per-member wall-clock deadline. Trips are treated as *transient*
    /// (the machine was slow, not the design): retried per
    /// [`RunnerConfig::max_retries`], and classified [`Outcome::Flaky`]
    /// only once retries are exhausted. `None` (the default) keeps
    /// classification fully machine-independent.
    pub wall_budget: Option<Duration>,
}

fn golden_run_par(
    env: &ParallelFactories<'_>,
    cycles: u64,
    stall_cycles: u64,
) -> Result<GoldenRun, FaultError> {
    let mut sim = (env.make_sim)().map_err(FaultError::Setup)?;
    let mut devices = (env.make_devices)();
    let mut fp = CommitFingerprint::default();
    run_watchdogged(
        &mut *sim,
        &mut devices,
        cycles,
        &[],
        &Watchdog::stall_only(stall_cycles),
        Some(&mut fp),
    )
    .map_err(FaultError::GoldenHang)?;
    let final_regs = read_final_regs(env.td, &mut *sim);
    Ok(GoldenRun {
        fps: fp.per_cycle,
        final_regs,
    })
}

/// Runs a campaign with members fanned out over a crash-isolated worker
/// pool ([`crate::runner`]). Returns the report plus the runner's aggregate
/// stats (panics contained, retries spent).
///
/// Guarantees, regardless of `opts.runner.jobs`:
///
/// * every member is reported, in index order — a member that panics is
///   contained and classified [`Outcome::Panic`] (message in
///   [`MemberReport::detail`]) instead of taking down the run;
/// * a member whose wall deadline trips is retried with backoff and
///   classified [`Outcome::Flaky`] only if it keeps tripping —
///   deterministic stall/cycle trips classify [`Outcome::Hang`] as always
///   and are never retried;
/// * the report (and [`CampaignReport::summary`]) is **byte-identical**
///   across worker counts: outcomes are pure functions of `(seed, index)`
///   and ordering is restored after the fan-out.
///
/// # Errors
///
/// Only from setup: the golden run hanging ([`FaultError::GoldenHang`]),
/// panicking ([`FaultError::GoldenPanic`]), or a simulator build failure
/// ([`FaultError::Setup`]).
pub fn run_campaign_parallel(
    env: &ParallelFactories<'_>,
    cfg: &CampaignConfig,
    opts: &ParallelOptions,
    progress: Option<&mut dyn FnMut(JobUpdate)>,
) -> Result<(CampaignReport, RunnerStats), FaultError> {
    check_design_regs(env.td)?;
    let golden = contain(|| golden_run_par(env, cfg.cycles, cfg.stall_cycles))
        .map_err(FaultError::GoldenPanic)??;

    let job = |index: usize| -> Result<Outcome, JobError> {
        let injections = draw_schedule(env.td, cfg, index);
        let mut sim = (env.make_sim)().map_err(JobError::Fatal)?;
        let mut devices = (env.make_devices)();
        let mut fp = CommitFingerprint::default();
        let watchdog = Watchdog {
            max_cycles: None,
            stall_cycles: Some(cfg.stall_cycles),
            wall_budget: opts.wall_budget,
        };
        let hang = match run_watchdogged(
            &mut *sim,
            &mut devices,
            cfg.cycles,
            &injections,
            &watchdog,
            Some(&mut fp),
        ) {
            Ok(()) => None,
            Err(trip) if trip.kind == TripKind::Wall => {
                return Err(JobError::Transient(trip.to_string()))
            }
            Err(trip) => Some(trip.cycle),
        };
        let final_regs = read_final_regs(env.td, &mut *sim);
        Ok(classify(&golden, &fp.per_cycle, &final_regs, hang))
    };

    let (reports, stats) = runner::run_jobs(cfg.members, &opts.runner, job, progress);
    let members = reports
        .into_iter()
        .map(|r| {
            let injections = draw_schedule(env.td, cfg, r.index);
            let (outcome, detail) = match r.result {
                Ok(outcome) => (outcome, None),
                Err(JobError::Panic(msg)) => (Outcome::Panic, Some(msg)),
                Err(JobError::Transient(msg)) => (Outcome::Flaky, Some(msg)),
                Err(JobError::Fatal(msg)) => (Outcome::Panic, Some(msg)),
            };
            MemberReport {
                index: r.index,
                injections,
                outcome,
                detail,
            }
        })
        .collect();
    let report = CampaignReport {
        design: env.td.name.clone(),
        reg_names: env.td.regs.iter().map(|r| r.name.clone()).collect(),
        config: cfg.clone(),
        golden_digest: golden.digest(),
        members,
    };
    Ok((report, stats))
}

/// A thread-safe factory producing batched backends for
/// [`run_campaign_batched`]: called with the lane count and expected to
/// return a fresh batch at reset state.
pub type BatchFactory<'a> = &'a (dyn Fn(usize) -> Result<Box<dyn BatchBackend>, String> + Sync);

/// Runs one chunk of consecutive campaign members as lanes of a single
/// batched backend, replicating [`run_watchdogged`]'s per-cycle ordering
/// per lane (device ticks, then injections, then the cycle) so each lane's
/// observables match a scalar member run exactly.
fn run_batched_chunk(
    env: &ParallelFactories<'_>,
    make_batch: BatchFactory<'_>,
    cfg: &CampaignConfig,
    opts: &ParallelOptions,
    golden: &GoldenRun,
    first: usize,
    lanes: usize,
) -> Result<Vec<Outcome>, JobError> {
    let mut batch = make_batch(lanes).map_err(JobError::Fatal)?;
    let mut devices: Vec<Vec<Box<dyn Device>>> =
        (0..lanes).map(|_| (env.make_devices)()).collect();
    let schedules: Vec<Vec<Injection>> =
        (0..lanes).map(|l| draw_schedule(env.td, cfg, first + l)).collect();
    let mut fps: Vec<Vec<u64>> = vec![Vec::new(); lanes];
    let mut stalled = vec![0u64; lanes];
    // A lane whose stall watchdog tripped: its classification inputs
    // (final registers, trip cycle) are captured at the trip boundary and
    // the lane goes inert — no more device ticks or injections — exactly
    // as if its scalar run had stopped there.
    let mut tripped: Vec<Option<(Vec<u64>, u64)>> = vec![None; lanes];
    let nregs = env.td.regs.len();
    let lane_regs = |batch: &dyn BatchBackend, l: usize| -> Vec<u64> {
        (0..nregs).map(|i| batch.lane_get64(l, RegId(i as u32))).collect()
    };
    let start = Instant::now();
    for _ in 0..cfg.cycles {
        if tripped.iter().all(Option::is_some) {
            break;
        }
        let cycle = batch.cycle_count();
        for l in 0..lanes {
            if tripped[l].is_some() {
                continue;
            }
            let mut access = LaneAccess::new(&mut *batch, l);
            for d in devices[l].iter_mut() {
                d.tick(cycle, &mut access);
            }
            for inj in schedules[l].iter().filter(|i| i.cycle == cycle) {
                let old = access.get64(inj.reg);
                access.set64(inj.reg, old ^ (1u64 << inj.bit));
            }
        }
        batch.cycle().map_err(JobError::Fatal)?;
        let done = batch.cycle_count();
        for l in 0..lanes {
            if tripped[l].is_some() {
                continue;
            }
            let commits = batch.lane_commits(l);
            let mut cur = FNV_OFFSET;
            for &r in commits {
                cur = (cur ^ (r as u64 + 1)).wrapping_mul(FNV_PRIME);
            }
            let commit_count = commits.len();
            fps[l].push(cur);
            if commit_count == 0 {
                stalled[l] += 1;
            } else {
                stalled[l] = 0;
            }
            if stalled[l] >= cfg.stall_cycles {
                tripped[l] = Some((lane_regs(&*batch, l), done));
            }
        }
        if let Some(budget) = opts.wall_budget {
            if start.elapsed() > budget {
                return Err(JobError::Transient(format!(
                    "watchdog trip at cycle {done}: wall-clock budget of {budget:?} exhausted"
                )));
            }
        }
    }
    Ok((0..lanes)
        .map(|l| match &tripped[l] {
            Some((final_regs, cycle)) => classify(golden, &fps[l], final_regs, Some(*cycle)),
            None => classify(golden, &fps[l], &lane_regs(&*batch, l), None),
        })
        .collect())
}

/// Runs a campaign with members packed into lock-step batches, one batch
/// per worker job. The golden run stays scalar (it is one run; batching
/// buys nothing), and each chunk of `width` consecutive members becomes the
/// lanes of one batched backend with per-lane devices, injections, commit
/// fingerprints, and stall watchdogs.
///
/// The report is **byte-identical** to [`run_campaign_parallel`]'s (and the
/// sequential [`FaultEngine::run_campaign`]'s) for the same configuration:
/// batching is an execution strategy, not an observable. The only caveats
/// are the machine-dependent classes: a wall-budget trip or a contained
/// panic applies to the whole chunk (all of its members retry together or
/// report [`Outcome::Panic`] together), because the chunk shares one
/// backend.
///
/// # Errors
///
/// Only from setup — the same conditions as [`run_campaign_parallel`].
pub fn run_campaign_batched(
    env: &ParallelFactories<'_>,
    make_batch: BatchFactory<'_>,
    width: usize,
    cfg: &CampaignConfig,
    opts: &ParallelOptions,
    progress: Option<&mut dyn FnMut(JobUpdate)>,
) -> Result<(CampaignReport, RunnerStats), FaultError> {
    let width = width.max(1);
    check_design_regs(env.td)?;
    let golden = contain(|| golden_run_par(env, cfg.cycles, cfg.stall_cycles))
        .map_err(FaultError::GoldenPanic)??;

    let nchunks = cfg.members.div_ceil(width);
    let job = |chunk: usize| -> Result<Vec<Outcome>, JobError> {
        let first = chunk * width;
        let lanes = width.min(cfg.members - first);
        run_batched_chunk(env, make_batch, cfg, opts, &golden, first, lanes)
    };
    let (reports, stats) = runner::run_jobs(nchunks, &opts.runner, job, progress);

    let mut members = Vec::with_capacity(cfg.members);
    for r in reports {
        let first = r.index * width;
        let lanes = width.min(cfg.members - first);
        match r.result {
            Ok(outcomes) => {
                for (l, outcome) in outcomes.into_iter().enumerate().take(lanes) {
                    members.push(MemberReport {
                        index: first + l,
                        injections: draw_schedule(env.td, cfg, first + l),
                        outcome,
                        detail: None,
                    });
                }
            }
            Err(e) => {
                let (outcome, msg) = match e {
                    JobError::Panic(m) => (Outcome::Panic, m),
                    JobError::Transient(m) => (Outcome::Flaky, m),
                    JobError::Fatal(m) => (Outcome::Panic, m),
                };
                for l in 0..lanes {
                    members.push(MemberReport {
                        index: first + l,
                        injections: draw_schedule(env.td, cfg, first + l),
                        outcome,
                        detail: Some(msg.clone()),
                    });
                }
            }
        }
    }
    let report = CampaignReport {
        design: env.td.name.clone(),
        reg_names: env.td.regs.iter().map(|r| r.name.clone()).collect(),
        config: cfg.clone(),
        golden_digest: golden.digest(),
        members,
    };
    Ok((report, stats))
}

/// A finished campaign: configuration, golden digest, and every member's
/// schedule and outcome. Fully deterministic for a given seed and
/// configuration.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Design name.
    pub design: String,
    /// Register names (flattened space), for display.
    pub reg_names: Vec<String>,
    /// The configuration the campaign ran under.
    pub config: CampaignConfig,
    /// Digest of the golden commit stream.
    pub golden_digest: u64,
    /// Every member, in index order.
    pub members: Vec<MemberReport>,
}

impl CampaignReport {
    /// `[masked, sdc, divergence, hang, panic, flaky]` counts, in
    /// [`OUTCOME_CLASSES`] order.
    pub fn counts(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for m in &self.members {
            let i = match m.outcome {
                Outcome::Masked => 0,
                Outcome::Sdc => 1,
                Outcome::Divergence { .. } => 2,
                Outcome::Hang { .. } => 3,
                Outcome::Panic => 4,
                Outcome::Flaky => 5,
            };
            counts[i] += 1;
        }
        counts
    }

    /// Members whose outcome was not masked.
    pub fn failing(&self) -> impl Iterator<Item = &MemberReport> {
        self.members.iter().filter(|m| m.outcome.is_failure())
    }

    fn spec_with_names(&self, inj: &Injection) -> String {
        let name = self
            .reg_names
            .get(inj.reg.0 as usize)
            .map(String::as_str)
            .unwrap_or("?");
        format!("{}:{}:{}", inj.cycle, name, inj.bit)
    }

    /// Renders the deterministic human-readable summary the CLI prints.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fault campaign: design={} seed={:#x} members={} cycles={} max_injections={} stall={}",
            self.design,
            self.config.seed,
            self.config.members,
            self.config.cycles,
            self.config.max_injections,
            self.config.stall_cycles,
        );
        let _ = writeln!(s, "golden commit digest: {:#018x}", self.golden_digest);
        let counts = self.counts();
        let total = self.members.len().max(1);
        for (label, n) in OUTCOME_CLASSES.iter().zip(counts) {
            let _ = writeln!(
                s,
                "  {label:<10} {n:>4}  ({:.1}%)",
                n as f64 * 100.0 / total as f64
            );
        }
        let failing: Vec<&MemberReport> = self.failing().collect();
        let _ = writeln!(s, "failing members: {}", failing.len());
        for m in failing {
            let specs: Vec<String> = m.injections.iter().map(|i| self.spec_with_names(i)).collect();
            let detail = match &m.detail {
                Some(d) => format!("  ({d})"),
                None => String::new(),
            };
            let _ = writeln!(
                s,
                "  member {:>3}: {:<14} inject {}{detail}",
                m.index,
                m.outcome.to_token(),
                specs.join(" ")
            );
        }
        s
    }

    /// Converts the campaign into a replay log carrying only the failing
    /// members (the ones worth reproducing), plus the run configuration
    /// needed to rebuild the environment.
    pub fn to_replay_log(&self, backend: &str, level: u32, program: &str) -> ReplayLog {
        ReplayLog {
            design: self.design.clone(),
            backend: backend.to_string(),
            level,
            program: program.to_string(),
            cycles: self.config.cycles,
            seed: self.config.seed,
            stall_cycles: self.config.stall_cycles,
            golden_digest: self.golden_digest,
            // The line-based log format carries only what a replay needs to
            // re-derive the member; free-text detail stays out of it.
            members: self
                .failing()
                .cloned()
                .map(|mut m| {
                    m.detail = None;
                    m
                })
                .collect(),
        }
    }
}

/// A recorded set of failing campaign members plus everything needed to
/// re-create their runs: design, backend, workload, cycle count, seed, and
/// the golden commit digest (verified on replay, so a log is never
/// silently replayed against a different configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayLog {
    /// Design name.
    pub design: String,
    /// Backend the campaign ran on.
    pub backend: String,
    /// Cuttlesim optimization level (ignored by other backends).
    pub level: u32,
    /// Workload spec (empty when the design takes none).
    pub program: String,
    /// Cycles per run.
    pub cycles: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Hang-detection threshold.
    pub stall_cycles: u64,
    /// Digest of the golden commit stream.
    pub golden_digest: u64,
    /// The failing members.
    pub members: Vec<MemberReport>,
}

impl ReplayLog {
    /// Serializes to the line-based `koika-replay v1` text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("koika-replay v1\n");
        let _ = writeln!(s, "design {}", self.design);
        let _ = writeln!(s, "backend {}", self.backend);
        let _ = writeln!(s, "level {}", self.level);
        let _ = writeln!(s, "program {}", self.program);
        let _ = writeln!(s, "cycles {}", self.cycles);
        let _ = writeln!(s, "seed {:#x}", self.seed);
        let _ = writeln!(s, "stall {}", self.stall_cycles);
        let _ = writeln!(s, "golden-digest {:#018x}", self.golden_digest);
        for m in &self.members {
            let specs: Vec<String> = m.injections.iter().map(|i| i.to_string()).collect();
            let _ = writeln!(
                s,
                "member {} {} {}",
                m.index,
                m.outcome.to_token(),
                specs.join(" ")
            );
        }
        s
    }

    /// Parses the text format produced by [`ReplayLog::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<ReplayLog, String> {
        let mut lines = text.lines();
        if lines.next() != Some("koika-replay v1") {
            return Err("not a koika-replay v1 file".into());
        }
        let mut log = ReplayLog {
            design: String::new(),
            backend: String::new(),
            level: 6,
            program: String::new(),
            cycles: 0,
            seed: 0,
            stall_cycles: 256,
            golden_digest: 0,
            members: Vec::new(),
        };
        fn parse_u64(v: &str, what: &str) -> Result<u64, String> {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| format!("bad {what} value {v:?}"))
        }
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "design" => log.design = rest.to_string(),
                "backend" => log.backend = rest.to_string(),
                "program" => log.program = rest.to_string(),
                "level" => log.level = parse_u64(rest, "level")? as u32,
                "cycles" => log.cycles = parse_u64(rest, "cycles")?,
                "seed" => log.seed = parse_u64(rest, "seed")?,
                "stall" => log.stall_cycles = parse_u64(rest, "stall")?,
                "golden-digest" => log.golden_digest = parse_u64(rest, "golden-digest")?,
                "member" => {
                    let mut parts = rest.split_whitespace();
                    let index = parse_u64(
                        parts.next().ok_or("member line missing index")?,
                        "member index",
                    )? as usize;
                    let outcome = Outcome::from_token(
                        parts.next().ok_or("member line missing outcome")?,
                    )?;
                    let mut injections = Vec::new();
                    for spec in parts {
                        let fields: Vec<&str> = spec.split(':').collect();
                        let [c, r, b] = fields.as_slice() else {
                            return Err(format!("bad injection {spec:?} in member {index}"));
                        };
                        injections.push(Injection {
                            cycle: parse_u64(c, "injection cycle")?,
                            reg: RegId(parse_u64(r, "injection register")? as u32),
                            bit: parse_u64(b, "injection bit")? as u32,
                        });
                    }
                    if injections.is_empty() {
                        return Err(format!("member {index} has no injections"));
                    }
                    log.members.push(MemberReport {
                        index,
                        injections,
                        outcome,
                        detail: None,
                    });
                }
                other => return Err(format!("unknown replay key {other:?}")),
            }
        }
        if log.design.is_empty() || log.cycles == 0 {
            return Err("replay log missing design or cycles".into());
        }
        Ok(log)
    }
}

/// One member's replay verdict — see [`replay_campaign`].
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// The replayed member (with its recorded outcome).
    pub member: MemberReport,
    /// The outcome observed on replay.
    pub observed: Outcome,
    /// True when the observed class matches the recorded class.
    pub reproduced: bool,
    /// Minimal single-injection reproducer, when one exists.
    pub minimal: Option<Injection>,
}

/// Replays every member of a log: re-runs its recorded injection schedule,
/// verifies the outcome class reproduces, and shrinks it to a minimal
/// single-injection reproducer.
///
/// # Errors
///
/// Fails if the golden run cannot be built, or its commit digest does not
/// match the log (the environment differs from the recording).
pub fn replay_campaign(
    engine: &mut FaultEngine<'_>,
    log: &ReplayLog,
) -> Result<Vec<ReplayResult>, FaultError> {
    for member in &log.members {
        validate_injections(engine.td, &member.injections)?;
    }
    let golden = engine.golden(log.cycles, log.stall_cycles)?;
    if golden.digest() != log.golden_digest {
        return Err(FaultError::DigestMismatch {
            recorded: log.golden_digest,
            observed: golden.digest(),
        });
    }
    let mut results = Vec::with_capacity(log.members.len());
    for member in &log.members {
        let observed =
            engine.classify_injections(&member.injections, log.cycles, log.stall_cycles, &golden);
        let reproduced = observed.label() == member.outcome.label();
        let minimal = if reproduced {
            engine.shrink(member, log.cycles, log.stall_cycles, &golden)
        } else {
            None
        };
        results.push(ReplayResult {
            member: member.clone(),
            observed,
            reproduced,
            minimal,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::check::check;
    use crate::design::DesignBuilder;
    use crate::interp::Interp;

    fn counter_design() -> TDesign {
        let mut b = DesignBuilder::new("cnt");
        b.reg("n", 8, 0u64);
        b.reg("acc", 16, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        b.rule(
            "accum",
            vec![wr0("acc", rd0("acc").add(rd1("n").zext(16)))],
        );
        b.schedule(["inc", "accum"]);
        check(&b.build()).unwrap()
    }

    fn engine_test<R>(td: &TDesign, f: impl FnOnce(&mut FaultEngine<'_>) -> R) -> R {
        let td2 = td.clone();
        let mut make_sim: Box<dyn FnMut() -> Box<dyn SimBackend>> =
            Box::new(move || Box::new(Interp::new(&td2)) as Box<dyn SimBackend>);
        let mut make_devices: Box<dyn FnMut() -> Vec<Box<dyn Device>>> = Box::new(Vec::new);
        let mut engine = FaultEngine {
            td,
            make_sim: &mut *make_sim,
            make_devices: &mut *make_devices,
        };
        f(&mut engine)
    }

    #[test]
    fn golden_run_is_reproducible() {
        let td = counter_design();
        engine_test(&td, |e| {
            let a = e.golden(32, 16).unwrap();
            let b = e.golden(32, 16).unwrap();
            assert_eq!(a.fps, b.fps);
            assert_eq!(a.final_regs, b.final_regs);
            assert_eq!(a.digest(), b.digest());
        });
    }

    #[test]
    fn classification_covers_masked_and_sdc() {
        let td = counter_design();
        engine_test(&td, |e| {
            let golden = e.golden(32, 16).unwrap();
            // Flipping acc changes final data but never the commit stream.
            let sdc = Injection {
                cycle: 5,
                reg: td.reg_id("acc"),
                bit: 0,
            };
            assert_eq!(
                e.classify_injections(&[sdc], 32, 16, &golden),
                Outcome::Sdc
            );
            // Flip the same bit twice: the second flip undoes the first
            // before anything downstream could differ.
            let undo = Injection { cycle: 5, reg: td.reg_id("acc"), bit: 9 };
            let redo = Injection { cycle: 5, reg: td.reg_id("acc"), bit: 9 };
            let _ = (undo, redo); // same-cycle double flip is dedup'd; use distant pair
            let flip = Injection { cycle: 31, reg: td.reg_id("n"), bit: 7 };
            // Flipping n's top bit on the last cycle: the flip happens
            // before cycle 31 executes, so acc (and n) end up different.
            assert!(e
                .classify_injections(&[flip], 32, 16, &golden)
                .is_failure());
        });
    }

    #[test]
    fn watchdog_trips_on_stuck_design() {
        let mut b = DesignBuilder::new("stuck");
        b.reg("go", 1, 0u64);
        b.reg("n", 8, 0u64);
        b.rule(
            "inc",
            vec![guard(rd0("go").eq(k(1, 1))), wr0("n", rd0("n").add(k(8, 1)))],
        );
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        let mut devices: Vec<Box<dyn Device>> = Vec::new();
        let err = run_watchdogged(
            &mut sim,
            &mut devices,
            1000,
            &[],
            &Watchdog::stall_only(8),
            None,
        )
        .unwrap_err();
        assert_eq!(err.cycle, 8);
        assert!(err.reason.contains("no rule committed"));
        // And a campaign on it refuses to run: the golden run itself hangs.
        engine_test(&td, |e| {
            let err = e.run_campaign(&CampaignConfig {
                cycles: 100,
                members: 2,
                stall_cycles: 8,
                ..CampaignConfig::default()
            });
            assert!(matches!(err, Err(FaultError::GoldenHang(_))));
        });
    }

    #[test]
    fn watchdog_pause_excludes_debugger_time_from_wall_budget() {
        // Regression for the debugger integration: wall-clock time spent
        // paused (sitting at a debugger prompt, replaying history for
        // reverse execution) must never trip the wall budget, or a paused
        // session would be classified as a hang.
        let wd = Watchdog {
            wall_budget: Some(Duration::from_millis(50)),
            ..Watchdog::default()
        };
        let mut armed = wd.arm();
        armed.pause();
        std::thread::sleep(Duration::from_millis(80));
        armed.resume();
        assert!(
            armed.observe(1, 1).is_none(),
            "time spent paused must not count toward the wall budget"
        );
        // While paused, the frozen clock cannot trip either.
        armed.pause();
        std::thread::sleep(Duration::from_millis(80));
        assert!(armed.observe(2, 1).is_none(), "paused clock must be frozen");
        armed.resume();

        // Sanity: the budget still trips on genuine (unpaused) overrun.
        let mut unpaused = wd.arm();
        std::thread::sleep(Duration::from_millis(80));
        let trip = unpaused.observe(1, 1).expect("unpaused overrun must trip");
        assert_eq!(trip.kind, TripKind::Wall);
    }

    #[test]
    fn watchdog_wall_rewind_restores_budget_position() {
        // Wall trips are retried (machine-dependent); the retry must restart
        // from the budget position recorded before the failed attempt, not
        // instantly re-trip on the already-exhausted clock.
        let wd = Watchdog {
            wall_budget: Some(Duration::from_millis(50)),
            ..Watchdog::default()
        };
        let mut armed = wd.arm();
        let mark = armed.wall_elapsed();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(armed.observe(1, 1).map(|t| t.kind), Some(TripKind::Wall));
        armed.wall_rewind_to(mark);
        assert!(
            armed.wall_elapsed() < Duration::from_millis(50),
            "rewind must restore headroom"
        );
        assert!(armed.observe(2, 1).is_none(), "retry must not re-trip instantly");
        // Rewinding to a future mark is a no-op: the clock never advances
        // under a rewind.
        let before = armed.wall_elapsed();
        armed.wall_rewind_to(Duration::from_secs(100));
        assert!(armed.wall_elapsed() >= before.saturating_sub(Duration::from_millis(1)));
    }

    #[test]
    fn campaigns_are_deterministic_and_fully_classified() {
        let td = counter_design();
        let cfg = CampaignConfig {
            seed: 7,
            members: 20,
            cycles: 48,
            max_injections: 3,
            stall_cycles: 16,
        };
        let (a, b) = engine_test(&td, |e| {
            (e.run_campaign(&cfg).unwrap(), e.run_campaign(&cfg).unwrap())
        });
        assert_eq!(a.summary(), b.summary(), "byte-for-byte reproducible");
        assert_eq!(a.counts().iter().sum::<usize>(), 20);
        assert_eq!(a.counts()[3], 0, "nothing can hang this design");
    }

    #[test]
    fn batched_campaign_report_matches_sequential() {
        // A deliberately naive BatchBackend — N independent interpreters
        // stepped one after another — so this pins the *chunking and
        // per-lane harness logic* of `run_campaign_batched` in isolation
        // from any real lock-step engine.
        struct InterpBatch {
            sims: Vec<Interp>,
            commits: Vec<Vec<u32>>,
        }
        struct CommitRec<'a>(&'a mut Vec<u32>);
        impl Observer for CommitRec<'_> {
            fn rule_commit(&mut self, rule: usize) {
                self.0.push(rule as u32);
            }
        }
        impl BatchBackend for InterpBatch {
            fn lanes(&self) -> usize {
                self.sims.len()
            }
            fn cycle_count(&self) -> u64 {
                self.sims[0].cycle_count()
            }
            fn cycle(&mut self) -> Result<(), String> {
                for (sim, commits) in self.sims.iter_mut().zip(&mut self.commits) {
                    commits.clear();
                    sim.cycle_obs(&mut CommitRec(commits));
                }
                Ok(())
            }
            fn lane_commits(&self, lane: usize) -> &[u32] {
                &self.commits[lane]
            }
            fn lane_get64(&self, lane: usize, reg: RegId) -> u64 {
                self.sims[lane].get64(reg)
            }
            fn lane_set64(&mut self, lane: usize, reg: RegId, value: u64) {
                self.sims[lane].set64(reg, value);
            }
        }

        let td = counter_design();
        let cfg = CampaignConfig {
            seed: 7,
            members: 20,
            cycles: 48,
            max_injections: 3,
            stall_cycles: 16,
        };
        let sequential = engine_test(&td, |e| e.run_campaign(&cfg).unwrap());

        let make_sim = || Ok(Box::new(Interp::new(&td)) as Box<dyn SimBackend>);
        let make_devices = || Vec::new();
        let env = ParallelFactories {
            td: &td,
            make_sim: &make_sim,
            make_devices: &make_devices,
        };
        let make_batch = |lanes: usize| {
            Ok(Box::new(InterpBatch {
                sims: (0..lanes).map(|_| Interp::new(&td)).collect(),
                commits: vec![Vec::new(); lanes],
            }) as Box<dyn BatchBackend>)
        };
        let opts = ParallelOptions {
            runner: crate::runner::RunnerConfig::default(),
            wall_budget: None,
        };
        // Widths that divide the member count, leave a ragged tail, and
        // exceed it entirely.
        for width in [1usize, 3, 8, 32] {
            let (report, stats) =
                run_campaign_batched(&env, &make_batch, width, &cfg, &opts, None).unwrap();
            assert_eq!(report.members, sequential.members, "width {width}");
            assert_eq!(report.summary(), sequential.summary(), "width {width}");
            assert_eq!(stats.total, cfg.members.div_ceil(width));
        }
    }

    #[test]
    fn replay_log_round_trips_and_members_reproduce() {
        let td = counter_design();
        let cfg = CampaignConfig {
            seed: 11,
            members: 16,
            cycles: 40,
            max_injections: 3,
            stall_cycles: 16,
        };
        engine_test(&td, |e| {
            let report = e.run_campaign(&cfg).unwrap();
            let log = report.to_replay_log("interp", 6, "");
            assert!(!log.members.is_empty(), "seed 11 must produce failures");
            let parsed = ReplayLog::from_text(&log.to_text()).unwrap();
            assert_eq!(parsed, log);
            let results = replay_campaign(e, &parsed).unwrap();
            for r in &results {
                assert!(r.reproduced, "member {} did not reproduce", r.member.index);
                if r.member.injections.len() == 1 {
                    assert_eq!(r.minimal, Some(r.member.injections[0]));
                }
            }
        });
    }

    #[test]
    fn shrink_finds_single_injection_reproducer() {
        let td = counter_design();
        engine_test(&td, |e| {
            let golden = e.golden(32, 16).unwrap();
            // A schedule with one harmless and one harmful injection.
            let harmless = Injection { cycle: 1, reg: td.reg_id("acc"), bit: 3 };
            let harmful = Injection { cycle: 30, reg: td.reg_id("acc"), bit: 4 };
            // harmless alone: flips acc early; acc accumulates, so the
            // flip persists -> actually also SDC. Use an n flip that gets
            // overwritten... n increments every cycle so a flip persists
            // too. Both injections here produce SDC; shrink should pick
            // the first that reproduces the class.
            let member = MemberReport {
                index: 0,
                injections: vec![harmless, harmful],
                outcome: e.classify_injections(&[harmless, harmful], 32, 16, &golden),
                detail: None,
            };
            assert!(member.outcome.is_failure());
            let minimal = e.shrink(&member, 32, 16, &golden);
            assert_eq!(minimal, Some(harmless));
        });
    }

    #[test]
    fn replay_refuses_mismatched_golden_digest() {
        let td = counter_design();
        engine_test(&td, |e| {
            let report = e
                .run_campaign(&CampaignConfig {
                    seed: 3,
                    members: 4,
                    cycles: 24,
                    max_injections: 1,
                    stall_cycles: 16,
                })
                .unwrap();
            let mut log = report.to_replay_log("interp", 6, "");
            log.golden_digest ^= 1;
            assert!(replay_campaign(e, &log).is_err());
        });
    }

    #[test]
    fn injection_specs_parse_names_and_reject_garbage() {
        let td = counter_design();
        let inj = Injection::parse("12:acc:9", &td).unwrap();
        assert_eq!(inj.cycle, 12);
        assert_eq!(inj.reg, td.reg_id("acc"));
        assert_eq!(inj.bit, 9);
        assert_eq!(inj.display_with(&td), "12:acc:9");
        assert!(Injection::parse("12:acc", &td).is_err());
        assert!(Injection::parse("x:acc:0", &td).is_err());
        assert!(Injection::parse("0:nosuch:0", &td).is_err());
        assert!(Injection::parse("0:acc:16", &td).is_err(), "bit out of width");
    }
}
