//! The external-device harness shared by every simulation backend.
//!
//! Kôika designs interact with the outside world (memories, stream sources
//! and sinks, traffic generators) exclusively **at cycle boundaries**, through
//! dedicated request/response registers. A [`Device`] is given register-level
//! access between cycles; because all backends expose the same register
//! space and devices run at the same points, every backend remains
//! cycle-accurate with respect to every other one — the property §1 of the
//! paper calls "keeping simulation and synthesis cycle-accurate with respect
//! to each other", which our differential tests check register-by-register.
//!
//! Devices may only touch registers at most 64 bits wide (every design in
//! this repository qualifies).

use crate::obs::Observer;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::tir::RegId;

/// Register-level access to a simulator's architectural state, as visible
/// between cycles.
pub trait RegAccess {
    /// Reads a register's current value (zero-extended into a `u64`).
    ///
    /// # Panics
    ///
    /// Panics if the register is wider than 64 bits.
    fn get64(&self, reg: RegId) -> u64;

    /// Overwrites a register's current value (truncated to its width).
    ///
    /// # Panics
    ///
    /// Panics if the register is wider than 64 bits.
    fn set64(&mut self, reg: RegId, value: u64);
}

/// An external device stepped once per cycle, before the cycle executes.
///
/// `tick(n, ..)` runs before cycle `n`: it observes the architectural state
/// left by cycle `n - 1` and installs the inputs for cycle `n`. A 1-cycle-
/// latency "magic memory" is the canonical example: it reads the request
/// registers written during cycle `n - 1` and fills the response registers
/// read during cycle `n`.
pub trait Device {
    /// Steps the device before the given cycle.
    fn tick(&mut self, cycle: u64, regs: &mut dyn RegAccess);

    /// Serializes the device's internal state, if it has any that evolves
    /// over time. Devices that return `None` cannot participate in
    /// time-travel debugging (the debugger refuses to checkpoint past
    /// them rather than silently replaying from stale device state).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state previously produced by [`Device::save_state`].
    fn load_state(&mut self, _state: &[u8]) -> Result<(), String> {
        Err("device does not support state save/restore".into())
    }
}

/// A cycle-accurate simulation backend.
///
/// All simulators in this workspace (the reference interpreter, every
/// Cuttlesim VM optimization level, and both RTL schemes) implement this
/// trait, which is what makes differential testing and shared harnesses
/// possible.
pub trait SimBackend: RegAccess {
    /// Executes one full cycle (all scheduled rules, then the register
    /// update).
    fn cycle(&mut self);

    /// Executes one full cycle while reporting rule-level events to the
    /// given [`Observer`].
    ///
    /// This is a separate entry point (rather than an `Option<&mut dyn
    /// Observer>` parameter on [`SimBackend::cycle`]) so that unobserved
    /// simulation pays no dispatch or branching cost at all: the hot
    /// `cycle` loops stay byte-for-byte what they were before observation
    /// existed.
    ///
    /// Rule indices reported to the observer are **declaration order**
    /// indices on every backend, and `reg_write` reports registers whose
    /// low 64 bits changed across the cycle boundary, so event streams
    /// from different backends over the same design are directly
    /// comparable.
    fn cycle_obs(&mut self, obs: &mut dyn Observer);

    /// The number of cycles executed so far.
    fn cycle_count(&self) -> u64;

    /// The number of rule executions that committed so far.
    fn rules_fired(&self) -> u64;

    /// Captures the complete architectural state (register file, cycle
    /// counter, commit counters) at the current cycle boundary.
    ///
    /// Snapshots are portable across backends: a snapshot taken here
    /// restores onto any other [`SimBackend`] running the same design, and
    /// the subsequent commit streams are identical (the cross-backend
    /// equivalence the differential tests check).
    fn snapshot(&self) -> Snapshot;

    /// Restores a previously captured state.
    ///
    /// # Errors
    ///
    /// Fails without modifying the simulator if the snapshot was taken
    /// from a different design or its register shape does not match
    /// ([`SnapshotError`]).
    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError>;

    /// Runs `ncycles` cycles, ticking each device before each cycle.
    fn run(&mut self, ncycles: u64, devices: &mut [&mut dyn Device]) {
        for _ in 0..ncycles {
            let cycle = self.cycle_count();
            for d in devices.iter_mut() {
                d.tick(cycle, self.as_reg_access());
            }
            self.cycle();
        }
    }

    /// Like [`SimBackend::run`], but with an [`Observer`] attached to
    /// every cycle.
    fn run_obs(&mut self, ncycles: u64, devices: &mut [&mut dyn Device], obs: &mut dyn Observer) {
        for _ in 0..ncycles {
            let cycle = self.cycle_count();
            for d in devices.iter_mut() {
                d.tick(cycle, self.as_reg_access());
            }
            self.cycle_obs(obs);
        }
    }

    /// Upcast helper so `run` can hand devices a `&mut dyn RegAccess`.
    fn as_reg_access(&mut self) -> &mut dyn RegAccess;
}

/// A batched cycle-accurate backend: `lanes` instances of one design
/// advancing in lock-step, one `cycle()` call stepping all of them.
///
/// This is the harness-facing face of SoA batched engines (the Cuttlesim
/// batch VM implements it): campaign runners drive whole batches through
/// this trait, reading each lane's observables — commit stream, register
/// values — exactly as they would a scalar [`SimBackend`]'s. Implementations
/// guarantee per-lane observables bit-identical to `lanes` independent
/// scalar runs.
pub trait BatchBackend {
    /// Number of instances in the batch.
    fn lanes(&self) -> usize;

    /// Cycles executed so far (identical across lanes, by construction).
    fn cycle_count(&self) -> u64;

    /// Executes one full cycle across every lane.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an internal engine error (e.g.
    /// miscompiled bytecode); the batch is left in an unspecified but
    /// memory-safe state.
    fn cycle(&mut self) -> Result<(), String>;

    /// The rules one lane committed during the most recent cycle, as
    /// declaration-order rule indices in schedule order — the raw material
    /// for per-lane commit fingerprints.
    fn lane_commits(&self, lane: usize) -> &[u32];

    /// Reads a register in one lane (zero-extended into a `u64`).
    fn lane_get64(&self, lane: usize, reg: RegId) -> u64;

    /// Overwrites a register in one lane (truncated to its width).
    fn lane_set64(&mut self, lane: usize, reg: RegId, value: u64);
}

/// [`RegAccess`] over a single lane of a [`BatchBackend`], so devices and
/// fault injectors written against the scalar interface can drive one
/// batched instance.
pub struct LaneAccess<'a> {
    backend: &'a mut dyn BatchBackend,
    lane: usize,
}

impl<'a> LaneAccess<'a> {
    /// A view of `lane` within `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn new(backend: &'a mut dyn BatchBackend, lane: usize) -> Self {
        assert!(lane < backend.lanes(), "lane out of range");
        LaneAccess { backend, lane }
    }
}

impl RegAccess for LaneAccess<'_> {
    fn get64(&self, reg: RegId) -> u64 {
        self.backend.lane_get64(self.lane, reg)
    }

    fn set64(&mut self, reg: RegId, value: u64) {
        self.backend.lane_set64(self.lane, reg, value);
    }
}

/// A device that drives a register with successive values of an iterator,
/// one per cycle — handy for feeding streaming designs like FIR filters.
pub struct StreamSource<I> {
    reg: RegId,
    values: I,
}

impl<I: Iterator<Item = u64>> StreamSource<I> {
    /// Creates a source feeding `reg` from `values`. When the iterator runs
    /// dry the register is left untouched.
    pub fn new(reg: RegId, values: I) -> Self {
        StreamSource { reg, values }
    }
}

impl<I: Iterator<Item = u64>> Device for StreamSource<I> {
    fn tick(&mut self, _cycle: u64, regs: &mut dyn RegAccess) {
        if let Some(v) = self.values.next() {
            regs.set64(self.reg, v);
        }
    }
}

/// A device that records a register's value every cycle — a software "logic
/// analyzer probe" for tests and examples.
#[derive(Debug)]
pub struct Probe {
    reg: RegId,
    /// The recorded samples, one per cycle.
    pub samples: Vec<u64>,
}

impl Probe {
    /// Creates a probe on `reg`.
    pub fn new(reg: RegId) -> Self {
        Probe {
            reg,
            samples: Vec::new(),
        }
    }
}

impl Device for Probe {
    fn tick(&mut self, _cycle: u64, regs: &mut dyn RegAccess) {
        self.samples.push(regs.get64(self.reg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::check::check;
    use crate::design::DesignBuilder;
    use crate::interp::Interp;

    fn passthrough_design() -> crate::tir::TDesign {
        let mut b = DesignBuilder::new("pass");
        b.reg("input", 8, 0u64);
        b.reg("output", 8, 0u64);
        b.rule("copy", vec![wr0("output", rd0("input").add(k(8, 1)))]);
        check(&b.build()).unwrap()
    }

    #[test]
    fn stream_source_feeds_one_value_per_cycle() {
        let td = passthrough_design();
        let mut sim = Interp::new(&td);
        let mut src = StreamSource::new(td.reg_id("input"), [10u64, 20, 30].into_iter());
        sim.run(5, &mut [&mut src]);
        // After the iterator runs dry the register holds its last value.
        assert_eq!(sim.get64(td.reg_id("input")), 30);
        assert_eq!(sim.get64(td.reg_id("output")), 31);
    }

    #[test]
    fn probe_samples_before_each_cycle() {
        let td = passthrough_design();
        let mut sim = Interp::new(&td);
        let mut src = StreamSource::new(td.reg_id("input"), (0u64..).map(|i| i * 2));
        let mut probe = Probe::new(td.reg_id("output"));
        sim.run(4, &mut [&mut src, &mut probe]);
        // The probe sees the output as it stood *before* each cycle: the
        // first sample is the reset value, then input_{n-1} + 1.
        assert_eq!(probe.samples, vec![0, 1, 3, 5]);
    }

    #[test]
    fn run_ticks_devices_with_the_cycle_number() {
        struct CycleCheck {
            seen: Vec<u64>,
        }
        impl Device for CycleCheck {
            fn tick(&mut self, cycle: u64, _regs: &mut dyn RegAccess) {
                self.seen.push(cycle);
            }
        }
        let td = passthrough_design();
        let mut sim = Interp::new(&td);
        sim.cycle(); // advance before attaching, to check offsets
        let mut dev = CycleCheck { seen: Vec::new() };
        sim.run(3, &mut [&mut dev]);
        assert_eq!(dev.seen, vec![1, 2, 3]);
    }
}
