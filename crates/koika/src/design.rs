//! Whole designs: register declarations, rules, and a scheduler.
//!
//! A [`Design`] is the unit accepted by every compiler and simulator in this
//! workspace. Designs are conveniently constructed with [`DesignBuilder`]:
//!
//! ```
//! use koika::design::DesignBuilder;
//! use koika::ast::*;
//!
//! let mut d = DesignBuilder::new("counter");
//! d.reg("count", 8, 0u64);
//! d.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
//! d.schedule(["incr"]);
//! let design = d.build();
//! assert_eq!(design.regs.len(), 1);
//! ```

use crate::ast::Action;
use crate::bits::Bits;

/// Declaration of a state element: a scalar register (`len == 1`) or a
/// register array (`len > 1`, dynamically indexable).
#[derive(Debug, Clone, PartialEq)]
pub struct RegDecl {
    /// Name, unique within the design.
    pub name: String,
    /// Element width in bits.
    pub width: u32,
    /// Number of elements; dynamically-indexed arrays must have a
    /// power-of-two length.
    pub len: u32,
    /// Per-element initial values (length `len`).
    pub init: Vec<Bits>,
}

/// A named rule: an atomic unit of work (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Name, unique within the design.
    pub name: String,
    /// The statements executed (transactionally) when the rule fires.
    pub body: Vec<Action>,
}

/// A complete rule-based design, ready for type checking.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name (used in generated model/Verilog text).
    pub name: String,
    /// State elements.
    pub regs: Vec<RegDecl>,
    /// Rules, in declaration order.
    pub rules: Vec<Rule>,
    /// The scheduler: rule names in the order they (appear to) execute each
    /// cycle.
    pub schedule: Vec<String>,
}

/// Incremental builder for [`Design`] values.
#[derive(Debug, Clone)]
pub struct DesignBuilder {
    design: Design,
}

impl DesignBuilder {
    /// Starts a new design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            design: Design {
                name: name.into(),
                regs: Vec::new(),
                rules: Vec::new(),
                schedule: Vec::new(),
            },
        }
    }

    /// Declares a scalar register and returns its name for convenience.
    pub fn reg(&mut self, name: impl Into<String>, width: u32, init: impl Into<u128>) -> String {
        let name = name.into();
        self.design.regs.push(RegDecl {
            name: name.clone(),
            width,
            len: 1,
            init: vec![Bits::new(width, init)],
        });
        name
    }

    /// Declares a register array with every element initialized to `init`.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        width: u32,
        len: u32,
        init: impl Into<u128>,
    ) -> String {
        let name = name.into();
        let init = Bits::new(width, init);
        self.design.regs.push(RegDecl {
            name: name.clone(),
            width,
            len,
            init: vec![init; len as usize],
        });
        name
    }

    /// Declares a register array with explicit per-element initial values.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty or its elements' widths differ from `width`.
    pub fn array_init(&mut self, name: impl Into<String>, width: u32, init: Vec<Bits>) -> String {
        assert!(!init.is_empty(), "array must have at least one element");
        assert!(
            init.iter().all(|b| b.width() == width),
            "array initializer width mismatch"
        );
        let name = name.into();
        self.design.regs.push(RegDecl {
            name: name.clone(),
            width,
            len: init.len() as u32,
            init,
        });
        name
    }

    /// Declares a rule. Rules fire in [`DesignBuilder::schedule`] order.
    pub fn rule(&mut self, name: impl Into<String>, body: Vec<Action>) -> &mut Self {
        self.design.rules.push(Rule {
            name: name.into(),
            body,
        });
        self
    }

    /// Sets the scheduler to the given rule-name order.
    pub fn schedule<I, S>(&mut self, order: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.design.schedule = order.into_iter().map(Into::into).collect();
        self
    }

    /// Finishes the design. If no schedule was given, rules run in
    /// declaration order.
    pub fn build(mut self) -> Design {
        if self.design.schedule.is_empty() {
            self.design.schedule = self.design.rules.iter().map(|r| r.name.clone()).collect();
        }
        self.design
    }
}

impl Design {
    /// Approximate source-line count of the design (each action and register
    /// declaration counts as one line), mirroring the paper's Kôika SLOC
    /// column in Table 1.
    pub fn sloc(&self) -> usize {
        fn actions(a: &[Action]) -> usize {
            a.iter()
                .map(|a| match a {
                    Action::If(_, t, f) => 1 + actions(t) + actions(f),
                    Action::Named(_, b) => 1 + actions(b),
                    _ => 1,
                })
                .sum()
        }
        self.regs.len()
            + self.schedule.len()
            + self
                .rules
                .iter()
                .map(|r| 1 + actions(&r.body))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn default_schedule_is_declaration_order() {
        let mut b = DesignBuilder::new("d");
        b.reg("r", 4, 0u64);
        b.rule("b_rule", vec![wr0("r", k(4, 1))]);
        b.rule("a_rule", vec![]);
        let d = b.build();
        assert_eq!(d.schedule, vec!["b_rule", "a_rule"]);
    }

    #[test]
    fn array_init_lengths() {
        let mut b = DesignBuilder::new("d");
        b.array("t", 2, 4, 3u64);
        let d = b.build();
        assert_eq!(d.regs[0].init.len(), 4);
        assert_eq!(d.regs[0].init[0], Bits::new(2, 3u64));
    }

    #[test]
    fn sloc_counts_nested_actions() {
        let mut b = DesignBuilder::new("d");
        b.reg("r", 4, 0u64);
        b.rule(
            "r1",
            vec![when(rd0("r").eq(k(4, 0)), vec![wr0("r", k(4, 1)), abort()])],
        );
        let d = b.build();
        // 1 reg + 1 schedule entry + 1 rule + if + write + abort
        assert_eq!(d.sloc(), 6);
    }
}
