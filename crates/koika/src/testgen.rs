//! Random well-typed design generation, for differential testing of
//! simulation backends (and for users practicing the paper's case-study-2
//! methodology of randomized functional verification).
//!
//! Generated designs are *contraption-free by construction*: within a rule,
//! every register is read (into a local) before any register is written, and
//! write values mention only locals and constants. This matters because the
//! optimized backends (Cuttlesim at accumulated-log levels, and the RTL
//! pipeline) intentionally treat same-rule read-after-write "Goldbergian
//! contraptions" (§3.2 of the paper) as conflicts, diverging from the
//! reference semantics — on contraption-free designs all backends agree
//! exactly, which is what the differential tests assert.
//!
//! The module carries its own tiny SplitMix64 generator so that `koika`
//! stays dependency-free.

use crate::ast::*;
use crate::bits::word;
use crate::design::{Design, DesignBuilder};
use crate::tir::TDesign;

/// A structural fingerprint of a checked design: FNV-1a over the register
/// shapes (names and widths) and rule names, ignoring initial values and
/// rule bodies.
///
/// Fuzz triage keys crash buckets on this: two seeds whose designs share
/// the same register/rule *shape* and fail the same way are almost
/// certainly the same root cause, so they dedup into one bucket even
/// though their constants differ.
pub fn shape_fingerprint(td: &TDesign) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    for r in &td.regs {
        eat(r.name.as_bytes());
        eat(&r.width.to_le_bytes());
    }
    eat(&[0xff]);
    for rule in &td.rules {
        eat(rule.name.as_bytes());
    }
    h
}

/// A small, fast, seedable RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

const WIDTHS: [u32; 6] = [1, 4, 8, 13, 32, 64];

/// Generates a random well-typed, contraption-free design from a seed.
/// The same seed always produces the same design.
pub fn random_design(seed: u64) -> Design {
    let mut rng = SplitMix64::new(seed);
    let mut b = DesignBuilder::new(format!("rand_{seed}"));

    let nregs = rng.range(2, 5) as usize;
    let mut widths = Vec::with_capacity(nregs);
    for i in 0..nregs {
        let w = WIDTHS[rng.below(WIDTHS.len() as u64) as usize];
        widths.push(w);
        b.reg(format!("r{i}"), w, rng.next_u64() & word::mask(w));
    }
    // Optionally, one small array.
    let arr = if rng.chance(1, 2) {
        let w = WIDTHS[rng.below(4) as usize];
        let len = 1 << rng.range(1, 3);
        b.array("arr", w, len, rng.next_u64() & word::mask(w));
        Some((w, len))
    } else {
        None
    };

    let nrules = rng.range(1, 4) as usize;
    let mut names = Vec::new();
    for rule_i in 0..nrules {
        let mut body = Vec::new();
        let mut vars: Vec<(String, u32)> = Vec::new();
        // Gather phase.
        for (i, w) in widths.iter().enumerate() {
            if rng.chance(4, 5) {
                let name = format!("g{i}");
                let e = if rng.chance(1, 2) {
                    rd0(format!("r{i}"))
                } else {
                    rd1(format!("r{i}"))
                };
                body.push(let_(&name, e));
                vars.push((name, *w));
            }
        }
        if let Some((w, len)) = arr {
            if rng.chance(1, 2) {
                let idx_w = len.trailing_zeros().max(1);
                let idx = k(idx_w, rng.below(len as u64));
                let e = if rng.chance(1, 2) {
                    rd0a("arr", idx)
                } else {
                    rd1a("arr", idx)
                };
                body.push(let_("ga", e));
                vars.push(("ga".to_string(), w));
            }
        }
        // Optional guard.
        if !vars.is_empty() && rng.chance(1, 2) {
            let (v, w) = vars[rng.below(vars.len() as u64) as usize].clone();
            let bit = rng.below(w as u64) as u32;
            body.push(guard(var(v).bit(bit).eq(k(1, rng.below(2)))));
        }
        // Write phase.
        let nwrites = rng.range(1, 3) as usize;
        for _ in 0..nwrites {
            let (target, w): (String, u32) = match arr {
                Some((aw, _)) if rng.chance(1, 4) => ("arr".to_string(), aw),
                _ => {
                    let t = rng.below(nregs as u64) as usize;
                    (format!("r{t}"), widths[t])
                }
            };
            let e = random_expr(&mut rng, &vars, w, 3);
            let act = if target == "arr" {
                let (_, len) = arr.expect("checked");
                let idx_w = len.trailing_zeros().max(1);
                let idx = k(idx_w, rng.below(len as u64));
                if rng.chance(7, 10) {
                    wr0a("arr", idx, e)
                } else {
                    wr1a("arr", idx, e)
                }
            } else if rng.chance(7, 10) {
                wr0(&target, e)
            } else {
                wr1(&target, e)
            };
            if rng.chance(3, 10) && !vars.is_empty() {
                let (v, vw) = vars[rng.below(vars.len() as u64) as usize].clone();
                let bit = rng.below(vw as u64) as u32;
                body.push(when(var(v).bit(bit).eq(k(1, 1)), vec![act]));
            } else {
                body.push(act);
            }
        }
        let name = format!("rule{rule_i}");
        b.rule(&name, body);
        names.push(name);
    }
    b.schedule(names);
    b.build()
}

/// Generates a random expression of exactly `width` bits over `vars`
/// (pairs of variable name and width).
pub fn random_expr(rng: &mut SplitMix64, vars: &[(String, u32)], width: u32, depth: u32) -> Expr {
    let same_width: Vec<&(String, u32)> = vars.iter().filter(|(_, w)| *w == width).collect();
    if depth == 0 || (vars.is_empty() && rng.chance(1, 2)) {
        return if !same_width.is_empty() && rng.chance(7, 10) {
            var(&same_width[rng.below(same_width.len() as u64) as usize].0)
        } else {
            k(width, rng.next_u64() & word::mask(width))
        };
    }
    match rng.below(9) {
        0 => random_expr(rng, vars, width, depth - 1).add(random_expr(rng, vars, width, depth - 1)),
        1 => random_expr(rng, vars, width, depth - 1).sub(random_expr(rng, vars, width, depth - 1)),
        2 => random_expr(rng, vars, width, depth - 1).xor(random_expr(rng, vars, width, depth - 1)),
        3 => random_expr(rng, vars, width, depth - 1).and(random_expr(rng, vars, width, depth - 1)),
        4 => {
            let w = WIDTHS[rng.below(WIDTHS.len() as u64) as usize];
            random_expr(rng, vars, w, depth - 1)
                .ult(random_expr(rng, vars, w, depth - 1))
                .zext(width)
        }
        5 => {
            let from = (width + rng.below(8) as u32).min(64);
            random_expr(rng, vars, from, depth - 1).slice(rng.below(3) as u32, width)
        }
        6 => {
            let sh = rng.below(width.min(8) as u64);
            random_expr(rng, vars, width, depth - 1).shl(k(8, sh))
        }
        // Concatenation, biased toward width-boundary splits (1 / w-1 and
        // w-1 / 1). Extreme low-half widths drive the lowered ConcatShift
        // shift counts to the edges of the 64-bit word, where masking and
        // shift-overflow bugs hide; an unbiased split almost never lands
        // there for the wide register widths.
        7 if width >= 2 => {
            let lw = match rng.below(4) {
                0 => 1,
                1 => width - 1,
                _ => rng.range(1, (width - 1) as u64) as u32,
            };
            let hw = width - lw;
            random_expr(rng, vars, hw, depth - 1).concat(random_expr(rng, vars, lw, depth - 1))
        }
        _ => select(
            random_expr(rng, &[], 1, 0),
            random_expr(rng, &[], width, 1),
            random_expr(rng, &[], width, 1),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;

    #[test]
    fn generated_designs_typecheck() {
        for seed in 0..200 {
            let d = random_design(seed);
            check(&d).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_design(42), random_design(42));
    }

    #[test]
    fn generated_designs_are_contraption_free() {
        use crate::analysis::{analyze, ScheduleAssumption};
        for seed in 0..200 {
            let td = check(&random_design(seed)).unwrap();
            let a = analyze(&td, ScheduleAssumption::Declared);
            assert!(
                a.warnings.is_empty(),
                "seed {seed} produced a contraption: {:?}",
                a.warnings
            );
        }
    }

    #[test]
    fn splitmix_is_uniformish() {
        let mut rng = SplitMix64::new(7);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }
}
