//! The unified observability layer: in-simulator probe hooks, cycle
//! metrics, and machine-readable export sinks.
//!
//! The paper's debugging story (§4.2) is that compiling Kôika to software
//! makes a design *observable*: profiles and breakpoints map straight back
//! to rules. This module turns that idea into one uniform interface. An
//! [`Observer`] receives the same rule-level event stream from every
//! backend — the reference interpreter, the Cuttlesim VM at any
//! optimization level, and the RTL netlist simulator — which is what lets
//! differential tests report *where* two backends diverge, not just that
//! they do.
//!
//! Observation is strictly opt-in: backends expose a separate
//! `cycle_obs(&mut dyn Observer)` entry point next to their unhooked
//! `cycle()`, so a simulation that never attaches an observer executes the
//! exact same code as before this module existed (zero cost when disabled).
//!
//! Sinks provided here:
//! - [`Metrics`] — per-rule commit/abort counters, commit/abort-per-cycle
//!   histograms, per-register write counts, and cycles/sec throughput, with
//!   a stable JSON snapshot and a Prometheus-style text dump;
//! - [`PerfettoTrace`] — a Chrome-trace/Perfetto JSON timeline, one track
//!   per rule, slices for commits, instant events for aborts;
//! - [`RegWatch`] — prints (and records) a line whenever a watched register
//!   changes;
//! - [`Fanout`] — broadcasts one event stream to several observers.

use crate::tir::{RegId, TDesign};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Why a rule's execution did not commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// An explicit `abort` (or a failed guard, which lowers to one).
    Abort,
    /// A read/write check failed on the given register.
    Conflict(RegId),
    /// The backend cannot distinguish abort from conflict (the RTL
    /// simulator only sees the final `will_fire` wire).
    Unspecified,
}

/// A probe attached to a simulation backend.
///
/// All callbacks default to no-ops so implementors override only what they
/// need. Rule indices are **declaration order** indices into
/// `TDesign::rules` on every backend, so per-rule data collected on one
/// backend is directly comparable with another's.
///
/// `reg_write` reports boundary differences: it fires once per register
/// whose value at the end of the cycle differs from its value at the start
/// (low 64 bits). This is the one definition all three backends can
/// implement identically — the interpreter and VM could also report
/// intra-cycle port writes, but the netlist simulator could not, and the
/// point of this trait is that the streams match.
pub trait Observer {
    /// A cycle is about to execute.
    fn cycle_start(&mut self, _cycle: u64) {}
    /// A scheduled rule is about to be tried (schedule order).
    fn rule_attempt(&mut self, _rule: usize) {}
    /// The rule committed.
    fn rule_commit(&mut self, _rule: usize) {}
    /// The rule aborted or hit a conflict.
    fn rule_fail(&mut self, _rule: usize, _reason: FailureReason) {}
    /// A register's value changed across the cycle boundary.
    fn reg_write(&mut self, _reg: RegId, _old: u64, _new: u64) {}
    /// The cycle finished and registers are latched.
    fn cycle_end(&mut self, _cycle: u64) {}
    /// A fault was injected before the given cycle: bit `bit` of `reg` was
    /// flipped from `old` to `new` (see [`crate::fault`]).
    fn fault_injected(&mut self, _cycle: u64, _reg: RegId, _bit: u32, _old: u64, _new: u64) {}
    /// A watchdog aborted the run before the given cycle (budget exhausted
    /// or progress stalled).
    fn watchdog_trip(&mut self, _cycle: u64, _reason: &str) {}
    /// A parallel-runner job (campaign member, fuzz seed) committed its
    /// final verdict: `attempts` tries were consumed (1 = first try), and
    /// `panicked` is true when the verdict is a contained panic (see
    /// [`crate::runner`]).
    fn job_finished(&mut self, _index: usize, _attempts: u32, _panicked: bool) {}
}

/// Broadcasts every event to several observers, in order.
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// Creates a fanout over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn Observer>) -> Self {
        Fanout { sinks }
    }
}

impl Observer for Fanout<'_> {
    fn cycle_start(&mut self, cycle: u64) {
        for s in &mut self.sinks {
            s.cycle_start(cycle);
        }
    }
    fn rule_attempt(&mut self, rule: usize) {
        for s in &mut self.sinks {
            s.rule_attempt(rule);
        }
    }
    fn rule_commit(&mut self, rule: usize) {
        for s in &mut self.sinks {
            s.rule_commit(rule);
        }
    }
    fn rule_fail(&mut self, rule: usize, reason: FailureReason) {
        for s in &mut self.sinks {
            s.rule_fail(rule, reason);
        }
    }
    fn reg_write(&mut self, reg: RegId, old: u64, new: u64) {
        for s in &mut self.sinks {
            s.reg_write(reg, old, new);
        }
    }
    fn cycle_end(&mut self, cycle: u64) {
        for s in &mut self.sinks {
            s.cycle_end(cycle);
        }
    }
    fn fault_injected(&mut self, cycle: u64, reg: RegId, bit: u32, old: u64, new: u64) {
        for s in &mut self.sinks {
            s.fault_injected(cycle, reg, bit, old, new);
        }
    }
    fn watchdog_trip(&mut self, cycle: u64, reason: &str) {
        for s in &mut self.sinks {
            s.watchdog_trip(cycle, reason);
        }
    }
    fn job_finished(&mut self, index: usize, attempts: u32, panicked: bool) {
        for s in &mut self.sinks {
            s.job_finished(index, attempts, panicked);
        }
    }
}

/// Writes a Prometheus metric family header (`# HELP` + `# TYPE`).
///
/// Shared by [`Metrics::to_prometheus`] and external exporters (the
/// simulation server's per-tenant `koika_server_*` counters) so every
/// exposition in the workspace formats identically.
pub fn prom_family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Writes one Prometheus sample line with escaped label values.
pub fn prom_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", json_escape(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-rule counters for one rule, as aggregated by [`Metrics`].
#[derive(Debug, Clone, Default)]
pub struct RuleStats {
    /// Rule name (declaration order).
    pub name: String,
    /// Times the rule was tried.
    pub attempts: u64,
    /// Times it committed.
    pub fired: u64,
    /// Times it failed on an explicit abort/guard.
    pub failed_abort: u64,
    /// Times it failed on a read/write conflict.
    pub failed_conflict: u64,
    /// Failures the backend could not classify.
    pub failed_other: u64,
    /// Conflict failures broken down by the register whose read/write
    /// check failed (flattened register index → count). The values sum to
    /// `failed_conflict` on backends that classify failures; backends that
    /// cannot (the RTL simulator) leave this empty.
    pub conflict_regs: BTreeMap<u32, u64>,
}

impl RuleStats {
    /// Total failures, regardless of classification.
    pub fn failed(&self) -> u64 {
        self.failed_abort + self.failed_conflict + self.failed_other
    }
}

/// The metrics aggregator: an [`Observer`] that folds the event stream into
/// counters, histograms, and throughput.
///
/// The same `Metrics` value can be attached to any backend; two runs over
/// the same design are diffable field by field.
#[derive(Debug, Clone)]
pub struct Metrics {
    design: String,
    rules: Vec<RuleStats>,
    reg_names: Vec<String>,
    reg_writes: Vec<u64>,
    cycles: u64,
    /// Histogram of commits per cycle: `commit_hist[k]` = cycles with
    /// exactly `k` commits.
    commit_hist: Vec<u64>,
    /// Histogram of aborts (all failures) per cycle.
    abort_hist: Vec<u64>,
    cur_commits: usize,
    cur_aborts: usize,
    faults_injected: u64,
    watchdog_trips: u64,
    jobs_completed: u64,
    job_retries: u64,
    panics_contained: u64,
    batch_lanes: u64,
    batch_lockstep_rules: u64,
    batch_fallback_rules: u64,
    started: Option<Instant>,
    elapsed_secs: f64,
}

impl Metrics {
    /// Creates an aggregator with explicit rule and register names.
    pub fn new(design: impl Into<String>, rule_names: Vec<String>, reg_names: Vec<String>) -> Self {
        let nregs = reg_names.len();
        Metrics {
            design: design.into(),
            rules: rule_names
                .into_iter()
                .map(|name| RuleStats {
                    name,
                    ..RuleStats::default()
                })
                .collect(),
            reg_names,
            reg_writes: vec![0; nregs],
            cycles: 0,
            commit_hist: Vec::new(),
            abort_hist: Vec::new(),
            cur_commits: 0,
            cur_aborts: 0,
            faults_injected: 0,
            watchdog_trips: 0,
            jobs_completed: 0,
            job_retries: 0,
            panics_contained: 0,
            batch_lanes: 0,
            batch_lockstep_rules: 0,
            batch_fallback_rules: 0,
            started: None,
            elapsed_secs: 0.0,
        }
    }

    /// Creates an aggregator sized and named for a checked design.
    pub fn for_design(td: &TDesign) -> Self {
        Metrics::new(
            td.name.clone(),
            td.rules.iter().map(|r| r.name.clone()).collect(),
            td.regs.iter().map(|r| r.name.clone()).collect(),
        )
    }

    /// Overwrites the aggregate counters from a backend that maintains its
    /// own always-on counts (e.g. the VM's `fired_per_rule`). Failures land
    /// in the unclassified bucket; attempts are reconstructed as
    /// `fired + failed`.
    pub fn set_counts(&mut self, fired: &[u64], failed: &[u64], cycles: u64) {
        for i in 0..fired.len().max(failed.len()) {
            let f = fired.get(i).copied().unwrap_or(0);
            let x = failed.get(i).copied().unwrap_or(0);
            let r = self.rule_mut(i);
            r.fired = f;
            r.failed_abort = 0;
            r.failed_conflict = 0;
            r.failed_other = x;
            r.attempts = f + x;
        }
        self.cycles = cycles;
    }

    fn rule_mut(&mut self, i: usize) -> &mut RuleStats {
        if i >= self.rules.len() {
            self.rules.resize_with(i + 1, || RuleStats {
                name: String::new(),
                ..RuleStats::default()
            });
        }
        let r = &mut self.rules[i];
        if r.name.is_empty() {
            r.name = format!("rule{i}");
        }
        r
    }

    /// The design name.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-rule statistics, declaration order.
    pub fn rules(&self) -> &[RuleStats] {
        &self.rules
    }

    /// Per-rule commit counts, declaration order — the backend-divergence
    /// fingerprint the differential tests compare.
    pub fn commits_per_rule(&self) -> Vec<u64> {
        self.rules.iter().map(|r| r.fired).collect()
    }

    /// Total commits across all rules.
    pub fn total_fired(&self) -> u64 {
        self.rules.iter().map(|r| r.fired).sum()
    }

    /// Total failures across all rules.
    pub fn total_failed(&self) -> u64 {
        self.rules.iter().map(|r| r.failed()).sum()
    }

    /// Boundary write counts per register (flattened register space).
    pub fn reg_writes(&self) -> &[u64] {
        &self.reg_writes
    }

    /// Histogram of commits per cycle (`[k]` = cycles with `k` commits).
    pub fn commit_histogram(&self) -> &[u64] {
        &self.commit_hist
    }

    /// Histogram of failures per cycle.
    pub fn abort_histogram(&self) -> &[u64] {
        &self.abort_hist
    }

    /// Faults injected into the observed run (see [`crate::fault`]).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Watchdog trips observed (budget exhausted or progress stalled).
    pub fn watchdog_trips(&self) -> u64 {
        self.watchdog_trips
    }

    /// Parallel-runner jobs that committed a final verdict.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Retry attempts consumed by transiently failing jobs.
    pub fn job_retries(&self) -> u64 {
        self.job_retries
    }

    /// Jobs whose final verdict was a contained panic.
    pub fn panics_contained(&self) -> u64 {
        self.panics_contained
    }

    /// Records batched-engine counters: lane count plus how many
    /// (rule, cycle) steps ran lock-step across the whole batch versus
    /// falling back to per-lane scalar execution on control-flow
    /// divergence. Setting a nonzero lane count turns on the `batch`
    /// sections of [`Metrics::to_json`] and [`Metrics::to_prometheus`].
    pub fn set_batch(&mut self, lanes: u64, lockstep_rules: u64, fallback_rules: u64) {
        self.batch_lanes = lanes;
        self.batch_lockstep_rules = lockstep_rules;
        self.batch_fallback_rules = fallback_rules;
    }

    /// Lanes of the batched engine observed (0 when scalar).
    pub fn batch_lanes(&self) -> u64 {
        self.batch_lanes
    }

    /// (rule, cycle) steps the batched engine executed in lock-step.
    pub fn batch_lockstep_rules(&self) -> u64 {
        self.batch_lockstep_rules
    }

    /// (rule, cycle) steps that diverged and re-ran per lane.
    pub fn batch_fallback_rules(&self) -> u64 {
        self.batch_fallback_rules
    }

    /// Observed simulation throughput in cycles per wall-clock second
    /// (0.0 before the first cycle completes).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.cycles as f64 / self.elapsed_secs
        }
    }

    fn bump_hist(hist: &mut Vec<u64>, bucket: usize) {
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }

    /// Renders the stable JSON snapshot.
    ///
    /// With `include_throughput` false the output is fully deterministic
    /// for a deterministic run — that is the form golden tests snapshot.
    pub fn to_json(&self, include_throughput: bool) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"design\": \"{}\",\n  \"cycles\": {},\n  \"rules_fired\": {},\n  \"rules_failed\": {},\n",
            json_escape(&self.design),
            self.cycles,
            self.total_fired(),
            self.total_failed(),
        );
        s.push_str("  \"rules\": [\n");
        for (i, r) in self.rules.iter().enumerate() {
            // The per-register conflict breakdown appears only when a
            // conflict was classified, so conflict-free rules (and whole
            // runs driven by unclassifying backends) keep their
            // historical, golden-snapshotted shape.
            let mut conflicts = String::new();
            if !r.conflict_regs.is_empty() {
                conflicts.push_str(", \"conflict_regs\": {");
                for (k, (reg, n)) in r.conflict_regs.iter().enumerate() {
                    let name = self
                        .reg_names
                        .get(*reg as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("reg{reg}"));
                    let _ = write!(
                        conflicts,
                        "{}\"{}\": {}",
                        if k == 0 { "" } else { ", " },
                        json_escape(&name),
                        n
                    );
                }
                conflicts.push('}');
            }
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"attempts\": {}, \"fired\": {}, \"failed\": {}, \
                 \"failed_abort\": {}, \"failed_conflict\": {}{}}}{}",
                json_escape(&r.name),
                r.attempts,
                r.fired,
                r.failed(),
                r.failed_abort,
                r.failed_conflict,
                conflicts,
                if i + 1 == self.rules.len() { "" } else { "," },
            );
        }
        s.push_str("  ],\n  \"registers\": [\n");
        let written: Vec<usize> = (0..self.reg_writes.len())
            .filter(|&i| self.reg_writes[i] > 0)
            .collect();
        for (k, &i) in written.iter().enumerate() {
            let name = self
                .reg_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("reg{i}"));
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"writes\": {}}}{}",
                json_escape(&name),
                self.reg_writes[i],
                if k + 1 == written.len() { "" } else { "," },
            );
        }
        let _ = write!(
            s,
            "  ],\n  \"commits_per_cycle_hist\": {:?},\n  \"aborts_per_cycle_hist\": {:?}",
            self.commit_hist, self.abort_hist,
        );
        // Fault/watchdog counters only appear when something happened, so
        // fault-free runs keep their historical (golden-snapshotted) shape.
        if self.faults_injected > 0 {
            let _ = write!(s, ",\n  \"faults_injected\": {}", self.faults_injected);
        }
        if self.watchdog_trips > 0 {
            let _ = write!(s, ",\n  \"watchdog_trips\": {}", self.watchdog_trips);
        }
        if self.jobs_completed > 0 {
            let _ = write!(
                s,
                ",\n  \"runner\": {{\"jobs_completed\": {}, \"retries\": {}, \"panics_contained\": {}}}",
                self.jobs_completed, self.job_retries, self.panics_contained,
            );
        }
        if self.batch_lanes > 0 {
            let _ = write!(
                s,
                ",\n  \"batch\": {{\"lanes\": {}, \"lockstep_rules\": {}, \"fallback_rules\": {}}}",
                self.batch_lanes, self.batch_lockstep_rules, self.batch_fallback_rules,
            );
        }
        if include_throughput {
            let _ = write!(s, ",\n  \"cycles_per_sec\": {:.1}", self.cycles_per_sec());
        }
        s.push_str("\n}\n");
        s
    }

    /// Renders a Prometheus-style text exposition of the counters.
    pub fn to_prometheus(&self) -> String {
        let d = json_escape(&self.design);
        let mut s = String::new();
        s.push_str("# HELP koika_cycles_total Cycles simulated.\n# TYPE koika_cycles_total counter\n");
        let _ = writeln!(s, "koika_cycles_total{{design=\"{d}\"}} {}", self.cycles);
        s.push_str(
            "# HELP koika_rule_commits_total Rule commits by rule.\n# TYPE koika_rule_commits_total counter\n",
        );
        for r in &self.rules {
            let _ = writeln!(
                s,
                "koika_rule_commits_total{{design=\"{d}\",rule=\"{}\"}} {}",
                json_escape(&r.name),
                r.fired
            );
        }
        s.push_str(
            "# HELP koika_rule_failures_total Rule failures by rule and reason.\n# TYPE koika_rule_failures_total counter\n",
        );
        for r in &self.rules {
            let name = json_escape(&r.name);
            let _ = writeln!(
                s,
                "koika_rule_failures_total{{design=\"{d}\",rule=\"{name}\",reason=\"abort\"}} {}",
                r.failed_abort
            );
            let _ = writeln!(
                s,
                "koika_rule_failures_total{{design=\"{d}\",rule=\"{name}\",reason=\"conflict\"}} {}",
                r.failed_conflict
            );
            let _ = writeln!(
                s,
                "koika_rule_failures_total{{design=\"{d}\",rule=\"{name}\",reason=\"other\"}} {}",
                r.failed_other
            );
        }
        s.push_str(
            "# HELP koika_rule_abort_reason_total Rule failures broken down by reason; conflict failures carry the blamed register.\n# TYPE koika_rule_abort_reason_total counter\n",
        );
        for r in &self.rules {
            let name = json_escape(&r.name);
            let _ = writeln!(
                s,
                "koika_rule_abort_reason_total{{design=\"{d}\",rule=\"{name}\",reason=\"abort\"}} {}",
                r.failed_abort
            );
            for (reg, n) in &r.conflict_regs {
                let rn = self
                    .reg_names
                    .get(*reg as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("reg{reg}"));
                let _ = writeln!(
                    s,
                    "koika_rule_abort_reason_total{{design=\"{d}\",rule=\"{name}\",reason=\"conflict\",reg=\"{}\"}} {}",
                    json_escape(&rn),
                    n
                );
            }
            let _ = writeln!(
                s,
                "koika_rule_abort_reason_total{{design=\"{d}\",rule=\"{name}\",reason=\"other\"}} {}",
                r.failed_other
            );
        }
        s.push_str(
            "# HELP koika_reg_writes_total Register boundary writes by register.\n# TYPE koika_reg_writes_total counter\n",
        );
        for (i, &w) in self.reg_writes.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let name = self
                .reg_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("reg{i}"));
            let _ = writeln!(
                s,
                "koika_reg_writes_total{{design=\"{d}\",reg=\"{}\"}} {}",
                json_escape(&name),
                w
            );
        }
        if self.faults_injected > 0 || self.watchdog_trips > 0 {
            s.push_str(
                "# HELP koika_faults_injected_total SEU bit flips injected.\n# TYPE koika_faults_injected_total counter\n",
            );
            let _ = writeln!(
                s,
                "koika_faults_injected_total{{design=\"{d}\"}} {}",
                self.faults_injected
            );
            s.push_str(
                "# HELP koika_watchdog_trips_total Watchdog aborts.\n# TYPE koika_watchdog_trips_total counter\n",
            );
            let _ = writeln!(
                s,
                "koika_watchdog_trips_total{{design=\"{d}\"}} {}",
                self.watchdog_trips
            );
        }
        if self.jobs_completed > 0 {
            s.push_str(
                "# HELP koika_runner_jobs_total Parallel-runner jobs by final verdict.\n# TYPE koika_runner_jobs_total counter\n",
            );
            let _ = writeln!(
                s,
                "koika_runner_jobs_total{{design=\"{d}\",verdict=\"panic\"}} {}",
                self.panics_contained
            );
            let _ = writeln!(
                s,
                "koika_runner_jobs_total{{design=\"{d}\",verdict=\"other\"}} {}",
                self.jobs_completed - self.panics_contained
            );
            s.push_str(
                "# HELP koika_runner_retries_total Retry attempts consumed by transient job failures.\n# TYPE koika_runner_retries_total counter\n",
            );
            let _ = writeln!(
                s,
                "koika_runner_retries_total{{design=\"{d}\"}} {}",
                self.job_retries
            );
        }
        if self.batch_lanes > 0 {
            s.push_str(
                "# HELP koika_batch_lanes Lanes of the batched lock-step engine.\n# TYPE koika_batch_lanes gauge\n",
            );
            let _ = writeln!(s, "koika_batch_lanes{{design=\"{d}\"}} {}", self.batch_lanes);
            s.push_str(
                "# HELP koika_batch_rule_steps_total Batched (rule, cycle) steps by execution mode.\n# TYPE koika_batch_rule_steps_total counter\n",
            );
            let _ = writeln!(
                s,
                "koika_batch_rule_steps_total{{design=\"{d}\",mode=\"lockstep\"}} {}",
                self.batch_lockstep_rules
            );
            let _ = writeln!(
                s,
                "koika_batch_rule_steps_total{{design=\"{d}\",mode=\"fallback\"}} {}",
                self.batch_fallback_rules
            );
        }
        s.push_str(
            "# HELP koika_cycles_per_second Observed simulation throughput.\n# TYPE koika_cycles_per_second gauge\n",
        );
        let _ = writeln!(
            s,
            "koika_cycles_per_second{{design=\"{d}\"}} {:.1}",
            self.cycles_per_sec()
        );
        s
    }
}

impl Observer for Metrics {
    fn cycle_start(&mut self, _cycle: u64) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        self.cur_commits = 0;
        self.cur_aborts = 0;
    }

    fn rule_attempt(&mut self, rule: usize) {
        self.rule_mut(rule).attempts += 1;
    }

    fn rule_commit(&mut self, rule: usize) {
        self.rule_mut(rule).fired += 1;
        self.cur_commits += 1;
    }

    fn rule_fail(&mut self, rule: usize, reason: FailureReason) {
        let r = self.rule_mut(rule);
        match reason {
            FailureReason::Abort => r.failed_abort += 1,
            FailureReason::Conflict(reg) => {
                r.failed_conflict += 1;
                *r.conflict_regs.entry(reg.0).or_insert(0) += 1;
            }
            FailureReason::Unspecified => r.failed_other += 1,
        }
        self.cur_aborts += 1;
    }

    fn reg_write(&mut self, reg: RegId, _old: u64, _new: u64) {
        let i = reg.0 as usize;
        if i >= self.reg_writes.len() {
            self.reg_writes.resize(i + 1, 0);
        }
        self.reg_writes[i] += 1;
    }

    fn cycle_end(&mut self, _cycle: u64) {
        self.cycles += 1;
        Self::bump_hist(&mut self.commit_hist, self.cur_commits);
        Self::bump_hist(&mut self.abort_hist, self.cur_aborts);
        if let Some(t0) = self.started {
            self.elapsed_secs = t0.elapsed().as_secs_f64();
        }
    }

    fn fault_injected(&mut self, _cycle: u64, _reg: RegId, _bit: u32, _old: u64, _new: u64) {
        self.faults_injected += 1;
    }

    fn watchdog_trip(&mut self, _cycle: u64, _reason: &str) {
        self.watchdog_trips += 1;
    }

    fn job_finished(&mut self, _index: usize, attempts: u32, panicked: bool) {
        self.jobs_completed += 1;
        self.job_retries += attempts.saturating_sub(1) as u64;
        self.panics_contained += panicked as u64;
    }
}

/// A Chrome-trace/Perfetto JSON recorder: one track (thread) per rule,
/// a slice per commit, an instant event per failure.
///
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
/// One simulated cycle maps to one microsecond of trace time.
#[derive(Debug, Clone)]
pub struct PerfettoTrace {
    design: String,
    rule_names: Vec<String>,
    reg_names: Vec<String>,
    events: Vec<String>,
    cycle: u64,
}

impl PerfettoTrace {
    /// Creates a recorder with explicit names.
    pub fn new(design: impl Into<String>, rule_names: Vec<String>, reg_names: Vec<String>) -> Self {
        PerfettoTrace {
            design: design.into(),
            rule_names,
            reg_names,
            events: Vec::new(),
            cycle: 0,
        }
    }

    /// Creates a recorder sized and named for a checked design.
    pub fn for_design(td: &TDesign) -> Self {
        PerfettoTrace::new(
            td.name.clone(),
            td.rules.iter().map(|r| r.name.clone()).collect(),
            td.regs.iter().map(|r| r.name.clone()).collect(),
        )
    }

    fn rule_name(&self, i: usize) -> String {
        self.rule_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("rule{i}"))
    }

    /// Number of events recorded so far (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the complete trace-event-format JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut push = |s: &mut String, ev: &str| {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(ev);
        };
        push(
            &mut s,
            &format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json_escape(&self.design)
            ),
        );
        for (i, name) in self.rule_names.iter().enumerate() {
            push(
                &mut s,
                &format!(
                    "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    i + 1,
                    json_escape(name)
                ),
            );
        }
        for ev in &self.events {
            push(&mut s, ev);
        }
        s.push_str("\n]}\n");
        s
    }
}

impl Observer for PerfettoTrace {
    fn cycle_start(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    fn rule_commit(&mut self, rule: usize) {
        self.events.push(format!(
            "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": 1, \"name\": \"{}\"}}",
            rule + 1,
            self.cycle,
            json_escape(&self.rule_name(rule)),
        ));
    }

    fn rule_fail(&mut self, rule: usize, reason: FailureReason) {
        let why = match reason {
            FailureReason::Abort => "abort".to_string(),
            FailureReason::Conflict(reg) => {
                let name = self
                    .reg_names
                    .get(reg.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("reg{}", reg.0));
                format!("conflict on {name}")
            }
            FailureReason::Unspecified => "did not fire".to_string(),
        };
        self.events.push(format!(
            "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \
             \"name\": \"{} fail\", \"args\": {{\"reason\": \"{}\"}}}}",
            rule + 1,
            self.cycle,
            json_escape(&self.rule_name(rule)),
            json_escape(&why),
        ));
    }

    fn fault_injected(&mut self, cycle: u64, reg: RegId, bit: u32, old: u64, new: u64) {
        let name = self
            .reg_names
            .get(reg.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("reg{}", reg.0));
        // Injections and watchdog trips land on a dedicated track (tid 0),
        // global scope so they draw as full-height markers over the rules.
        self.events.push(format!(
            "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {cycle}, \"s\": \"g\", \
             \"name\": \"SEU {} bit {bit}\", \"args\": {{\"old\": \"{old:#x}\", \"new\": \"{new:#x}\"}}}}",
            json_escape(&name),
        ));
    }

    fn watchdog_trip(&mut self, cycle: u64, reason: &str) {
        self.events.push(format!(
            "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {cycle}, \"s\": \"g\", \
             \"name\": \"watchdog trip\", \"args\": {{\"reason\": \"{}\"}}}}",
            json_escape(reason),
        ));
    }
}

/// Watches a set of registers and emits a line whenever one changes across
/// a cycle boundary — the CLI's `--watch` flag.
#[derive(Debug)]
pub struct RegWatch {
    watched: Vec<(RegId, String)>,
    print: bool,
    cycle: u64,
    /// Recorded change lines, in order.
    pub lines: Vec<String>,
}

impl RegWatch {
    /// Creates a silent watcher (changes recorded in `lines` only).
    pub fn new(watched: Vec<(RegId, String)>) -> Self {
        RegWatch {
            watched,
            print: false,
            cycle: 0,
            lines: Vec::new(),
        }
    }

    /// Creates a watcher that also prints each change to stdout.
    pub fn printing(watched: Vec<(RegId, String)>) -> Self {
        RegWatch {
            print: true,
            ..RegWatch::new(watched)
        }
    }
}

impl Observer for RegWatch {
    fn cycle_start(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    fn reg_write(&mut self, reg: RegId, old: u64, new: u64) {
        if let Some((_, name)) = self.watched.iter().find(|(r, _)| *r == reg) {
            let line = format!("watch {name}: cycle {}: {old:#x} -> {new:#x}", self.cycle);
            if self.print {
                println!("{line}");
            }
            self.lines.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::check::check;
    use crate::design::DesignBuilder;
    use crate::device::SimBackend;
    use crate::interp::Interp;

    fn two_rule_design() -> TDesign {
        let mut b = DesignBuilder::new("stm");
        b.reg("st", 1, 0u64);
        b.reg("n", 8, 0u64);
        b.rule(
            "rlA",
            vec![
                guard(rd0("st").eq(k(1, 0))),
                wr0("st", k(1, 1)),
                wr0("n", rd0("n").add(k(8, 1))),
            ],
        );
        b.rule("rlB", vec![guard(rd0("st").eq(k(1, 1))), wr0("st", k(1, 0))]);
        b.schedule(["rlA", "rlB"]);
        check(&b.build()).unwrap()
    }

    #[test]
    fn metrics_counts_commits_and_failures() {
        let td = two_rule_design();
        let mut sim = Interp::new(&td);
        let mut m = Metrics::for_design(&td);
        for _ in 0..10 {
            sim.cycle_obs(&mut m);
        }
        assert_eq!(m.cycles(), 10);
        assert_eq!(m.commits_per_rule(), vec![5, 5]);
        assert_eq!(m.rules()[0].attempts, 10);
        assert_eq!(m.rules()[0].failed_abort, 5, "guard failures are aborts");
        // Every cycle commits exactly one rule and fails exactly one.
        assert_eq!(m.commit_histogram(), &[0, 10]);
        assert_eq!(m.abort_histogram(), &[0, 10]);
        // `st` toggles every cycle, `n` changes on rlA cycles only.
        assert_eq!(m.reg_writes()[td.reg_id("st").0 as usize], 10);
        assert_eq!(m.reg_writes()[td.reg_id("n").0 as usize], 5);
    }

    #[test]
    fn metrics_break_down_conflicts_by_register() {
        let mut b = DesignBuilder::new("cfl");
        b.reg("x", 8, 0u64);
        b.reg("y", 8, 0u64);
        b.rule("w1", vec![wr0("x", k(8, 1)), wr0("y", k(8, 1))]);
        b.rule("w2", vec![wr0("x", k(8, 2))]);
        b.schedule(["w1", "w2"]);
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        let mut m = Metrics::for_design(&td);
        for _ in 0..3 {
            sim.cycle_obs(&mut m);
        }
        let x = td.reg_id("x").0;
        assert_eq!(m.rules()[1].failed_conflict, 3);
        assert_eq!(m.rules()[1].conflict_regs.get(&x), Some(&3));
        assert!(m.rules()[0].conflict_regs.is_empty());
        let json = m.to_json(false);
        assert!(json.contains("\"conflict_regs\": {\"x\": 3}"), "json: {json}");
        // Conflict-free rules keep the historical JSON shape.
        assert!(json.contains("\"name\": \"w1\", \"attempts\": 3, \"fired\": 3, \"failed\": 0, \"failed_abort\": 0, \"failed_conflict\": 0}"));
        let prom = m.to_prometheus();
        assert!(prom.contains(
            "koika_rule_abort_reason_total{design=\"cfl\",rule=\"w2\",reason=\"conflict\",reg=\"x\"} 3"
        ));
        assert!(prom.contains(
            "koika_rule_abort_reason_total{design=\"cfl\",rule=\"w1\",reason=\"abort\"} 0"
        ));
    }

    #[test]
    fn metrics_json_is_deterministic_and_marks_throughput_optional() {
        let td = two_rule_design();
        let mut sim = Interp::new(&td);
        let mut m = Metrics::for_design(&td);
        for _ in 0..4 {
            sim.cycle_obs(&mut m);
        }
        let a = m.to_json(false);
        let b = m.to_json(false);
        assert_eq!(a, b);
        assert!(a.contains("\"design\": \"stm\""));
        assert!(a.contains("\"name\": \"rlA\""));
        assert!(!a.contains("cycles_per_sec"));
        assert!(m.to_json(true).contains("cycles_per_sec"));
        let prom = m.to_prometheus();
        assert!(prom.contains("koika_rule_commits_total{design=\"stm\",rule=\"rlA\"} 2"));
    }

    #[test]
    fn batch_counters_appear_only_when_set() {
        let td = two_rule_design();
        let mut m = Metrics::for_design(&td);
        assert!(!m.to_json(false).contains("\"batch\""));
        assert!(!m.to_prometheus().contains("koika_batch_lanes"));
        m.set_batch(8, 120, 3);
        assert_eq!(m.batch_lanes(), 8);
        let json = m.to_json(false);
        assert!(json.contains(
            "\"batch\": {\"lanes\": 8, \"lockstep_rules\": 120, \"fallback_rules\": 3}"
        ));
        let prom = m.to_prometheus();
        assert!(prom.contains("koika_batch_lanes{design=\"stm\"} 8"));
        assert!(prom.contains("koika_batch_rule_steps_total{design=\"stm\",mode=\"lockstep\"} 120"));
        assert!(prom.contains("koika_batch_rule_steps_total{design=\"stm\",mode=\"fallback\"} 3"));
    }

    #[test]
    fn perfetto_records_slices_and_instants() {
        let td = two_rule_design();
        let mut sim = Interp::new(&td);
        let mut t = PerfettoTrace::for_design(&td);
        for _ in 0..3 {
            sim.cycle_obs(&mut t);
        }
        // 3 commits + 3 failures.
        assert_eq!(t.len(), 6);
        let json = t.to_json();
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("rlA"));
    }

    #[test]
    fn fanout_and_watch_see_the_same_stream() {
        let td = two_rule_design();
        let mut sim = Interp::new(&td);
        let mut m = Metrics::for_design(&td);
        let mut w = RegWatch::new(vec![(td.reg_id("n"), "n".to_string())]);
        {
            let mut fan = Fanout::new(vec![&mut m, &mut w]);
            for _ in 0..6 {
                sim.cycle_obs(&mut fan);
            }
        }
        assert_eq!(m.cycles(), 6);
        assert_eq!(w.lines.len(), 3, "n changes on rlA cycles only");
        assert!(w.lines[0].starts_with("watch n: cycle 0"));
    }
}
