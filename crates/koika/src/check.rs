//! Type checking and lowering from the surface AST to the typed IR.
//!
//! The checker resolves register and variable names, infers and verifies all
//! widths, flattens register arrays, and enforces the structural restrictions
//! the simulators rely on:
//!
//! * dynamically-indexed arrays have power-of-two lengths (indices are taken
//!   modulo the length);
//! * [`crate::ast::Expr::Select`] arms are read-free (so muxes are pure);
//! * schedules mention each rule at most once, and only declared rules.
//!
//! # Examples
//!
//! ```
//! use koika::{ast::*, design::DesignBuilder, check};
//!
//! let mut b = DesignBuilder::new("d");
//! b.reg("x", 8, 0u64);
//! b.rule("bump", vec![wr0("x", rd0("x").add(k(8, 1)))]);
//! let td = check::check(&b.build())?;
//! assert_eq!(td.num_regs(), 1);
//! # Ok::<(), check::CheckError>(())
//! ```

use crate::ast::{Action, BinOp, Expr, UnOp};
use crate::design::Design;
use crate::tir::*;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error found while checking a design.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// Two registers share a name.
    DuplicateReg(String),
    /// Two rules share a name.
    DuplicateRule(String),
    /// A rule body or schedule references an undeclared register.
    UnknownReg(String),
    /// An expression references an unbound local variable.
    UnknownVar(String),
    /// The schedule references an undeclared rule.
    UnknownRule(String),
    /// The schedule mentions a rule twice.
    RescheduledRule(String),
    /// A register was declared with width 0, or a slice of width 0 was taken.
    ZeroWidth(String),
    /// Scalar access to an array register or vice versa.
    WrongShape {
        /// The register name.
        reg: String,
        /// What the design expected at the use site.
        expected: &'static str,
    },
    /// A dynamically-indexed array has a non-power-of-two length.
    ArrayLenNotPow2(String),
    /// An array register is wider than 64 bits (arrays live in the u64 fast
    /// path of every backend).
    ArrayTooWide(String),
    /// Operand widths disagree.
    WidthMismatch {
        /// Where the mismatch happened.
        context: String,
        /// Expected width.
        expected: u32,
        /// Actual width.
        found: u32,
    },
    /// A condition (`if`/`select`) is not 1 bit wide.
    CondWidth(u32),
    /// Sign extension to a narrower width.
    SextNarrows {
        /// Source width.
        from: u32,
        /// Requested width.
        to: u32,
    },
    /// A register read inside a `Select` arm (arms must be pure).
    ReadInSelectArm,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::DuplicateReg(n) => write!(f, "duplicate register {n:?}"),
            CheckError::DuplicateRule(n) => write!(f, "duplicate rule {n:?}"),
            CheckError::UnknownReg(n) => write!(f, "unknown register {n:?}"),
            CheckError::UnknownVar(n) => write!(f, "unknown variable {n:?}"),
            CheckError::UnknownRule(n) => write!(f, "schedule references unknown rule {n:?}"),
            CheckError::RescheduledRule(n) => write!(f, "rule {n:?} scheduled more than once"),
            CheckError::ZeroWidth(n) => write!(f, "zero width in {n:?}"),
            CheckError::WrongShape { reg, expected } => {
                write!(f, "register {reg:?} used as {expected}")
            }
            CheckError::ArrayLenNotPow2(n) => {
                write!(f, "array {n:?} must have a power-of-two length")
            }
            CheckError::ArrayTooWide(n) => {
                write!(f, "array {n:?} elements must be at most 64 bits wide")
            }
            CheckError::WidthMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "width mismatch in {context}: expected {expected}, found {found}"
            ),
            CheckError::CondWidth(w) => write!(f, "condition must be 1 bit wide, found {w}"),
            CheckError::SextNarrows { from, to } => {
                write!(f, "sign extension from {from} to narrower width {to}")
            }
            CheckError::ReadInSelectArm => {
                write!(f, "register reads are not allowed inside select arms")
            }
        }
    }
}

impl Error for CheckError {}

struct Ctx<'a> {
    design: &'a Design,
    syms: Vec<SymInfo>,
    sym_by_name: HashMap<String, SymId>,
    // Per-rule state:
    scopes: Vec<HashMap<String, u16>>,
    slot_widths: Vec<u32>,
}

impl<'a> Ctx<'a> {
    fn sym(&self, name: &str) -> Result<&SymInfo, CheckError> {
        self.sym_by_name
            .get(name)
            .map(|id| &self.syms[id.0 as usize])
            .ok_or_else(|| CheckError::UnknownReg(name.to_string()))
    }

    fn lookup_var(&self, name: &str) -> Result<u16, CheckError> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Ok(*slot);
            }
        }
        Err(CheckError::UnknownVar(name.to_string()))
    }

    fn bind_var(&mut self, name: &str, width: u32) -> u16 {
        let slot = self.slot_widths.len() as u16;
        self.slot_widths.push(width);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), slot);
        slot
    }

    fn check_expr(&mut self, e: &Expr, in_select_arm: bool) -> Result<TExpr, CheckError> {
        match e {
            Expr::Const(b) => Ok(TExpr::Const {
                w: b.width(),
                v: b.clone(),
            }),
            Expr::Var(name) => {
                let slot = self.lookup_var(name)?;
                Ok(TExpr::Var {
                    w: self.slot_widths[slot as usize],
                    slot,
                })
            }
            Expr::Read(port, name) => {
                if in_select_arm {
                    return Err(CheckError::ReadInSelectArm);
                }
                let sym = self.sym(name)?;
                if !sym.is_scalar() {
                    return Err(CheckError::WrongShape {
                        reg: name.clone(),
                        expected: "a scalar register, but it is an array",
                    });
                }
                Ok(TExpr::Read {
                    w: sym.width,
                    port: *port,
                    reg: sym.base,
                })
            }
            Expr::ReadArr(port, name, idx) => {
                if in_select_arm {
                    return Err(CheckError::ReadInSelectArm);
                }
                let sym = self.sym(name)?.clone();
                if sym.is_scalar() {
                    return Err(CheckError::WrongShape {
                        reg: name.clone(),
                        expected: "an array, but it is a scalar register",
                    });
                }
                let idx = self.check_expr(idx, in_select_arm)?;
                Ok(TExpr::ReadArr {
                    w: sym.width,
                    port: *port,
                    base: sym.base,
                    len: sym.len,
                    idx: Box::new(idx),
                })
            }
            Expr::Un(op, a) => {
                let ta = self.check_expr(a, in_select_arm)?;
                let aw = ta.width();
                let w = match *op {
                    UnOp::Not | UnOp::Neg => aw,
                    UnOp::Zext(w) => w,
                    UnOp::Sext(w) => {
                        if w < aw {
                            return Err(CheckError::SextNarrows { from: aw, to: w });
                        }
                        w
                    }
                    UnOp::Slice { width, .. } => width,
                };
                if w == 0 {
                    return Err(CheckError::ZeroWidth(format!("{op:?}")));
                }
                Ok(TExpr::Un {
                    w,
                    op: *op,
                    a: Box::new(ta),
                })
            }
            Expr::Bin(op, a, b) => {
                let ta = self.check_expr(a, in_select_arm)?;
                let tb = self.check_expr(b, in_select_arm)?;
                let (aw, bw) = (ta.width(), tb.width());
                let w = match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor => {
                        if aw != bw {
                            return Err(CheckError::WidthMismatch {
                                context: format!("{op:?}"),
                                expected: aw,
                                found: bw,
                            });
                        }
                        aw
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::Sra => aw,
                    BinOp::Eq | BinOp::Ne | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle => {
                        if aw != bw {
                            return Err(CheckError::WidthMismatch {
                                context: format!("{op:?}"),
                                expected: aw,
                                found: bw,
                            });
                        }
                        1
                    }
                    BinOp::Concat => aw + bw,
                };
                Ok(TExpr::Bin {
                    w,
                    op: *op,
                    a: Box::new(ta),
                    b: Box::new(tb),
                })
            }
            Expr::Select(c, t, f) => {
                let tc = self.check_expr(c, in_select_arm)?;
                if tc.width() != 1 {
                    return Err(CheckError::CondWidth(tc.width()));
                }
                let tt = self.check_expr(t, true)?;
                let tf = self.check_expr(f, true)?;
                if tt.width() != tf.width() {
                    return Err(CheckError::WidthMismatch {
                        context: "select arms".to_string(),
                        expected: tt.width(),
                        found: tf.width(),
                    });
                }
                Ok(TExpr::Select {
                    w: tt.width(),
                    c: Box::new(tc),
                    t: Box::new(tt),
                    f: Box::new(tf),
                })
            }
        }
    }

    fn check_write_value(
        &mut self,
        reg: &str,
        width: u32,
        e: &Expr,
    ) -> Result<TExpr, CheckError> {
        let te = self.check_expr(e, false)?;
        if te.width() != width {
            return Err(CheckError::WidthMismatch {
                context: format!("write to {reg:?}"),
                expected: width,
                found: te.width(),
            });
        }
        Ok(te)
    }

    fn check_actions(&mut self, actions: &[Action]) -> Result<Vec<TAction>, CheckError> {
        self.scopes.push(HashMap::new());
        let result = actions
            .iter()
            .map(|a| self.check_action(a))
            .collect::<Result<Vec<_>, _>>();
        self.scopes.pop();
        result
    }

    fn check_action(&mut self, a: &Action) -> Result<TAction, CheckError> {
        match a {
            Action::Let(name, e) => {
                let te = self.check_expr(e, false)?;
                let slot = self.bind_var(name, te.width());
                Ok(TAction::Let { slot, e: te })
            }
            Action::Assign(name, e) => {
                let slot = self.lookup_var(name)?;
                let te = self.check_expr(e, false)?;
                let expected = self.slot_widths[slot as usize];
                if te.width() != expected {
                    return Err(CheckError::WidthMismatch {
                        context: format!("assignment to {name:?}"),
                        expected,
                        found: te.width(),
                    });
                }
                Ok(TAction::Let { slot, e: te })
            }
            Action::Write(port, name, e) => {
                let sym = self.sym(name)?.clone();
                if !sym.is_scalar() {
                    return Err(CheckError::WrongShape {
                        reg: name.clone(),
                        expected: "a scalar register, but it is an array",
                    });
                }
                let te = self.check_write_value(name, sym.width, e)?;
                Ok(TAction::Write {
                    port: *port,
                    reg: sym.base,
                    e: te,
                })
            }
            Action::WriteArr(port, name, idx, e) => {
                let sym = self.sym(name)?.clone();
                if sym.is_scalar() {
                    return Err(CheckError::WrongShape {
                        reg: name.clone(),
                        expected: "an array, but it is a scalar register",
                    });
                }
                let tidx = self.check_expr(idx, false)?;
                let te = self.check_write_value(name, sym.width, e)?;
                Ok(TAction::WriteArr {
                    port: *port,
                    base: sym.base,
                    len: sym.len,
                    idx: tidx,
                    e: te,
                })
            }
            Action::If(c, t, f) => {
                let tc = self.check_expr(c, false)?;
                if tc.width() != 1 {
                    return Err(CheckError::CondWidth(tc.width()));
                }
                let tt = self.check_actions(t)?;
                let tf = self.check_actions(f)?;
                Ok(TAction::If {
                    c: tc,
                    t: tt,
                    f: tf,
                })
            }
            Action::Abort => Ok(TAction::Abort),
            Action::Named(label, body) => {
                let tbody = self.check_actions(body)?;
                Ok(TAction::Named {
                    label: label.clone(),
                    body: tbody,
                })
            }
        }
    }
}

/// Checks a design and lowers it to the typed IR.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered (name resolution, width
/// inference, or structural restrictions).
pub fn check(design: &Design) -> Result<TDesign, CheckError> {
    // Flatten the register space.
    let mut syms = Vec::new();
    let mut sym_by_name = HashMap::new();
    let mut regs = Vec::new();
    for decl in &design.regs {
        if decl.width == 0 {
            return Err(CheckError::ZeroWidth(decl.name.clone()));
        }
        if decl.len > 1 {
            if !decl.len.is_power_of_two() {
                return Err(CheckError::ArrayLenNotPow2(decl.name.clone()));
            }
            if decl.width > 64 {
                return Err(CheckError::ArrayTooWide(decl.name.clone()));
            }
        }
        let sym_id = SymId(syms.len() as u32);
        if sym_by_name.insert(decl.name.clone(), sym_id).is_some() {
            return Err(CheckError::DuplicateReg(decl.name.clone()));
        }
        let base = RegId(regs.len() as u32);
        for i in 0..decl.len {
            let name = if decl.len == 1 {
                decl.name.clone()
            } else {
                format!("{}[{}]", decl.name, i)
            };
            regs.push(RegInfo {
                name,
                width: decl.width,
                init: decl.init[i as usize].clone(),
                sym: sym_id,
            });
        }
        syms.push(SymInfo {
            name: decl.name.clone(),
            width: decl.width,
            base,
            len: decl.len,
        });
    }

    // Check the rules.
    let mut rules = Vec::new();
    let mut rule_by_name = HashMap::new();
    for rule in &design.rules {
        if rule_by_name
            .insert(rule.name.clone(), rules.len())
            .is_some()
        {
            return Err(CheckError::DuplicateRule(rule.name.clone()));
        }
        let mut ctx = Ctx {
            design,
            syms: syms.clone(),
            sym_by_name: sym_by_name.clone(),
            scopes: Vec::new(),
            slot_widths: Vec::new(),
        };
        let _ = ctx.design; // silences dead-code warnings while keeping context for diagnostics
        let body = ctx.check_actions(&rule.body)?;
        rules.push(TRule {
            name: rule.name.clone(),
            body,
            slot_widths: ctx.slot_widths,
        });
    }

    // Check the schedule.
    let mut schedule = Vec::new();
    let mut seen = vec![false; rules.len()];
    for name in &design.schedule {
        let idx = *rule_by_name
            .get(name)
            .ok_or_else(|| CheckError::UnknownRule(name.clone()))?;
        if seen[idx] {
            return Err(CheckError::RescheduledRule(name.clone()));
        }
        seen[idx] = true;
        schedule.push(idx);
    }

    Ok(TDesign {
        name: design.name.clone(),
        syms,
        regs,
        rules,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::design::DesignBuilder;

    fn base() -> DesignBuilder {
        let mut b = DesignBuilder::new("t");
        b.reg("x", 8, 0u64);
        b.reg("y", 8, 0u64);
        b.array("arr", 4, 8, 0u64);
        b
    }

    #[test]
    fn accepts_well_typed_rule() {
        let mut b = base();
        b.rule(
            "r",
            vec![
                let_("t", rd0("x").add(rd0("y"))),
                wr0("x", var("t")),
                wr0a("arr", k(3, 2), rd0a("arr", k(3, 1)).add(k(4, 1))),
            ],
        );
        let td = check(&b.build()).unwrap();
        assert_eq!(td.num_regs(), 2 + 8);
        assert_eq!(td.reg_elem("arr", 3), RegId(5));
        assert_eq!(td.rules[0].slot_widths, vec![8]);
    }

    #[test]
    fn rejects_width_mismatch() {
        let mut b = base();
        b.rule("r", vec![wr0("x", rd0("x").add(k(4, 1)))]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_write_width_mismatch() {
        let mut b = base();
        b.rule("r", vec![wr0("x", k(4, 1))]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unknown_names() {
        let mut b = base();
        b.rule("r", vec![wr0("nope", k(8, 1))]);
        assert!(matches!(check(&b.build()), Err(CheckError::UnknownReg(_))));

        let mut b = base();
        b.rule("r", vec![wr0("x", var("ghost"))]);
        assert!(matches!(check(&b.build()), Err(CheckError::UnknownVar(_))));
    }

    #[test]
    fn rejects_read_in_select_arm() {
        let mut b = base();
        b.rule("r", vec![wr0("x", select(kb(true), rd0("x"), k(8, 0)))]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::ReadInSelectArm)
        ));
    }

    #[test]
    fn rejects_non_pow2_array() {
        let mut b = DesignBuilder::new("t");
        b.array("a", 4, 3, 0u64);
        b.rule("r", vec![wr0a("a", k(2, 0), k(4, 0))]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::ArrayLenNotPow2(_))
        ));
    }

    #[test]
    fn rejects_shape_confusion() {
        let mut b = base();
        b.rule("r", vec![wr0("arr", k(4, 0))]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::WrongShape { .. })
        ));

        let mut b = base();
        b.rule("r", vec![wr0a("x", k(1, 0), k(8, 0))]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::WrongShape { .. })
        ));
    }

    #[test]
    fn rejects_bad_schedule() {
        let mut b = base();
        b.rule("r", vec![]);
        b.schedule(["r", "r"]);
        assert!(matches!(
            check(&b.build()),
            Err(CheckError::RescheduledRule(_))
        ));

        let mut b = base();
        b.rule("r", vec![]);
        b.schedule(["ghost"]);
        assert!(matches!(check(&b.build()), Err(CheckError::UnknownRule(_))));
    }

    #[test]
    fn shadowing_creates_new_slot() {
        let mut b = base();
        b.rule(
            "r",
            vec![
                let_("t", k(8, 1)),
                let_("t", k(4, 2)), // shadows with a different width
                wr0a("arr", k(3, 0), var("t")),
            ],
        );
        let td = check(&b.build()).unwrap();
        assert_eq!(td.rules[0].slot_widths, vec![8, 4]);
    }

    #[test]
    fn if_scopes_do_not_leak() {
        let mut b = base();
        b.rule(
            "r",
            vec![
                when(kb(true), vec![let_("inner", k(8, 1))]),
                wr0("x", var("inner")),
            ],
        );
        assert!(matches!(check(&b.build()), Err(CheckError::UnknownVar(_))));
    }

    #[test]
    fn cond_must_be_one_bit() {
        let mut b = base();
        b.rule("r", vec![when(k(8, 1), vec![])]);
        assert!(matches!(check(&b.build()), Err(CheckError::CondWidth(8))));
    }
}
