//! The static-analysis pass powering Cuttlesim's design-specific
//! optimizations (§3.3 of the paper).
//!
//! A straightforward abstract interpretation annotates each rule with a
//! conservative approximation of its rule log — per register, a tristate for
//! each of the four port operations — plus one boolean per register
//! indicating whether any operation on it might fail (cause a conflict)
//! within that rule. Combining per-rule logs in schedule order yields the
//! whole-cycle approximation (the "tribool version of Figure 5 from the
//! original Kôika paper" mentioned in the paper's footnote 1).
//!
//! Downstream consumers use the results to:
//!
//! * classify registers as *plain registers*, *wires*, or *EHRs*
//!   ([`RegClass`]);
//! * find *safe* registers, whose reads and writes can never fail, and for
//!   which Cuttlesim discards read-write sets entirely;
//! * restrict commits and rollbacks to each rule's *footprint*;
//! * detect same-rule read-after-write "Goldbergian contraptions" (§3.2),
//!   which the optimized simulator rejects (with a warning here).
//!
//! Register arrays are approximated per-symbol: an operation on any element
//! counts as an operation on all of them.

use crate::ast::Port;
use crate::tir::{SymId, TAction, TDesign, TExpr};
use std::fmt;

/// A three-valued "may/must" flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tri {
    /// The operation never happens on any path.
    No,
    /// The operation happens on some paths.
    Maybe,
    /// The operation happens on every path.
    Yes,
}

impl Tri {
    /// Join of two control-flow branches.
    pub fn join(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::No, Tri::No) => Tri::No,
            (Tri::Yes, Tri::Yes) => Tri::Yes,
            _ => Tri::Maybe,
        }
    }

    /// Sequencing: the flag after another occurrence with certainty `other`.
    pub fn or_seq(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Yes, _) | (_, Tri::Yes) => Tri::Yes,
            (Tri::No, Tri::No) => Tri::No,
            _ => Tri::Maybe,
        }
    }

    /// True unless the flag is [`Tri::No`].
    pub fn possible(self) -> bool {
        self != Tri::No
    }

    /// Weakens a must-flag to a may-flag (used when a whole rule may abort).
    pub fn weaken(self) -> Tri {
        match self {
            Tri::Yes => Tri::Maybe,
            t => t,
        }
    }
}

/// Abstract per-register log entry: one [`Tri`] per port operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsFlags {
    /// Read at port 0.
    pub r0: Tri,
    /// Read at port 1.
    pub r1: Tri,
    /// Write at port 0.
    pub w0: Tri,
    /// Write at port 1.
    pub w1: Tri,
}

impl AbsFlags {
    /// The empty log entry.
    pub const EMPTY: AbsFlags = AbsFlags {
        r0: Tri::No,
        r1: Tri::No,
        w0: Tri::No,
        w1: Tri::No,
    };

    fn join(self, o: AbsFlags) -> AbsFlags {
        AbsFlags {
            r0: self.r0.join(o.r0),
            r1: self.r1.join(o.r1),
            w0: self.w0.join(o.w0),
            w1: self.w1.join(o.w1),
        }
    }

    fn union(self, o: AbsFlags) -> AbsFlags {
        AbsFlags {
            r0: self.r0.or_seq(o.r0),
            r1: self.r1.or_seq(o.r1),
            w0: self.w0.or_seq(o.w0),
            w1: self.w1.or_seq(o.w1),
        }
    }

    fn weaken(self) -> AbsFlags {
        AbsFlags {
            r0: self.r0.weaken(),
            r1: self.r1.weaken(),
            w0: self.w0.weaken(),
            w1: self.w1.weaken(),
        }
    }

    /// Any write possible.
    pub fn may_write(self) -> bool {
        self.w0.possible() || self.w1.possible()
    }

    /// Any operation that participates in commit/rollback bookkeeping
    /// (read at port 1, or either write).
    pub fn in_rw_footprint(self) -> bool {
        self.r1.possible() || self.may_write()
    }
}

/// How a register is used across the whole design (§3.3 "Minimize read-write
/// sets").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// No rule touches the register (devices may still).
    Unused,
    /// Read and written only at port 0.
    Plain,
    /// Written at port 0 and read at port 1 (intra-cycle communication).
    Wire,
    /// Anything more complex ("ephemeral history register").
    Ehr,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Unused => write!(f, "unused"),
            RegClass::Plain => write!(f, "plain register"),
            RegClass::Wire => write!(f, "wire"),
            RegClass::Ehr => write!(f, "EHR"),
        }
    }
}

/// Whether the analysis may assume the declared schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleAssumption {
    /// Rules run in the declared schedule order (the normal case).
    #[default]
    Declared,
    /// Rules may run in any order and any subset may precede any rule —
    /// required when using `cycle_with_order` for scheduler randomization
    /// (paper case study 2).
    AnyOrder,
}

/// Per-rule analysis summary.
#[derive(Debug, Clone)]
pub struct RuleSummary {
    /// Abstract rule log, per symbol.
    pub flags: Vec<AbsFlags>,
    /// Per symbol: may an operation on it fail (conflict) inside this rule?
    pub may_fail_sym: Vec<bool>,
    /// Does the rule contain a reachable explicit abort?
    pub may_abort_explicit: bool,
    /// Symbols whose read-write sets must be committed / rolled back.
    pub footprint_rw: Vec<SymId>,
    /// Symbols whose data fields must be committed / rolled back.
    pub footprint_data: Vec<SymId>,
}

impl RuleSummary {
    /// May this rule fail at all (explicitly or through a conflict)?
    pub fn may_fail(&self) -> bool {
        self.may_abort_explicit || self.may_fail_sym.iter().any(|b| *b)
    }
}

/// The result of analyzing a design.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-rule summaries, indexed like `TDesign::rules`.
    pub rules: Vec<RuleSummary>,
    /// Whole-cycle abstract log, per symbol.
    pub cycle_flags: Vec<AbsFlags>,
    /// Per symbol: no operation on it anywhere can ever fail.
    pub safe_sym: Vec<bool>,
    /// Per-symbol usage classification.
    pub class: Vec<RegClass>,
    /// Human-readable warnings (Goldbergian contraptions etc.).
    pub warnings: Vec<String>,
    /// The assumption the analysis was run under.
    pub assumption: ScheduleAssumption,
}

struct RuleCtx<'a> {
    design: &'a TDesign,
    cycle: &'a [AbsFlags],
    rule: Vec<AbsFlags>,
    may_fail: Vec<bool>,
    may_abort: bool,
    warnings: Vec<String>,
    rule_name: &'a str,
}

impl RuleCtx<'_> {
    fn sym_of(&self, reg: crate::tir::RegId) -> usize {
        self.design.regs[reg.0 as usize].sym.0 as usize
    }

    fn op(&mut self, port: Port, is_write: bool, sym: usize) {
        let cyc = self.cycle[sym];
        let rl = self.rule[sym];
        let acc = cyc.union(rl);
        match (is_write, port) {
            (false, Port::P0) => {
                if acc.w0.possible() || acc.w1.possible() {
                    self.may_fail[sym] = true;
                }
                if rl.w0.possible() || rl.w1.possible() {
                    self.warnings.push(format!(
                        "rule {:?}: read0 of {:?} after a same-rule write (Goldbergian \
                         contraption); the optimized simulator treats this as a conflict",
                        self.rule_name, self.design.syms[sym].name
                    ));
                }
                self.rule[sym].r0 = self.rule[sym].r0.or_seq(Tri::Yes);
            }
            (false, Port::P1) => {
                if acc.w1.possible() {
                    self.may_fail[sym] = true;
                }
                if rl.w1.possible() {
                    self.warnings.push(format!(
                        "rule {:?}: read1 of {:?} after a same-rule write1 (Goldbergian \
                         contraption); the optimized simulator treats this as a conflict",
                        self.rule_name, self.design.syms[sym].name
                    ));
                }
                self.rule[sym].r1 = self.rule[sym].r1.or_seq(Tri::Yes);
            }
            (true, Port::P0) => {
                if acc.r1.possible() || acc.w0.possible() || acc.w1.possible() {
                    self.may_fail[sym] = true;
                }
                self.rule[sym].w0 = self.rule[sym].w0.or_seq(Tri::Yes);
            }
            (true, Port::P1) => {
                if acc.w1.possible() {
                    self.may_fail[sym] = true;
                }
                self.rule[sym].w1 = self.rule[sym].w1.or_seq(Tri::Yes);
            }
        }
    }

    fn expr(&mut self, e: &TExpr) {
        match e {
            TExpr::Const { .. } | TExpr::Var { .. } => {}
            TExpr::Read { port, reg, .. } => {
                let s = self.sym_of(*reg);
                self.op(*port, false, s);
            }
            TExpr::ReadArr {
                port, base, idx, ..
            } => {
                self.expr(idx);
                let s = self.sym_of(*base);
                self.op(*port, false, s);
            }
            TExpr::Un { a, .. } => self.expr(a),
            TExpr::Bin { a, b, .. } => {
                self.expr(a);
                self.expr(b);
            }
            TExpr::Select { c, t, f, .. } => {
                // Arms are read-free (checker-enforced), so order is moot.
                self.expr(c);
                self.expr(t);
                self.expr(f);
            }
        }
    }

    fn actions(&mut self, actions: &[TAction]) {
        for a in actions {
            match a {
                TAction::Let { e, .. } => self.expr(e),
                TAction::Write { port, reg, e } => {
                    self.expr(e);
                    let s = self.sym_of(*reg);
                    self.op(*port, true, s);
                }
                TAction::WriteArr {
                    port, base, idx, e, ..
                } => {
                    self.expr(idx);
                    self.expr(e);
                    let s = self.sym_of(*base);
                    self.op(*port, true, s);
                }
                TAction::If { c, t, f } => {
                    self.expr(c);
                    let saved_rule = self.rule.clone();
                    let saved_fail = self.may_fail.clone();
                    let saved_abort = self.may_abort;
                    self.actions(t);
                    let (rule_t, fail_t, abort_t) = (
                        std::mem::replace(&mut self.rule, saved_rule),
                        std::mem::replace(&mut self.may_fail, saved_fail),
                        std::mem::replace(&mut self.may_abort, saved_abort),
                    );
                    self.actions(f);
                    for (s, t) in self.rule.iter_mut().zip(rule_t) {
                        *s = s.join(t);
                    }
                    for (s, t) in self.may_fail.iter_mut().zip(fail_t) {
                        *s |= t;
                    }
                    self.may_abort |= abort_t;
                }
                TAction::Abort => self.may_abort = true,
                TAction::Named { body, .. } => self.actions(body),
            }
        }
    }
}

/// Analyzes a design under the given schedule assumption.
pub fn analyze(design: &TDesign, assumption: ScheduleAssumption) -> Analysis {
    let nsyms = design.syms.len();
    let mut warnings = Vec::new();

    // Under AnyOrder, the abstract cycle log seen by every rule is the join
    // of "nothing ran before" and "anything may have run before": compute a
    // fixpoint by first gathering every rule's own flags in isolation.
    let isolated: Vec<Vec<AbsFlags>> = design
        .rules
        .iter()
        .map(|r| {
            let mut ctx = RuleCtx {
                design,
                cycle: &vec![AbsFlags::EMPTY; nsyms],
                rule: vec![AbsFlags::EMPTY; nsyms],
                may_fail: vec![false; nsyms],
                may_abort: false,
                warnings: Vec::new(),
                rule_name: &r.name,
            };
            ctx.actions(&r.body);
            ctx.rule
        })
        .collect();

    let any_order_cycle: Vec<AbsFlags> = (0..nsyms)
        .map(|s| {
            let mut f = AbsFlags::EMPTY;
            for rf in &isolated {
                f = f.union(rf[s].weaken());
            }
            f
        })
        .collect();

    let mut cycle = vec![AbsFlags::EMPTY; nsyms];
    let mut summaries: Vec<Option<RuleSummary>> = vec![None; design.rules.len()];

    let order: Vec<usize> = match assumption {
        ScheduleAssumption::Declared => design.schedule.clone(),
        ScheduleAssumption::AnyOrder => (0..design.rules.len()).collect(),
    };

    for &idx in &order {
        let rule = &design.rules[idx];
        let input = match assumption {
            ScheduleAssumption::Declared => cycle.clone(),
            ScheduleAssumption::AnyOrder => any_order_cycle.clone(),
        };
        let mut ctx = RuleCtx {
            design,
            cycle: &input,
            rule: vec![AbsFlags::EMPTY; nsyms],
            may_fail: vec![false; nsyms],
            may_abort: false,
            warnings: Vec::new(),
            rule_name: &rule.name,
        };
        ctx.actions(&rule.body);
        warnings.append(&mut ctx.warnings);

        let may_fail_rule = ctx.may_abort || ctx.may_fail.iter().any(|b| *b);
        let commit_flags: Vec<AbsFlags> = ctx
            .rule
            .iter()
            .map(|f| if may_fail_rule { f.weaken() } else { *f })
            .collect();
        for (c, f) in cycle.iter_mut().zip(&commit_flags) {
            *c = c.union(*f);
        }

        let footprint_rw: Vec<SymId> = (0..nsyms)
            .filter(|&s| ctx.rule[s].in_rw_footprint())
            .map(|s| SymId(s as u32))
            .collect();
        let footprint_data: Vec<SymId> = (0..nsyms)
            .filter(|&s| ctx.rule[s].may_write())
            .map(|s| SymId(s as u32))
            .collect();

        summaries[idx] = Some(RuleSummary {
            flags: ctx.rule,
            may_fail_sym: ctx.may_fail,
            may_abort_explicit: ctx.may_abort,
            footprint_rw,
            footprint_data,
        });
    }

    // Rules absent from the schedule still get a summary (for
    // `cycle_with_order`), computed against the any-order cycle log.
    for (idx, slot) in summaries.iter_mut().enumerate() {
        if slot.is_none() {
            let rule = &design.rules[idx];
            let mut ctx = RuleCtx {
                design,
                cycle: &any_order_cycle,
                rule: vec![AbsFlags::EMPTY; nsyms],
                may_fail: vec![false; nsyms],
                may_abort: false,
                warnings: Vec::new(),
                rule_name: &rule.name,
            };
            ctx.actions(&rule.body);
            warnings.append(&mut ctx.warnings);
            let footprint_rw = (0..nsyms)
                .filter(|&s| ctx.rule[s].in_rw_footprint())
                .map(|s| SymId(s as u32))
                .collect();
            let footprint_data = (0..nsyms)
                .filter(|&s| ctx.rule[s].may_write())
                .map(|s| SymId(s as u32))
                .collect();
            *slot = Some(RuleSummary {
                flags: ctx.rule,
                may_fail_sym: ctx.may_fail,
                may_abort_explicit: ctx.may_abort,
                footprint_rw,
                footprint_data,
            });
        }
    }
    let rules: Vec<RuleSummary> = summaries.into_iter().map(Option::unwrap).collect();

    let safe_sym: Vec<bool> = (0..nsyms)
        .map(|s| rules.iter().all(|r| !r.may_fail_sym[s]))
        .collect();

    let class: Vec<RegClass> = (0..nsyms)
        .map(|s| {
            let mut all = AbsFlags::EMPTY;
            for r in &rules {
                all = all.union(r.flags[s]);
            }
            let (r0, r1, w0, w1) = (
                all.r0.possible(),
                all.r1.possible(),
                all.w0.possible(),
                all.w1.possible(),
            );
            if !(r0 || r1 || w0 || w1) {
                RegClass::Unused
            } else if !r1 && !w1 {
                RegClass::Plain
            } else if !r0 && !w1 {
                RegClass::Wire
            } else {
                RegClass::Ehr
            }
        })
        .collect();

    Analysis {
        rules,
        cycle_flags: cycle,
        safe_sym,
        class,
        warnings,
        assumption,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::check::check;
    use crate::design::DesignBuilder;

    fn analyze_design(b: DesignBuilder) -> (crate::tir::TDesign, Analysis) {
        let td = check(&b.build()).unwrap();
        let a = analyze(&td, ScheduleAssumption::Declared);
        (td, a)
    }

    #[test]
    fn counter_register_is_safe_and_plain() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let (_, a) = analyze_design(b);
        assert_eq!(a.class, vec![RegClass::Plain]);
        assert_eq!(a.safe_sym, vec![true]);
        assert!(!a.rules[0].may_fail());
        assert!(a.warnings.is_empty());
    }

    #[test]
    fn forwarding_wire_classification() {
        let mut b = DesignBuilder::new("f");
        b.reg("w", 8, 0u64);
        b.reg("sink", 8, 0u64);
        b.rule("produce", vec![wr0("w", k(8, 1))]);
        b.rule("consume", vec![wr0("sink", rd1("w"))]);
        b.schedule(["produce", "consume"]);
        let (td, a) = analyze_design(b);
        let w = td.regs[td.reg_id("w").0 as usize].sym.0 as usize;
        assert_eq!(a.class[w], RegClass::Wire);
        // produce never fails; consume's rd1 can't fail (no w1 anywhere).
        assert!(a.safe_sym[w]);
    }

    #[test]
    fn conflicting_writes_unsafe() {
        let mut b = DesignBuilder::new("cf");
        b.reg("r", 8, 0u64);
        b.rule("w1", vec![wr0("r", k(8, 1))]);
        b.rule("w2", vec![wr0("r", k(8, 2))]);
        b.schedule(["w1", "w2"]);
        let (_, a) = analyze_design(b);
        assert!(!a.safe_sym[0]);
        assert!(!a.rules[0].may_fail(), "first writer cannot fail");
        assert!(a.rules[1].may_fail(), "second writer conflicts");
    }

    #[test]
    fn goldbergian_contraption_warns() {
        let mut b = DesignBuilder::new("g");
        b.reg("r", 8, 0u64);
        b.reg("o", 8, 0u64);
        b.rule("rl", vec![wr0("r", k(8, 1)), wr0("o", rd0("r"))]);
        let (_, a) = analyze_design(b);
        assert_eq!(a.warnings.len(), 1);
        assert!(a.warnings[0].contains("Goldbergian"));
    }

    #[test]
    fn footprints_are_minimal() {
        let mut b = DesignBuilder::new("fp");
        b.reg("a", 8, 0u64);
        b.reg("b", 8, 0u64);
        b.reg("c", 8, 0u64);
        b.rule("r", vec![wr0("a", rd0("b"))]);
        let (_, a) = analyze_design(b);
        assert_eq!(a.rules[0].footprint_rw, vec![SymId(0)]);
        assert_eq!(a.rules[0].footprint_data, vec![SymId(0)]);
    }

    #[test]
    fn branch_join_produces_maybe() {
        let mut b = DesignBuilder::new("br");
        b.reg("cond", 1, 0u64);
        b.reg("r", 8, 0u64);
        b.rule(
            "rl",
            vec![when(rd0("cond").eq(k(1, 1)), vec![wr0("r", k(8, 1))])],
        );
        let (td, a) = analyze_design(b);
        let r = td.regs[td.reg_id("r").0 as usize].sym.0 as usize;
        assert_eq!(a.rules[0].flags[r].w0, Tri::Maybe);
        assert_eq!(a.cycle_flags[r].w0, Tri::Maybe);
    }

    #[test]
    fn guarded_rule_weakens_commit_flags() {
        let mut b = DesignBuilder::new("gw");
        b.reg("go", 1, 0u64);
        b.reg("r", 8, 0u64);
        b.rule("rl", vec![guard(rd0("go").eq(k(1, 1))), wr0("r", k(8, 1))]);
        let (td, a) = analyze_design(b);
        let r = td.regs[td.reg_id("r").0 as usize].sym.0 as usize;
        assert_eq!(
            a.rules[0].flags[r].w0,
            Tri::Yes,
            "relative to a completing execution of the rule, the write is unconditional"
        );
        assert_eq!(
            a.cycle_flags[r].w0,
            Tri::Maybe,
            "but the rule may abort, so the cycle-level flag is weakened"
        );
        assert!(a.rules[0].may_abort_explicit);
    }

    #[test]
    fn any_order_is_more_conservative() {
        // Under the declared schedule "produce; consume", producing wr0 before
        // consuming rd1 can never fail. Under AnyOrder, consume might run
        // first and a *subsequent* produce-write0 would conflict with its r1.
        let mut b = DesignBuilder::new("ao");
        b.reg("w", 8, 0u64);
        b.reg("sink", 8, 0u64);
        b.rule("produce", vec![wr0("w", k(8, 1))]);
        b.rule("consume", vec![wr0("sink", rd1("w"))]);
        b.schedule(["produce", "consume"]);
        let td = check(&{
            let mut bb = DesignBuilder::new("ao");
            bb.reg("w", 8, 0u64);
            bb.reg("sink", 8, 0u64);
            bb.rule("produce", vec![wr0("w", k(8, 1))]);
            bb.rule("consume", vec![wr0("sink", rd1("w"))]);
            bb.schedule(["produce", "consume"]);
            bb.build()
        })
        .unwrap();
        let decl = analyze(&td, ScheduleAssumption::Declared);
        let any = analyze(&td, ScheduleAssumption::AnyOrder);
        let w = 0usize;
        assert!(decl.safe_sym[w]);
        assert!(!any.safe_sym[w]);
    }

    #[test]
    fn array_ops_touch_whole_symbol() {
        let mut b = DesignBuilder::new("arr");
        b.array("t", 8, 4, 0u64);
        b.reg("i", 2, 0u64);
        b.rule("rl", vec![wr0a("t", rd0("i"), k(8, 1))]);
        let (_, a) = analyze_design(b);
        assert_eq!(a.rules[0].footprint_data, vec![SymId(0)]);
        assert_eq!(a.class[0], RegClass::Plain);
    }
}
