//! Fixed-width bit vectors, the value domain of Kôika designs.
//!
//! Every value flowing through a Kôika design has a statically-known width.
//! [`Bits`] stores such a value for any width: widths of 64 bits or fewer are
//! kept inline in a single machine word (the fast path used by every design in
//! this repository), wider values fall back to a boxed little-endian word
//! array.
//!
//! The u64 fast-path arithmetic lives in the [`word`] submodule so that the
//! optimized Cuttlesim VM and the RTL netlist simulator can share it without
//! constructing `Bits` values.
//!
//! # Examples
//!
//! ```
//! use koika::bits::Bits;
//!
//! let a = Bits::new(8, 0xf0u64);
//! let b = Bits::new(8, 0x0fu64);
//! assert_eq!(a.or(&b), Bits::new(8, 0xffu64));
//! assert_eq!(a.add(&b), Bits::new(8, 0xffu64));
//! assert_eq!(Bits::new(8, 0xffu64).add(&Bits::new(8, 1u64)), Bits::zero(8));
//! ```

use std::fmt;

/// Truncated-width arithmetic on single `u64` words.
///
/// All functions assume (and preserve) the invariant that operands are
/// already masked to `width` bits, with `1 <= width <= 64`.
pub mod word {
    /// Bit mask with the low `width` bits set. `width` must be in `1..=64`.
    #[inline(always)]
    pub fn mask(width: u32) -> u64 {
        debug_assert!((1..=64).contains(&width));
        u64::MAX >> (64 - width)
    }

    /// Wrapping addition truncated to `width` bits.
    #[inline(always)]
    pub fn add(width: u32, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & mask(width)
    }

    /// Wrapping subtraction truncated to `width` bits.
    #[inline(always)]
    pub fn sub(width: u32, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & mask(width)
    }

    /// Wrapping multiplication truncated to `width` bits.
    #[inline(always)]
    pub fn mul(width: u32, a: u64, b: u64) -> u64 {
        a.wrapping_mul(b) & mask(width)
    }

    /// Logical left shift; shift amounts `>= width` yield zero.
    #[inline(always)]
    pub fn shl(width: u32, a: u64, sh: u64) -> u64 {
        if sh >= 64 {
            0
        } else {
            (a << sh) & mask(width)
        }
    }

    /// Logical right shift; shift amounts `>= width` yield zero.
    #[inline(always)]
    pub fn shr(_width: u32, a: u64, sh: u64) -> u64 {
        if sh >= 64 {
            0
        } else {
            a >> sh
        }
    }

    /// Arithmetic right shift on a `width`-bit value.
    ///
    /// A width of 0 yields 0 (a zero-width value has no bits to shift); this
    /// edge is unreachable from checked designs but reachable through fused
    /// VM ops carrying a zero mask, so it must not underflow.
    #[inline(always)]
    pub fn sra(width: u32, a: u64, sh: u64) -> u64 {
        if width == 0 {
            return 0;
        }
        let sh = sh.min(width as u64 - 1) as u32;
        let signed = sext(width, a) as i64;
        ((signed >> sh) as u64) & mask(width)
    }

    /// Sign-extend a `width`-bit value to the full 64-bit word.
    ///
    /// Widths of 0 (no sign bit to extend) and of 64 or more (nothing left
    /// to extend into) both leave the value as-is modulo masking: 0 for
    /// width 0, `a` unchanged otherwise.
    #[inline(always)]
    pub fn sext(width: u32, a: u64) -> u64 {
        if width == 0 {
            0
        } else if width >= 64 {
            a
        } else {
            let shift = 64 - width;
            (((a << shift) as i64) >> shift) as u64
        }
    }

    /// Concatenation `{a, b}` where `b` is the `low_width`-bit low half:
    /// `a` shifted above `b`. A `low_width` of 64 or more means the high
    /// half is zero-width, so the result is just `b` — shifting by the full
    /// word width would overflow. Callers mask the result to the combined
    /// width.
    #[inline(always)]
    pub fn concat(low_width: u32, a: u64, b: u64) -> u64 {
        if low_width >= 64 {
            b
        } else {
            (a << low_width) | b
        }
    }

    /// Unsigned less-than as a 1-bit value.
    #[inline(always)]
    pub fn ult(a: u64, b: u64) -> u64 {
        (a < b) as u64
    }

    /// Signed less-than of two `width`-bit values, as a 1-bit value.
    #[inline(always)]
    pub fn slt(width: u32, a: u64, b: u64) -> u64 {
        ((sext(width, a) as i64) < (sext(width, b) as i64)) as u64
    }

    /// Extract `out_width` bits starting at bit `lo`.
    #[inline(always)]
    pub fn slice(a: u64, lo: u32, out_width: u32) -> u64 {
        if lo >= 64 {
            0
        } else {
            (a >> lo) & mask(out_width)
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Widths `1..=64`, value masked to the width.
    Small(u64),
    /// Widths `> 64`; little-endian word array of length `ceil(width / 64)`,
    /// with unused high bits of the last word zeroed.
    Wide(Box<[u64]>),
}

/// A fixed-width bit vector.
///
/// `Bits` is the runtime value type of the Kôika reference interpreter and of
/// register initial values. Two `Bits` are equal iff they have the same width
/// and the same contents.
///
/// # Panics
///
/// Binary operations panic when operand widths differ; constructing a `Bits`
/// of width 0 panics. These are design bugs, caught eagerly.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    repr: Repr,
}

impl Bits {
    /// Creates a `width`-bit value from anything convertible to `u128`,
    /// truncating to the width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32, value: impl Into<u128>) -> Self {
        assert!(width > 0, "zero-width Bits are not representable");
        let v: u128 = value.into();
        if width <= 64 {
            Bits {
                width,
                repr: Repr::Small(v as u64 & word::mask(width)),
            }
        } else {
            let nwords = Self::nwords(width);
            let mut words = vec![0u64; nwords];
            words[0] = v as u64;
            if nwords > 1 {
                words[1] = (v >> 64) as u64;
            }
            let mut b = Bits {
                width,
                repr: Repr::Wide(words.into_boxed_slice()),
            };
            b.normalize();
            b
        }
    }

    /// The all-zeros value of the given width.
    pub fn zero(width: u32) -> Self {
        Bits::new(width, 0u64)
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        Bits::zero(width).not()
    }

    /// Creates a value from little-endian 64-bit words, truncating to `width`.
    pub fn from_words(width: u32, words: &[u64]) -> Self {
        assert!(width > 0, "zero-width Bits are not representable");
        if width <= 64 {
            let w = words.first().copied().unwrap_or(0);
            Bits::new(width, w)
        } else {
            let nwords = Self::nwords(width);
            let mut v = vec![0u64; nwords];
            for (dst, src) in v.iter_mut().zip(words.iter()) {
                *dst = *src;
            }
            let mut b = Bits {
                width,
                repr: Repr::Wide(v.into_boxed_slice()),
            };
            b.normalize();
            b
        }
    }

    fn nwords(width: u32) -> usize {
        width.div_ceil(64) as usize
    }

    fn normalize(&mut self) {
        if let Repr::Wide(words) = &mut self.repr {
            let rem = self.width % 64;
            if rem != 0 {
                let last = words.len() - 1;
                words[last] &= word::mask(rem);
            }
        }
    }

    /// The width of this value in bits. Always at least 1.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The value as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64 bits and any high bit is set.
    pub fn to_u64(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => *v,
            Repr::Wide(words) => {
                assert!(
                    words[1..].iter().all(|w| *w == 0),
                    "Bits value of width {} does not fit in u64",
                    self.width
                );
                words[0]
            }
        }
    }

    /// The low 64 bits of the value, regardless of width.
    pub fn low_u64(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => *v,
            Repr::Wide(words) => words[0],
        }
    }

    /// The value as a `u128`, if it fits.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 128 bits and any high bit is set.
    pub fn to_u128(&self) -> u128 {
        match &self.repr {
            Repr::Small(v) => *v as u128,
            Repr::Wide(words) => {
                assert!(
                    words[2..].iter().all(|w| *w == 0),
                    "Bits value of width {} does not fit in u128",
                    self.width
                );
                words[0] as u128 | (words.get(1).copied().unwrap_or(0) as u128) << 64
            }
        }
    }

    /// True iff every bit is zero.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => *v == 0,
            Repr::Wide(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// The little-endian word view of the value.
    pub fn words(&self) -> Vec<u64> {
        match &self.repr {
            Repr::Small(v) => vec![*v],
            Repr::Wide(words) => words.to_vec(),
        }
    }

    /// Reads bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        match &self.repr {
            Repr::Small(v) => (v >> i) & 1 == 1,
            Repr::Wide(words) => (words[(i / 64) as usize] >> (i % 64)) & 1 == 1,
        }
    }

    fn check_same_width(&self, other: &Bits, op: &str) {
        assert_eq!(
            self.width, other.width,
            "width mismatch in Bits::{op}: {} vs {}",
            self.width, other.width
        );
    }

    fn zip_words(&self, other: &Bits, f: impl Fn(u64, u64) -> u64) -> Bits {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => Bits {
                width: self.width,
                repr: Repr::Small(f(*a, *b) & word::mask(self.width)),
            },
            (Repr::Wide(a), Repr::Wide(b)) => {
                let words: Vec<u64> = a.iter().zip(b.iter()).map(|(x, y)| f(*x, *y)).collect();
                let mut r = Bits {
                    width: self.width,
                    repr: Repr::Wide(words.into_boxed_slice()),
                };
                r.normalize();
                r
            }
            _ => unreachable!("same width implies same repr"),
        }
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "and");
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "or");
        self.zip_words(other, |a, b| a | b)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "xor");
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise complement.
    pub fn not(&self) -> Bits {
        match &self.repr {
            Repr::Small(v) => Bits {
                width: self.width,
                repr: Repr::Small(!v & word::mask(self.width)),
            },
            Repr::Wide(words) => {
                let w: Vec<u64> = words.iter().map(|x| !x).collect();
                let mut r = Bits {
                    width: self.width,
                    repr: Repr::Wide(w.into_boxed_slice()),
                };
                r.normalize();
                r
            }
        }
    }

    /// Wrapping addition. Panics on width mismatch.
    pub fn add(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "add");
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => Bits {
                width: self.width,
                repr: Repr::Small(word::add(self.width, *a, *b)),
            },
            (Repr::Wide(a), Repr::Wide(b)) => {
                let mut carry = 0u64;
                let words: Vec<u64> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| {
                        let (s1, c1) = x.overflowing_add(*y);
                        let (s2, c2) = s1.overflowing_add(carry);
                        carry = (c1 | c2) as u64;
                        s2
                    })
                    .collect();
                let mut r = Bits {
                    width: self.width,
                    repr: Repr::Wide(words.into_boxed_slice()),
                };
                r.normalize();
                r
            }
            _ => unreachable!(),
        }
    }

    /// Wrapping negation (two's complement).
    pub fn neg(&self) -> Bits {
        self.not().add(&Bits::new(self.width, 1u64))
    }

    /// Wrapping subtraction. Panics on width mismatch.
    pub fn sub(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "sub");
        self.add(&other.neg())
    }

    /// Wrapping multiplication, truncated to the operand width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, or on widths above 128 bits (not needed by
    /// any design in this repository).
    pub fn mul(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "mul");
        if self.width <= 64 {
            Bits::new(
                self.width,
                word::mul(self.width, self.to_u64(), other.to_u64()),
            )
        } else {
            assert!(self.width <= 128, "mul unsupported above 128 bits");
            let p = self.to_u128().wrapping_mul(other.to_u128());
            Bits::new(self.width, p)
        }
    }

    /// Logical shift left by a dynamic amount.
    pub fn shl(&self, amount: u64) -> Bits {
        if self.width <= 64 {
            Bits::new(self.width, word::shl(self.width, self.to_u64(), amount))
        } else {
            let mut out = vec![0u64; Self::nwords(self.width)];
            let words = self.words();
            let word_sh = (amount / 64) as usize;
            let bit_sh = (amount % 64) as u32;
            for (i, w) in words.iter().enumerate() {
                let dst = i + word_sh;
                if dst < out.len() {
                    out[dst] |= w << bit_sh;
                    if bit_sh > 0 && dst + 1 < out.len() {
                        out[dst + 1] |= w >> (64 - bit_sh);
                    }
                }
            }
            Bits::from_words(self.width, &out)
        }
    }

    /// Logical shift right by a dynamic amount.
    pub fn shr(&self, amount: u64) -> Bits {
        if self.width <= 64 {
            Bits::new(self.width, word::shr(self.width, self.to_u64(), amount))
        } else {
            let words = self.words();
            let mut out = vec![0u64; words.len()];
            let word_sh = (amount / 64) as usize;
            let bit_sh = (amount % 64) as u32;
            for (i, o) in out.iter_mut().enumerate() {
                let src = i + word_sh;
                if src < words.len() {
                    *o |= words[src] >> bit_sh;
                    if bit_sh > 0 && src + 1 < words.len() {
                        *o |= words[src + 1] << (64 - bit_sh);
                    }
                }
            }
            Bits::from_words(self.width, &out)
        }
    }

    /// Arithmetic shift right by a dynamic amount.
    pub fn sra(&self, amount: u64) -> Bits {
        let sign = self.bit(self.width - 1);
        let shifted = self.shr(amount);
        if !sign {
            return shifted;
        }
        let fill = amount.min(self.width as u64) as u32;
        let ones = if fill == 0 {
            return shifted;
        } else {
            Bits::ones(fill)
        };
        let hi = ones.shl(0); // width `fill` ones
        let hi_ext = hi.zext(self.width).shl((self.width - fill) as u64);
        shifted.or(&hi_ext)
    }

    /// Unsigned comparison, returned as a 1-bit value.
    pub fn ult(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "ult");
        let lt = match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a < b,
            (Repr::Wide(a), Repr::Wide(b)) => {
                let mut r = false;
                for (x, y) in a.iter().zip(b.iter()).rev() {
                    if x != y {
                        r = x < y;
                        break;
                    }
                }
                r
            }
            _ => unreachable!(),
        };
        Bits::new(1, lt as u64)
    }

    /// Signed comparison, returned as a 1-bit value.
    pub fn slt(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "slt");
        let (sa, sb) = (self.bit(self.width - 1), other.bit(other.width - 1));
        if sa != sb {
            Bits::new(1, sa as u64) // negative < positive
        } else {
            self.ult(other)
        }
    }

    /// Equality, returned as a 1-bit value.
    pub fn eq_bits(&self, other: &Bits) -> Bits {
        self.check_same_width(other, "eq");
        Bits::new(1, (self == other) as u64)
    }

    /// Extracts `out_width` bits starting at bit `lo`.
    ///
    /// Bits beyond the source width read as zero, matching hardware
    /// zero-extension of out-of-range slices.
    pub fn slice(&self, lo: u32, out_width: u32) -> Bits {
        assert!(out_width > 0, "zero-width slice");
        let shifted = self.shr(lo as u64);
        let mut words = shifted.words();
        words.truncate(Self::nwords(out_width).max(1));
        Bits::from_words(out_width, &words)
    }

    /// Zero-extends (or truncates) to `new_width`.
    pub fn zext(&self, new_width: u32) -> Bits {
        Bits::from_words(new_width, &self.words())
    }

    /// Sign-extends to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is smaller than the current width.
    pub fn sext(&self, new_width: u32) -> Bits {
        assert!(
            new_width >= self.width,
            "sext target {new_width} narrower than {}",
            self.width
        );
        if !self.bit(self.width - 1) {
            return self.zext(new_width);
        }
        let ext = new_width - self.width;
        if ext == 0 {
            return self.clone();
        }
        let hi = Bits::ones(ext).zext(new_width).shl(self.width as u64);
        self.zext(new_width).or(&hi)
    }

    /// Concatenation: `self` provides the high bits, `low` the low bits,
    /// matching Verilog's `{self, low}`.
    pub fn concat(&self, low: &Bits) -> Bits {
        let w = self.width + low.width;
        self.zext(w).shl(low.width as u64).or(&low.zext(w))
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h", self.width)?;
        let words = self.words();
        let mut started = false;
        for w in words.iter().rev() {
            if started {
                write!(f, "{w:016x}")?;
            } else if *w != 0 || words.len() == 1 {
                write!(f, "{w:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width <= 64 {
            fmt::LowerHex::fmt(&self.to_u64(), f)
        } else {
            fmt::Debug::fmt(self, f)
        }
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        Ok(())
    }
}

impl From<bool> for Bits {
    fn from(b: bool) -> Self {
        Bits::new(1, b as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_roundtrip_masks() {
        assert_eq!(Bits::new(8, 0x1ffu64).to_u64(), 0xff);
        assert_eq!(Bits::new(64, u64::MAX).to_u64(), u64::MAX);
        assert_eq!(Bits::new(1, 3u64).to_u64(), 1);
    }

    #[test]
    fn wide_roundtrip() {
        let b = Bits::new(100, u128::MAX);
        assert_eq!(b.to_u128(), u128::MAX >> 28);
    }

    #[test]
    fn add_wraps() {
        let a = Bits::new(4, 0xfu64);
        assert_eq!(a.add(&Bits::new(4, 1u64)), Bits::zero(4));
        let w = Bits::new(128, u128::MAX);
        assert_eq!(w.add(&Bits::new(128, 1u64)), Bits::zero(128));
    }

    #[test]
    fn sub_and_neg() {
        let a = Bits::new(8, 5u64);
        let b = Bits::new(8, 7u64);
        assert_eq!(a.sub(&b).to_u64(), 0xfe);
        assert_eq!(Bits::new(8, 1u64).neg().to_u64(), 0xff);
    }

    #[test]
    fn shifts() {
        let a = Bits::new(8, 0b1001u64);
        assert_eq!(a.shl(2).to_u64(), 0b100100);
        assert_eq!(a.shr(2).to_u64(), 0b10);
        assert_eq!(a.shl(100).to_u64(), 0);
        let neg = Bits::new(8, 0x80u64);
        assert_eq!(neg.sra(3).to_u64(), 0xf0);
        assert_eq!(Bits::new(8, 0x40u64).sra(3).to_u64(), 0x08);
    }

    #[test]
    fn wide_shifts_match_u128() {
        for sh in [0u64, 1, 17, 63, 64, 65, 100, 127] {
            let v: u128 = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
            let b = Bits::new(128, v);
            assert_eq!(b.shl(sh).to_u128(), v << sh.min(127), "shl {sh}");
            assert_eq!(b.shr(sh).to_u128(), v >> sh.min(127), "shr {sh}");
        }
    }

    #[test]
    fn comparisons() {
        let a = Bits::new(8, 0x80u64); // -128 signed
        let b = Bits::new(8, 1u64);
        assert_eq!(a.ult(&b).to_u64(), 0);
        assert_eq!(a.slt(&b).to_u64(), 1);
        assert_eq!(a.eq_bits(&a).to_u64(), 1);
        assert_eq!(a.eq_bits(&b).to_u64(), 0);
    }

    #[test]
    fn slice_concat_ext() {
        let a = Bits::new(16, 0xabcdu64);
        assert_eq!(a.slice(4, 8).to_u64(), 0xbc);
        assert_eq!(a.slice(12, 8).to_u64(), 0x0a); // zero-fill past the top
        assert_eq!(a.zext(32).to_u64(), 0xabcd);
        assert_eq!(a.sext(32).to_u64(), 0xffff_abcd);
        let hi = Bits::new(4, 0xfu64);
        assert_eq!(hi.concat(&a).to_u64(), 0xfabcd);
        assert_eq!(hi.concat(&a).width(), 20);
    }

    #[test]
    fn bit_indexing_wide() {
        let b = Bits::new(65, 1u128 << 64);
        assert!(b.bit(64));
        assert!(!b.bit(0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let _ = Bits::new(8, 1u64).add(&Bits::new(9, 1u64));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bits::new(8, 0xabu64)), "8'hab");
        assert_eq!(format!("{:b}", Bits::new(4, 0b1010u64)), "1010");
    }

    /// Regression: `word::sra` used to compute `width as u64 - 1`, which
    /// underflows (debug panic) at width 0 — reachable through fused VM ops
    /// with a zero mask. `sext`'s `64 - width` shift had the same edge.
    #[test]
    fn word_helpers_tolerate_width_zero() {
        for sh in [0u64, 1, 3, 63, 64, 100] {
            assert_eq!(word::sra(0, 0, sh), 0, "sra width 0 sh {sh}");
        }
        assert_eq!(word::sext(0, 0), 0);
        assert_eq!(word::sext(0, u64::MAX), 0);
        // slt reaches sext with the same width; both operands of a
        // zero-width value are 0, so the comparison is always false.
        assert_eq!(word::slt(0, 0, 0), 0);
    }

    /// Pins every `word::` helper at the width-64 boundary, where the
    /// `64 - width` / `1 << width` idioms are most fragile.
    #[test]
    fn word_helpers_at_width_64() {
        assert_eq!(word::mask(64), u64::MAX);
        assert_eq!(word::add(64, u64::MAX, 1), 0);
        assert_eq!(word::sub(64, 0, 1), u64::MAX);
        assert_eq!(word::mul(64, u64::MAX, 2), u64::MAX - 1);
        assert_eq!(word::shl(64, 1, 63), 1 << 63);
        assert_eq!(word::shl(64, 1, 64), 0);
        assert_eq!(word::shr(64, u64::MAX, 63), 1);
        assert_eq!(word::shr(64, u64::MAX, 64), 0);
        assert_eq!(word::sra(64, 1 << 63, 63), u64::MAX);
        assert_eq!(word::sra(64, 1 << 63, 200), u64::MAX, "shift clamps to width-1");
        assert_eq!(word::sext(64, u64::MAX), u64::MAX);
        assert_eq!(word::sext(100, 7), 7, "widths above 64 leave the word alone");
        assert_eq!(word::slt(64, u64::MAX, 0), 1);
        assert_eq!(word::slice(u64::MAX, 63, 1), 1);
        assert_eq!(word::slice(u64::MAX, 64, 1), 0);
    }

    /// Regression: the concat lowerings used to compute `(a << low_width) | b`
    /// unconditionally, panicking in debug at `low_width == 64` (a
    /// zero-width high half).
    #[test]
    fn word_concat_boundaries() {
        assert_eq!(word::concat(4, 0xa, 0x5), 0xa5);
        assert_eq!(word::concat(0, 0xa, 0), 0xa, "zero-width low half");
        assert_eq!(word::concat(63, 1, 5), (1 << 63) | 5);
        assert_eq!(word::concat(64, 0xdead, 5), 5, "zero-width high half");
        assert_eq!(word::concat(100, 0xdead, 5), 5);
    }

    #[test]
    fn word_helpers_match_bits() {
        for w in [1u32, 5, 31, 32, 63, 64] {
            for a in [0u64, 1, 0x5555_5555_5555_5555, u64::MAX] {
                for b in [0u64, 3, 0xffff_0000, u64::MAX] {
                    let (ba, bb) = (Bits::new(w, a), Bits::new(w, b));
                    let (ma, mb) = (ba.to_u64(), bb.to_u64());
                    assert_eq!(word::add(w, ma, mb), ba.add(&bb).to_u64());
                    assert_eq!(word::sub(w, ma, mb), ba.sub(&bb).to_u64());
                    assert_eq!(word::mul(w, ma, mb), ba.mul(&bb).to_u64());
                    assert_eq!(word::ult(ma, mb), ba.ult(&bb).to_u64());
                    assert_eq!(word::slt(w, ma, mb), ba.slt(&bb).to_u64());
                    assert_eq!(word::sra(w, ma, 3), ba.sra(3).to_u64());
                }
            }
        }
    }
}
