//! A crash-isolated parallel job runner: the throughput-and-fault-tolerance
//! substrate under fault-injection campaigns and differential fuzzing.
//!
//! The paper's case study 2 (§4) leans on randomized functional verification
//! at scale; campaign members and fuzz seeds are embarrassingly parallel, so
//! the same mechanism buys both speed and containment:
//!
//! * **Fixed worker pool** — `jobs` OS threads ([`std::thread::scope`], no
//!   dependencies) pull job indices from a shared atomic counter, so a slow
//!   job never blocks the queue behind it.
//! * **Panic containment** — every job attempt runs under
//!   [`std::panic::catch_unwind`]; a panicking job becomes a
//!   [`JobError::Panic`] carrying the panic message while every other job
//!   keeps running. The default panic hook is silenced *only* on the
//!   panicking runner thread, so unrelated panics elsewhere in the process
//!   still print normally.
//! * **Retry with exponential backoff** — a job that fails with
//!   [`JobError::Transient`] (e.g. a wall-clock watchdog trip on a loaded
//!   machine) is retried up to [`RunnerConfig::max_retries`] times with
//!   exponentially growing sleeps. Deterministic failures
//!   ([`JobError::Fatal`]) and panics are **not** retried: re-running them
//!   can only reproduce the same result more slowly.
//! * **Deterministic results** — reports come back ordered by job index
//!   regardless of which worker finished first, so anything rendered from
//!   them is byte-identical across `jobs` values.
//!
//! The runner is generic: a job is any `Fn(usize) -> Result<T, JobError> +
//! Sync` closure. [`crate::fault::run_campaign_parallel`] builds campaign
//! members on top of it; the workspace's fuzz harness builds differential
//! seeds the same way.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

/// Worker-pool shape and retry policy.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads. `1` (the default) runs jobs inline on the calling
    /// thread — same containment and retry behavior, no thread overhead.
    pub jobs: usize,
    /// Retries granted to a job failing with [`JobError::Transient`].
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff * 2^(k-1)`, capped at 2 s,
    /// jittered deterministically by `seed` and the job index (see
    /// [`RunnerConfig::seed`]).
    pub backoff: Duration,
    /// Seed for retry-backoff jitter. Many jobs tripping a wall budget at
    /// once (e.g. server sessions on a briefly-overloaded machine) would
    /// otherwise sleep identical delays and retry in lock-step; jitter
    /// spreads them out. The jitter is a pure function of
    /// `(seed, job index, attempt)`, so a fixed seed keeps runs
    /// byte-identical.
    pub seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            jobs: 1,
            max_retries: 2,
            backoff: Duration::from_millis(25),
            seed: 0,
        }
    }
}

impl RunnerConfig {
    /// A config with the given worker count and default retry policy.
    pub fn with_jobs(jobs: usize) -> Self {
        RunnerConfig {
            jobs,
            ..RunnerConfig::default()
        }
    }
}

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload is the panic message. Deterministic —
    /// never retried.
    Panic(String),
    /// An environment-dependent failure (wall-clock deadline on a loaded
    /// machine, resource exhaustion). Retried per policy; this is the final
    /// error only once retries are exhausted.
    Transient(String),
    /// A deterministic failure the job itself reported. Never retried.
    Fatal(String),
}

impl JobError {
    /// Short class label: `panic`, `transient`, or `fatal`.
    pub fn label(&self) -> &'static str {
        match self {
            JobError::Panic(_) => "panic",
            JobError::Transient(_) => "transient",
            JobError::Fatal(_) => "fatal",
        }
    }

    /// The human-readable message carried by any variant.
    pub fn message(&self) -> &str {
        match self {
            JobError::Panic(m) | JobError::Transient(m) | JobError::Fatal(m) => m,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.label(), self.message())
    }
}

/// One job's final verdict, after containment and any retries.
#[derive(Debug)]
pub struct JobReport<T> {
    /// The job's index in `0..total`.
    pub index: usize,
    /// Attempts consumed (1 = succeeded or failed on the first try).
    pub attempts: u32,
    /// The job's value, or why it has none.
    pub result: Result<T, JobError>,
}

/// A progress event, delivered on the *calling* thread (so the callback
/// needs no synchronization).
#[derive(Debug, Clone)]
pub enum JobUpdate {
    /// A job committed its final verdict.
    Finished {
        /// Job index.
        index: usize,
        /// Attempts consumed.
        attempts: u32,
        /// True when the final verdict is a contained panic.
        panicked: bool,
        /// Jobs finished so far, including this one.
        done: usize,
        /// Total jobs in this run.
        total: usize,
    },
    /// A job failed transiently and is backing off before another attempt.
    Retrying {
        /// Job index.
        index: usize,
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// The transient failure message.
        reason: String,
    },
}

/// Aggregate counters for one [`run_jobs`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Jobs submitted.
    pub total: usize,
    /// Jobs that returned `Ok`.
    pub succeeded: usize,
    /// Jobs whose final verdict was a contained panic.
    pub panics_contained: usize,
    /// Retry attempts consumed across all jobs (machine-dependent: only
    /// transient failures retry).
    pub retries: u64,
}

thread_local! {
    /// True while this thread is executing a contained job attempt; the
    /// process-global panic hook consults it to stay quiet for contained
    /// panics only.
    static CONTAINING: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that forwards to the previous
/// hook unless the panicking thread is inside a contained job attempt.
fn install_containment_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINING.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panics contained: `Err(message)` instead of unwinding
/// further, and nothing printed by the default panic hook.
///
/// This is the single-closure form of the containment the runner applies to
/// every job attempt; harnesses use it to attribute panics to a specific
/// backend *inside* a job.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_containment_hook();
    let was = CONTAINING.with(|c| c.replace(true));
    let caught = catch_unwind(AssertUnwindSafe(f));
    CONTAINING.with(|c| c.set(was));
    caught.map_err(|payload| panic_message(&*payload))
}

/// SplitMix64 step: a cheap, well-mixed hash used to derive jitter from
/// `(seed, index, attempt)` without any shared RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn backoff_delay(base: Duration, failed_attempt: u32, seed: u64, index: usize) -> Duration {
    let exp = base.saturating_mul(1u32 << failed_attempt.saturating_sub(1).min(6));
    let exp = exp.min(Duration::from_secs(2));
    // Jitter into [exp/2, exp): deterministic per (seed, index, attempt) so
    // simultaneous retries de-synchronize but a fixed seed stays
    // reproducible.
    let h = splitmix64(
        seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ ((failed_attempt as u64) << 32),
    );
    let half = exp / 2;
    let span = exp.saturating_sub(half).as_nanos() as u64;
    if span == 0 {
        return exp;
    }
    half + Duration::from_nanos(h % span)
}

/// Runs one job to its final verdict: containment around every attempt,
/// retry with backoff on transient failures.
fn run_one<T>(
    job: &(impl Fn(usize) -> Result<T, JobError> + Sync),
    index: usize,
    cfg: &RunnerConfig,
    mut on_retry: impl FnMut(u32, &str),
) -> JobReport<T> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = match contain(|| job(index)) {
            Ok(r) => r,
            Err(msg) => Err(JobError::Panic(msg)),
        };
        match result {
            Err(JobError::Transient(reason)) if attempts <= cfg.max_retries => {
                on_retry(attempts, &reason);
                std::thread::sleep(backoff_delay(cfg.backoff, attempts, cfg.seed, index));
            }
            result => {
                return JobReport {
                    index,
                    attempts,
                    result,
                }
            }
        }
    }
}

enum WorkerMsg<T> {
    Done(JobReport<T>),
    Retry { index: usize, attempt: u32, reason: String },
}

/// Executes jobs `0..total` on a fixed worker pool and returns their
/// reports **ordered by index**, plus aggregate stats.
///
/// Every attempt runs under panic containment; transient failures retry
/// with exponential backoff; progress events fire on the calling thread as
/// verdicts arrive (in completion order — only the returned reports are
/// index-ordered).
///
/// The results are a pure function of the job closure: worker count and
/// scheduling affect wall-clock time and the interleaving of progress
/// events, never the returned reports.
pub fn run_jobs<T, F>(
    total: usize,
    cfg: &RunnerConfig,
    job: F,
    mut progress: Option<&mut dyn FnMut(JobUpdate)>,
) -> (Vec<JobReport<T>>, RunnerStats)
where
    T: Send,
    F: Fn(usize) -> Result<T, JobError> + Sync,
{
    install_containment_hook();
    let mut stats = RunnerStats {
        total,
        ..RunnerStats::default()
    };
    let mut slots: Vec<Option<JobReport<T>>> = (0..total).map(|_| None).collect();
    let workers = cfg.jobs.max(1).min(total.max(1));

    let mut finish = |report: JobReport<T>,
                      done: usize,
                      stats: &mut RunnerStats,
                      progress: &mut Option<&mut dyn FnMut(JobUpdate)>|
     -> (usize, bool) {
        let panicked = matches!(report.result, Err(JobError::Panic(_)));
        stats.succeeded += report.result.is_ok() as usize;
        stats.panics_contained += panicked as usize;
        let update = JobUpdate::Finished {
            index: report.index,
            attempts: report.attempts,
            panicked,
            done: done + 1,
            total,
        };
        let index = report.index;
        if index < total {
            slots[index] = Some(report);
        }
        if let Some(p) = progress.as_deref_mut() {
            p(update);
        }
        (done + 1, panicked)
    };

    if workers <= 1 {
        let mut done = 0;
        for index in 0..total {
            let mut retries = 0u64;
            let mut retry_updates: Vec<JobUpdate> = Vec::new();
            let report = run_one(&job, index, cfg, |attempt, reason| {
                retries += 1;
                retry_updates.push(JobUpdate::Retrying {
                    index,
                    attempt,
                    reason: reason.to_string(),
                });
            });
            stats.retries += retries;
            if let Some(p) = progress.as_deref_mut() {
                for u in retry_updates {
                    p(u);
                }
            }
            (done, _) = finish(report, done, &mut stats, &mut progress);
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<WorkerMsg<T>>();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let job = &job;
                s.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let report = run_one(job, index, cfg, |attempt, reason| {
                        let _ = tx.send(WorkerMsg::Retry {
                            index,
                            attempt,
                            reason: reason.to_string(),
                        });
                    });
                    if tx.send(WorkerMsg::Done(report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut done = 0;
            while done < total {
                match rx.recv() {
                    Ok(WorkerMsg::Done(report)) => {
                        (done, _) = finish(report, done, &mut stats, &mut progress);
                    }
                    Ok(WorkerMsg::Retry { index, attempt, reason }) => {
                        stats.retries += 1;
                        if let Some(p) = progress.as_deref_mut() {
                            p(JobUpdate::Retrying { index, attempt, reason });
                        }
                    }
                    // All senders gone with jobs missing: workers died in a
                    // way containment could not catch. Fill below.
                    Err(_) => break,
                }
            }
        });
    }

    let reports: Vec<JobReport<T>> = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or(JobReport {
                index,
                attempts: 0,
                result: Err(JobError::Fatal("job result lost (worker died)".into())),
            })
        })
        .collect();
    (reports, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_index_order_at_any_width() {
        for jobs in [1, 2, 8, 33] {
            let cfg = RunnerConfig::with_jobs(jobs);
            let (reports, stats) =
                run_jobs(17, &cfg, |i| Ok::<usize, JobError>(i * i), None);
            assert_eq!(reports.len(), 17);
            for (i, r) in reports.iter().enumerate() {
                assert_eq!(r.index, i);
                assert_eq!(r.result.as_ref().unwrap(), &(i * i));
                assert_eq!(r.attempts, 1);
            }
            assert_eq!(stats.succeeded, 17);
            assert_eq!(stats.panics_contained, 0);
        }
    }

    #[test]
    fn panics_are_contained_and_attributed() {
        let cfg = RunnerConfig::with_jobs(4);
        let (reports, stats) = run_jobs(
            8,
            &cfg,
            |i| {
                if i == 3 {
                    panic!("boom at {i}");
                }
                Ok::<usize, JobError>(i)
            },
            None,
        );
        assert_eq!(stats.panics_contained, 1);
        assert_eq!(stats.succeeded, 7);
        match &reports[3].result {
            Err(JobError::Panic(msg)) => assert_eq!(msg, "boom at 3"),
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(reports[3].attempts, 1, "panics are not retried");
    }

    #[test]
    fn transient_failures_retry_and_then_stick() {
        let cfg = RunnerConfig {
            jobs: 2,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        };
        let attempts = [AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)];
        let (reports, stats) = run_jobs(
            3,
            &cfg,
            |i| {
                let n = attempts[i].fetch_add(1, Ordering::SeqCst) + 1;
                match i {
                    // Succeeds on the second attempt.
                    0 if n < 2 => Err(JobError::Transient("warming up".into())),
                    // Never succeeds: exhausts retries.
                    1 => Err(JobError::Transient("always flaky".into())),
                    // Deterministic failure: must not be retried.
                    2 => Err(JobError::Fatal("broken".into())),
                    _ => Ok(i),
                }
            },
            None,
        );
        assert_eq!(reports[0].result.as_ref().unwrap(), &0);
        assert_eq!(reports[0].attempts, 2);
        assert!(matches!(reports[1].result, Err(JobError::Transient(_))));
        assert_eq!(reports[1].attempts, 3, "initial + max_retries");
        assert!(matches!(reports[2].result, Err(JobError::Fatal(_))));
        assert_eq!(reports[2].attempts, 1);
        assert_eq!(stats.retries, 1 + 2);
    }

    #[test]
    fn progress_reports_every_finish_exactly_once() {
        let cfg = RunnerConfig::with_jobs(4);
        let mut seen = Vec::new();
        let mut cb = |u: JobUpdate| {
            if let JobUpdate::Finished { index, done, total, .. } = u {
                assert_eq!(total, 9);
                assert!((1..=9).contains(&done));
                seen.push(index);
            }
        };
        let (_, stats) = run_jobs(9, &cfg, Ok::<usize, JobError>, Some(&mut cb));
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
        assert_eq!(stats.total, 9);
    }

    #[test]
    fn contain_returns_the_panic_message() {
        assert_eq!(contain(|| 5).unwrap(), 5);
        let err = contain(|| -> u32 { panic!("inner {}", 7) }).unwrap_err();
        assert_eq!(err, "inner 7");
    }

    #[test]
    fn zero_jobs_is_empty() {
        let (reports, stats) =
            run_jobs(0, &RunnerConfig::default(), Ok::<usize, JobError>, None);
        assert!(reports.is_empty());
        assert_eq!(stats.total, 0);
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed_and_bounded() {
        let base = Duration::from_millis(25);
        for attempt in 1..=4u32 {
            let exp = base
                .saturating_mul(1u32 << attempt.saturating_sub(1).min(6))
                .min(Duration::from_secs(2));
            for index in 0..8usize {
                let a = backoff_delay(base, attempt, 42, index);
                let b = backoff_delay(base, attempt, 42, index);
                assert_eq!(a, b, "same (seed, index, attempt) must give same delay");
                assert!(a >= exp / 2 && a <= exp, "delay {a:?} outside [{:?}, {exp:?}]", exp / 2);
            }
        }
    }

    #[test]
    fn backoff_jitter_desynchronizes_indices() {
        let base = Duration::from_millis(25);
        let delays: Vec<Duration> =
            (0..16usize).map(|i| backoff_delay(base, 1, 7, i)).collect();
        let distinct: std::collections::HashSet<Duration> = delays.iter().copied().collect();
        assert!(
            distinct.len() > 8,
            "expected jitter to spread retries across indices, got {delays:?}"
        );
        let other: Vec<Duration> =
            (0..16usize).map(|i| backoff_delay(base, 1, 8, i)).collect();
        assert_ne!(delays, other, "different seeds must jitter differently");
    }
}
