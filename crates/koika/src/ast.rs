//! The surface abstract syntax of Kôika rules, plus ergonomic builders.
//!
//! Rules are written in a small imperative language with three special
//! primitives — `read`, `write` and `abort` — each read/write annotated with a
//! port (0 or 1) defining intra-cycle visibility (§2.1 of the paper):
//!
//! * reads at port 0 observe register values from the beginning of the cycle;
//! * reads at port 1 observe the latest port-0 write of the cycle, if any;
//! * writes at port 1 only become visible in the next cycle;
//! * `abort` cancels the executing rule, discarding its effects.
//!
//! Names are plain strings at this level; the [`crate::check`] pass resolves
//! them, infers widths, and produces the typed IR ([`crate::tir`]) that all
//! simulators consume.
//!
//! # Examples
//!
//! The paper's two-state machine rule `rlA`:
//!
//! ```
//! use koika::ast::*;
//!
//! let rl_a: Vec<Action> = vec![
//!     guard(rd0("st").eq(k(1, 0))),        // if (st.rd0 != `A) abort
//!     wr0("st", k(1, 1)),                  // st.wr0(`B)
//!     let_("new_x", rd0("x").add(rd0("input"))),
//!     wr0("x", var("new_x")),
//!     wr0("output", var("new_x")),
//! ];
//! assert_eq!(rl_a.len(), 5);
//! ```

use crate::bits::Bits;
use std::fmt;

/// A read/write port (§2.1). Port 0 sees beginning-of-cycle state; port 1
/// sees same-cycle port-0 writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// Port 0.
    P0,
    /// Port 1.
    P1,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::P0 => write!(f, "0"),
            Port::P1 => write!(f, "1"),
        }
    }
}

/// Unary (and width-changing) combinational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Zero-extend **or truncate** to the given width.
    Zext(u32),
    /// Sign-extend to the given width (must not narrow).
    Sext(u32),
    /// Extract `width` bits starting at bit `lo`; out-of-range bits read 0.
    Slice {
        /// First (least-significant) extracted bit.
        lo: u32,
        /// Number of extracted bits.
        width: u32,
    },
}

/// Binary combinational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition (same widths).
    Add,
    /// Wrapping subtraction (same widths).
    Sub,
    /// Wrapping multiplication truncated to the operand width.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount may have any width).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Equality, producing 1 bit.
    Eq,
    /// Disequality, producing 1 bit.
    Ne,
    /// Unsigned `<`, producing 1 bit.
    Ult,
    /// Unsigned `<=`, producing 1 bit.
    Ule,
    /// Signed `<`, producing 1 bit.
    Slt,
    /// Signed `<=`, producing 1 bit.
    Sle,
    /// Concatenation `{a, b}` (left operand is the high part).
    Concat,
}

impl BinOp {
    /// True for comparison operators whose result is 1 bit wide.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle
        )
    }
}

/// A combinational expression, possibly containing register reads.
///
/// Reads have log-recording side effects and may abort the rule, so
/// expression evaluation order is defined: depth-first, left-to-right.
/// [`Expr::Select`] arms must be read-free (enforced by the checker), making
/// `Select` a pure mux.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Const(Bits),
    /// A local variable introduced by [`Action::Let`].
    Var(String),
    /// A register read at the given port.
    Read(Port, String),
    /// A dynamically-indexed read of a register array.
    ReadArr(Port, String, Box<Expr>),
    /// Unary operator application.
    Un(UnOp, Box<Expr>),
    /// Binary operator application.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Pure 2-way mux: `Select(cond, if_true, if_false)`; arms are read-free.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// A statement in a rule body. Statements execute in sequence; any failing
/// read/write check or explicit [`Action::Abort`] cancels the whole rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Bind a new local variable (shadowing allowed).
    Let(String, Expr),
    /// Re-assign an existing local variable.
    Assign(String, Expr),
    /// Write a register at the given port.
    Write(Port, String, Expr),
    /// Write a register-array element at a dynamic index.
    WriteArr(Port, String, Expr, Expr),
    /// Conditional: `If(cond, then, else)`; only the taken branch executes.
    If(Expr, Vec<Action>, Vec<Action>),
    /// Abort the rule, discarding its log.
    Abort,
    /// A labeled block: behaves like its body; the label names a coverage
    /// counter and survives into generated C++ models.
    Named(String, Vec<Action>),
}

// ---------------------------------------------------------------------------
// Expression builders
// ---------------------------------------------------------------------------

/// A `width`-bit constant.
pub fn k(width: u32, value: u64) -> Expr {
    Expr::Const(Bits::new(width, value))
}

/// A 1-bit constant from a boolean.
pub fn kb(value: bool) -> Expr {
    Expr::Const(Bits::from(value))
}

/// A constant from a pre-built [`Bits`] value.
pub fn kbits(value: Bits) -> Expr {
    Expr::Const(value)
}

/// Reference a local variable.
pub fn var(name: impl Into<String>) -> Expr {
    Expr::Var(name.into())
}

/// Read a register at port 0 (beginning-of-cycle value).
pub fn rd0(reg: impl Into<String>) -> Expr {
    Expr::Read(Port::P0, reg.into())
}

/// Read a register at port 1 (sees same-cycle port-0 writes).
pub fn rd1(reg: impl Into<String>) -> Expr {
    Expr::Read(Port::P1, reg.into())
}

/// Read a register-array element at port 0.
pub fn rd0a(arr: impl Into<String>, idx: Expr) -> Expr {
    Expr::ReadArr(Port::P0, arr.into(), Box::new(idx))
}

/// Read a register-array element at port 1.
pub fn rd1a(arr: impl Into<String>, idx: Expr) -> Expr {
    Expr::ReadArr(Port::P1, arr.into(), Box::new(idx))
}

/// Pure 2-way mux; `t` and `f` must be read-free.
pub fn select(c: Expr, t: Expr, f: Expr) -> Expr {
    Expr::Select(Box::new(c), Box::new(t), Box::new(f))
}

// The builder methods deliberately mirror operator names (`add`, `not`,
// `shl`, ...) without implementing the `std::ops` traits: Kôika operators
// are width-checked at design-check time, not at Rust type-check time, and
// consuming builders read better in rule bodies.
#[allow(clippy::should_implement_trait)]
impl Expr {
    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// Wrapping addition.
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// Wrapping subtraction.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// Wrapping multiplication.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// Bitwise AND.
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// Bitwise OR.
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// Bitwise XOR.
    pub fn xor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Xor, rhs)
    }
    /// Logical shift left.
    pub fn shl(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shl, rhs)
    }
    /// Logical shift right.
    pub fn shr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shr, rhs)
    }
    /// Arithmetic shift right.
    pub fn sra(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sra, rhs)
    }
    /// Equality (1-bit result).
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// Disequality (1-bit result).
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// Unsigned less-than (1-bit result).
    pub fn ult(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ult, rhs)
    }
    /// Unsigned less-or-equal (1-bit result).
    pub fn ule(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ule, rhs)
    }
    /// Unsigned greater-than (1-bit result).
    pub fn ugt(self, rhs: Expr) -> Expr {
        rhs.bin(BinOp::Ult, self)
    }
    /// Unsigned greater-or-equal (1-bit result).
    pub fn uge(self, rhs: Expr) -> Expr {
        rhs.bin(BinOp::Ule, self)
    }
    /// Signed less-than (1-bit result).
    pub fn slt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Slt, rhs)
    }
    /// Signed less-or-equal (1-bit result).
    pub fn sle(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sle, rhs)
    }
    /// Signed greater-or-equal (1-bit result).
    pub fn sge(self, rhs: Expr) -> Expr {
        rhs.bin(BinOp::Sle, self)
    }
    /// Concatenation: `self` becomes the high bits.
    pub fn concat(self, low: Expr) -> Expr {
        self.bin(BinOp::Concat, low)
    }
    /// Bitwise complement.
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }
    /// Two's-complement negation.
    pub fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
    /// Zero-extend or truncate to `width`.
    pub fn zext(self, width: u32) -> Expr {
        Expr::Un(UnOp::Zext(width), Box::new(self))
    }
    /// Sign-extend to `width`.
    pub fn sext(self, width: u32) -> Expr {
        Expr::Un(UnOp::Sext(width), Box::new(self))
    }
    /// Extract `width` bits starting at `lo`.
    pub fn slice(self, lo: u32, width: u32) -> Expr {
        Expr::Un(UnOp::Slice { lo, width }, Box::new(self))
    }
    /// Extract a single bit as a 1-bit value.
    pub fn bit(self, i: u32) -> Expr {
        self.slice(i, 1)
    }
}

// ---------------------------------------------------------------------------
// Action builders
// ---------------------------------------------------------------------------

/// Bind a new local variable.
pub fn let_(name: impl Into<String>, e: Expr) -> Action {
    Action::Let(name.into(), e)
}

/// Re-assign an existing local variable.
pub fn set(name: impl Into<String>, e: Expr) -> Action {
    Action::Assign(name.into(), e)
}

/// Write a register at port 0.
pub fn wr0(reg: impl Into<String>, e: Expr) -> Action {
    Action::Write(Port::P0, reg.into(), e)
}

/// Write a register at port 1.
pub fn wr1(reg: impl Into<String>, e: Expr) -> Action {
    Action::Write(Port::P1, reg.into(), e)
}

/// Write a register-array element at port 0.
pub fn wr0a(arr: impl Into<String>, idx: Expr, e: Expr) -> Action {
    Action::WriteArr(Port::P0, arr.into(), idx, e)
}

/// Write a register-array element at port 1.
pub fn wr1a(arr: impl Into<String>, idx: Expr, e: Expr) -> Action {
    Action::WriteArr(Port::P1, arr.into(), idx, e)
}

/// Two-armed conditional.
pub fn iff(c: Expr, t: Vec<Action>, f: Vec<Action>) -> Action {
    Action::If(c, t, f)
}

/// One-armed conditional.
pub fn when(c: Expr, t: Vec<Action>) -> Action {
    Action::If(c, t, Vec::new())
}

/// Abort the rule unconditionally.
pub fn abort() -> Action {
    Action::Abort
}

/// Abort the rule unless `c` holds — the idiomatic rule guard.
pub fn guard(c: Expr) -> Action {
    Action::If(c, Vec::new(), vec![Action::Abort])
}

/// A labeled block, visible to coverage reports and generated C++ models.
pub fn named(label: impl Into<String>, body: Vec<Action>) -> Action {
    Action::Named(label.into(), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = rd0("x").add(k(32, 1));
        match e {
            Expr::Bin(BinOp::Add, a, b) => {
                assert_eq!(*a, Expr::Read(Port::P0, "x".into()));
                assert_eq!(*b, Expr::Const(Bits::new(32, 1u64)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn guard_desugars_to_if_abort() {
        match guard(kb(true)) {
            Action::If(_, t, f) => {
                assert!(t.is_empty());
                assert_eq!(f, vec![Action::Abort]);
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn ugt_swaps_operands() {
        match k(8, 1).ugt(k(8, 2)) {
            Expr::Bin(BinOp::Ult, a, _) => assert_eq!(*a, k(8, 2)),
            other => panic!("unexpected shape: {other:?}"),
        }
    }
}
