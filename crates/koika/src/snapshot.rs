//! Snapshot/restore of complete simulator state, shared by every backend.
//!
//! A [`Snapshot`] captures everything a backend needs to resume a run at a
//! cycle boundary: the full register file (at declared widths, so the
//! reference interpreter's wide registers survive), the cycle counter, and
//! the commit counters. Because all backends expose the same flattened
//! register space (see [`crate::tir`]) and agree on cycle boundaries, a
//! snapshot taken on one backend restores onto any other — snapshot on the
//! interpreter, restore on the Cuttlesim VM or the RTL simulator, and the
//! subsequent commit streams are identical. That cross-backend property is
//! what makes snapshots useful for resilience testing: a fault-injection
//! campaign (see [`crate::fault`]) can checkpoint a golden run once and
//! fan members out over whichever backend is fastest.
//!
//! Two serializations are provided:
//!
//! * a **versioned binary format** (`KSNP`, version 1; see
//!   [`Snapshot::to_bytes`]) — the durable on-disk form, written by
//!   `koika-sim --snapshot-every` and read back by `--restore`;
//! * a **JSON debug form** ([`Snapshot::to_json`]) — human-readable, used
//!   for watchdog state dumps and diffing two snapshots in a text editor.
//!
//! Restores are validated: the design name, register count, and every
//! register width must match the target simulator, so a stale snapshot
//! fails loudly ([`SnapshotError`]) instead of silently corrupting state.

use crate::bits::Bits;
use crate::tir::TDesign;
use std::fmt;
use std::fmt::Write as _;

/// Magic bytes opening every binary snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"KSNP";

/// Current binary snapshot format version. Bump on any layout change; old
/// versions are rejected, never reinterpreted. Version 2 added the design
/// fingerprint guard.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Folds a design's identity — its name plus every register's name and
/// declared width, in declaration order — into a 64-bit FNV-1a fingerprint.
///
/// Every backend stamps this into the snapshots it takes and checks it on
/// restore, so a snapshot can never be restored into a *different* design
/// that happens to share a name and register shape (e.g. a register got
/// renamed between builds): the restore fails with a typed
/// [`SnapshotError::FingerprintMismatch`] instead of silently diverging.
pub fn design_fingerprint<'a, I>(design: &str, regs: I) -> u64
where
    I: IntoIterator<Item = (&'a str, u32)>,
{
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(design.as_bytes());
    eat(&[0]);
    for (name, width) in regs {
        eat(name.as_bytes());
        eat(&[0]);
        eat(&width.to_le_bytes());
    }
    h
}

/// A saved copy of a simulator's architectural state at a cycle boundary.
///
/// Produced by [`crate::device::SimBackend::snapshot`]; applied with
/// [`crate::device::SimBackend::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Name of the design the snapshot was taken from.
    pub design: String,
    /// Cycles executed when the snapshot was taken.
    pub cycles: u64,
    /// Total rule commits when the snapshot was taken.
    pub fired: u64,
    /// [`design_fingerprint`] of the design the snapshot was taken from.
    pub fingerprint: u64,
    /// Per-rule commit counts in **declaration order** (empty if the
    /// backend does not track them).
    pub fired_per_rule: Vec<u64>,
    /// Every register's value, flattened-register-space order, at the
    /// declared width.
    pub regs: Vec<Bits>,
}

/// Why a snapshot could not be parsed or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream does not start with the `KSNP` magic.
    BadMagic,
    /// The format version is not one this build understands.
    BadVersion(u32),
    /// The byte stream ended mid-field.
    Truncated,
    /// A length or width field is implausibly large for the stream.
    Corrupt(&'static str),
    /// The snapshot was taken from a different design.
    DesignMismatch {
        /// Design name in the snapshot.
        snapshot: String,
        /// Design name of the simulator being restored.
        simulator: String,
    },
    /// Register count or a register width differs from the target design.
    ShapeMismatch(String),
    /// The design fingerprint (name + register names + widths) differs: the
    /// snapshot came from a structurally different design, even though the
    /// coarse shape checks passed.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        snapshot: u64,
        /// Fingerprint of the design being restored into.
        simulator: u64,
    },
    /// The simulator is mid-cycle; snapshots only apply at cycle boundaries.
    MidCycle,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a koika snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::DesignMismatch { snapshot, simulator } => write!(
                f,
                "snapshot is of design {snapshot:?} but the simulator runs {simulator:?}"
            ),
            SnapshotError::ShapeMismatch(why) => write!(f, "snapshot shape mismatch: {why}"),
            SnapshotError::FingerprintMismatch { snapshot, simulator } => write!(
                f,
                "snapshot design fingerprint {snapshot:#018x} does not match the \
                 simulator's design fingerprint {simulator:#018x} (same name and \
                 shape, different design)"
            ),
            SnapshotError::MidCycle => {
                write!(f, "cannot snapshot/restore mid-cycle; finish the cycle first")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotError> {
    if buf.len() < n {
        return Err(SnapshotError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn read_u32(buf: &mut &[u8]) -> Result<u32, SnapshotError> {
    let b = take(buf, 4)?;
    Ok(u32::from_le_bytes(b.try_into().expect("length checked")))
}

fn read_u64(buf: &mut &[u8]) -> Result<u64, SnapshotError> {
    let b = take(buf, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("length checked")))
}

impl Snapshot {
    /// Serializes to the versioned binary format.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// "KSNP"  version:u32  name_len:u32 name_bytes
    /// cycles:u64  fired:u64  fingerprint:u64
    /// nrules:u32  fired_per_rule:u64 × nrules
    /// nregs:u32   (width:u32 nwords:u32 words:u64 × nwords) × nregs
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 16 * self.regs.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.design.len() as u32).to_le_bytes());
        out.extend_from_slice(self.design.as_bytes());
        out.extend_from_slice(&self.cycles.to_le_bytes());
        out.extend_from_slice(&self.fired.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.fired_per_rule.len() as u32).to_le_bytes());
        for &n in &self.fired_per_rule {
            out.extend_from_slice(&n.to_le_bytes());
        }
        out.extend_from_slice(&(self.regs.len() as u32).to_le_bytes());
        for r in &self.regs {
            let words = r.words();
            out.extend_from_slice(&r.width().to_le_bytes());
            out.extend_from_slice(&(words.len() as u32).to_le_bytes());
            for w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Parses the versioned binary format produced by [`Snapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Rejects wrong magic, unknown versions, truncated streams, and
    /// implausible length fields — bad input never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut buf = bytes;
        if take(&mut buf, 4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(&mut buf)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let name_len = read_u32(&mut buf)? as usize;
        let design = String::from_utf8(take(&mut buf, name_len)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("design name is not UTF-8"))?;
        let cycles = read_u64(&mut buf)?;
        let fired = read_u64(&mut buf)?;
        let fingerprint = read_u64(&mut buf)?;
        let nrules = read_u32(&mut buf)? as usize;
        if nrules > bytes.len() {
            return Err(SnapshotError::Corrupt("rule count exceeds stream size"));
        }
        let mut fired_per_rule = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            fired_per_rule.push(read_u64(&mut buf)?);
        }
        let nregs = read_u32(&mut buf)? as usize;
        if nregs > bytes.len() {
            return Err(SnapshotError::Corrupt("register count exceeds stream size"));
        }
        let mut regs = Vec::with_capacity(nregs);
        for _ in 0..nregs {
            let width = read_u32(&mut buf)?;
            let nwords = read_u32(&mut buf)? as usize;
            if nwords != width.div_ceil(64).max(1) as usize {
                return Err(SnapshotError::Corrupt("word count disagrees with width"));
            }
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(read_u64(&mut buf)?);
            }
            regs.push(Bits::from_words(width, &words));
        }
        Ok(Snapshot {
            design,
            cycles,
            fired,
            fingerprint,
            fired_per_rule,
            regs,
        })
    }

    /// Checks that this snapshot fits a simulator of the given design name,
    /// register widths, and [`design_fingerprint`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DesignMismatch`], [`SnapshotError::ShapeMismatch`],
    /// or [`SnapshotError::FingerprintMismatch`].
    pub fn check_shape(
        &self,
        design: &str,
        widths: &[u32],
        fingerprint: u64,
    ) -> Result<(), SnapshotError> {
        if self.design != design {
            return Err(SnapshotError::DesignMismatch {
                snapshot: self.design.clone(),
                simulator: design.to_string(),
            });
        }
        if self.regs.len() != widths.len() {
            return Err(SnapshotError::ShapeMismatch(format!(
                "snapshot has {} registers, design has {}",
                self.regs.len(),
                widths.len()
            )));
        }
        for (i, (r, &w)) in self.regs.iter().zip(widths).enumerate() {
            if r.width() != w {
                return Err(SnapshotError::ShapeMismatch(format!(
                    "register {i} is {} bits in the snapshot but {w} in the design",
                    r.width()
                )));
            }
        }
        if self.fingerprint != fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                snapshot: self.fingerprint,
                simulator: fingerprint,
            });
        }
        Ok(())
    }

    /// Renders the JSON debug form. Register names come from the design
    /// when one is supplied; otherwise registers are labeled by index.
    pub fn to_json(&self, design: Option<&TDesign>) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"format\": \"ksnp\",\n  \"version\": {SNAPSHOT_VERSION},\n  \
             \"design\": \"{}\",\n  \"cycles\": {},\n  \"fired\": {},\n  \
             \"fingerprint\": \"{:#018x}\",\n",
            self.design.escape_default(),
            self.cycles,
            self.fired,
            self.fingerprint
        );
        let _ = write!(s, "  \"fired_per_rule\": {:?},\n  \"regs\": [\n", self.fired_per_rule);
        for (i, r) in self.regs.iter().enumerate() {
            let name = design
                .and_then(|td| td.regs.get(i))
                .map(|ri| ri.name.clone())
                .unwrap_or_else(|| format!("reg{i}"));
            let mut hex = String::new();
            for w in r.words().iter().rev() {
                let _ = write!(hex, "{w:016x}");
            }
            let trimmed = hex.trim_start_matches('0');
            let value = if trimmed.is_empty() { "0" } else { trimmed };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"width\": {}, \"value\": \"0x{value}\"}}{}",
                name.escape_default(),
                r.width(),
                if i + 1 == self.regs.len() { "" } else { "," },
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Durably writes `bytes` to `path` with crash-atomic semantics: the data
/// lands in `<path>.tmp` first, is fsynced, and is then renamed over `path`.
/// A reader (or a recovery pass after `kill -9`) therefore observes either
/// the complete previous file or the complete new one — never a torn
/// half-written `.ksnap`. This is the canonical way to persist snapshot and
/// spool files; stray `<path>.tmp` leftovers from a crash mid-write are safe
/// to delete.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no orphan if the rename itself failed.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fp() -> u64 {
        design_fingerprint("demo", [("a", 8u32), ("b", 96u32)])
    }

    fn sample() -> Snapshot {
        Snapshot {
            design: "demo".into(),
            cycles: 42,
            fired: 77,
            fingerprint: sample_fp(),
            fired_per_rule: vec![40, 37],
            regs: vec![Bits::new(8, 0xabu64), Bits::new(96, 0x1_0000_0000_0000_0000u128)],
        }
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(&bytes[..4], b"KSNP");
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn bad_inputs_fail_without_panicking() {
        let s = sample();
        let mut bytes = s.to_bytes();
        assert_eq!(Snapshot::from_bytes(b"np"), Err(SnapshotError::Truncated));
        assert_eq!(Snapshot::from_bytes(b"nope"), Err(SnapshotError::BadMagic));
        assert_eq!(
            Snapshot::from_bytes(b"XXXXmore-bytes-here"),
            Err(SnapshotError::BadMagic)
        );
        bytes[4] = 99; // version
        assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadVersion(99)));
        let good = s.to_bytes();
        for cut in [5, 12, good.len() - 1] {
            assert_eq!(
                Snapshot::from_bytes(&good[..cut]),
                Err(SnapshotError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn shape_check_catches_mismatches() {
        let s = sample();
        let fp = sample_fp();
        assert!(s.check_shape("demo", &[8, 96], fp).is_ok());
        assert!(matches!(
            s.check_shape("other", &[8, 96], fp),
            Err(SnapshotError::DesignMismatch { .. })
        ));
        assert!(matches!(
            s.check_shape("demo", &[8], fp),
            Err(SnapshotError::ShapeMismatch(_))
        ));
        assert!(matches!(
            s.check_shape("demo", &[8, 64], fp),
            Err(SnapshotError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn fingerprint_guards_same_shape_different_design() {
        // Same design name, same register count and widths, but one
        // register was renamed: the coarse shape checks pass and only the
        // fingerprint catches the mismatch.
        let s = sample();
        let renamed = design_fingerprint("demo", [("a", 8u32), ("b2", 96u32)]);
        assert_ne!(renamed, sample_fp());
        assert!(matches!(
            s.check_shape("demo", &[8, 96], renamed),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_is_order_and_width_sensitive() {
        let base = design_fingerprint("d", [("x", 8u32), ("y", 16u32)]);
        assert_ne!(base, design_fingerprint("d", [("y", 16u32), ("x", 8u32)]));
        assert_ne!(base, design_fingerprint("d", [("x", 9u32), ("y", 16u32)]));
        assert_ne!(base, design_fingerprint("e", [("x", 8u32), ("y", 16u32)]));
        assert_eq!(base, design_fingerprint("d", vec![("x", 8u32), ("y", 16u32)]));
    }

    #[test]
    fn json_debug_form_names_registers() {
        let s = sample();
        let json = s.to_json(None);
        assert!(json.contains("\"design\": \"demo\""));
        assert!(json.contains("\"cycles\": 42"));
        assert!(json.contains("\"reg0\""));
    }

    #[test]
    fn write_atomic_replaces_whole_file_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("ksnap-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ksnap");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second-longer");
        assert!(!dir.join("s.ksnap.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
