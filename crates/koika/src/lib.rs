//! Core of the Kôika rule-based hardware description language (RHDL).
//!
//! This crate is the foundation of a Rust reproduction of *"Effective
//! simulation and debugging for a high-level hardware language using
//! software compilers"* (ASPLOS 2021). It provides:
//!
//! * [`bits`] — fixed-width bit vectors, the value domain of designs;
//! * [`ast`] / [`design`] — the surface language and design builders;
//! * [`check`] / [`tir`] — the type checker and the typed IR every backend
//!   consumes;
//! * [`interp`] — the reference one-rule-at-a-time interpreter (the naive
//!   log-based model of the paper's §3.1, used as differential-testing
//!   ground truth);
//! * [`analysis`] — the abstract-interpretation pass behind Cuttlesim's
//!   design-specific optimizations (§3.3);
//! * [`device`] — the external-device harness that keeps every backend
//!   cycle-accurate with respect to every other one;
//! * [`obs`] — the unified observability layer: probe hooks, cycle
//!   metrics, and Perfetto/JSON export shared by all backends (§4.2's
//!   debugging story as a library);
//! * [`snapshot`] — versioned capture/restore of complete simulator state,
//!   portable across all backends;
//! * [`fault`] — the resilience-testing harness: seeded SEU bit-flip
//!   campaigns classified against a golden run, watchdog budgets, and
//!   deterministic replay with shrinking;
//! * [`runner`] — the crash-isolated parallel job runner under campaigns
//!   and differential fuzzing: fixed worker pool, per-job panic
//!   containment, retry with exponential backoff, deterministic result
//!   ordering.
//!
//! The fast simulator lives in the `cuttlesim` crate; the RTL pipeline
//! (the "Verilator baseline") lives in `koika-rtl`.
//!
//! # Quick start
//!
//! ```
//! use koika::{ast::*, design::DesignBuilder, check, interp::Interp};
//! use koika::device::SimBackend;
//!
//! // An 8-bit counter that wraps.
//! let mut b = DesignBuilder::new("counter");
//! b.reg("count", 8, 0u64);
//! b.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
//! let design = check::check(&b.build())?;
//!
//! let mut sim = Interp::new(&design);
//! for _ in 0..10 {
//!     sim.cycle();
//! }
//! use koika::device::RegAccess;
//! assert_eq!(sim.get64(design.reg_id("count")), 10);
//! # Ok::<(), koika::check::CheckError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod ast;
pub mod bits;
pub mod check;
pub mod debug;
pub mod design;
pub mod device;
pub mod fault;
pub mod interp;
pub mod obs;
pub mod runner;
pub mod snapshot;
pub mod testgen;
pub mod tir;
pub mod vcd;

pub use bits::Bits;
pub use check::check;
pub use design::{Design, DesignBuilder};
pub use device::{Device, RegAccess, SimBackend};
pub use fault::{CampaignConfig, CampaignReport, Injection, Outcome, Watchdog};
pub use interp::Interp;
pub use obs::{FailureReason, Metrics, Observer, PerfettoTrace};
pub use runner::{JobError, JobReport, JobUpdate, RunnerConfig, RunnerStats};
pub use snapshot::{Snapshot, SnapshotError};
pub use tir::{RegId, TDesign};
