//! The typed intermediate representation produced by [`crate::check`].
//!
//! Names are resolved (registers to dense [`RegId`]s, locals to frame slots),
//! every expression carries its width, and register arrays are flattened into
//! a contiguous element space so simulators can store all state in flat
//! arenas. This is the representation consumed by the reference interpreter,
//! the Cuttlesim compiler, and the RTL compiler.

use crate::ast::{BinOp, Port, UnOp};
use crate::bits::Bits;
use std::fmt;

/// Identifier of a single state element (a scalar register or one array
/// element) in the flattened register space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// Identifier of a declared symbol (a scalar register or a whole array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A declared symbol after flattening.
#[derive(Debug, Clone, PartialEq)]
pub struct SymInfo {
    /// Source name.
    pub name: String,
    /// Element width in bits.
    pub width: u32,
    /// First element in the flattened register space.
    pub base: RegId,
    /// Number of elements (1 for scalars).
    pub len: u32,
}

impl SymInfo {
    /// True if this symbol is a scalar register.
    pub fn is_scalar(&self) -> bool {
        self.len == 1
    }

    /// The flattened ids of all elements of this symbol.
    pub fn elems(&self) -> impl Iterator<Item = RegId> + '_ {
        (self.base.0..self.base.0 + self.len).map(RegId)
    }
}

/// One element of the flattened register space.
#[derive(Debug, Clone, PartialEq)]
pub struct RegInfo {
    /// Diagnostic name (`rf[3]` style for array elements).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Initial (reset) value.
    pub init: Bits,
    /// The symbol this element belongs to.
    pub sym: SymId,
}

/// A typed expression. The `w` field of every variant is the result width.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TExpr {
    /// Constant.
    Const {
        /// Result width.
        w: u32,
        /// Value.
        v: Bits,
    },
    /// Local variable (frame slot).
    Var {
        /// Result width.
        w: u32,
        /// Frame slot index.
        slot: u16,
    },
    /// Scalar register read.
    Read {
        /// Result width.
        w: u32,
        /// Port.
        port: Port,
        /// Register element.
        reg: RegId,
    },
    /// Dynamically-indexed array read. `len` is a power of two and the index
    /// is taken modulo `len`.
    ReadArr {
        /// Result width.
        w: u32,
        /// Port.
        port: Port,
        /// First element of the array.
        base: RegId,
        /// Array length (power of two).
        len: u32,
        /// Index expression.
        idx: Box<TExpr>,
    },
    /// Unary operator application.
    Un {
        /// Result width.
        w: u32,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Box<TExpr>,
    },
    /// Binary operator application.
    Bin {
        /// Result width.
        w: u32,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Box<TExpr>,
        /// Right operand.
        b: Box<TExpr>,
    },
    /// Pure mux (arms verified read-free by the checker).
    Select {
        /// Result width.
        w: u32,
        /// 1-bit condition.
        c: Box<TExpr>,
        /// Value when the condition is 1.
        t: Box<TExpr>,
        /// Value when the condition is 0.
        f: Box<TExpr>,
    },
}

impl TExpr {
    /// The width of the value this expression produces.
    pub fn width(&self) -> u32 {
        match self {
            TExpr::Const { w, .. }
            | TExpr::Var { w, .. }
            | TExpr::Read { w, .. }
            | TExpr::ReadArr { w, .. }
            | TExpr::Un { w, .. }
            | TExpr::Bin { w, .. }
            | TExpr::Select { w, .. } => *w,
        }
    }
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum TAction {
    /// Evaluate and store into a frame slot (covers both `Let` and `Assign`).
    Let {
        /// Destination slot.
        slot: u16,
        /// Value.
        e: TExpr,
    },
    /// Scalar register write.
    Write {
        /// Port.
        port: Port,
        /// Register element.
        reg: RegId,
        /// Value written.
        e: TExpr,
    },
    /// Dynamically-indexed array write.
    WriteArr {
        /// Port.
        port: Port,
        /// First element of the array.
        base: RegId,
        /// Array length (power of two).
        len: u32,
        /// Index expression.
        idx: TExpr,
        /// Value written.
        e: TExpr,
    },
    /// Conditional.
    If {
        /// 1-bit condition.
        c: TExpr,
        /// Taken when the condition is 1.
        t: Vec<TAction>,
        /// Taken when the condition is 0.
        f: Vec<TAction>,
    },
    /// Explicit rule abort.
    Abort,
    /// Labeled block (coverage / codegen anchor).
    Named {
        /// Label.
        label: String,
        /// Body.
        body: Vec<TAction>,
    },
}

/// A typed rule.
#[derive(Debug, Clone, PartialEq)]
pub struct TRule {
    /// Rule name.
    pub name: String,
    /// Body.
    pub body: Vec<TAction>,
    /// Widths of the rule's local-variable frame slots.
    pub slot_widths: Vec<u32>,
}

/// A fully-checked design: the input to every backend.
#[derive(Debug, Clone, PartialEq)]
pub struct TDesign {
    /// Design name.
    pub name: String,
    /// Declared symbols.
    pub syms: Vec<SymInfo>,
    /// Flattened register space (array elements expanded).
    pub regs: Vec<RegInfo>,
    /// Typed rules, in declaration order.
    pub rules: Vec<TRule>,
    /// Scheduler: indices into `rules` in execution order.
    pub schedule: Vec<usize>,
}

impl TDesign {
    /// Looks up a scalar register's flattened id by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown — a harness bug worth failing loudly on.
    pub fn reg_id(&self, name: &str) -> RegId {
        let sym = self
            .syms
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        sym.base
    }

    /// Looks up an array element's flattened id.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown or the index is out of range.
    pub fn reg_elem(&self, name: &str, idx: u32) -> RegId {
        let sym = self
            .syms
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        assert!(idx < sym.len, "index {idx} out of range for {name}");
        RegId(sym.base.0 + idx)
    }

    /// Looks up a rule index by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn rule_index(&self, name: &str) -> usize {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .unwrap_or_else(|| panic!("no rule named {name:?}"))
    }

    /// Number of elements in the flattened register space.
    pub fn num_regs(&self) -> usize {
        self.regs.len()
    }

    /// The initial values of all flattened registers.
    pub fn initial_values(&self) -> Vec<Bits> {
        self.regs.iter().map(|r| r.init.clone()).collect()
    }

    /// True if every register fits in a 64-bit word — a precondition of the
    /// optimized Cuttlesim VM and the RTL netlist simulator.
    pub fn fits_u64(&self) -> bool {
        self.regs.iter().all(|r| r.width <= 64)
    }

    /// The design's [`crate::snapshot::design_fingerprint`]: a 64-bit hash
    /// of the design name plus every register's name and width, stamped
    /// into snapshots and checked on restore.
    pub fn fingerprint(&self) -> u64 {
        crate::snapshot::design_fingerprint(
            &self.name,
            self.regs.iter().map(|r| (r.name.as_str(), r.width)),
        )
    }
}
