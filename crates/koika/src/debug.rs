//! Interactive, backend-invariant time-travel debugger.
//!
//! The source paper's headline debugging workflow is attaching an ordinary
//! software debugger (GDB, rr) to a compiled Cuttlesim simulator:
//! breakpoints on rules, watchpoints on registers, reverse execution back
//! to the cycle where state went wrong. This module reproduces that
//! workflow *above* the execution engines, so one debugger drives every
//! backend in the workspace — the reference interpreter, the Cuttlesim VM
//! at every optimization level and dispatch strategy (including the
//! batched SoA engine, one focused lane at a time), and the levelized RTL
//! simulator — and a scripted session produces byte-identical transcripts
//! on all of them.
//!
//! # Architecture
//!
//! * **Observer pause seam.** The debugger never reaches into an engine.
//!   It owns the cycle loop and drives a [`DebugTarget`] one cycle at a
//!   time through [`crate::device::SimBackend::cycle_obs`], capturing rule
//!   events and boundary register writes with a [`CycleCapture`] observer.
//!   When no debugger is attached nothing changes: the unobserved `cycle`
//!   hot paths are untouched.
//!
//! * **Cycle granularity.** The RTL simulator evaluates a whole cycle as
//!   one levelized combinational pass, so no backend-invariant debugger
//!   can pause *inside* a cycle. `step-rule` is therefore a presentation
//!   over the captured event stream: the first `step-rule` of a cycle
//!   executes the full cycle and reveals its first rule event; subsequent
//!   `step-rule`s reveal the remaining events one at a time. Register
//!   state shown at the prompt is always the post-cycle state.
//!
//! * **Checkpoint ring + deterministic re-execution.** Reverse execution
//!   needs no engine-level undo. The session keeps a bounded ring of full
//!   state checkpoints (registers via [`Snapshot`], device state via
//!   [`Device::save_state`]) taken every K cycles, K adaptive to state
//!   size. `reverse-step` restores the nearest checkpoint at or before
//!   the target cycle and re-executes forward — simulation is
//!   deterministic, so the replay reproduces the original timeline
//!   exactly, including the event ring and per-rule counters (both are
//!   checkpointed alongside the state). `dump-vcd` is the same trick:
//!   replay from the genesis checkpoint with a [`VcdRecorder`] attached.
//!
//! * **Watchdog integration.** A paused debugger freezes the wall clock
//!   of any armed watchdog ([`ArmedWatchdog::pause`]) and never feeds it
//!   replay cycles, so thinking at the prompt or time-traveling cannot be
//!   misclassified as a hang; only user-driven forward execution is
//!   observed.

use crate::device::{BatchBackend, Device, LaneAccess, SimBackend};
use crate::fault::ArmedWatchdog;
use crate::obs::{FailureReason, Observer};
use crate::snapshot::Snapshot;
use crate::tir::{RegId, TDesign};
use crate::vcd::VcdRecorder;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};

/// How many checkpoints the ring holds (the genesis checkpoint is kept
/// outside the ring and is never evicted).
const CHECKPOINT_SLOTS: usize = 64;

/// How many rule events the recent-event ring holds.
const EVENT_RING: usize = 64;

/// How many ring entries `last` prints by default.
const LAST_DEFAULT: usize = 8;

/// What happened to one scheduled rule during a captured cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The rule committed.
    Commit,
    /// The rule did not commit (guard abort, conflict, or unclassified).
    Fail(FailureReason),
}

/// An [`Observer`] that records one cycle's rule events and boundary
/// register writes for the debugger to present.
#[derive(Debug, Default, Clone)]
pub struct CycleCapture {
    /// Rule events in schedule order (declaration-order rule indices).
    pub events: Vec<(usize, EventKind)>,
    /// Boundary register writes `(reg, old, new)` (low 64 bits).
    pub writes: Vec<(RegId, u64, u64)>,
}

impl Observer for CycleCapture {
    fn rule_commit(&mut self, rule: usize) {
        self.events.push((rule, EventKind::Commit));
    }
    fn rule_fail(&mut self, rule: usize, reason: FailureReason) {
        self.events.push((rule, EventKind::Fail(reason)));
    }
    fn reg_write(&mut self, reg: RegId, old: u64, new: u64) {
        self.writes.push((reg, old, new));
    }
}

/// Complete restorable state of a [`DebugTarget`]: one [`Snapshot`] per
/// lane plus every device's serialized state (`devices[lane][device]`).
#[derive(Debug, Clone)]
pub struct TargetState {
    lanes: Vec<Snapshot>,
    devices: Vec<Vec<Vec<u8>>>,
}

impl TargetState {
    /// Approximate per-lane state size in bytes (register words plus
    /// device blobs); drives the adaptive checkpoint interval. Depends
    /// only on the design and devices, never on the backend, so every
    /// backend picks the same interval.
    fn lane_bytes(&self) -> usize {
        let regs: usize = self.lanes[0].regs.iter().map(|r| r.words().len() * 8).sum();
        let devs: usize = self
            .devices
            .first()
            .map(|ds| ds.iter().map(Vec::len).sum())
            .unwrap_or(0);
        regs + devs
    }
}

/// One debuggable simulation: an engine plus its devices, steppable one
/// cycle at a time with full state capture/restore.
///
/// The two provided implementations — [`ScalarTarget`] for any
/// [`SimBackend`] and [`BatchTarget`] for a [`BatchBackend`] — cover
/// every engine in the workspace.
pub trait DebugTarget {
    /// Executes one cycle at logical cycle number `cycle`: ticks devices,
    /// then runs the engine, reporting events into `cap`.
    fn step(&mut self, cycle: u64, cap: &mut CycleCapture) -> Result<(), String>;

    /// Like [`DebugTarget::step`], but samples `vcd` after the device
    /// ticks and before the engine runs (the CLI's `--vcd` ordering)
    /// instead of capturing events.
    fn step_vcd(&mut self, cycle: u64, vcd: &mut VcdRecorder) -> Result<(), String>;

    /// Reads a register (low 64 bits) of the focused lane.
    fn reg_get(&self, reg: RegId) -> u64;

    /// Captures complete restorable state, labeling it with the given
    /// logical cycle number.
    ///
    /// # Errors
    ///
    /// Fails when a device does not support state save ([`Device::save_state`]
    /// returned `None`) — time travel is then unavailable.
    fn checkpoint(&self, cycle: u64) -> Result<TargetState, String>;

    /// Restores state captured by [`DebugTarget::checkpoint`].
    fn restore(&mut self, st: &TargetState) -> Result<(), String>;

    /// Number of lanes (1 for scalar backends).
    fn lanes(&self) -> usize {
        1
    }

    /// The focused lane.
    fn focus(&self) -> usize {
        0
    }

    /// Switches the focused lane.
    fn set_focus(&mut self, _lane: usize) -> Result<(), String> {
        Err("not a batched backend".into())
    }

    /// A portable [`Snapshot`] of the focused lane at the given logical
    /// cycle, for `snapshot <file>`.
    fn snapshot(&self, cycle: u64) -> Result<Snapshot, String>;

    /// The cycle boundary the target sits at when the session attaches
    /// (non-zero after `--restore`).
    fn start_cycle(&self) -> u64 {
        0
    }
}

/// [`DebugTarget`] over any scalar [`SimBackend`] plus its devices.
pub struct ScalarTarget<'a> {
    sim: Box<dyn SimBackend + 'a>,
    devices: Vec<Box<dyn Device + 'a>>,
}

impl<'a> ScalarTarget<'a> {
    /// Wraps an engine and its devices for debugging.
    pub fn new(sim: Box<dyn SimBackend + 'a>, devices: Vec<Box<dyn Device + 'a>>) -> Self {
        ScalarTarget { sim, devices }
    }
}

impl DebugTarget for ScalarTarget<'_> {
    fn step(&mut self, cycle: u64, cap: &mut CycleCapture) -> Result<(), String> {
        for d in self.devices.iter_mut() {
            d.tick(cycle, self.sim.as_reg_access());
        }
        self.sim.cycle_obs(cap);
        Ok(())
    }

    fn step_vcd(&mut self, cycle: u64, vcd: &mut VcdRecorder) -> Result<(), String> {
        for d in self.devices.iter_mut() {
            d.tick(cycle, self.sim.as_reg_access());
        }
        vcd.sample(cycle, self.sim.as_reg_access());
        self.sim.cycle();
        Ok(())
    }

    fn reg_get(&self, reg: RegId) -> u64 {
        self.sim.get64(reg)
    }

    fn checkpoint(&self, cycle: u64) -> Result<TargetState, String> {
        let mut snap = self.sim.snapshot();
        snap.cycles = cycle;
        let mut blobs = Vec::with_capacity(self.devices.len());
        for (i, d) in self.devices.iter().enumerate() {
            blobs.push(d.save_state().ok_or_else(|| {
                format!("device {i} does not support state save/restore")
            })?);
        }
        Ok(TargetState {
            lanes: vec![snap],
            devices: vec![blobs],
        })
    }

    fn restore(&mut self, st: &TargetState) -> Result<(), String> {
        self.sim.restore(&st.lanes[0]).map_err(|e| e.to_string())?;
        for (d, blob) in self.devices.iter_mut().zip(&st.devices[0]) {
            d.load_state(blob)?;
        }
        Ok(())
    }

    fn snapshot(&self, cycle: u64) -> Result<Snapshot, String> {
        let mut snap = self.sim.snapshot();
        snap.cycles = cycle;
        Ok(snap)
    }

    fn start_cycle(&self) -> u64 {
        self.sim.cycle_count()
    }
}

/// [`DebugTarget`] over a [`BatchBackend`]: all lanes advance in
/// lock-step, and the debugger observes one focused lane at a time
/// (switchable with `focus-lane`).
pub struct BatchTarget<'a> {
    td: &'a TDesign,
    batch: Box<dyn BatchBackend + 'a>,
    lane_devices: Vec<Vec<Box<dyn Device + 'a>>>,
    focus: usize,
    fired: Vec<u64>,
}

impl<'a> BatchTarget<'a> {
    /// Wraps a batched engine; `lane_devices[lane]` are that lane's
    /// devices (may be empty).
    ///
    /// # Errors
    ///
    /// Fails when the design has registers wider than 64 bits (batched
    /// engines require `fits_u64`) or the device list does not match the
    /// lane count.
    pub fn new(
        td: &'a TDesign,
        batch: Box<dyn BatchBackend + 'a>,
        lane_devices: Vec<Vec<Box<dyn Device + 'a>>>,
    ) -> Result<Self, String> {
        if !td.fits_u64() {
            return Err("batched debugging requires all registers ≤ 64 bits".into());
        }
        if lane_devices.len() != batch.lanes() {
            return Err(format!(
                "{} device lists for {} lanes",
                lane_devices.len(),
                batch.lanes()
            ));
        }
        let lanes = batch.lanes();
        Ok(BatchTarget {
            td,
            batch,
            lane_devices,
            focus: 0,
            fired: vec![0; lanes],
        })
    }

    fn lane_snapshot(&self, lane: usize, cycle: u64) -> Snapshot {
        let regs = (0..self.td.num_regs())
            .map(|i| {
                let w = self.td.regs[i].width;
                crate::bits::Bits::new(w, self.batch.lane_get64(lane, RegId(i as u32)))
            })
            .collect();
        Snapshot {
            design: self.td.name.clone(),
            cycles: cycle,
            fired: self.fired[lane],
            fingerprint: self.td.fingerprint(),
            fired_per_rule: Vec::new(),
            regs,
        }
    }

    fn tick_devices(&mut self, cycle: u64) {
        for (lane, devs) in self.lane_devices.iter_mut().enumerate() {
            let mut la = LaneAccess::new(self.batch.as_mut(), lane);
            for d in devs.iter_mut() {
                d.tick(cycle, &mut la);
            }
        }
    }

    fn count_fired(&mut self) {
        for lane in 0..self.batch.lanes() {
            self.fired[lane] += self.batch.lane_commits(lane).len() as u64;
        }
    }
}

impl DebugTarget for BatchTarget<'_> {
    fn step(&mut self, cycle: u64, cap: &mut CycleCapture) -> Result<(), String> {
        self.tick_devices(cycle);
        let prev: Vec<u64> = (0..self.td.num_regs())
            .map(|i| self.batch.lane_get64(self.focus, RegId(i as u32)))
            .collect();
        self.batch.cycle()?;
        self.count_fired();
        // Synthesize the focused lane's event stream from its commit
        // list (declaration-order indices in schedule order). The batch
        // engine cannot classify failures, so they surface as
        // Unspecified — exactly like the RTL backend.
        let commits = self.batch.lane_commits(self.focus);
        let mut ci = 0;
        for &ri in &self.td.schedule {
            if ci < commits.len() && commits[ci] as usize == ri {
                cap.events.push((ri, EventKind::Commit));
                ci += 1;
            } else {
                cap.events.push((ri, EventKind::Fail(FailureReason::Unspecified)));
            }
        }
        for (i, &p) in prev.iter().enumerate() {
            let now = self.batch.lane_get64(self.focus, RegId(i as u32));
            if now != p {
                cap.writes.push((RegId(i as u32), p, now));
            }
        }
        Ok(())
    }

    fn step_vcd(&mut self, cycle: u64, vcd: &mut VcdRecorder) -> Result<(), String> {
        self.tick_devices(cycle);
        {
            let la = LaneAccess::new(self.batch.as_mut(), self.focus);
            vcd.sample(cycle, &la);
        }
        self.batch.cycle()?;
        self.count_fired();
        Ok(())
    }

    fn reg_get(&self, reg: RegId) -> u64 {
        self.batch.lane_get64(self.focus, reg)
    }

    fn checkpoint(&self, cycle: u64) -> Result<TargetState, String> {
        let lanes: Vec<Snapshot> = (0..self.batch.lanes())
            .map(|l| self.lane_snapshot(l, cycle))
            .collect();
        let mut devices = Vec::with_capacity(self.lane_devices.len());
        for devs in &self.lane_devices {
            let mut blobs = Vec::with_capacity(devs.len());
            for (i, d) in devs.iter().enumerate() {
                blobs.push(d.save_state().ok_or_else(|| {
                    format!("device {i} does not support state save/restore")
                })?);
            }
            devices.push(blobs);
        }
        Ok(TargetState { lanes, devices })
    }

    fn restore(&mut self, st: &TargetState) -> Result<(), String> {
        if st.lanes.len() != self.batch.lanes() {
            return Err(format!(
                "checkpoint has {} lanes, batch has {}",
                st.lanes.len(),
                self.batch.lanes()
            ));
        }
        for (lane, snap) in st.lanes.iter().enumerate() {
            for (i, bits) in snap.regs.iter().enumerate() {
                self.batch.lane_set64(lane, RegId(i as u32), bits.low_u64());
            }
            self.fired[lane] = snap.fired;
        }
        for (devs, blobs) in self.lane_devices.iter_mut().zip(&st.devices) {
            for (d, blob) in devs.iter_mut().zip(blobs) {
                d.load_state(blob)?;
            }
        }
        Ok(())
    }

    fn lanes(&self) -> usize {
        self.batch.lanes()
    }

    fn focus(&self) -> usize {
        self.focus
    }

    fn set_focus(&mut self, lane: usize) -> Result<(), String> {
        if lane >= self.batch.lanes() {
            return Err(format!(
                "lane {lane} out of range (batch has {} lanes)",
                self.batch.lanes()
            ));
        }
        self.focus = lane;
        Ok(())
    }

    fn snapshot(&self, cycle: u64) -> Result<Snapshot, String> {
        Ok(self.lane_snapshot(self.focus, cycle))
    }
}

/// Session-level knobs for [`run_session`].
#[derive(Debug, Clone)]
pub struct DebugOptions {
    /// Cycle boundary at which the program ends (the CLI's `--cycles`
    /// budget); `continue` with no hits runs to here.
    pub limit: u64,
    /// Echo each command as `(kdb) <cmd>` (script mode — makes the
    /// output a complete, byte-comparable transcript).
    pub echo: bool,
    /// Print an interactive `(kdb) ` prompt before reading each command.
    pub prompt: bool,
}

#[derive(Debug, Clone, Copy)]
enum RuleBreakKind {
    Any,
    Commit,
    Abort,
}

#[derive(Debug, Clone)]
enum BreakSpec {
    Rule { rule: usize, kind: RuleBreakKind },
    Cycle(u64),
    Watch { reg: RegId, cond: Option<u64> },
}

#[derive(Debug, Clone)]
struct BreakPt {
    id: u32,
    spec: BreakSpec,
}

#[derive(Debug, Clone, Copy)]
struct EventRec {
    cycle: u64,
    rule: usize,
    commit: bool,
}

#[derive(Debug, Clone, Default)]
struct RuleCounter {
    attempts: u64,
    commits: u64,
    aborts: u64,
    conflicts: u64,
    other: u64,
    conflict_regs: BTreeMap<u32, u64>,
}

#[derive(Clone)]
struct DebugCheckpoint {
    cycle: u64,
    state: TargetState,
    ring: VecDeque<EventRec>,
    counters: Vec<RuleCounter>,
    last_writes: Vec<(RegId, u64, u64)>,
}

struct Session<'a, 'w> {
    td: &'a TDesign,
    target: &'a mut dyn DebugTarget,
    out: &'a mut dyn Write,
    watchdog: Option<&'w mut ArmedWatchdog>,
    limit: u64,
    /// Cycles executed (the session is paused at this boundary).
    pos: u64,
    ring: VecDeque<EventRec>,
    counters: Vec<RuleCounter>,
    last_writes: Vec<(RegId, u64, u64)>,
    breaks: Vec<BreakPt>,
    next_id: u32,
    /// Genesis checkpoint (never evicted); `None` when a device cannot
    /// save state, which disables time travel.
    genesis: Option<DebugCheckpoint>,
    checkpoints: VecDeque<DebugCheckpoint>,
    interval: u64,
    max_ckpt: u64,
    /// Buffered rule events of a cycle mid-`step-rule` reveal.
    pending: VecDeque<(usize, bool)>,
    pending_cycle: u64,
    pending_commits: usize,
    tt_err: Option<String>,
    done: bool,
}

type CmdResult = std::io::Result<()>;

impl Session<'_, '_> {
    fn reg_name(&self, reg: RegId) -> &str {
        &self.td.regs[reg.0 as usize].name
    }

    fn find_reg(&self, name: &str) -> Option<RegId> {
        self.td
            .regs
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegId(i as u32))
    }

    fn wd_pause(&mut self) {
        if let Some(wd) = self.watchdog.as_deref_mut() {
            wd.pause();
        }
    }

    fn wd_resume(&mut self) {
        if let Some(wd) = self.watchdog.as_deref_mut() {
            wd.resume();
        }
    }

    /// Executes one cycle at `pos`, updating the ring, counters, diff,
    /// and checkpoint ring. `observe_wd` is true only for user-driven
    /// forward execution — replays never feed the watchdog.
    fn exec_one(
        &mut self,
        observe_wd: bool,
    ) -> Result<(CycleCapture, Option<crate::fault::WatchdogTrip>), String> {
        let mut cap = CycleCapture::default();
        self.target.step(self.pos, &mut cap)?;
        let cycle = self.pos;
        self.pos += 1;
        let mut commits = 0u64;
        for &(rule, kind) in &cap.events {
            let commit = matches!(kind, EventKind::Commit);
            if commit {
                commits += 1;
            }
            if self.ring.len() == EVENT_RING {
                self.ring.pop_front();
            }
            self.ring.push_back(EventRec { cycle, rule, commit });
            let c = &mut self.counters[rule];
            c.attempts += 1;
            match kind {
                EventKind::Commit => c.commits += 1,
                EventKind::Fail(FailureReason::Abort) => c.aborts += 1,
                EventKind::Fail(FailureReason::Conflict(reg)) => {
                    c.conflicts += 1;
                    *c.conflict_regs.entry(reg.0).or_insert(0) += 1;
                }
                EventKind::Fail(FailureReason::Unspecified) => c.other += 1,
            }
        }
        self.last_writes = cap.writes.clone();
        if self.genesis.is_some() && self.pos.is_multiple_of(self.interval) && self.pos > self.max_ckpt {
            match self.make_checkpoint() {
                Ok(ck) => {
                    if self.checkpoints.len() == CHECKPOINT_SLOTS {
                        self.checkpoints.pop_front();
                    }
                    self.max_ckpt = ck.cycle;
                    self.checkpoints.push_back(ck);
                }
                Err(e) => {
                    // A device stopped cooperating mid-run; disable time
                    // travel from here on rather than aborting the session.
                    self.tt_err = Some(e);
                    self.genesis = None;
                    self.checkpoints.clear();
                }
            }
        }
        let trip = if observe_wd {
            self.watchdog
                .as_deref_mut()
                .and_then(|wd| wd.observe(self.pos, commits))
        } else {
            None
        };
        Ok((cap, trip))
    }

    fn make_checkpoint(&self) -> Result<DebugCheckpoint, String> {
        Ok(DebugCheckpoint {
            cycle: self.pos,
            state: self.target.checkpoint(self.pos)?,
            ring: self.ring.clone(),
            counters: self.counters.clone(),
            last_writes: self.last_writes.clone(),
        })
    }

    fn time_travel_err(&self) -> String {
        self.tt_err
            .clone()
            .unwrap_or_else(|| "no checkpoints available".into())
    }

    /// Moves the session to cycle boundary `c ≤ pos` by restoring the
    /// nearest checkpoint and re-executing forward.
    fn travel_to(&mut self, c: u64) -> Result<(), String> {
        let ck = self
            .checkpoints
            .iter()
            .rev()
            .find(|k| k.cycle <= c)
            .or(self.genesis.as_ref())
            .cloned()
            .ok_or_else(|| self.time_travel_err())?;
        if ck.cycle > c {
            return Err(format!("cannot travel before cycle {}", ck.cycle));
        }
        self.target.restore(&ck.state)?;
        self.pos = ck.cycle;
        self.ring = ck.ring;
        self.counters = ck.counters;
        self.last_writes = ck.last_writes;
        while self.pos < c {
            self.exec_one(false)?;
        }
        Ok(())
    }

    /// Breakpoint/watchpoint hits produced by the cycle that just
    /// executed (events of cycle `pos - 1`, boundary now at `pos`).
    fn eval_breaks(&self, cap: &CycleCapture) -> Vec<String> {
        let cycle = self.pos - 1;
        let mut hits = Vec::new();
        for bp in &self.breaks {
            match &bp.spec {
                BreakSpec::Rule { rule, kind } => {
                    for &(r, k) in &cap.events {
                        if r != *rule {
                            continue;
                        }
                        let commit = matches!(k, EventKind::Commit);
                        let matched = match kind {
                            RuleBreakKind::Any => true,
                            RuleBreakKind::Commit => commit,
                            RuleBreakKind::Abort => !commit,
                        };
                        if matched {
                            hits.push(format!(
                                "breakpoint {}: rule '{}' {} at cycle {cycle}",
                                bp.id,
                                self.td.rules[r].name,
                                if commit { "commit" } else { "abort" },
                            ));
                            break;
                        }
                    }
                }
                BreakSpec::Cycle(c) => {
                    if *c == self.pos {
                        hits.push(format!("breakpoint {}: cycle {c}", bp.id));
                    }
                }
                BreakSpec::Watch { reg, cond } => {
                    for &(r, old, new) in &cap.writes {
                        if r != *reg {
                            continue;
                        }
                        let matched = match cond {
                            None => true,
                            Some(v) => old != *v && new == *v,
                        };
                        if matched {
                            hits.push(format!(
                                "watchpoint {}: reg '{}' 0x{old:x} -> 0x{new:x} at cycle {cycle}",
                                bp.id,
                                self.reg_name(*reg),
                            ));
                            break;
                        }
                    }
                }
            }
        }
        hits
    }

    fn print_ring(&mut self, n: usize) -> CmdResult {
        writeln!(self.out, "recent events:")?;
        if self.ring.is_empty() {
            writeln!(self.out, "  (none)")?;
            return Ok(());
        }
        let start = self.ring.len().saturating_sub(n);
        for i in start..self.ring.len() {
            let e = self.ring[i];
            writeln!(
                self.out,
                "  cycle {}: rule '{}' {}",
                e.cycle,
                self.td.rules[e.rule].name,
                if e.commit { "commit" } else { "abort" },
            )?;
        }
        Ok(())
    }

    fn print_diff(&mut self) -> CmdResult {
        writeln!(self.out, "register changes:")?;
        if self.last_writes.is_empty() {
            writeln!(self.out, "  (none)")?;
            return Ok(());
        }
        for &(reg, old, new) in &self.last_writes.clone() {
            let name = self.reg_name(reg).to_string();
            writeln!(self.out, "  {name}: 0x{old:x} -> 0x{new:x}")?;
        }
        Ok(())
    }

    fn print_stopped(&mut self) -> CmdResult {
        writeln!(self.out, "stopped at cycle {}", self.pos)
    }

    fn print_hit_context(&mut self, hits: &[String]) -> CmdResult {
        for h in hits {
            writeln!(self.out, "{h}")?;
        }
        self.print_ring(LAST_DEFAULT)?;
        self.print_diff()?;
        self.print_stopped()
    }

    fn print_trip(&mut self, trip: &crate::fault::WatchdogTrip) -> CmdResult {
        writeln!(self.out, "watchdog: {} at cycle {}", trip.reason, trip.cycle)?;
        self.print_stopped()
    }

    /// Drops any half-revealed `step-rule` cycle.
    fn clear_pending(&mut self) {
        self.pending.clear();
    }

    fn finished_line(&mut self) -> CmdResult {
        writeln!(self.out, "program finished at cycle {}", self.pos)
    }

    // ---- commands ----------------------------------------------------

    fn cmd_step(&mut self, n: u64) -> CmdResult {
        if self.pos >= self.limit {
            return writeln!(self.out, "already at end of program (cycle {})", self.pos);
        }
        self.wd_resume();
        let mut tripped = false;
        for _ in 0..n {
            if self.pos >= self.limit {
                break;
            }
            match self.exec_one(true) {
                Ok((_, Some(trip))) => {
                    self.wd_pause();
                    self.print_trip(&trip)?;
                    tripped = true;
                    break;
                }
                Ok((_, None)) => {}
                Err(e) => {
                    self.wd_pause();
                    return writeln!(self.out, "error: {e}");
                }
            }
        }
        self.wd_pause();
        if tripped {
            return Ok(());
        }
        if self.pos >= self.limit {
            self.finished_line()
        } else {
            self.print_stopped()
        }
    }

    fn cmd_step_rule(&mut self) -> CmdResult {
        if self.pending.is_empty() {
            if self.pos >= self.limit {
                return writeln!(self.out, "already at end of program (cycle {})", self.pos);
            }
            self.wd_resume();
            let r = self.exec_one(true);
            self.wd_pause();
            match r {
                Ok((cap, trip)) => {
                    self.pending_cycle = self.pos - 1;
                    self.pending_commits = cap
                        .events
                        .iter()
                        .filter(|(_, k)| matches!(k, EventKind::Commit))
                        .count();
                    self.pending = cap
                        .events
                        .iter()
                        .map(|&(r, k)| (r, matches!(k, EventKind::Commit)))
                        .collect();
                    if let Some(trip) = trip {
                        self.print_trip(&trip)?;
                    }
                }
                Err(e) => return writeln!(self.out, "error: {e}"),
            }
        }
        match self.pending.pop_front() {
            Some((rule, commit)) => {
                writeln!(
                    self.out,
                    "cycle {}: rule '{}' {}",
                    self.pending_cycle,
                    self.td.rules[rule].name,
                    if commit { "commit" } else { "abort" },
                )?;
                if self.pending.is_empty() {
                    writeln!(
                        self.out,
                        "cycle {}: done ({} commit{})",
                        self.pending_cycle,
                        self.pending_commits,
                        if self.pending_commits == 1 { "" } else { "s" },
                    )?;
                }
            }
            None => {
                // An empty schedule: the cycle ran but had no rule events.
                writeln!(
                    self.out,
                    "cycle {}: done (0 commits)",
                    self.pending_cycle
                )?;
            }
        }
        Ok(())
    }

    fn cmd_continue(&mut self, until: Option<u64>) -> CmdResult {
        let stop_at = until.unwrap_or(self.limit).min(self.limit);
        if self.pos >= stop_at {
            if until.is_some() {
                return writeln!(
                    self.out,
                    "run-to: cycle {stop_at} is not ahead of cycle {} (use reverse-step)",
                    self.pos
                );
            }
            return writeln!(self.out, "already at end of program (cycle {})", self.pos);
        }
        self.wd_resume();
        loop {
            if self.pos >= stop_at {
                self.wd_pause();
                if stop_at < self.limit {
                    return self.print_stopped();
                }
                return self.finished_line();
            }
            match self.exec_one(true) {
                Ok((cap, trip)) => {
                    if let Some(trip) = trip {
                        self.wd_pause();
                        return self.print_trip(&trip);
                    }
                    let hits = self.eval_breaks(&cap);
                    if !hits.is_empty() {
                        self.wd_pause();
                        return self.print_hit_context(&hits);
                    }
                }
                Err(e) => {
                    self.wd_pause();
                    return writeln!(self.out, "error: {e}");
                }
            }
        }
    }

    fn cmd_reverse_step(&mut self, n: u64) -> CmdResult {
        if self.genesis.is_none() {
            let e = self.time_travel_err();
            return writeln!(self.out, "time travel unavailable: {e}");
        }
        let floor = self.genesis.as_ref().map(|g| g.cycle).unwrap_or(0);
        if self.pos <= floor {
            return writeln!(self.out, "already at cycle {floor}");
        }
        let target = self.pos.saturating_sub(n).max(floor);
        match self.travel_to(target) {
            Ok(()) => self.print_stopped(),
            Err(e) => writeln!(self.out, "error: {e}"),
        }
    }

    fn cmd_reverse_continue(&mut self) -> CmdResult {
        if self.genesis.is_none() {
            let e = self.time_travel_err();
            return writeln!(self.out, "time travel unavailable: {e}");
        }
        if self.breaks.is_empty() {
            return writeln!(self.out, "no breakpoints or watchpoints set");
        }
        let cur = self.pos;
        let floor = self.genesis.as_ref().map(|g| g.cycle).unwrap_or(0);
        if cur <= floor {
            return writeln!(self.out, "already at cycle {floor}");
        }
        // Replay the whole timeline from genesis, remembering the last
        // hit strictly before the current position, then travel there.
        if let Err(e) = self.travel_to(floor) {
            return writeln!(self.out, "error: {e}");
        }
        let mut last_hit: Option<(u64, Vec<String>)> = None;
        while self.pos < cur {
            match self.exec_one(false) {
                Ok((cap, _)) => {
                    let hits = self.eval_breaks(&cap);
                    if !hits.is_empty() && self.pos < cur {
                        last_hit = Some((self.pos, hits));
                    }
                }
                Err(e) => return writeln!(self.out, "error: {e}"),
            }
        }
        match last_hit {
            Some((at, hits)) => {
                if let Err(e) = self.travel_to(at) {
                    return writeln!(self.out, "error: {e}");
                }
                self.print_hit_context(&hits)
            }
            None => {
                writeln!(self.out, "reverse-continue: no earlier hit")?;
                self.print_stopped()
            }
        }
    }

    fn cmd_focus_lane(&mut self, lane: usize) -> CmdResult {
        match self.target.set_focus(lane) {
            Ok(()) => {
                // Event history, counters, and checkpointed presentation
                // state all described the old lane; start fresh.
                self.ring.clear();
                self.counters = vec![RuleCounter::default(); self.td.rules.len()];
                self.last_writes.clear();
                for ck in self
                    .checkpoints
                    .iter_mut()
                    .chain(self.genesis.iter_mut())
                {
                    ck.ring.clear();
                    ck.counters = vec![RuleCounter::default(); self.td.rules.len()];
                    ck.last_writes.clear();
                }
                writeln!(
                    self.out,
                    "focused on lane {lane} of {} (event history cleared)",
                    self.target.lanes()
                )
            }
            Err(e) => writeln!(self.out, "focus-lane: {e}"),
        }
    }

    fn cmd_print(&mut self, name: &str) -> CmdResult {
        match self.find_reg(name) {
            Some(reg) => {
                if self.td.regs[reg.0 as usize].width > 64 {
                    return writeln!(
                        self.out,
                        "{name} is wider than 64 bits (use 'snapshot' for full values)"
                    );
                }
                let v = self.target.reg_get(reg);
                writeln!(self.out, "{name} = 0x{v:x}")
            }
            None => writeln!(self.out, "no register named '{name}'"),
        }
    }

    fn cmd_info(&mut self, what: &str) -> CmdResult {
        match what {
            "breaks" => {
                if self.breaks.is_empty() {
                    return writeln!(self.out, "no breakpoints or watchpoints");
                }
                writeln!(self.out, "breakpoints:")?;
                for bp in &self.breaks.clone() {
                    match &bp.spec {
                        BreakSpec::Rule { rule, kind } => {
                            let suffix = match kind {
                                RuleBreakKind::Any => "",
                                RuleBreakKind::Commit => " commit",
                                RuleBreakKind::Abort => " abort",
                            };
                            writeln!(
                                self.out,
                                "  {}: rule '{}'{suffix}",
                                bp.id, self.td.rules[*rule].name
                            )?;
                        }
                        BreakSpec::Cycle(c) => writeln!(self.out, "  {}: cycle {c}", bp.id)?,
                        BreakSpec::Watch { reg, cond } => {
                            let name = self.reg_name(*reg).to_string();
                            match cond {
                                Some(v) => writeln!(
                                    self.out,
                                    "  {}: watch '{name}' == 0x{v:x}",
                                    bp.id
                                )?,
                                None => writeln!(self.out, "  {}: watch '{name}'", bp.id)?,
                            }
                        }
                    }
                }
                Ok(())
            }
            "rules" => {
                writeln!(self.out, "rules:")?;
                for (i, c) in self.counters.clone().iter().enumerate() {
                    let mut line = format!(
                        "  {}: attempts {}, commits {}, aborts {}, conflicts {}",
                        self.td.rules[i].name, c.attempts, c.commits, c.aborts, c.conflicts
                    );
                    if !c.conflict_regs.is_empty() {
                        let parts: Vec<String> = c
                            .conflict_regs
                            .iter()
                            .map(|(r, n)| {
                                format!("{}: {n}", self.td.regs[*r as usize].name)
                            })
                            .collect();
                        line.push_str(&format!(" ({})", parts.join(", ")));
                    }
                    if c.other > 0 {
                        line.push_str(&format!(", unclassified {}", c.other));
                    }
                    writeln!(self.out, "{line}")?;
                }
                Ok(())
            }
            "regs" => {
                writeln!(self.out, "registers:")?;
                for i in 0..self.td.num_regs() {
                    let info = &self.td.regs[i];
                    let name = info.name.clone();
                    let width = info.width;
                    if width > 64 {
                        writeln!(self.out, "  {name} = ({width} bits, not shown)")?;
                    } else {
                        let v = self.target.reg_get(RegId(i as u32));
                        writeln!(
                            self.out,
                            "  {name} = 0x{v:x} ({width} bit{})",
                            if width == 1 { "" } else { "s" }
                        )?;
                    }
                }
                Ok(())
            }
            "checkpoints" => {
                if self.genesis.is_none() {
                    let e = self.time_travel_err();
                    return writeln!(self.out, "time travel unavailable: {e}");
                }
                let mut cycles: Vec<u64> =
                    self.genesis.iter().map(|g| g.cycle).collect();
                cycles.extend(self.checkpoints.iter().map(|c| c.cycle));
                let list: Vec<String> = cycles.iter().map(u64::to_string).collect();
                writeln!(
                    self.out,
                    "checkpoints at cycles: {} (interval {})",
                    list.join(" "),
                    self.interval
                )
            }
            other => writeln!(
                self.out,
                "unknown info topic '{other}' (try breaks, rules, regs, checkpoints)"
            ),
        }
    }

    fn cmd_dump_vcd(&mut self, path: &str) -> CmdResult {
        let genesis = match &self.genesis {
            Some(g) => g.clone(),
            None => {
                let e = self.time_travel_err();
                return writeln!(self.out, "time travel unavailable: {e}");
            }
        };
        let cur = self.pos;
        let mut vcd = VcdRecorder::all_registers(self.td);
        if let Err(e) = self.target.restore(&genesis.state) {
            return writeln!(self.out, "error: {e}");
        }
        self.pos = genesis.cycle;
        while self.pos < cur {
            if let Err(e) = self.target.step_vcd(self.pos, &mut vcd) {
                return writeln!(self.out, "error: {e}");
            }
            self.pos += 1;
        }
        // The replay left the engine exactly where the session was
        // paused; only the presentation state was untouched, and it
        // still describes cycle `cur`.
        match std::fs::write(path, vcd.finish(cur)) {
            Ok(()) => writeln!(
                self.out,
                "vcd written to {path} ({} cycle{})",
                cur - genesis.cycle,
                if cur - genesis.cycle == 1 { "" } else { "s" }
            ),
            Err(e) => writeln!(self.out, "error: cannot write '{path}': {e}"),
        }
    }

    fn cmd_snapshot(&mut self, path: &str) -> CmdResult {
        match self.target.snapshot(self.pos) {
            Ok(snap) => match std::fs::write(path, snap.to_bytes()) {
                Ok(()) => writeln!(
                    self.out,
                    "snapshot written to {path} (cycle {})",
                    self.pos
                ),
                Err(e) => writeln!(self.out, "error: cannot write '{path}': {e}"),
            },
            Err(e) => writeln!(self.out, "error: {e}"),
        }
    }

    fn cmd_help(&mut self) -> CmdResult {
        self.out.write_all(HELP.as_bytes())
    }

    fn add_break(&mut self, spec: BreakSpec) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.breaks.push(BreakPt { id, spec });
        id
    }

    /// Parses and runs one command line. Returns false when the session
    /// should end.
    fn dispatch(&mut self, line: &str) -> std::io::Result<bool> {
        let words: Vec<&str> = line.split_whitespace().collect();
        if words.is_empty() {
            return Ok(true);
        }
        if words[0] != "step-rule" {
            self.clear_pending();
        }
        match words[0] {
            "help" => self.cmd_help()?,
            "quit" | "exit" => {
                self.done = true;
                return Ok(false);
            }
            "break" => match words.get(1) {
                Some(&"rule") => match words.get(2) {
                    Some(name) => {
                        let kind = match words.get(3) {
                            None => Some(RuleBreakKind::Any),
                            Some(&"commit") => Some(RuleBreakKind::Commit),
                            Some(&"abort") => Some(RuleBreakKind::Abort),
                            Some(_) => None,
                        };
                        let rule = self.td.rules.iter().position(|r| &r.name == name);
                        match (rule, kind) {
                            (Some(rule), Some(kind)) => {
                                let id = self.add_break(BreakSpec::Rule { rule, kind });
                                let suffix = match kind {
                                    RuleBreakKind::Any => String::new(),
                                    RuleBreakKind::Commit => " commit".into(),
                                    RuleBreakKind::Abort => " abort".into(),
                                };
                                writeln!(self.out, "breakpoint {id}: rule '{name}'{suffix}")?;
                            }
                            (None, _) => writeln!(self.out, "no rule named '{name}'")?,
                            (_, None) => writeln!(
                                self.out,
                                "usage: break rule <name> [commit|abort]"
                            )?,
                        }
                    }
                    None => writeln!(self.out, "usage: break rule <name> [commit|abort]")?,
                },
                Some(&"cycle") => match words.get(2).and_then(|w| parse_u64(w)) {
                    Some(c) => {
                        let id = self.add_break(BreakSpec::Cycle(c));
                        writeln!(self.out, "breakpoint {id}: cycle {c}")?;
                    }
                    None => writeln!(self.out, "usage: break cycle <n>")?,
                },
                _ => writeln!(self.out, "usage: break rule <name> [commit|abort] | break cycle <n>")?,
            },
            "watch" => match words.get(1) {
                Some(name) => match self.find_reg(name) {
                    Some(reg) => {
                        if self.td.regs[reg.0 as usize].width > 64 {
                            writeln!(
                                self.out,
                                "register '{name}' is wider than 64 bits (unsupported)"
                            )?;
                        } else {
                            let cond = match (words.get(2), words.get(3)) {
                                (None, _) => Some(None),
                                (Some(&"=="), Some(v)) => parse_u64(v).map(Some),
                                _ => None,
                            };
                            match cond {
                                Some(cond) => {
                                    let id = self.add_break(BreakSpec::Watch { reg, cond });
                                    match cond {
                                        Some(v) => writeln!(
                                            self.out,
                                            "watchpoint {id}: reg '{name}' == 0x{v:x}"
                                        )?,
                                        None => writeln!(
                                            self.out,
                                            "watchpoint {id}: reg '{name}'"
                                        )?,
                                    }
                                }
                                None => writeln!(
                                    self.out,
                                    "usage: watch <reg> [== <value>]"
                                )?,
                            }
                        }
                    }
                    None => writeln!(self.out, "no register named '{name}'")?,
                },
                None => writeln!(self.out, "usage: watch <reg> [== <value>]")?,
            },
            "delete" => match words.get(1).and_then(|w| parse_u64(w)) {
                Some(id) => {
                    let id = id as u32;
                    let before = self.breaks.len();
                    self.breaks.retain(|b| b.id != id);
                    if self.breaks.len() < before {
                        writeln!(self.out, "deleted {id}")?;
                    } else {
                        writeln!(self.out, "no breakpoint {id}")?;
                    }
                }
                None => writeln!(self.out, "usage: delete <id>")?,
            },
            "info" => {
                let topic = words.get(1).copied().unwrap_or("");
                self.cmd_info(topic)?;
            }
            "print" => match words.get(1) {
                Some(name) => self.cmd_print(name)?,
                None => writeln!(self.out, "usage: print <reg>")?,
            },
            "step" => {
                let n = words.get(1).and_then(|w| parse_u64(w)).unwrap_or(1).max(1);
                self.cmd_step(n)?;
            }
            "step-rule" => self.cmd_step_rule()?,
            "continue" => self.cmd_continue(None)?,
            "run-to" => match words.get(1).and_then(|w| parse_u64(w)) {
                Some(c) => self.cmd_continue(Some(c))?,
                None => writeln!(self.out, "usage: run-to <cycle>")?,
            },
            "reverse-step" => {
                let n = words.get(1).and_then(|w| parse_u64(w)).unwrap_or(1).max(1);
                self.cmd_reverse_step(n)?;
            }
            "reverse-continue" => self.cmd_reverse_continue()?,
            "focus-lane" => match words.get(1).and_then(|w| parse_u64(w)) {
                Some(l) => self.cmd_focus_lane(l as usize)?,
                None => writeln!(self.out, "usage: focus-lane <n>")?,
            },
            "last" => {
                let n = words
                    .get(1)
                    .and_then(|w| parse_u64(w))
                    .map(|n| n as usize)
                    .unwrap_or(LAST_DEFAULT)
                    .max(1);
                self.print_ring(n)?;
            }
            "diff" => self.print_diff()?,
            "dump-vcd" => match words.get(1) {
                Some(path) => self.cmd_dump_vcd(path)?,
                None => writeln!(self.out, "usage: dump-vcd <file>")?,
            },
            "snapshot" => match words.get(1) {
                Some(path) => self.cmd_snapshot(path)?,
                None => writeln!(self.out, "usage: snapshot <file>")?,
            },
            other => writeln!(self.out, "unknown command: '{other}' (try 'help')")?,
        }
        Ok(true)
    }
}

const HELP: &str = "\
commands:
  break rule <name> [commit|abort]  breakpoint on a rule event
  break cycle <n>                   breakpoint on reaching cycle <n>
  watch <reg> [== <value>]          watchpoint on a register
  delete <id>                       delete a breakpoint/watchpoint
  info breaks|rules|regs|checkpoints
  print <reg>                       print one register
  step [n]                          execute n cycles (default 1)
  step-rule                         reveal the next rule event of a cycle
  continue                          run until a breakpoint/watchpoint hits
  run-to <cycle>                    run until the given cycle boundary
  reverse-step [n]                  go back n cycles (default 1)
  reverse-continue                  go back to the previous hit
  focus-lane <n>                    switch the observed batch lane
  last [n]                          print the recent rule-event ring
  diff                              register changes of the last cycle
  dump-vcd <file>                   write a VCD trace of the run so far
  snapshot <file>                   write a .ksnap of the current state
  quit                              leave the debugger
";

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Picks the checkpoint interval: denser for small designs (cheap
/// checkpoints, snappy reverse-step), sparser for big ones.
fn checkpoint_interval(lane_bytes: usize) -> u64 {
    ((lane_bytes / 256) as u64).clamp(8, 1024)
}

/// Runs a debug session over `target`, reading commands from `input` and
/// writing the transcript to `out`.
///
/// With [`DebugOptions::echo`] set (script mode) each command is echoed
/// as `(kdb) <cmd>`, making the output a complete transcript suitable
/// for byte-comparison across backends. Lines that are empty or start
/// with `#` are skipped.
///
/// When a watchdog is supplied, its wall clock is paused for the whole
/// session except user-driven forward execution, and trips are reported
/// in-band instead of aborting the process.
///
/// # Errors
///
/// Only I/O errors on `input`/`out` are returned; simulation and command
/// errors are reported in the transcript.
pub fn run_session(
    td: &TDesign,
    target: &mut dyn DebugTarget,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    watchdog: Option<&mut ArmedWatchdog>,
    opts: &DebugOptions,
) -> std::io::Result<()> {
    let pos = target.start_cycle();
    let mut sess = Session {
        td,
        target,
        out,
        watchdog,
        limit: opts.limit,
        pos,
        ring: VecDeque::new(),
        counters: vec![RuleCounter::default(); td.rules.len()],
        last_writes: Vec::new(),
        breaks: Vec::new(),
        next_id: 1,
        genesis: None,
        checkpoints: VecDeque::new(),
        interval: 8,
        max_ckpt: pos,
        pending: VecDeque::new(),
        pending_cycle: 0,
        pending_commits: 0,
        tt_err: None,
        done: false,
    };
    sess.wd_pause();
    writeln!(
        sess.out,
        "kdb: attached to '{}' ({} regs, {} rules), cycle limit {}",
        td.name,
        td.num_regs(),
        td.rules.len(),
        sess.limit
    )?;
    match sess.make_checkpoint() {
        Ok(g) => {
            sess.interval = checkpoint_interval(g.state.lane_bytes());
            writeln!(
                sess.out,
                "kdb: checkpoint interval {} cycles ({} slots)",
                sess.interval, CHECKPOINT_SLOTS
            )?;
            sess.genesis = Some(g);
        }
        Err(e) => {
            writeln!(sess.out, "kdb: time travel disabled: {e}")?;
            sess.tt_err = Some(e);
        }
    }
    sess.print_stopped()?;
    let mut line = String::new();
    loop {
        if opts.prompt {
            write!(sess.out, "(kdb) ")?;
            sess.out.flush()?;
        }
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let cmd = line.trim();
        if cmd.is_empty() || cmd.starts_with('#') {
            continue;
        }
        if opts.echo {
            writeln!(sess.out, "(kdb) {cmd}")?;
        }
        if !sess.dispatch(cmd)? {
            break;
        }
    }
    sess.wd_resume();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::check::check;
    use crate::design::DesignBuilder;
    use crate::interp::Interp;
    use std::io::Cursor;

    /// A counter that ping-pongs a state bit and increments `n` every
    /// other cycle — small, deterministic, and rich enough to break on.
    fn two_rule_design() -> TDesign {
        let mut b = DesignBuilder::new("stm");
        b.reg("st", 1, 0u64);
        b.reg("n", 8, 0u64);
        b.rule(
            "rlA",
            vec![
                guard(rd0("st").eq(k(1, 0))),
                wr0("st", k(1, 1)),
                wr0("n", rd0("n").add(k(8, 1))),
            ],
        );
        b.rule("rlB", vec![guard(rd0("st").eq(k(1, 1))), wr0("st", k(1, 0))]);
        b.schedule(["rlA", "rlB"]);
        check(&b.build()).unwrap()
    }

    fn run_script(td: &TDesign, script: &str, limit: u64) -> String {
        let mut target = ScalarTarget::new(Box::new(Interp::new(td)), Vec::new());
        let mut out = Vec::new();
        let mut input = Cursor::new(script.as_bytes().to_vec());
        run_session(
            td,
            &mut target,
            &mut input,
            &mut out,
            None,
            &DebugOptions {
                limit,
                echo: true,
                prompt: false,
            },
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn breakpoints_and_watchpoints_stop_the_run() {
        let td = two_rule_design();
        let t = run_script(
            &td,
            "break rule rlB commit\ncontinue\ndelete 1\nwatch n == 0x3\ncontinue\nquit\n",
            100,
        );
        // rlB first commits during cycle 1 (st was set during cycle 0).
        assert!(
            t.contains("breakpoint 1: rule 'rlB' commit at cycle 1"),
            "transcript:\n{t}"
        );
        assert!(t.contains("stopped at cycle 2"), "transcript:\n{t}");
        // n reaches 3 during cycle 4 (increments on cycles 0, 2, 4).
        assert!(
            t.contains("watchpoint 2: reg 'n' 0x2 -> 0x3 at cycle 4"),
            "transcript:\n{t}"
        );
        assert!(t.contains("recent events:"), "transcript:\n{t}");
        assert!(t.contains("register changes:"), "transcript:\n{t}");
    }

    #[test]
    fn reverse_step_crosses_checkpoint_boundaries_and_rejoins_the_timeline() {
        let td = two_rule_design();
        // Interval is the 8-cycle floor for this tiny design; going
        // 20 → 7 crosses the cycle-16 and cycle-8 checkpoints.
        let t = run_script(
            &td,
            "run-to 20\nprint n\nreverse-step 13\nprint n\nrun-to 20\nprint n\nquit\n",
            100,
        );
        assert!(t.contains("kdb: checkpoint interval 8 cycles"), "transcript:\n{t}");
        assert!(t.contains("stopped at cycle 7"), "transcript:\n{t}");
        // n after 20 cycles = 10; after 7 cycles = 4.
        let after20 = t.matches("n = 0xa").count();
        assert_eq!(after20, 2, "value must be identical before and after time travel:\n{t}");
        assert!(t.contains("n = 0x4"), "transcript:\n{t}");
    }

    #[test]
    fn step_rule_reveals_one_event_at_a_time() {
        let td = two_rule_design();
        let t = run_script(&td, "step-rule\nstep-rule\nstep-rule\nquit\n", 100);
        assert!(t.contains("cycle 0: rule 'rlA' commit"), "transcript:\n{t}");
        assert!(t.contains("cycle 0: rule 'rlB' abort"), "transcript:\n{t}");
        assert!(t.contains("cycle 0: done (1 commit)"), "transcript:\n{t}");
        assert!(t.contains("cycle 1: rule 'rlA' abort"), "transcript:\n{t}");
    }

    #[test]
    fn sessions_are_deterministic() {
        let td = two_rule_design();
        let script = "break rule rlA\ncontinue\nstep 3\nreverse-step 2\nlast 4\ndiff\ninfo rules\ncontinue\nquit\n";
        let a = run_script(&td, script, 50);
        let b = run_script(&td, script, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn reverse_continue_returns_to_the_previous_hit() {
        let td = two_rule_design();
        let t = run_script(
            &td,
            "watch n == 0x2\ncontinue\nrun-to 10\nreverse-continue\nquit\n",
            100,
        );
        // n becomes 2 during cycle 2; the watchpoint fires there both
        // forward and in reverse.
        let hits = t
            .matches("watchpoint 1: reg 'n' 0x1 -> 0x2 at cycle 2")
            .count();
        assert_eq!(hits, 2, "transcript:\n{t}");
        assert!(t.contains("stopped at cycle 3"), "transcript:\n{t}");
    }

    #[test]
    fn info_rules_reports_abort_breakdown() {
        let mut b = DesignBuilder::new("cfl");
        b.reg("x", 8, 0u64);
        b.rule("w1", vec![wr0("x", k(8, 1))]);
        b.rule("w2", vec![wr0("x", k(8, 2))]);
        b.schedule(["w1", "w2"]);
        let td = check(&b.build()).unwrap();
        let t = run_script(&td, "step 4\ninfo rules\nquit\n", 100);
        assert!(
            t.contains("w2: attempts 4, commits 0, aborts 0, conflicts 4 (x: 4)"),
            "transcript:\n{t}"
        );
    }

    #[test]
    fn run_past_end_reports_finish_and_reverse_still_works() {
        let td = two_rule_design();
        let t = run_script(&td, "continue\nstep\nreverse-step\nprint n\nquit\n", 12);
        assert!(t.contains("program finished at cycle 12"), "transcript:\n{t}");
        assert!(t.contains("already at end of program (cycle 12)"), "transcript:\n{t}");
        assert!(t.contains("stopped at cycle 11"), "transcript:\n{t}");
        assert!(t.contains("n = 0x6"), "transcript:\n{t}");
    }
}
