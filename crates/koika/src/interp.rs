//! The reference interpreter: a direct implementation of Kôika's
//! one-rule-at-a-time log semantics (§3.1 of the paper).
//!
//! This is the "naive model": it keeps the beginning-of-cycle register
//! values, a cycle log, and a per-rule log, each log entry holding full
//! read-write sets (all four port flags) and both `data0` and `data1`
//! fields. It is deliberately unoptimized — it exists to be *obviously
//! correct*, serving as the ground truth that every optimized backend is
//! differentially tested against, and as the `O0` rung of the ablation
//! ladder.
//!
//! The exact check sets (documented here once; every backend follows them):
//!
//! | operation | fails if                                  | value returned            |
//! |-----------|-------------------------------------------|---------------------------|
//! | `rd0`     | `w0 \| w1` in the **cycle log**           | beginning-of-cycle value  |
//! | `rd1`     | `w1` in the **cycle log**                 | rule `d0`, else cycle `d0`, else beginning-of-cycle |
//! | `wr0`     | `r1 \| w0 \| w1` in **either log**        | —                         |
//! | `wr1`     | `w1` in **either log**                    | —                         |
//!
//! Reads check only the cycle log so that a rule may legally read back its
//! own writes' *pre-state* — the "Goldbergian contraption" of §3.2, which
//! this interpreter supports exactly and the optimized VM (like Cuttlesim)
//! intentionally rejects after warning.

use crate::bits::Bits;
use crate::device::{RegAccess, SimBackend};
use crate::obs::{FailureReason, Observer};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::tir::{RegId, TAction, TDesign, TExpr};
use crate::ast::{BinOp, Port, UnOp};

/// Rule execution aborted: an explicit `abort` (or failed guard), or a
/// read/write check failing on a specific register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aborted {
    Explicit,
    Conflict(RegId),
}

#[derive(Debug, Clone, Default)]
struct LogEntry {
    r0: bool,
    r1: bool,
    w0: bool,
    w1: bool,
    d0: Option<Bits>,
    d1: Option<Bits>,
}

impl LogEntry {
    fn clear(&mut self) {
        *self = LogEntry::default();
    }
}

/// The reference simulator. See the module documentation.
pub struct Interp {
    design: TDesign,
    regs: Vec<Bits>,
    cycle_log: Vec<LogEntry>,
    rule_log: Vec<LogEntry>,
    locals: Vec<Option<Bits>>,
    cycles: u64,
    fired: u64,
    /// Per-rule commit counts (same order as `design.rules`).
    fired_per_rule: Vec<u64>,
    mid_cycle: bool,
}

impl Interp {
    /// Creates an interpreter with all registers at their initial values.
    pub fn new(design: &TDesign) -> Self {
        let n = design.num_regs();
        Interp {
            regs: design.initial_values(),
            cycle_log: (0..n).map(|_| LogEntry::default()).collect(),
            rule_log: (0..n).map(|_| LogEntry::default()).collect(),
            locals: Vec::new(),
            cycles: 0,
            fired: 0,
            fired_per_rule: vec![0; design.rules.len()],
            design: design.clone(),
        mid_cycle: false,
        }
    }

    /// The design being simulated.
    pub fn design(&self) -> &TDesign {
        &self.design
    }

    /// The current value of a register (between cycles), at full width.
    pub fn reg_bits(&self, reg: RegId) -> &Bits {
        &self.regs[reg.0 as usize]
    }

    /// Sets a register's value (between cycles).
    pub fn set_reg_bits(&mut self, reg: RegId, v: Bits) {
        assert_eq!(
            v.width(),
            self.design.regs[reg.0 as usize].width,
            "width mismatch poking {}",
            self.design.regs[reg.0 as usize].name
        );
        self.regs[reg.0 as usize] = v;
    }

    /// How many times each rule has committed, in rule-declaration order.
    pub fn fired_per_rule(&self) -> &[u64] {
        &self.fired_per_rule
    }

    fn resolve_idx(&self, idx: &Bits, len: u32) -> usize {
        (idx.low_u64() & (len as u64 - 1)) as usize
    }

    fn read(&mut self, port: Port, reg: RegId) -> Result<Bits, Aborted> {
        let i = reg.0 as usize;
        let cyc = &self.cycle_log[i];
        match port {
            Port::P0 => {
                if cyc.w0 || cyc.w1 {
                    return Err(Aborted::Conflict(reg));
                }
                self.rule_log[i].r0 = true;
                Ok(self.regs[i].clone())
            }
            Port::P1 => {
                if cyc.w1 {
                    return Err(Aborted::Conflict(reg));
                }
                let value = if let Some(d0) = &self.rule_log[i].d0 {
                    d0.clone()
                } else if let Some(d0) = &cyc.d0 {
                    d0.clone()
                } else {
                    self.regs[i].clone()
                };
                self.rule_log[i].r1 = true;
                Ok(value)
            }
        }
    }

    fn write(&mut self, port: Port, reg: RegId, v: Bits) -> Result<(), Aborted> {
        let i = reg.0 as usize;
        let (cyc, rl) = (&self.cycle_log[i], &self.rule_log[i]);
        match port {
            Port::P0 => {
                if cyc.r1 || cyc.w0 || cyc.w1 || rl.r1 || rl.w0 || rl.w1 {
                    return Err(Aborted::Conflict(reg));
                }
                let e = &mut self.rule_log[i];
                e.w0 = true;
                e.d0 = Some(v);
            }
            Port::P1 => {
                if cyc.w1 || rl.w1 {
                    return Err(Aborted::Conflict(reg));
                }
                let e = &mut self.rule_log[i];
                e.w1 = true;
                e.d1 = Some(v);
            }
        }
        Ok(())
    }

    fn eval(&mut self, e: &TExpr) -> Result<Bits, Aborted> {
        match e {
            TExpr::Const { v, .. } => Ok(v.clone()),
            TExpr::Var { slot, .. } => Ok(self.locals[*slot as usize]
                .clone()
                .expect("checker guarantees definite assignment")),
            TExpr::Read { port, reg, .. } => self.read(*port, *reg),
            TExpr::ReadArr {
                port,
                base,
                len,
                idx,
                ..
            } => {
                let i = self.eval(idx)?;
                let elem = RegId(base.0 + self.resolve_idx(&i, *len) as u32);
                self.read(*port, elem)
            }
            TExpr::Un { op, a, w } => {
                let va = self.eval(a)?;
                Ok(match op {
                    UnOp::Not => va.not(),
                    UnOp::Neg => va.neg(),
                    UnOp::Zext(_) => va.zext(*w),
                    UnOp::Sext(_) => va.sext(*w),
                    UnOp::Slice { lo, width } => va.slice(*lo, *width),
                })
            }
            TExpr::Bin { op, a, b, .. } => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                Ok(match op {
                    BinOp::Add => va.add(&vb),
                    BinOp::Sub => va.sub(&vb),
                    BinOp::Mul => va.mul(&vb),
                    BinOp::And => va.and(&vb),
                    BinOp::Or => va.or(&vb),
                    BinOp::Xor => va.xor(&vb),
                    BinOp::Shl => va.shl(vb.low_u64()),
                    BinOp::Shr => va.shr(vb.low_u64()),
                    BinOp::Sra => va.sra(vb.low_u64()),
                    BinOp::Eq => va.eq_bits(&vb),
                    BinOp::Ne => va.eq_bits(&vb).not(),
                    BinOp::Ult => va.ult(&vb),
                    BinOp::Ule => vb.ult(&va).not(),
                    BinOp::Slt => va.slt(&vb),
                    BinOp::Sle => vb.slt(&va).not(),
                    BinOp::Concat => va.concat(&vb),
                })
            }
            TExpr::Select { c, t, f, .. } => {
                let vc = self.eval(c)?;
                if vc.is_zero() {
                    self.eval(f)
                } else {
                    self.eval(t)
                }
            }
        }
    }

    fn exec(&mut self, actions: &[TAction]) -> Result<(), Aborted> {
        for a in actions {
            match a {
                TAction::Let { slot, e } => {
                    let v = self.eval(e)?;
                    let slot = *slot as usize;
                    if slot >= self.locals.len() {
                        self.locals.resize(slot + 1, None);
                    }
                    self.locals[slot] = Some(v);
                }
                TAction::Write { port, reg, e } => {
                    let v = self.eval(e)?;
                    self.write(*port, *reg, v)?;
                }
                TAction::WriteArr {
                    port,
                    base,
                    len,
                    idx,
                    e,
                } => {
                    let i = self.eval(idx)?;
                    let v = self.eval(e)?;
                    let elem = RegId(base.0 + self.resolve_idx(&i, *len) as u32);
                    self.write(*port, elem, v)?;
                }
                TAction::If { c, t, f } => {
                    let vc = self.eval(c)?;
                    if vc.is_zero() {
                        self.exec(f)?;
                    } else {
                        self.exec(t)?;
                    }
                }
                TAction::Abort => return Err(Aborted::Explicit),
                TAction::Named { body, .. } => self.exec(body)?,
            }
        }
        Ok(())
    }

    /// Starts a new cycle: clears the cycle log. Exposed (with
    /// [`Interp::step_rule`] and [`Interp::end_cycle`]) so debugger-style
    /// harnesses can stop mid-cycle, as in the paper's case study 1.
    pub fn begin_cycle(&mut self) {
        for e in &mut self.cycle_log {
            e.clear();
        }
        self.mid_cycle = true;
    }

    /// Executes one rule transactionally; returns `true` if it committed.
    ///
    /// Must be bracketed by [`Interp::begin_cycle`] / [`Interp::end_cycle`].
    pub fn step_rule(&mut self, rule_idx: usize) -> bool {
        self.try_rule(rule_idx).is_ok()
    }

    /// [`Interp::step_rule`], but reporting *why* a failed rule failed.
    fn try_rule(&mut self, rule_idx: usize) -> Result<(), Aborted> {
        for e in &mut self.rule_log {
            e.clear();
        }
        self.locals.clear();
        let body = std::mem::take(&mut self.design.rules[rule_idx].body);
        let result = self.exec(&body);
        self.design.rules[rule_idx].body = body;
        if result.is_ok() {
            // Commit: or the read-write sets, move write data.
            for (cyc, rl) in self.cycle_log.iter_mut().zip(self.rule_log.iter_mut()) {
                cyc.r0 |= rl.r0;
                cyc.r1 |= rl.r1;
                cyc.w0 |= rl.w0;
                cyc.w1 |= rl.w1;
                if rl.w0 {
                    cyc.d0 = rl.d0.take();
                }
                if rl.w1 {
                    cyc.d1 = rl.d1.take();
                }
            }
            self.fired += 1;
            self.fired_per_rule[rule_idx] += 1;
        }
        result
    }

    /// Ends the cycle: commits the cycle log into the register state.
    pub fn end_cycle(&mut self) {
        for (i, e) in self.cycle_log.iter_mut().enumerate() {
            if e.w1 {
                self.regs[i] = e.d1.take().expect("w1 implies d1");
            } else if e.w0 {
                self.regs[i] = e.d0.take().expect("w0 implies d0");
            }
        }
        self.cycles += 1;
        self.mid_cycle = false;
    }

    /// Runs one cycle with an explicit rule order — the paper's case study 2
    /// (functional verification with scheduler randomization).
    ///
    /// # Panics
    ///
    /// Panics if `order` mentions an out-of-range rule index.
    pub fn cycle_with_order(&mut self, order: &[usize]) {
        self.begin_cycle();
        for &idx in order {
            assert!(idx < self.design.rules.len(), "rule index out of range");
            self.step_rule(idx);
        }
        self.end_cycle();
    }
}

impl RegAccess for Interp {
    fn get64(&self, reg: RegId) -> u64 {
        self.regs[reg.0 as usize].to_u64()
    }

    fn set64(&mut self, reg: RegId, value: u64) {
        let w = self.design.regs[reg.0 as usize].width;
        assert!(w <= 64, "register wider than 64 bits");
        self.regs[reg.0 as usize] = Bits::new(w, value);
    }
}

impl SimBackend for Interp {
    fn cycle(&mut self) {
        debug_assert!(!self.mid_cycle, "cycle() called while stepping mid-cycle");
        self.begin_cycle();
        let schedule = self.design.schedule.clone();
        for idx in schedule {
            self.step_rule(idx);
        }
        self.end_cycle();
    }

    fn cycle_obs(&mut self, obs: &mut dyn Observer) {
        debug_assert!(!self.mid_cycle, "cycle_obs() called while stepping mid-cycle");
        let n = self.cycles;
        let prev: Vec<u64> = self.regs.iter().map(|b| b.low_u64()).collect();
        obs.cycle_start(n);
        self.begin_cycle();
        let schedule = self.design.schedule.clone();
        for idx in schedule {
            obs.rule_attempt(idx);
            match self.try_rule(idx) {
                Ok(()) => obs.rule_commit(idx),
                Err(Aborted::Explicit) => obs.rule_fail(idx, FailureReason::Abort),
                Err(Aborted::Conflict(reg)) => obs.rule_fail(idx, FailureReason::Conflict(reg)),
            }
        }
        self.end_cycle();
        for (i, &old) in prev.iter().enumerate() {
            let new = self.regs[i].low_u64();
            if new != old {
                obs.reg_write(RegId(i as u32), old, new);
            }
        }
        obs.cycle_end(n);
    }

    fn cycle_count(&self) -> u64 {
        self.cycles
    }

    fn rules_fired(&self) -> u64 {
        self.fired
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            design: self.design.name.clone(),
            cycles: self.cycles,
            fired: self.fired,
            fingerprint: self.design.fingerprint(),
            fired_per_rule: self.fired_per_rule.clone(),
            regs: self.regs.clone(),
        }
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        if self.mid_cycle {
            return Err(SnapshotError::MidCycle);
        }
        let widths: Vec<u32> = self.design.regs.iter().map(|r| r.width).collect();
        snap.check_shape(&self.design.name, &widths, self.design.fingerprint())?;
        self.regs = snap.regs.clone();
        self.cycles = snap.cycles;
        self.fired = snap.fired;
        if snap.fired_per_rule.len() == self.fired_per_rule.len() {
            self.fired_per_rule.copy_from_slice(&snap.fired_per_rule);
        } else {
            self.fired_per_rule.fill(0);
        }
        Ok(())
    }

    fn as_reg_access(&mut self) -> &mut dyn RegAccess {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::check::check;
    use crate::design::DesignBuilder;

    fn interp_of(b: DesignBuilder) -> Interp {
        Interp::new(&check(&b.build()).unwrap())
    }

    #[test]
    fn counter_counts() {
        let mut b = DesignBuilder::new("c");
        b.reg("n", 8, 0u64);
        b.rule("inc", vec![wr0("n", rd0("n").add(k(8, 1)))]);
        let mut sim = interp_of(b);
        for _ in 0..300 {
            sim.cycle();
        }
        assert_eq!(sim.get64(RegId(0)), 300 % 256);
        assert_eq!(sim.rules_fired(), 300);
    }

    #[test]
    fn write0_then_later_rule_read1_forwards() {
        let mut b = DesignBuilder::new("fwd");
        b.reg("a", 8, 5u64);
        b.reg("b", 8, 0u64);
        b.rule("produce", vec![wr0("a", k(8, 42))]);
        b.rule("consume", vec![wr0("b", rd1("a"))]);
        b.schedule(["produce", "consume"]);
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(1)), 42, "rd1 must see same-cycle wr0");
    }

    #[test]
    fn read0_after_other_rules_write_conflicts() {
        let mut b = DesignBuilder::new("cf");
        b.reg("a", 8, 5u64);
        b.reg("b", 8, 0u64);
        b.rule("w", vec![wr0("a", k(8, 42))]);
        b.rule("r", vec![wr0("b", rd0("a"))]); // rd0 after a cycle-log write: fails
        b.schedule(["w", "r"]);
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 42);
        assert_eq!(sim.get64(RegId(1)), 0, "rule r must have aborted");
        assert_eq!(sim.rules_fired(), 1);
    }

    #[test]
    fn double_write0_conflicts() {
        let mut b = DesignBuilder::new("dw");
        b.reg("a", 8, 0u64);
        b.rule("w1", vec![wr0("a", k(8, 1))]);
        b.rule("w2", vec![wr0("a", k(8, 2))]);
        b.schedule(["w1", "w2"]);
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 1, "second wr0 must fail");
    }

    #[test]
    fn write1_overrides_write0_at_commit() {
        let mut b = DesignBuilder::new("ov");
        b.reg("a", 8, 0u64);
        b.rule("w0rule", vec![wr0("a", k(8, 1))]);
        b.rule("w1rule", vec![wr1("a", k(8, 2))]);
        b.schedule(["w0rule", "w1rule"]);
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 2, "w1 wins at commit");
    }

    #[test]
    fn goldbergian_contraption_reference_semantics() {
        // rule rl = r.wr0(1); r.wr1(2); r.rd0(); r.rd1()  -- §3.2
        let mut b = DesignBuilder::new("gb");
        b.reg("r", 8, 0u64);
        b.reg("seen0", 8, 99u64);
        b.reg("seen1", 8, 99u64);
        b.rule(
            "rl",
            vec![
                wr0("r", k(8, 1)),
                wr1("r", k(8, 2)),
                wr0("seen0", rd0("r")),
                wr0("seen1", rd1("r")),
            ],
        );
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(1)), 0, "rd0 reads the beginning-of-cycle 0");
        assert_eq!(sim.get64(RegId(2)), 1, "rd1 reads the port-0 write");
        assert_eq!(sim.get64(RegId(0)), 2, "w1 value commits");
    }

    #[test]
    fn abort_discards_rule_effects() {
        let mut b = DesignBuilder::new("ab");
        b.reg("a", 8, 0u64);
        b.rule("try", vec![wr0("a", k(8, 7)), abort()]);
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 0);
        assert_eq!(sim.rules_fired(), 0);
    }

    #[test]
    fn guard_aborts_until_condition() {
        let mut b = DesignBuilder::new("g");
        b.reg("n", 8, 0u64);
        b.reg("go", 1, 0u64);
        b.rule(
            "inc",
            vec![guard(rd0("go").eq(k(1, 1))), wr0("n", rd0("n").add(k(8, 1)))],
        );
        let mut sim = interp_of(b);
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 0);
        sim.set64(RegId(1), 1);
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 1);
    }

    #[test]
    fn paper_two_state_machine() {
        // The paper's §2.1 example: rules rlA / rlB alternate on `st`.
        let mut b = DesignBuilder::new("stm");
        b.reg("st", 1, 0u64);
        b.reg("x", 32, 3u64);
        b.reg("input", 32, 10u64);
        b.reg("output", 32, 0u64);
        b.rule(
            "rlA",
            vec![
                guard(rd0("st").eq(k(1, 0))),
                wr0("st", k(1, 1)),
                let_("new_x", rd0("x").add(rd0("input"))),
                wr0("x", var("new_x")),
                wr0("output", var("new_x")),
            ],
        );
        b.rule(
            "rlB",
            vec![
                guard(rd0("st").eq(k(1, 1))),
                wr0("st", k(1, 0)),
                let_("new_x", rd0("x").mul(k(32, 2))),
                wr0("x", var("new_x")),
                wr0("output", var("new_x")),
            ],
        );
        b.schedule(["rlA", "rlB"]);
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        sim.cycle(); // A: x = 3 + 10 = 13
        assert_eq!(sim.get64(td.reg_id("x")), 13);
        sim.cycle(); // B: x = 26
        assert_eq!(sim.get64(td.reg_id("x")), 26);
        assert_eq!(sim.fired_per_rule(), &[1, 1]);
    }

    #[test]
    fn array_rw_dynamic_index() {
        let mut b = DesignBuilder::new("arr");
        b.array("t", 8, 4, 0u64);
        b.reg("i", 2, 0u64);
        b.rule(
            "w",
            vec![
                wr0a("t", rd0("i"), rd0a("t", rd0("i")).add(k(8, 1))),
                wr0("i", rd0("i").add(k(2, 1))),
            ],
        );
        let mut sim = interp_of(b);
        for _ in 0..6 {
            sim.cycle();
        }
        // Elements 0 and 1 incremented twice, 2 and 3 once.
        assert_eq!(sim.get64(RegId(0)), 2);
        assert_eq!(sim.get64(RegId(1)), 2);
        assert_eq!(sim.get64(RegId(2)), 1);
        assert_eq!(sim.get64(RegId(3)), 1);
    }

    #[test]
    fn scheduler_order_changes_winner() {
        let mut b = DesignBuilder::new("ord");
        b.reg("a", 8, 0u64);
        b.rule("w1", vec![wr0("a", k(8, 1))]);
        b.rule("w2", vec![wr0("a", k(8, 2))]);
        b.schedule(["w1", "w2"]);
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        sim.cycle_with_order(&[1, 0]);
        assert_eq!(sim.get64(RegId(0)), 2);
    }

    #[test]
    fn mid_cycle_stepping() {
        let mut b = DesignBuilder::new("step");
        b.reg("a", 8, 0u64);
        b.reg("b", 8, 0u64);
        b.rule("ra", vec![wr0("a", k(8, 1))]);
        b.rule("rb", vec![wr0("b", rd1("a"))]);
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        sim.begin_cycle();
        assert!(sim.step_rule(0));
        // Mid-cycle: register state is still the beginning-of-cycle state.
        assert_eq!(sim.get64(RegId(0)), 0);
        assert!(sim.step_rule(1));
        sim.end_cycle();
        assert_eq!(sim.get64(RegId(0)), 1);
        assert_eq!(sim.get64(RegId(1)), 1);
    }
}
