//! Property tests of the checker and analysis passes: determinism, width
//! discipline of the typed IR, and soundness relationships of the analysis
//! lattice.

use koika::analysis::{analyze, ScheduleAssumption, Tri};
use koika::check::check;
use koika::testgen::random_design;
use koika::tir::{TAction, TExpr};
use proptest::prelude::*;

/// Every expression in the typed IR respects the width discipline: operands
/// of same-width operators agree, conditions are 1 bit, widths are nonzero.
fn check_expr_widths(e: &TExpr) {
    use koika::ast::BinOp;
    assert!(e.width() >= 1);
    match e {
        TExpr::Bin { op, a, b, w } => {
            check_expr_widths(a);
            check_expr_widths(b);
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
                    assert_eq!(a.width(), b.width());
                    assert_eq!(*w, a.width());
                }
                BinOp::Eq | BinOp::Ne | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle => {
                    assert_eq!(a.width(), b.width());
                    assert_eq!(*w, 1);
                }
                BinOp::Concat => assert_eq!(*w, a.width() + b.width()),
                BinOp::Shl | BinOp::Shr | BinOp::Sra => assert_eq!(*w, a.width()),
            }
        }
        TExpr::Select { c, t, f, w } => {
            check_expr_widths(c);
            check_expr_widths(t);
            check_expr_widths(f);
            assert_eq!(c.width(), 1);
            assert_eq!(t.width(), f.width());
            assert_eq!(*w, t.width());
        }
        TExpr::Un { a, .. } => check_expr_widths(a),
        TExpr::ReadArr { idx, .. } => check_expr_widths(idx),
        _ => {}
    }
}

fn check_action_widths(a: &TAction) {
    match a {
        TAction::Let { e, .. } => check_expr_widths(e),
        TAction::Write { e, .. } => check_expr_widths(e),
        TAction::WriteArr { idx, e, .. } => {
            check_expr_widths(idx);
            check_expr_widths(e);
        }
        TAction::If { c, t, f } => {
            check_expr_widths(c);
            assert_eq!(c.width(), 1);
            t.iter().for_each(check_action_widths);
            f.iter().for_each(check_action_widths);
        }
        TAction::Named { body, .. } => body.iter().for_each(check_action_widths),
        TAction::Abort => {}
    }
}

proptest! {
    #[test]
    fn typed_ir_respects_width_discipline(seed in any::<u64>()) {
        let td = check(&random_design(seed)).expect("generator is well-typed");
        for rule in &td.rules {
            rule.body.iter().for_each(check_action_widths);
        }
    }

    #[test]
    fn checking_is_deterministic(seed in any::<u64>()) {
        let d = random_design(seed);
        prop_assert_eq!(check(&d).unwrap(), check(&d).unwrap());
    }

    /// AnyOrder analysis is never less conservative than Declared: a symbol
    /// safe under AnyOrder is safe under the declared schedule too.
    #[test]
    fn any_order_safety_implies_declared_safety(seed in any::<u64>()) {
        let td = check(&random_design(seed)).unwrap();
        let declared = analyze(&td, ScheduleAssumption::Declared);
        let any = analyze(&td, ScheduleAssumption::AnyOrder);
        for (s, (&a, &d)) in any.safe_sym.iter().zip(&declared.safe_sym).enumerate() {
            prop_assert!(
                !a || d,
                "symbol {} safe under AnyOrder but unsafe under Declared",
                td.syms[s].name
            );
        }
    }

    /// Unsafe symbols must actually experience failures somewhere — checked
    /// the contrapositive way: if a symbol is *safe*, no rule's may-fail set
    /// contains it.
    #[test]
    fn safe_symbols_never_appear_in_may_fail_sets(seed in any::<u64>()) {
        let td = check(&random_design(seed)).unwrap();
        let a = analyze(&td, ScheduleAssumption::Declared);
        for (s, &safe) in a.safe_sym.iter().enumerate() {
            if safe {
                for (ri, rule) in a.rules.iter().enumerate() {
                    prop_assert!(
                        !rule.may_fail_sym[s],
                        "safe symbol {} may fail in rule {}",
                        td.syms[s].name,
                        td.rules[ri].name
                    );
                }
            }
        }
    }

    /// The data footprint is always a subset of the read-write footprint
    /// (anything written participates in conflict bookkeeping).
    #[test]
    fn data_footprint_is_subset_of_rw_footprint(seed in any::<u64>()) {
        let td = check(&random_design(seed)).unwrap();
        let a = analyze(&td, ScheduleAssumption::Declared);
        for rule in &a.rules {
            for sym in &rule.footprint_data {
                prop_assert!(
                    rule.footprint_rw.contains(sym),
                    "written symbol missing from the rw footprint"
                );
            }
        }
    }
}

#[test]
fn tri_lattice_laws() {
    use Tri::*;
    let all = [No, Maybe, Yes];
    for a in all {
        // join is idempotent and commutative.
        assert_eq!(a.join(a), a);
        for b in all {
            assert_eq!(a.join(b), b.join(a));
            // or_seq is monotone: never goes from possible to No.
            if a.possible() || b.possible() {
                assert!(a.or_seq(b).possible());
            }
        }
    }
    // weaken caps must-information at Maybe.
    assert_eq!(Yes.weaken(), Maybe);
    assert_eq!(Maybe.weaken(), Maybe);
    assert_eq!(No.weaken(), No);
}
