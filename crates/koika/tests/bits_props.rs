//! Property-based tests of the [`koika::bits`] value domain against a
//! `u128` reference model: every operation, at widths spanning the inline
//! word and the boxed wide representation.

use koika::bits::{word, Bits};
use proptest::prelude::*;

const WIDTHS: [u32; 10] = [1, 2, 7, 8, 31, 32, 63, 64, 65, 128];

fn mask128(w: u32) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

prop_compose! {
    fn width_and_two_values()(wi in 0..WIDTHS.len(), a in any::<u128>(), b in any::<u128>())
        -> (u32, u128, u128)
    {
        let w = WIDTHS[wi];
        (w, a & mask128(w), b & mask128(w))
    }
}

proptest! {
    #[test]
    fn add_matches_u128((w, a, b) in width_and_two_values()) {
        let r = Bits::new(w, a).add(&Bits::new(w, b));
        prop_assert_eq!(r.to_u128(), a.wrapping_add(b) & mask128(w));
    }

    #[test]
    fn sub_matches_u128((w, a, b) in width_and_two_values()) {
        let r = Bits::new(w, a).sub(&Bits::new(w, b));
        prop_assert_eq!(r.to_u128(), a.wrapping_sub(b) & mask128(w));
    }

    #[test]
    fn mul_matches_u128((w, a, b) in width_and_two_values()) {
        let r = Bits::new(w, a).mul(&Bits::new(w, b));
        prop_assert_eq!(r.to_u128(), a.wrapping_mul(b) & mask128(w));
    }

    #[test]
    fn bitwise_matches_u128((w, a, b) in width_and_two_values()) {
        prop_assert_eq!(Bits::new(w, a).and(&Bits::new(w, b)).to_u128(), a & b);
        prop_assert_eq!(Bits::new(w, a).or(&Bits::new(w, b)).to_u128(), a | b);
        prop_assert_eq!(Bits::new(w, a).xor(&Bits::new(w, b)).to_u128(), a ^ b);
        prop_assert_eq!(Bits::new(w, a).not().to_u128(), !a & mask128(w));
    }

    #[test]
    fn shifts_match_u128((w, a, _b) in width_and_two_values(), sh in 0u64..140) {
        let bits = Bits::new(w, a);
        let expect_shl = if sh >= 128 { 0 } else { (a << sh) & mask128(w) };
        let expect_shr = if sh >= 128 { 0 } else { a >> sh };
        prop_assert_eq!(bits.shl(sh).to_u128(), expect_shl, "shl {} width {}", sh, w);
        prop_assert_eq!(bits.shr(sh).to_u128(), expect_shr, "shr {} width {}", sh, w);
    }

    #[test]
    fn sra_matches_sign_fill((w, a, _b) in width_and_two_values(), sh in 0u64..140) {
        let bits = Bits::new(w, a);
        let sign = (a >> (w - 1)) & 1 == 1;
        let sh_eff = sh.min(w as u64 - 1) as u32;
        let mut expect = a >> sh_eff;
        if sign && sh_eff > 0 {
            let fill = mask128(w) & !(mask128(w) >> sh_eff);
            expect |= fill;
        }
        prop_assert_eq!(bits.sra(sh).to_u128(), expect, "sra {} width {}", sh, w);
    }

    #[test]
    fn comparisons_match_u128((w, a, b) in width_and_two_values()) {
        prop_assert_eq!(
            Bits::new(w, a).ult(&Bits::new(w, b)).to_u64(),
            (a < b) as u64
        );
        let signed = |v: u128| -> i128 {
            let shift = 128 - w;
            ((v << shift) as i128) >> shift
        };
        prop_assert_eq!(
            Bits::new(w, a).slt(&Bits::new(w, b)).to_u64(),
            (signed(a) < signed(b)) as u64
        );
        prop_assert_eq!(
            Bits::new(w, a).eq_bits(&Bits::new(w, b)).to_u64(),
            (a == b) as u64
        );
    }

    #[test]
    fn slice_matches_shift_mask((w, a, _b) in width_and_two_values(), lo in 0u32..130, out_w in 1u32..64) {
        let r = Bits::new(w, a).slice(lo, out_w);
        let expect = if lo >= 128 { 0 } else { (a >> lo) & mask128(out_w) };
        prop_assert_eq!(r.to_u128(), expect);
        prop_assert_eq!(r.width(), out_w);
    }

    #[test]
    fn concat_matches_shift_or((w, a, b) in width_and_two_values()) {
        // Keep the result within 128 bits.
        prop_assume!(w <= 64);
        let r = Bits::new(w, a).concat(&Bits::new(w, b));
        prop_assert_eq!(r.width(), 2 * w);
        prop_assert_eq!(r.to_u128(), (a << w) | b);
    }

    #[test]
    fn zext_sext_roundtrip((w, a, _b) in width_and_two_values()) {
        prop_assume!(w < 128);
        let bits = Bits::new(w, a);
        let z = bits.zext(w + 1);
        prop_assert_eq!(z.to_u128(), a);
        let s = bits.sext(128);
        let shift = 128 - w;
        prop_assert_eq!(s.to_u128() as i128, ((a << shift) as i128) >> shift);
    }

    #[test]
    fn neg_is_additive_inverse((w, a, _b) in width_and_two_values()) {
        let bits = Bits::new(w, a);
        prop_assert!(bits.neg().add(&bits).is_zero());
    }

    #[test]
    fn word_helpers_match_bits_at_word_widths(a in any::<u64>(), b in any::<u64>(), wi in 0..8usize, sh in 0u64..70) {
        let w = WIDTHS[wi].min(64);
        let (ma, mb) = (a & word::mask(w), b & word::mask(w));
        let (ba, bb) = (Bits::new(w, ma), Bits::new(w, mb));
        prop_assert_eq!(word::add(w, ma, mb), ba.add(&bb).to_u64());
        prop_assert_eq!(word::sub(w, ma, mb), ba.sub(&bb).to_u64());
        prop_assert_eq!(word::mul(w, ma, mb), ba.mul(&bb).to_u64());
        prop_assert_eq!(word::shl(w, ma, sh), ba.shl(sh).to_u64());
        prop_assert_eq!(word::shr(w, ma, sh), ba.shr(sh).to_u64());
        prop_assert_eq!(word::sra(w, ma, sh), ba.sra(sh).to_u64());
        prop_assert_eq!(word::ult(ma, mb), ba.ult(&bb).to_u64());
        prop_assert_eq!(word::slt(w, ma, mb), ba.slt(&bb).to_u64());
    }

    #[test]
    fn bit_indexing_matches_u128((w, a, _b) in width_and_two_values(), i in 0u32..128) {
        prop_assume!(i < w);
        prop_assert_eq!(Bits::new(w, a).bit(i), (a >> i) & 1 == 1);
    }
}
