//! The TCP front end: wire protocol, admission control, the step
//! dispatcher with batch-lane packing, and graceful drain.
//!
//! # Wire protocol
//!
//! Line-oriented JSON over TCP: the client sends one request object per
//! line, the server answers with exactly one reply object per line, in
//! order. Every reply carries `"ok":true` or `"ok":false` plus an
//! `"error"` kind and human-readable `"detail"`. Requests:
//!
//! | op             | fields                                         | reply extras |
//! |----------------|------------------------------------------------|--------------|
//! | `create`       | `design`, opt `tenant`/`backend`/`watchdog`    | `session`, `backend`, `cycles` |
//! | `step`         | `session`, opt `n` (default 1)                 | `cycles`, `fired` |
//! | `stream-trace` | `session`, opt `n`                             | `cycles`, `fired`, `events`, `truncated` |
//! | `inject`       | `session`, `cycle`, `reg`, `bit`               | `pending` |
//! | `snapshot`     | `session`                                      | `cycles`, `ksnap` (hex) |
//! | `restore`      | `session`, `ksnap` (hex)                       | `cycles` |
//! | `query-regs`   | `session`, opt `regs` (names)                  | `cycles`, `regs` |
//! | `evict`        | `session`                                      | `evicted` |
//! | `close`        | `session`                                      | `closed` |
//! | `metrics`      | opt `format` (`json`/`prometheus`)             | `metrics` or `prometheus` |
//! | `ping`         |                                                | `pong` |
//! | `shutdown`     |                                                | `draining` |
//!
//! `watchdog` on `create` is `{"max_cycles":N,"stall_cycles":N,
//! "wall_ms":N}`, all optional. Error kinds: `protocol`, `unknown-op`,
//! `unknown-design`, `unknown-session`, `session-busy`, `busy`,
//! `backend`, `watchdog` (with `kind` and `cycle`), `panic`,
//! `bad-snapshot`, `read-only`, `internal`.
//!
//! Replies contain no wall-clock data, so a scripted client driving a
//! fresh server produces byte-identical transcripts run after run — the
//! CI smoke test relies on this.
//!
//! # Durability (`--state-dir`)
//!
//! With [`ServerConfig::state_dir`] set, every state-mutating op
//! (`create`, `step`, `stream-trace`, `inject`, `restore`) is appended to
//! the session's write-ahead journal ([`crate::journal`]) **before** it
//! executes. A restart with the same directory — graceful or `kill -9` —
//! rebuilds the session table by loading each session's newest checkpoint
//! spool and deterministically re-executing its journal tail; recovered
//! registers and commit fingerprints are byte-identical to an
//! uninterrupted run. The mutating ops additionally accept an optional
//! client-chosen `req_id` (u64): re-submitting a request with a `req_id`
//! seen before returns the cached reply instead of applying the op twice
//! (at-most-once across reconnects and crashes, within a bounded window).
//! When the state directory becomes unwritable the server degrades to a
//! typed `read-only` error for mutating ops — reads still work — and
//! heals automatically once a probe write succeeds.

use crate::chaos::IoChaos;
use crate::journal::{self, Journal, JournalOp, JournalRecord, WatchdogSpec};
use crate::json::{self, Json};
use crate::metrics::ServerMetrics;
use crate::session::{
    req_cached, req_store, req_store_bounded, spill, spool_bytes, unspill, BackendKind,
    DesignProvider, EnginePool, EvictedStub, ReqWindow, SessionBody, SessionSlot, SessionTable,
};
use koika::bits::Bits;
use koika::device::{Device, LaneAccess, RegAccess};
use koika::fault::{ArmedWatchdog, Injection, TripKind, Watchdog, WatchdogTrip};
use koika::obs::Observer;
use koika::runner::{contain, run_jobs, JobError, RunnerConfig};
use koika::snapshot::Snapshot;
use koika::tir::{RegId, TDesign};
use std::collections::HashSet;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Bound on entries in the server-wide `create` idempotency window (it
/// serves every tenant, unlike the per-session windows).
const CREATE_WINDOW: usize = 1024;

/// Tuning knobs for one server instance. `Default` is sized for the
/// `server_bench` load profile (tens of thousands of sessions).
#[derive(Clone)]
pub struct ServerConfig {
    /// Admission bound: `create` beyond this many resident sessions is
    /// shed with a `busy` reply.
    pub max_sessions: usize,
    /// Bound on queued step requests; `step` beyond it is shed with
    /// `busy`.
    pub queue_depth: usize,
    /// Worker pool configuration for step execution (also supplies the
    /// deterministic retry-backoff jitter seed).
    pub runner: RunnerConfig,
    /// Budgets applied to sessions that do not request their own.
    pub default_watchdog: Watchdog,
    /// Directory for eviction spool files.
    pub spool_dir: PathBuf,
    /// Evict sessions idle longer than this (checked by the accept
    /// loop). `None` disables automatic eviction; explicit `evict`
    /// requests always work.
    pub idle_evict: Option<Duration>,
    /// Minimum same-design step requests in one dispatch round before
    /// they are packed into a batch engine.
    pub batch_min: usize,
    /// How long the dispatcher waits for more requests before executing
    /// a round. Zero (the default) adds no latency: packing then happens
    /// only when requests are already queued.
    pub batch_window: Duration,
    /// Largest `n` accepted by a single `step`.
    pub max_step: u64,
    /// Cap on events returned by one `stream-trace`.
    pub max_trace: usize,
    /// Durable state directory. `Some` turns on write-ahead journaling,
    /// crash recovery on startup, and read-only degradation; it also
    /// overrides `spool_dir` so journals and checkpoint spools share one
    /// directory. `None` (the default) keeps the server purely in-memory.
    pub state_dir: Option<PathBuf>,
    /// Auto-checkpoint a durable session once its journal exceeds this
    /// many bytes (bounds replay time after a crash).
    pub journal_checkpoint_bytes: u64,
    /// Seeded io fault injector consulted by every durable write; `None`
    /// disables chaos instrumentation entirely.
    pub chaos: Option<Arc<IoChaos>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let jobs = thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
        ServerConfig {
            max_sessions: 16384,
            queue_depth: 1024,
            runner: RunnerConfig {
                jobs,
                ..RunnerConfig::default()
            },
            default_watchdog: Watchdog::default(),
            spool_dir: std::env::temp_dir()
                .join(format!("koika-server-spool-{}", std::process::id())),
            idle_evict: None,
            batch_min: 2,
            batch_window: Duration::ZERO,
            max_step: 1_000_000,
            max_trace: 4096,
            state_dir: None,
            journal_checkpoint_bytes: 64 * 1024,
            chaos: None,
        }
    }
}

/// Final statistics returned by [`ServerHandle::join`] after drain.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Total request lines received.
    pub requests: u64,
    /// Lines that failed to parse or named an unknown op.
    pub protocol_errors: u64,
    /// Live sessions spilled to the spool directory during drain.
    pub sessions_spilled: u64,
    /// Panics contained over the server's lifetime (sum over tenants).
    pub panics_contained: u64,
    /// Sessions rebuilt by journal replay at startup (sum over tenants).
    pub sessions_recovered: u64,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] / [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: thread::JoinHandle<ServerStats>,
    recovered: u64,
    lost: u64,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions recovered from the state directory during startup.
    pub fn recovered_sessions(&self) -> u64 {
        self.recovered
    }

    /// Journals found at startup that were too damaged to recover (each
    /// one was renamed `*.corrupt` and its session dropped).
    pub fn lost_sessions(&self) -> u64 {
        self.lost
    }

    /// Requests a graceful drain, as if a client had sent `shutdown`.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Shuts down (if not already draining) and waits for the drain to
    /// finish.
    pub fn join(self) -> ServerStats {
        self.shutdown();
        self.thread.join().unwrap_or_default()
    }

    /// Stops the server **without** draining: no spilling, no journal
    /// closes — the in-process analog of `kill -9` for recovery tests and
    /// the chaos bench. Durable state is whatever the write-ahead
    /// discipline already put on disk.
    pub fn abort(self) -> ServerStats {
        self.shared.abort.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.thread.join().unwrap_or_default()
    }

    /// Waits for the server to drain without requesting a shutdown —
    /// the drain comes from a client `shutdown` op or a concurrent
    /// [`ServerHandle::shutdown`]. This is what `koika-sim --serve`
    /// blocks on.
    pub fn wait(self) -> ServerStats {
        self.thread.join().unwrap_or_default()
    }
}

/// Binds `addr` and serves on background threads until `shutdown`.
///
/// # Errors
///
/// Socket bind / spool directory creation failures.
pub fn spawn(
    cfg: ServerConfig,
    provider: Arc<dyn DesignProvider>,
    addr: &str,
) -> std::io::Result<ServerHandle> {
    let mut cfg = cfg;
    if let Some(dir) = &cfg.state_dir {
        // Journals and checkpoint spools share the durable directory.
        cfg.spool_dir = dir.clone();
    }
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    std::fs::create_dir_all(&cfg.spool_dir)?;
    let local = listener.local_addr()?;
    let (tx, rx) = mpsc::sync_channel::<StepTask>(cfg.queue_depth.max(1));
    let shared = Arc::new(Shared {
        cfg,
        provider,
        table: Mutex::new(SessionTable::default()),
        pool: Mutex::new(EnginePool::default()),
        metrics: Mutex::new(ServerMetrics::default()),
        shutdown: AtomicBool::new(false),
        abort: AtomicBool::new(false),
        degraded: AtomicBool::new(false),
        next_id: AtomicU64::new(1),
        create_reqs: Mutex::new(ReqWindow::new()),
    });
    // Recovery runs synchronously before any request can arrive, so
    // clients reconnecting after a crash always see the recovered table.
    let (recovered, lost) = recover_state(&shared);
    let orchestrator = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("koika-server".into())
            .spawn(move || orchestrate(shared, listener, tx, rx))?
    };
    Ok(ServerHandle {
        addr: local,
        shared,
        thread: orchestrator,
        recovered,
        lost,
    })
}

/// State shared by every server thread.
struct Shared {
    cfg: ServerConfig,
    provider: Arc<dyn DesignProvider>,
    table: Mutex<SessionTable>,
    pool: Mutex<EnginePool>,
    metrics: Mutex<ServerMetrics>,
    shutdown: AtomicBool,
    /// Hard-stop flag: skip the drain entirely (see [`ServerHandle::abort`]).
    abort: AtomicBool,
    /// Set when a durable write fails; mutating ops answer `read-only`
    /// until a probe write to the state directory succeeds again.
    degraded: AtomicBool,
    next_id: AtomicU64,
    /// Server-wide `create` idempotency window (`create` has no session
    /// to hang a per-session window off).
    create_reqs: Mutex<ReqWindow>,
}

impl Shared {
    fn spool_path(&self, id: u64) -> PathBuf {
        self.cfg.spool_dir.join(format!("session-{id}.kses"))
    }

    /// The durable state directory, when journaling is on.
    fn durable_dir(&self) -> Option<&Path> {
        self.cfg.state_dir.as_deref()
    }

    /// The chaos hook to thread into durable writes.
    fn chaos(&self) -> Option<&IoChaos> {
        self.cfg.chaos.as_deref()
    }

    /// Records a failed durable write: degrade to read-only, and count
    /// injected faults (error messages starting `"chaos:"`) against the
    /// tenant whose write absorbed them.
    fn note_write_failure(&self, tenant: &str, msg: &str) {
        if msg.starts_with("chaos:") {
            lock(&self.metrics).tenant(tenant).chaos_faults += 1;
        }
        self.degraded.store(true, Ordering::SeqCst);
    }
}

/// Gate for mutating ops on a durable server: while degraded, probes the
/// state directory and keeps answering the typed `read-only` error until
/// a probe write lands (the disk "recovered"). `None` means proceed.
fn read_only_guard(shared: &Shared) -> Option<String> {
    let dir = shared.durable_dir()?;
    if !shared.degraded.load(Ordering::SeqCst) {
        return None;
    }
    match journal::write_checked(shared.chaos(), &dir.join(".probe"), b"koika-probe") {
        Ok(()) => {
            shared.degraded.store(false, Ordering::SeqCst);
            None
        }
        Err(e) => Some(err_reply(
            "read-only",
            &format!("state directory unwritable ({e}); mutating ops are rejected until it recovers"),
        )),
    }
}

/// Checkpoints a durable session: spool + journal rewrite (see
/// [`Journal::checkpoint`]). Returns the new spool path, or `Ok(None)`
/// for non-durable sessions.
fn checkpoint_body(
    shared: &Shared,
    id: u64,
    body: &mut SessionBody,
) -> std::io::Result<Option<PathBuf>> {
    let bytes = spool_bytes(&body.snap, &body.dev_blobs);
    let cycles = body.snap.cycles;
    let stalled = body.watchdog.as_ref().map(ArmedWatchdog::stall_count).unwrap_or(0);
    let pending = body.pending.clone();
    let Some(j) = body.journal.as_mut() else {
        return Ok(None);
    };
    j.checkpoint(id, &bytes, cycles, stalled, &pending, shared.chaos()).map(Some)
}

/// Mutex lock that shrugs off poisoning: a contained panic must never
/// take the whole server down with a poisoned lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Step tasks and verdicts
// ---------------------------------------------------------------------------

/// A checked-out `step` / `stream-trace` request travelling through the
/// dispatcher. The session body rides along; its slot in the table says
/// `Running` until the task is checked back in.
struct StepTask {
    id: u64,
    n: u64,
    trace: bool,
    body: Box<SessionBody>,
    start_cycles: u64,
    reply: Sender<String>,
    verdict: Option<StepVerdict>,
    last_trip: Option<WatchdogTrip>,
    /// `(seq, pre-append durable length)` of the journaled `step` record
    /// (durable sessions only); rolled back — or, if even the rollback
    /// cannot be written, physically truncated — when the step turns out
    /// to commit nothing.
    journal_seq: Option<(u64, u64)>,
    /// Client idempotency token, cached with the reply on commit.
    req_id: Option<u64>,
}

/// What a step did, decided by the worker, committed by the dispatcher.
enum StepVerdict {
    /// The step ran to completion and the session state was committed.
    Done {
        cycles: u64,
        fired: u64,
        packed: bool,
        events: Vec<(u64, usize)>,
        truncated: bool,
    },
    /// A watchdog budget tripped; progress up to the trip boundary was
    /// committed (deterministic trips) or rolled back (wall trips after
    /// exhausted retries). The session stays usable.
    Trip { trip: WatchdogTrip },
    /// A deterministic failure (compile error, corrupt device blob). The
    /// session is kept with its pre-step state.
    Fatal { msg: String },
    /// The step panicked; the session is torn down.
    Panic { msg: String },
}

/// One unit of work for the runner: a lone step, or a packed group that
/// shares a batch engine.
enum Job {
    Single(usize),
    Packed(Vec<usize>),
}

/// Splits a dispatch round into jobs. Tasks are packable when the
/// planner gave them a pack key (same design, same `n`); groups smaller
/// than `batch_min` degrade to singles. Order within the round is
/// preserved for singles and first-seen for groups, so planning is
/// deterministic given the task order.
fn plan_jobs(keys: &[Option<(String, u64)>], batch_min: usize) -> Vec<Job> {
    let mut jobs = Vec::new();
    let mut groups: Vec<((String, u64), Vec<usize>)> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match key {
            None => jobs.push(Job::Single(i)),
            Some(k) => match groups.iter_mut().find(|(gk, _)| gk == k) {
                Some((_, members)) => members.push(i),
                None => groups.push((k.clone(), vec![i])),
            },
        }
    }
    for (_, members) in groups {
        if members.len() >= batch_min.max(2) {
            jobs.push(Job::Packed(members));
        } else {
            jobs.extend(members.into_iter().map(Job::Single));
        }
    }
    jobs
}

fn trip_kind_label(kind: TripKind) -> &'static str {
    match kind {
        TripKind::Stall => "stall",
        TripKind::CycleBudget => "cycle-budget",
        TripKind::Wall => "wall",
    }
}

fn err_reply(kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{kind}\",\"detail\":\"{}\"}}",
        json::escape(detail)
    )
}

// ---------------------------------------------------------------------------
// Step execution
// ---------------------------------------------------------------------------

/// Collects committed rules per cycle for `stream-trace`.
struct TraceObs {
    cur: u64,
    cap: usize,
    events: Vec<(u64, usize)>,
    truncated: bool,
}

impl Observer for TraceObs {
    fn cycle_start(&mut self, cycle: u64) {
        self.cur = cycle;
    }
    fn rule_commit(&mut self, rule: usize) {
        if self.events.len() < self.cap {
            self.events.push((self.cur, rule));
        } else {
            self.truncated = true;
        }
    }
}

/// Runs one task on a scalar engine, mirroring the canonical
/// [`koika::fault::run_watchdogged`] loop: devices tick at the absolute
/// cycle, then due injections flip bits, then the cycle executes, then
/// the watchdog observes.
///
/// Commit discipline: the session body is only mutated after the run
/// finishes (or at a deterministic trip boundary), so a panic or a
/// retried wall trip always leaves the pre-step state intact.
///
/// A wall trip returns [`JobError::Transient`] when `allow_retry`, after
/// rewinding the wall budget to the step's starting mark — the failed
/// attempt consumes no budget, and the runner's seeded backoff retries
/// it.
fn run_single(task: &mut StepTask, shared: &Shared, allow_retry: bool) -> Result<(), JobError> {
    let body = &mut task.body;
    let mut engine = match lock(&shared.pool).checkout_scalar(&body.design_name, &body.td, body.backend)
    {
        Ok(e) => e,
        Err(msg) => {
            task.verdict = Some(StepVerdict::Fatal { msg });
            return Ok(());
        }
    };
    if let Err(e) = engine.restore(&body.snap) {
        task.verdict = Some(StepVerdict::Fatal {
            msg: format!("restoring session state: {e}"),
        });
        return Ok(());
    }
    // Devices are rebuilt from their blobs each step; a provider or
    // device that panics here is contained by the runner and tears down
    // only this session (the checked-out engine unwinds with us and is
    // simply recompiled next time).
    let mut devices = shared.provider.devices(&body.design_name, &body.td);
    for (d, blob) in devices.iter_mut().zip(&body.dev_blobs) {
        if let Some(bytes) = blob {
            if let Err(e) = d.load_state(bytes) {
                task.verdict = Some(StepVerdict::Fatal {
                    msg: format!("restoring device state: {e}"),
                });
                return Ok(());
            }
        }
    }
    let mark = body.watchdog.as_mut().map(|wd| {
        wd.resume();
        wd.wall_elapsed()
    });
    let mut tracer = TraceObs {
        cur: body.snap.cycles,
        cap: shared.cfg.max_trace,
        events: Vec::new(),
        truncated: false,
    };
    let mut tripped = None;
    for _ in 0..task.n {
        let cycle = engine.cycle_count();
        for d in devices.iter_mut() {
            d.tick(cycle, engine.as_reg_access());
        }
        for inj in body.pending.iter().filter(|i| i.cycle == cycle) {
            let regs = engine.as_reg_access();
            let old = regs.get64(inj.reg);
            regs.set64(inj.reg, old ^ (1u64 << inj.bit));
        }
        let before = engine.rules_fired();
        if task.trace {
            engine.cycle_obs(&mut tracer);
        } else {
            engine.cycle();
        }
        let commits = engine.rules_fired().wrapping_sub(before);
        if let Some(wd) = body.watchdog.as_mut() {
            if let Some(trip) = wd.observe(engine.cycle_count(), commits) {
                if trip.kind == TripKind::Wall && allow_retry {
                    // Machine-dependent: forgive the wall time this
                    // attempt burned and let the runner retry it.
                    wd.wall_rewind_to(mark.unwrap_or_default());
                    wd.pause();
                    let msg = trip.to_string();
                    task.last_trip = Some(trip);
                    lock(&shared.pool).checkin_scalar(&body.design_name, body.backend, engine);
                    return Err(JobError::Transient(msg));
                }
                tripped = Some(trip);
                break;
            }
        }
    }
    if let Some(wd) = body.watchdog.as_mut() {
        wd.pause();
    }
    // Commit: deterministic trips keep the progress made up to the trip
    // boundary; full runs keep everything.
    body.snap = engine.snapshot();
    body.dev_blobs = devices.iter().map(|d| d.save_state()).collect();
    let done = body.snap.cycles;
    body.pending.retain(|i| i.cycle >= done);
    lock(&shared.pool).checkin_scalar(&body.design_name, body.backend, engine);
    task.verdict = Some(match tripped {
        Some(trip) => StepVerdict::Trip { trip },
        None => StepVerdict::Done {
            cycles: body.snap.cycles,
            fired: body.snap.fired,
            packed: false,
            events: tracer.events,
            truncated: tracer.truncated,
        },
    });
    Ok(())
}

/// Runs a packed group of same-design, same-`n` steps on one
/// [`cuttlesim::batch::BatchSim`], one session per lane. Per-lane
/// observables are bit-identical to scalar execution, so packing is
/// invisible to clients.
///
/// The whole batch attempt runs inside [`contain`]; a panicking lane (or
/// a batch `VmError`) falls the *unfinished* members back to individually
/// contained scalar runs, so one poisoned session still takes down only
/// itself. Watchdog trips finalize a lane at its trip boundary (wall
/// trips included — packed steps never retry) and the lane is simply
/// ignored for the rest of the batch.
fn run_packed(tasks: &mut [&mut StepTask], shared: &Shared) {
    let n = tasks[0].n;
    let design_name = tasks[0].body.design_name.clone();
    let td = Arc::clone(&tasks[0].body.td);
    let lanes = tasks.len();
    let attempt = contain(|| run_packed_attempt(tasks, shared, &design_name, &td, lanes, n));
    match attempt {
        Ok(Ok(())) => {}
        Ok(Err(_)) | Err(_) => {
            // Batch engine failed mid-flight. Finalized lanes already
            // committed; rerun the rest on scalar engines, each attempt
            // contained on its own.
            for task in tasks.iter_mut() {
                if task.verdict.is_some() {
                    continue;
                }
                if let Some(wd) = task.body.watchdog.as_mut() {
                    wd.pause();
                }
                let res = contain(|| run_single(task, shared, false));
                if let Err(msg) = res {
                    task.verdict = Some(StepVerdict::Panic { msg });
                }
            }
        }
    }
    for task in tasks.iter_mut() {
        if task.verdict.is_none() {
            task.verdict = Some(StepVerdict::Fatal {
                msg: "packed step produced no verdict".into(),
            });
        }
    }
}

/// The contained body of [`run_packed`]: everything that may touch a
/// poisoned design.
fn run_packed_attempt(
    tasks: &mut [&mut StepTask],
    shared: &Shared,
    design_name: &str,
    td: &Arc<TDesign>,
    lanes: usize,
    n: u64,
) -> Result<(), String> {
    let nregs = td.num_regs();
    let nrules = td.rules.len();
    let mut engine = lock(&shared.pool).checkout_batch(design_name, td, lanes)?;
    // Restore every lane from its session snapshot. Packing requires
    // `fits_u64`, so `low_u64` is exact.
    let mut base = vec![0u64; lanes];
    let mut fired0 = vec![0u64; lanes];
    let mut fpr0: Vec<Vec<u64>> = Vec::with_capacity(lanes);
    let mut devices: Vec<Vec<Box<dyn Device + Send>>> = Vec::with_capacity(lanes);
    for (lane, task) in tasks.iter_mut().enumerate() {
        let body = &mut task.body;
        for r in 0..nregs {
            engine.lane_set64(lane, koika::tir::RegId(r as u32), body.snap.regs[r].low_u64());
        }
        base[lane] = body.snap.cycles;
        fired0[lane] = engine.lane_fired(lane);
        fpr0.push(engine.lane_fired_per_rule(lane));
        let mut devs = shared.provider.devices(&body.design_name, &body.td);
        for (d, blob) in devs.iter_mut().zip(&body.dev_blobs) {
            if let Some(bytes) = blob {
                d.load_state(bytes)
                    .map_err(|e| format!("restoring device state: {e}"))?;
            }
        }
        devices.push(devs);
        if let Some(wd) = body.watchdog.as_mut() {
            wd.resume();
        }
    }
    let mut active = vec![true; lanes];
    let mut live = lanes;
    for k in 0..n {
        for lane in 0..lanes {
            if !active[lane] {
                continue;
            }
            let cycle = base[lane] + k;
            let mut la = LaneAccess::new(&mut engine, lane);
            for d in devices[lane].iter_mut() {
                d.tick(cycle, &mut la);
            }
            for inj in tasks[lane].body.pending.iter().filter(|i| i.cycle == cycle) {
                let old = la.get64(inj.reg);
                la.set64(inj.reg, old ^ (1u64 << inj.bit));
            }
        }
        let prev: Vec<u64> = (0..lanes).map(|l| engine.lane_fired(l)).collect();
        engine.cycle().map_err(|e| format!("batch cycle error: {e}"))?;
        for lane in 0..lanes {
            if !active[lane] {
                continue;
            }
            let commits = engine.lane_fired(lane).wrapping_sub(prev[lane]);
            let trip = match tasks[lane].body.watchdog.as_mut() {
                Some(wd) => wd.observe(base[lane] + k + 1, commits),
                None => None,
            };
            if let Some(trip) = trip {
                finalize_lane(&mut *tasks[lane], &engine, lane, k + 1, &fired0, &fpr0, &devices[lane], nrules);
                tasks[lane].verdict = Some(StepVerdict::Trip { trip });
                active[lane] = false;
                live -= 1;
            }
        }
        if live == 0 {
            break;
        }
    }
    for lane in 0..lanes {
        if !active[lane] {
            continue;
        }
        finalize_lane(&mut *tasks[lane], &engine, lane, n, &fired0, &fpr0, &devices[lane], nrules);
        tasks[lane].verdict = Some(StepVerdict::Done {
            cycles: tasks[lane].body.snap.cycles,
            fired: tasks[lane].body.snap.fired,
            packed: true,
            events: Vec::new(),
            truncated: false,
        });
    }
    lock(&shared.pool).checkin_batch(design_name, lanes, engine);
    Ok(())
}

/// Commits one lane's state back into its session body: a snapshot
/// rebuilt from the lane registers plus counter deltas accumulated on
/// top of the pre-step snapshot.
#[allow(clippy::too_many_arguments)]
fn finalize_lane(
    task: &mut StepTask,
    engine: &cuttlesim::batch::BatchSim,
    lane: usize,
    cycles_run: u64,
    fired0: &[u64],
    fpr0: &[Vec<u64>],
    devices: &[Box<dyn Device + Send>],
    nrules: usize,
) {
    let body = &mut task.body;
    if let Some(wd) = body.watchdog.as_mut() {
        wd.pause();
    }
    let td = &body.td;
    let regs: Vec<Bits> = (0..td.num_regs())
        .map(|r| {
            Bits::new(
                td.regs[r].width,
                engine.lane_get64(lane, koika::tir::RegId(r as u32)),
            )
        })
        .collect();
    let mut fpr = if body.snap.fired_per_rule.len() == nrules {
        body.snap.fired_per_rule.clone()
    } else {
        vec![0; nrules]
    };
    let now_fpr = engine.lane_fired_per_rule(lane);
    for (r, slot) in fpr.iter_mut().enumerate() {
        *slot += now_fpr[r].wrapping_sub(fpr0[lane][r]);
    }
    body.snap = Snapshot {
        design: td.name.clone(),
        cycles: body.snap.cycles + cycles_run,
        fired: body.snap.fired + engine.lane_fired(lane).wrapping_sub(fired0[lane]),
        fingerprint: td.fingerprint(),
        fired_per_rule: fpr,
        regs,
    };
    body.dev_blobs = devices.iter().map(|d| d.save_state()).collect();
    let done = body.snap.cycles;
    body.pending.retain(|i| i.cycle >= done);
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

fn dispatcher(shared: Arc<Shared>, rx: Receiver<StepTask>) {
    loop {
        let first = match rx.recv() {
            Ok(t) => t,
            Err(_) => break,
        };
        let mut tasks = vec![first];
        while let Ok(t) = rx.try_recv() {
            tasks.push(t);
        }
        if shared.cfg.batch_window > Duration::ZERO {
            let deadline = Instant::now() + shared.cfg.batch_window;
            while let Some(left) = deadline.checked_duration_since(Instant::now()) {
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(t) => tasks.push(t),
                    Err(_) => break,
                }
            }
        }
        execute_round(&shared, tasks);
    }
}

fn execute_round(shared: &Shared, tasks: Vec<StepTask>) {
    let keys: Vec<Option<(String, u64)>> = tasks
        .iter()
        .map(|t| {
            let packable = !t.trace
                && t.n > 0
                && t.body.backend == BackendKind::Cuttlesim
                && t.body.td.fits_u64();
            packable.then(|| (t.body.design_name.clone(), t.n))
        })
        .collect();
    let jobs = plan_jobs(&keys, shared.cfg.batch_min);
    let slots: Vec<Mutex<StepTask>> = tasks.into_iter().map(Mutex::new).collect();
    let (reports, _) = run_jobs(
        jobs.len(),
        &shared.cfg.runner,
        |ji| match &jobs[ji] {
            Job::Single(i) => run_single(&mut lock(&slots[*i]), shared, true),
            Job::Packed(is) => {
                let mut guards: Vec<_> = is.iter().map(|&i| lock(&slots[i])).collect();
                let mut refs: Vec<&mut StepTask> =
                    guards.iter_mut().map(|g| &mut **g).collect();
                run_packed(&mut refs, shared);
                Ok(())
            }
        },
        None,
    );
    let mut tasks: Vec<Option<StepTask>> = slots
        .into_iter()
        .map(|m| Some(m.into_inner().unwrap_or_else(PoisonError::into_inner)))
        .collect();
    for report in reports {
        let job_err = report.result.err();
        match &jobs[report.index] {
            Job::Single(i) => {
                let task = tasks[*i].take().expect("each task finishes once");
                finish_task(shared, task, job_err);
            }
            Job::Packed(is) => {
                for &i in is {
                    let task = tasks[i].take().expect("each task finishes once");
                    finish_task(shared, task, None);
                }
            }
        }
    }
}

/// Checks a finished step back into the table (or tears the session
/// down), updates metrics, and sends the reply line.
fn finish_task(shared: &Shared, mut task: StepTask, job_err: Option<JobError>) {
    let verdict = match job_err {
        Some(JobError::Panic(msg)) => StepVerdict::Panic { msg },
        Some(JobError::Transient(msg)) => match task.last_trip.take() {
            Some(trip) => StepVerdict::Trip { trip },
            None => StepVerdict::Fatal { msg },
        },
        Some(JobError::Fatal(msg)) => StepVerdict::Fatal { msg },
        None => task.verdict.take().unwrap_or(StepVerdict::Fatal {
            msg: "step produced no verdict".into(),
        }),
    };
    let id = task.id;
    let tenant = task.body.tenant.clone();
    let cycles_run = task.body.snap.cycles.saturating_sub(task.start_cycles);
    let teardown = matches!(verdict, StepVerdict::Panic { .. });
    let reply = match &verdict {
        StepVerdict::Done {
            cycles,
            fired,
            packed,
            events,
            truncated,
        } => {
            {
                let mut m = lock(&shared.metrics);
                let t = m.tenant(&tenant);
                t.steps += 1;
                t.cycles += cycles_run;
                if *packed {
                    t.packed_steps += 1;
                }
            }
            let mut reply =
                format!("{{\"ok\":true,\"session\":{id},\"cycles\":{cycles},\"fired\":{fired}");
            if task.trace {
                reply.push_str(",\"events\":[");
                for (i, (cycle, rule)) in events.iter().enumerate() {
                    if i > 0 {
                        reply.push(',');
                    }
                    let name = task
                        .body
                        .td
                        .rules
                        .get(*rule)
                        .map(|r| r.name.as_str())
                        .unwrap_or("?");
                    reply.push_str(&format!(
                        "{{\"cycle\":{cycle},\"rule\":\"{}\"}}",
                        json::escape(name)
                    ));
                }
                reply.push_str(&format!("],\"truncated\":{truncated}"));
            }
            reply.push('}');
            reply
        }
        StepVerdict::Trip { trip } => {
            {
                let mut m = lock(&shared.metrics);
                let t = m.tenant(&tenant);
                t.steps += 1;
                t.cycles += cycles_run;
                t.watchdog_trips += 1;
            }
            format!(
                "{{\"ok\":false,\"error\":\"watchdog\",\"kind\":\"{}\",\"cycle\":{},\"detail\":\"{}\"}}",
                trip_kind_label(trip.kind),
                trip.cycle,
                json::escape(&trip.reason)
            )
        }
        StepVerdict::Fatal { msg } => {
            lock(&shared.metrics).tenant(&tenant).steps += 1;
            err_reply("internal", msg)
        }
        StepVerdict::Panic { msg } => {
            {
                let mut m = lock(&shared.metrics);
                let t = m.tenant(&tenant);
                t.steps += 1;
                t.panics_contained += 1;
                t.sessions_closed += 1;
            }
            err_reply("panic", &format!("session torn down: {msg}"))
        }
    };
    // Durable bookkeeping. The journal already holds a `step n` record;
    // reconcile it with what actually committed.
    if teardown {
        // Torn down: the session's files go with it.
        if let Some(j) = task.body.journal.take() {
            j.delete(id, shared.chaos());
        }
    } else if let Some((of_seq, pre_len)) = task.journal_seq {
        let committed = task.body.snap.cycles.saturating_sub(task.start_cycles);
        let full_commit = matches!(verdict, StepVerdict::Done { .. })
            || matches!(&verdict, StepVerdict::Trip { trip } if trip.kind.is_deterministic());
        if full_commit {
            // Deterministic replay of `step n` reproduces this state
            // exactly (deterministic trips included). Auto-checkpoint
            // once the journal has grown past the bound.
            let over = task
                .body
                .journal
                .as_ref()
                .is_some_and(|j| j.durable_len() > shared.cfg.journal_checkpoint_bytes);
            if over {
                if let Err(e) = checkpoint_body(shared, id, &mut task.body) {
                    shared.note_write_failure(&tenant, &e.to_string());
                }
            }
        } else {
            // Wall trip or deterministic failure: the journaled `step n`
            // did not commit as written. Roll it back, and when a wall
            // trip committed partial progress (machine-dependent cycle
            // count), journal the count that actually committed — replay
            // of `step committed` is deterministic again.
            let chaos = shared.cfg.chaos.as_deref();
            if let Some(j) = task.body.journal.as_mut() {
                // The substitute record inherits the req_id so a
                // re-submission after a crash still hits the window
                // instead of stepping twice.
                let res = j.append(JournalOp::Rollback { of_seq }, None, chaos).and_then(|_| {
                    if committed > 0 {
                        j.append(JournalOp::Step { n: committed }, task.req_id, chaos).map(|_| ())
                    } else {
                        Ok(())
                    }
                });
                if let Err(e) = res {
                    // Even the rollback could not be written. Truncating
                    // back to the pre-step durable prefix needs no disk
                    // space, so the journal never retains a `step` that
                    // did not execute as written.
                    j.truncate_to(pre_len);
                    shared.note_write_failure(&tenant, &e.to_string());
                }
            }
        }
    }
    // Cache the reply for idempotent re-submission — but only for
    // outcomes the journal represents durably (committed steps and
    // trips); a Fatal reply is safe for the client to retry.
    if !teardown && !matches!(verdict, StepVerdict::Fatal { .. }) {
        if let Some(rid) = task.req_id {
            req_store(&mut task.body.recent, rid, reply.clone());
        }
    }
    {
        let mut table = lock(&shared.table);
        if teardown {
            table.remove(id);
        } else {
            task.body.last_touch = Instant::now();
            table.put(id, SessionSlot::Live(task.body));
        }
    }
    let _ = task.reply.send(reply);
}

// ---------------------------------------------------------------------------
// Connection handling and inline ops
// ---------------------------------------------------------------------------

fn orchestrate(
    shared: Arc<Shared>,
    listener: TcpListener,
    tx: SyncSender<StepTask>,
    rx: Receiver<StepTask>,
) -> ServerStats {
    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("koika-dispatch".into())
            .spawn(move || dispatcher(shared, rx))
            .expect("spawn dispatcher")
    };
    let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut last_sweep = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                if let Ok(h) = thread::Builder::new()
                    .name("koika-conn".into())
                    .spawn(move || handle_conn(shared, stream, tx))
                {
                    conns.push(h);
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                if let Some(idle) = shared.cfg.idle_evict {
                    if last_sweep.elapsed() >= Duration::from_millis(100) {
                        last_sweep = Instant::now();
                        sweep_idle(&shared, idle);
                    }
                }
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    drop(tx);
    for h in conns {
        let _ = h.join();
    }
    let _ = dispatcher.join();
    if shared.abort.load(Ordering::SeqCst) {
        // Hard stop: leave the table as-is — no spilling, no journal
        // closes. Recovery must work from the write-ahead state alone.
        let m = lock(&shared.metrics);
        return ServerStats {
            requests: m.requests,
            protocol_errors: m.protocol_errors,
            sessions_spilled: 0,
            panics_contained: m.tenants().map(|(_, t)| t.panics_contained).sum(),
            sessions_recovered: m.tenants().map(|(_, t)| t.recovered_sessions).sum(),
        };
    }
    drain(&shared)
}

/// Evicts every live session idle past the threshold.
fn sweep_idle(shared: &Shared, idle: Duration) {
    let ids = lock(&shared.table).idle_candidates(Instant::now(), idle);
    for id in ids {
        let _ = evict_session(shared, id);
    }
}

/// Spills remaining live sessions and collects final statistics. Durable
/// sessions checkpoint (spool + journal rewrite) so the next startup
/// recovers them without replaying a tail.
fn drain(shared: &Shared) -> ServerStats {
    let mut spilled = 0;
    {
        let mut table = lock(&shared.table);
        for id in table.ids() {
            if let Some(SessionSlot::Live(mut body)) = table.remove(id) {
                let ok = if body.journal.is_some() {
                    checkpoint_body(shared, id, &mut body).is_ok()
                } else {
                    spill(&body, &shared.spool_path(id)).is_ok()
                };
                if ok {
                    spilled += 1;
                }
            }
        }
    }
    let m = lock(&shared.metrics);
    ServerStats {
        requests: m.requests,
        protocol_errors: m.protocol_errors,
        sessions_spilled: spilled,
        panics_contained: m.tenants().map(|(_, t)| t.panics_contained).sum(),
        sessions_recovered: m.tenants().map(|(_, t)| t.recovered_sessions).sum(),
    }
}

fn handle_conn(shared: Arc<Shared>, mut stream: TcpStream, tx: SyncSender<StepTask>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=nl).collect();
                    let line = String::from_utf8_lossy(&line[..nl]).into_owned();
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let reply = handle_line(&shared, &tx, line);
                    if stream
                        .write_all(format!("{reply}\n").as_bytes())
                        .and_then(|()| stream.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                if buf.len() > (1 << 20) {
                    let _ = stream.write_all(
                        format!("{}\n", err_reply("protocol", "request line exceeds 1 MiB")).as_bytes(),
                    );
                    return;
                }
            }
            Err(ref e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Parses and executes one request line, returning the reply line.
fn handle_line(shared: &Shared, tx: &SyncSender<StepTask>, line: &str) -> String {
    lock(&shared.metrics).requests += 1;
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            lock(&shared.metrics).protocol_errors += 1;
            return err_reply("protocol", &e);
        }
    };
    let Some(op) = v.get("op").and_then(Json::as_str) else {
        lock(&shared.metrics).protocol_errors += 1;
        return err_reply("protocol", "missing \"op\" field");
    };
    match op {
        "create" => op_create(shared, &v),
        "step" => op_step(shared, tx, &v, false),
        "stream-trace" => op_step(shared, tx, &v, true),
        "inject" => op_inject(shared, &v),
        "snapshot" => op_snapshot(shared, &v),
        "restore" => op_restore(shared, &v),
        "query-regs" => op_query_regs(shared, &v),
        "evict" => op_evict(shared, &v),
        "close" => op_close(shared, &v),
        "metrics" => op_metrics(shared, &v),
        "ping" => "{\"ok\":true,\"pong\":true}".into(),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            "{\"ok\":true,\"draining\":true}".into()
        }
        other => {
            lock(&shared.metrics).protocol_errors += 1;
            err_reply("unknown-op", &format!("unknown op {other:?}"))
        }
    }
}

fn tenant_of(v: &Json) -> String {
    v.get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("default")
        .to_string()
}

fn parse_watchdog(v: &Json) -> Option<Watchdog> {
    let w = v.get("watchdog")?;
    Some(Watchdog {
        max_cycles: w.get("max_cycles").and_then(Json::as_u64),
        stall_cycles: w.get("stall_cycles").and_then(Json::as_u64),
        wall_budget: w
            .get("wall_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis),
    })
}

/// Arms a watchdog (paused) if any budget is configured.
fn arm_paused(cfg: &Watchdog) -> Option<ArmedWatchdog> {
    if cfg.max_cycles.is_none() && cfg.stall_cycles.is_none() && cfg.wall_budget.is_none() {
        return None;
    }
    let mut armed = cfg.arm();
    armed.pause();
    Some(armed)
}

fn op_create(shared: &Shared, v: &Json) -> String {
    let Some(design) = v.get("design").and_then(Json::as_str) else {
        return err_reply("protocol", "create requires \"design\"");
    };
    let req_id = v.get("req_id").and_then(Json::as_u64);
    if let Some(rid) = req_id {
        if let Some(cached) = req_cached(&lock(&shared.create_reqs), rid) {
            return cached;
        }
    }
    if let Some(reply) = read_only_guard(shared) {
        return reply;
    }
    let tenant = tenant_of(v);
    let Some(td) = shared.provider.design(design) else {
        return err_reply("unknown-design", &format!("unknown design {design:?}"));
    };
    let backend = match v.get("backend").and_then(Json::as_str) {
        Some(s) => match BackendKind::parse(s) {
            Some(b) => b,
            None => return err_reply("protocol", &format!("unknown backend {s:?}")),
        },
        None => {
            if td.fits_u64() {
                BackendKind::Cuttlesim
            } else {
                BackendKind::Interp
            }
        }
    };
    if backend == BackendKind::Cuttlesim && !td.fits_u64() {
        return err_reply(
            "backend",
            "the cuttlesim backend requires all registers \u{2264} 64 bits; use \"interp\"",
        );
    }
    let wd_cfg = parse_watchdog(v).unwrap_or_else(|| shared.cfg.default_watchdog.clone());
    // Building devices runs embedder code; contain it so a provider that
    // panics at construction poisons nothing.
    let built = contain(|| {
        let devices = shared.provider.devices(design, &td);
        devices.iter().map(|d| d.save_state()).collect::<Vec<_>>()
    });
    let dev_blobs = match built {
        Ok(blobs) => blobs,
        Err(msg) => {
            let mut m = lock(&shared.metrics);
            m.tenant(&tenant).panics_contained += 1;
            return err_reply("panic", &format!("device construction panicked: {msg}"));
        }
    };
    let snap = Snapshot {
        design: td.name.clone(),
        cycles: 0,
        fired: 0,
        fingerprint: td.fingerprint(),
        fired_per_rule: vec![0; td.rules.len()],
        regs: td.initial_values(),
    };
    let mut body = Box::new(SessionBody {
        design_name: design.to_string(),
        td,
        backend,
        snap,
        dev_blobs,
        watchdog: arm_paused(&wd_cfg),
        pending: Vec::new(),
        tenant: tenant.clone(),
        last_touch: Instant::now(),
        journal: None,
        recent: ReqWindow::new(),
    });
    let id = {
        let mut table = lock(&shared.table);
        if table.len() >= shared.cfg.max_sessions {
            drop(table);
            let mut m = lock(&shared.metrics);
            m.tenant(&tenant).busy_rejections += 1;
            return err_reply("busy", "session table full");
        }
        let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
        if let Some(dir) = shared.durable_dir() {
            // Write-ahead: the journal (holding the create record) must
            // be durable before the session exists. Held under the table
            // lock so admission stays exact.
            let rec = JournalRecord {
                seq: 0,
                req_id,
                op: JournalOp::Create {
                    design: design.to_string(),
                    tenant: tenant.clone(),
                    backend,
                    watchdog: WatchdogSpec::from_watchdog(&wd_cfg),
                },
            };
            match Journal::create(dir, id, &rec, shared.chaos()) {
                Ok(j) => body.journal = Some(j),
                Err(e) => {
                    drop(table);
                    shared.note_write_failure(&tenant, &e.to_string());
                    return err_reply(
                        "read-only",
                        &format!("journaling create: {e}; the session was not created"),
                    );
                }
            }
        }
        table.insert(id, body);
        id
    };
    lock(&shared.metrics).tenant(&tenant).sessions_created += 1;
    let reply = format!(
        "{{\"ok\":true,\"session\":{id},\"design\":\"{}\",\"backend\":\"{}\",\"cycles\":0}}",
        json::escape(design),
        backend.name()
    );
    if let Some(rid) = req_id {
        req_store_bounded(&mut lock(&shared.create_reqs), rid, reply.clone(), CREATE_WINDOW);
    }
    reply
}

fn session_id(v: &Json) -> Result<u64, String> {
    v.get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| err_reply("protocol", "missing or invalid \"session\" id"))
}

/// Rehydrates an evicted session in place. The caller holds the table
/// lock; on success the slot is `Live`.
fn rehydrate_locked(shared: &Shared, table: &mut SessionTable, id: u64) -> Result<(), String> {
    let is_evicted = matches!(table.get_mut(id), Some(SessionSlot::Evicted(_)));
    if !is_evicted {
        return Ok(());
    }
    let Some(SessionSlot::Evicted(stub)) = table.remove(id) else {
        unreachable!("checked above");
    };
    // A durable stub's spool is the journal's checkpoint base: it must
    // survive rehydration (only the next checkpoint supersedes it).
    match unspill(&stub.path, stub.journal.is_some()) {
        Ok((snap, dev_blobs)) => {
            let tenant = stub.tenant.clone();
            table.put(
                id,
                SessionSlot::Live(Box::new(SessionBody {
                    design_name: stub.design_name,
                    td: stub.td,
                    backend: stub.backend,
                    snap,
                    dev_blobs,
                    watchdog: stub.watchdog,
                    pending: stub.pending,
                    tenant: stub.tenant,
                    last_touch: Instant::now(),
                    journal: stub.journal,
                    recent: stub.recent,
                })),
            );
            lock(&shared.metrics).tenant(&tenant).rehydrations += 1;
            Ok(())
        }
        Err(e) => {
            // The spool file is gone or corrupt: the session is lost.
            lock(&shared.metrics).tenant(&stub.tenant).sessions_closed += 1;
            Err(err_reply("internal", &format!("rehydrating session {id}: {e}")))
        }
    }
}

fn op_step(shared: &Shared, tx: &SyncSender<StepTask>, v: &Json, trace: bool) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    let n = v.get("n").and_then(Json::as_u64).unwrap_or(1);
    if n > shared.cfg.max_step {
        return err_reply(
            "protocol",
            &format!("n={n} exceeds max_step={}", shared.cfg.max_step),
        );
    }
    let req_id = v.get("req_id").and_then(Json::as_u64);
    if let Some(reply) = read_only_guard(shared) {
        return reply;
    }
    // Check the session out: slot becomes Running until the dispatcher
    // checks it back in.
    let mut body = {
        let mut table = lock(&shared.table);
        // Idempotent re-submission: answer from the window without
        // touching (or even rehydrating) the session.
        if let Some(rid) = req_id {
            let cached = match table.get_mut(id) {
                Some(SessionSlot::Live(b)) => req_cached(&b.recent, rid),
                Some(SessionSlot::Evicted(s)) => req_cached(&s.recent, rid),
                _ => None,
            };
            if let Some(reply) = cached {
                return reply;
            }
        }
        if let Err(reply) = rehydrate_locked(shared, &mut table, id) {
            return reply;
        }
        match table.remove(id) {
            None => return err_reply("unknown-session", &format!("no session {id}")),
            Some(SessionSlot::Running { tenant }) => {
                table.put(id, SessionSlot::Running { tenant: tenant.clone() });
                let mut m = lock(&shared.metrics);
                m.tenant(&tenant).busy_rejections += 1;
                return err_reply("session-busy", "a step for this session is already in flight");
            }
            Some(SessionSlot::Evicted(_)) => unreachable!("rehydrated above"),
            Some(SessionSlot::Live(body)) => {
                table.put(
                    id,
                    SessionSlot::Running {
                        tenant: body.tenant.clone(),
                    },
                );
                body
            }
        }
    };
    let tenant = body.tenant.clone();
    // Write-ahead: journal the step before executing it. The slot says
    // Running, so nothing else touches the body meanwhile.
    let mut journal_seq = None;
    let mut journal_err = None;
    if let Some(j) = body.journal.as_mut() {
        let chaos = shared.cfg.chaos.as_deref();
        let pre_len = j.durable_len();
        match j.append(JournalOp::Step { n }, req_id, chaos) {
            Ok(seq) => journal_seq = Some((seq, pre_len)),
            Err(e) => journal_err = Some(e),
        }
    }
    if let Some(e) = journal_err {
        shared.note_write_failure(&tenant, &e.to_string());
        lock(&shared.table).put(id, SessionSlot::Live(body));
        return err_reply(
            "read-only",
            &format!("journaling step: {e}; the step was not applied"),
        );
    }
    let start_cycles = body.snap.cycles;
    let (reply_tx, reply_rx) = mpsc::channel();
    let task = StepTask {
        id,
        n,
        trace,
        body,
        start_cycles,
        reply: reply_tx,
        verdict: None,
        last_trip: None,
        journal_seq,
        req_id,
    };
    match tx.try_send(task) {
        Ok(()) => match reply_rx.recv() {
            Ok(reply) => reply,
            Err(_) => err_reply("internal", "dispatcher exited before replying"),
        },
        Err(TrySendError::Full(task)) | Err(TrySendError::Disconnected(task)) => {
            // Shed: restore the slot and tell the client to back off.
            // The journaled step never ran — roll it back so recovery
            // does not replay it.
            let mut task = task;
            if let (Some((of_seq, pre_len)), Some(j)) =
                (task.journal_seq, task.body.journal.as_mut())
            {
                if let Err(e) =
                    j.append(JournalOp::Rollback { of_seq }, None, shared.cfg.chaos.as_deref())
                {
                    j.truncate_to(pre_len);
                    shared.note_write_failure(&tenant, &e.to_string());
                }
            }
            let mut table = lock(&shared.table);
            table.put(id, SessionSlot::Live(task.body));
            drop(table);
            let mut m = lock(&shared.metrics);
            m.tenant(&tenant).busy_rejections += 1;
            err_reply("busy", "step queue full")
        }
    }
}

fn op_inject(shared: &Shared, v: &Json) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    let Some(cycle) = v.get("cycle").and_then(Json::as_u64) else {
        return err_reply("protocol", "inject requires \"cycle\"");
    };
    let reg = match v.get("reg") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Int(i)) if *i >= 0 => i.to_string(),
        _ => return err_reply("protocol", "inject requires \"reg\" (name or index)"),
    };
    let Some(bit) = v.get("bit").and_then(Json::as_u64) else {
        return err_reply("protocol", "inject requires \"bit\"");
    };
    let req_id = v.get("req_id").and_then(Json::as_u64);
    if let Some(reply) = read_only_guard(shared) {
        return reply;
    }
    let mut table = lock(&shared.table);
    let (td, cycles_now, pending, journal, recent, tenant) = match table.get_mut(id) {
        None => return err_reply("unknown-session", &format!("no session {id}")),
        Some(SessionSlot::Running { .. }) => {
            return err_reply("session-busy", "a step for this session is in flight")
        }
        Some(SessionSlot::Live(b)) => (
            Arc::clone(&b.td),
            b.snap.cycles,
            &mut b.pending,
            b.journal.as_mut(),
            &mut b.recent,
            b.tenant.clone(),
        ),
        Some(SessionSlot::Evicted(stub)) => (
            Arc::clone(&stub.td),
            stub.cycles,
            &mut stub.pending,
            stub.journal.as_mut(),
            &mut stub.recent,
            stub.tenant.clone(),
        ),
    };
    if let Some(rid) = req_id {
        if let Some(reply) = req_cached(recent, rid) {
            return reply;
        }
    }
    let spec = format!("{cycle}:{reg}:{bit}");
    let inj = match Injection::parse(&spec, &td) {
        Ok(inj) => inj,
        Err(e) => return err_reply("protocol", &e),
    };
    if td.regs[inj.reg.0 as usize].width > 64 {
        return err_reply("protocol", "cannot inject into a register wider than 64 bits");
    }
    if inj.cycle < cycles_now {
        return err_reply(
            "protocol",
            &format!("cycle {cycle} is already in the past (session is at {cycles_now})"),
        );
    }
    // Write-ahead: the injection must be durable before it is pending,
    // or a crash between the reply and the next checkpoint would lose it.
    if let Some(j) = journal {
        let op = JournalOp::Inject {
            cycle: inj.cycle,
            reg: inj.reg.0,
            bit: inj.bit,
        };
        if let Err(e) = j.append(op, req_id, shared.cfg.chaos.as_deref()) {
            // Locking metrics under the table lock follows the
            // established table -> metrics order.
            shared.note_write_failure(&tenant, &e.to_string());
            return err_reply(
                "read-only",
                &format!("journaling injection: {e}; the injection was not queued"),
            );
        }
    }
    pending.push(inj);
    let count = pending.len();
    let reply = format!("{{\"ok\":true,\"session\":{id},\"pending\":{count}}}");
    if let Some(rid) = req_id {
        req_store(recent, rid, reply.clone());
    }
    drop(table);
    lock(&shared.metrics).tenant(&tenant).injections += 1;
    reply
}

/// Runs `f` on the live (rehydrating if needed) body of a session.
fn with_live_session<R>(
    shared: &Shared,
    id: u64,
    f: impl FnOnce(&mut SessionBody) -> R,
) -> Result<R, String> {
    let mut table = lock(&shared.table);
    rehydrate_locked(shared, &mut table, id)?;
    match table.get_mut(id) {
        None => Err(err_reply("unknown-session", &format!("no session {id}"))),
        Some(SessionSlot::Running { .. }) => Err(err_reply(
            "session-busy",
            "a step for this session is in flight",
        )),
        Some(SessionSlot::Evicted(_)) => unreachable!("rehydrated above"),
        Some(SessionSlot::Live(body)) => {
            body.last_touch = Instant::now();
            Ok(f(body))
        }
    }
}

fn op_snapshot(shared: &Shared, v: &Json) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    match with_live_session(shared, id, |body| {
        (body.snap.cycles, json::hex_encode(&body.snap.to_bytes()))
    }) {
        Ok((cycles, hex)) => {
            format!("{{\"ok\":true,\"session\":{id},\"cycles\":{cycles},\"ksnap\":\"{hex}\"}}")
        }
        Err(reply) => reply,
    }
}

fn op_restore(shared: &Shared, v: &Json) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    let Some(hex) = v.get("ksnap").and_then(Json::as_str) else {
        return err_reply("protocol", "restore requires \"ksnap\" (hex)");
    };
    let Some(bytes) = json::hex_decode(hex) else {
        return err_reply("protocol", "\"ksnap\" is not valid hex");
    };
    let snap = match Snapshot::from_bytes(&bytes) {
        Ok(s) => s,
        // A corrupt or mismatched snapshot is the client's problem, not
        // the server's: typed `bad-snapshot`, session state untouched.
        Err(e) => return err_reply("bad-snapshot", &e.to_string()),
    };
    let req_id = v.get("req_id").and_then(Json::as_u64);
    if let Some(reply) = read_only_guard(shared) {
        return reply;
    }
    let mut table = lock(&shared.table);
    if let Err(reply) = rehydrate_locked(shared, &mut table, id) {
        return reply;
    }
    let body = match table.get_mut(id) {
        None => return err_reply("unknown-session", &format!("no session {id}")),
        Some(SessionSlot::Running { .. }) => {
            return err_reply("session-busy", "a step for this session is in flight")
        }
        Some(SessionSlot::Evicted(_)) => unreachable!("rehydrated above"),
        Some(SessionSlot::Live(body)) => body,
    };
    if let Some(rid) = req_id {
        if let Some(reply) = req_cached(&body.recent, rid) {
            return reply;
        }
    }
    let widths: Vec<u32> = body.td.regs.iter().map(|r| r.width).collect();
    if let Err(e) = snap.check_shape(&body.td.name, &widths, body.td.fingerprint()) {
        return err_reply("bad-snapshot", &e.to_string());
    }
    // Write-ahead: replay applies the same bytes, so the restored state
    // survives a crash without waiting for a checkpoint.
    let tenant = body.tenant.clone();
    if let Some(j) = body.journal.as_mut() {
        let op = JournalOp::Restore {
            ksnap: bytes.clone(),
        };
        if let Err(e) = j.append(op, req_id, shared.cfg.chaos.as_deref()) {
            shared.note_write_failure(&tenant, &e.to_string());
            return err_reply(
                "read-only",
                &format!("journaling restore: {e}; the snapshot was not applied"),
            );
        }
    }
    body.snap = snap;
    let done = body.snap.cycles;
    body.pending.retain(|i| i.cycle >= done);
    body.last_touch = Instant::now();
    let reply = format!("{{\"ok\":true,\"session\":{id},\"cycles\":{done}}}");
    if let Some(rid) = req_id {
        req_store(&mut body.recent, rid, reply.clone());
    }
    reply
}

fn op_query_regs(shared: &Shared, v: &Json) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    let wanted: Option<Vec<String>> = match v.get("regs") {
        None => None,
        Some(Json::Arr(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for it in items {
                match it.as_str() {
                    Some(s) => names.push(s.to_string()),
                    None => return err_reply("protocol", "\"regs\" must be an array of names"),
                }
            }
            Some(names)
        }
        Some(_) => return err_reply("protocol", "\"regs\" must be an array of names"),
    };
    match with_live_session(shared, id, |body| {
        let td = &body.td;
        let indices: Result<Vec<usize>, String> = match &wanted {
            None => Ok((0..td.num_regs()).collect()),
            Some(names) => names
                .iter()
                .map(|n| {
                    td.regs
                        .iter()
                        .position(|r| &r.name == n)
                        .ok_or_else(|| format!("unknown register {n:?}"))
                })
                .collect(),
        };
        indices.map(|idx| {
            let mut out = format!("{{\"ok\":true,\"session\":{id},\"cycles\":{},\"regs\":{{", body.snap.cycles);
            for (i, &r) in idx.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let bits = &body.snap.regs[r];
                if bits.width() <= 64 {
                    out.push_str(&format!(
                        "\"{}\":{}",
                        json::escape(&td.regs[r].name),
                        bits.low_u64()
                    ));
                } else {
                    let words = bits.words();
                    let mut hex = String::from("0x");
                    for w in words.iter().rev() {
                        hex.push_str(&format!("{w:016x}"));
                    }
                    out.push_str(&format!(
                        "\"{}\":\"{hex}\"",
                        json::escape(&td.regs[r].name)
                    ));
                }
            }
            out.push_str("}}");
            out
        })
    }) {
        Ok(Ok(reply)) => reply,
        Ok(Err(e)) => err_reply("protocol", &e),
        Err(reply) => reply,
    }
}

/// Spills one live session to its spool file, leaving an evicted stub.
fn evict_session(shared: &Shared, id: u64) -> Result<bool, String> {
    let mut table = lock(&shared.table);
    // Peek the state without keeping a borrow across the remove below.
    enum State {
        Missing,
        Evicted,
        Running,
        Live,
    }
    let state = match table.get_mut(id) {
        None => State::Missing,
        Some(SessionSlot::Evicted(_)) => State::Evicted,
        Some(SessionSlot::Running { .. }) => State::Running,
        Some(SessionSlot::Live(_)) => State::Live,
    };
    match state {
        State::Missing => Err(err_reply("unknown-session", &format!("no session {id}"))),
        State::Evicted => Ok(false),
        State::Running => Err(err_reply(
            "session-busy",
            "a step for this session is in flight",
        )),
        State::Live => {
            let Some(SessionSlot::Live(mut body)) = table.remove(id) else {
                unreachable!("checked above");
            };
            // Durable sessions spool via the checkpoint protocol (spool +
            // journal rewrite), so the eviction itself is crash-safe and
            // the journal tail resets. Non-durable sessions spill to the
            // spool directory as before.
            let spooled = if body.journal.is_some() {
                match checkpoint_body(shared, id, &mut body) {
                    Ok(Some(path)) => Ok(path),
                    Ok(None) => unreachable!("journal checked above"),
                    Err(e) => Err((e.to_string(), true)),
                }
            } else {
                let path = shared.spool_path(id);
                match spill(&body, &path) {
                    Ok(()) => Ok(path),
                    Err(e) => Err((e.to_string(), false)),
                }
            };
            match spooled {
                Ok(path) => {
                    let tenant = body.tenant.clone();
                    table.put(
                        id,
                        SessionSlot::Evicted(Box::new(EvictedStub {
                            design_name: body.design_name,
                            td: body.td,
                            backend: body.backend,
                            tenant: body.tenant,
                            watchdog: body.watchdog,
                            pending: body.pending,
                            cycles: body.snap.cycles,
                            path,
                            journal: body.journal,
                            recent: body.recent,
                        })),
                    );
                    drop(table);
                    lock(&shared.metrics).tenant(&tenant).evictions += 1;
                    Ok(true)
                }
                Err((e, durable)) => {
                    // Spill failed: keep the session live. A durable
                    // failure also degrades the server to read-only.
                    let tenant = body.tenant.clone();
                    table.put(id, SessionSlot::Live(body));
                    if durable {
                        shared.note_write_failure(&tenant, &e);
                        Err(err_reply(
                            "read-only",
                            &format!("checkpointing session {id}: {e}"),
                        ))
                    } else {
                        Err(err_reply("internal", &format!("spilling session {id}: {e}")))
                    }
                }
            }
        }
    }
}

fn op_evict(shared: &Shared, v: &Json) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    match evict_session(shared, id) {
        Ok(evicted) => format!("{{\"ok\":true,\"session\":{id},\"evicted\":{evicted}}}"),
        Err(reply) => reply,
    }
}

fn op_close(shared: &Shared, v: &Json) -> String {
    let id = match session_id(v) {
        Ok(id) => id,
        Err(reply) => return reply,
    };
    let mut table = lock(&shared.table);
    match table.remove(id) {
        None => err_reply("unknown-session", &format!("no session {id}")),
        Some(SessionSlot::Running { tenant }) => {
            // The in-flight step holds the body; refuse rather than
            // leave it to check into a deleted slot.
            table.put(id, SessionSlot::Running { tenant });
            err_reply("session-busy", "a step for this session is in flight")
        }
        Some(SessionSlot::Evicted(stub)) => {
            // A durable close removes the journal and every spool; the
            // non-durable spool file is just unlinked.
            if let Some(j) = stub.journal {
                j.delete(id, shared.chaos());
            } else {
                let _ = std::fs::remove_file(&stub.path);
            }
            drop(table);
            lock(&shared.metrics).tenant(&stub.tenant).sessions_closed += 1;
            format!("{{\"ok\":true,\"session\":{id},\"closed\":true}}")
        }
        Some(SessionSlot::Live(body)) => {
            if let Some(j) = body.journal {
                j.delete(id, shared.chaos());
            }
            drop(table);
            lock(&shared.metrics).tenant(&body.tenant).sessions_closed += 1;
            format!("{{\"ok\":true,\"session\":{id},\"closed\":true}}")
        }
    }
}

fn op_metrics(shared: &Shared, v: &Json) -> String {
    let format = v.get("format").and_then(Json::as_str).unwrap_or("json");
    let active = lock(&shared.table).len() as u64;
    let m = lock(&shared.metrics);
    match format {
        "json" => format!("{{\"ok\":true,\"metrics\":{}}}", m.to_json(active)),
        "prometheus" => format!(
            "{{\"ok\":true,\"prometheus\":\"{}\"}}",
            json::escape(&m.to_prometheus(active))
        ),
        other => err_reply("protocol", &format!("unknown metrics format {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

/// Rebuilds the session table from the state directory: one recovery
/// attempt per `session-<id>.kjrn` journal, in session-id order. Runs
/// synchronously inside [`spawn`], before the listener thread exists, so
/// no locks are contended. Returns `(recovered, lost)` session counts.
fn recover_state(shared: &Shared) -> (u64, u64) {
    let Some(dir) = shared.durable_dir().map(Path::to_path_buf) else {
        return (0, 0);
    };
    // Sweep droppings from interrupted atomic writes; they were never
    // renamed into place, so they are dead weight by construction.
    let mut journals: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            let id = name
                .strip_prefix("session-")
                .and_then(|s| s.strip_suffix(".kjrn"))
                .and_then(|s| s.parse::<u64>().ok());
            if let Some(id) = id {
                journals.push((id, entry.path()));
            }
        }
    }
    journals.sort_by_key(|(id, _)| *id);
    let (mut recovered, mut lost, mut max_id) = (0u64, 0u64, 0u64);
    for (id, path) in journals {
        max_id = max_id.max(id);
        match recover_one(shared, &dir, id, &path) {
            Ok(true) => recovered += 1,
            Ok(false) => {}
            Err(e) => {
                // Quarantine rather than delete: the bytes may still be
                // useful forensically, but the session is gone.
                let mut corrupt = path.clone().into_os_string();
                corrupt.push(".corrupt");
                let _ = std::fs::rename(&path, &corrupt);
                journal::remove_spools_except(&dir, id, None);
                lost += 1;
                eprintln!("koika-server: session {id} unrecoverable: {e}");
            }
        }
    }
    // Ids must never be reused across a crash, or a stale client could
    // talk to a stranger's session.
    shared.next_id.fetch_max(max_id + 1, Ordering::SeqCst);
    (recovered, lost)
}

/// What one journaled `step n` did when re-executed during recovery.
enum Replay {
    /// Committed; carries post-step `(cycles, fired)` for reply synthesis.
    Done(u64, u64),
    /// Deterministic failure (engine compile, state restore) — the
    /// session state is unchanged, mirroring a live `Fatal` verdict.
    Skipped,
    /// The step panicked; the session must be torn down, mirroring a live
    /// `Panic` verdict.
    Panic(String),
}

/// Recovers one session from its journal (and checkpoint spool, if any).
///
/// `Ok(true)` means the session was resurrected into the table;
/// `Ok(false)` means the journal described a session that no longer
/// exists (closed, or torn down by a replayed panic) and its files were
/// cleaned up. `Err` means the journal was unusable — the caller
/// quarantines it.
fn recover_one(shared: &Shared, dir: &Path, id: u64, path: &Path) -> Result<bool, String> {
    let parsed = journal::read_journal(path)?;
    if parsed.session_id != id {
        return Err(format!(
            "journal header names session {}, file names {id}",
            parsed.session_id
        ));
    }
    // A torn tail (crash mid-append) is expected, not fatal: truncate the
    // file back to the durable prefix so reattached appends start clean.
    if parsed.truncated {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("truncating torn tail: {e}"))?;
        f.set_len(parsed.durable_len)
            .map_err(|e| format!("truncating torn tail: {e}"))?;
    }
    let Some(first) = parsed.records.first() else {
        return Err("journal holds no records".into());
    };
    let JournalOp::Create {
        design,
        tenant,
        backend,
        watchdog: spec,
    } = &first.op
    else {
        return Err("journal does not begin with a create record".into());
    };
    let (backend, create_req) = (*backend, first.req_id);
    if parsed.records.iter().any(|r| matches!(r.op, JournalOp::Close)) {
        // Closed sessions stay closed; the close record exists precisely
        // because deleting the files might have been interrupted.
        let _ = std::fs::remove_file(path);
        journal::remove_spools_except(dir, id, None);
        return Ok(false);
    }
    let Some(td) = shared.provider.design(design) else {
        return Err(format!("unknown design {design:?}"));
    };
    if parsed.truncated {
        lock(&shared.metrics).tenant(tenant).journal_truncations += 1;
    }
    // Base state: the newest checkpoint's spool, else a fresh create.
    let mut base_idx = 0usize;
    let mut ck: Option<(u64, u64, u64, Vec<Injection>)> = None;
    for (i, rec) in parsed.records.iter().enumerate() {
        if let JournalOp::Checkpoint {
            cycles,
            stalled,
            pending,
        } = &rec.op
        {
            base_idx = i;
            let pend = pending
                .iter()
                .map(|&(cycle, reg, bit)| Injection {
                    cycle,
                    reg: RegId(reg),
                    bit,
                })
                .collect();
            ck = Some((rec.seq, *cycles, *stalled, pend));
        }
    }
    let ck_seq = ck.as_ref().map(|(seq, ..)| *seq);
    let (mut snap, mut dev_blobs, mut pending, stalled0) = match ck {
        Some((seq, cycles, stalled, pend)) => {
            let spool = journal::spool_path(dir, id, seq);
            let (snap, blobs) = unspill(&spool, true)
                .map_err(|e| format!("loading checkpoint spool {}: {e}", spool.display()))?;
            if snap.cycles != cycles {
                return Err(format!(
                    "checkpoint spool is at cycle {} but the record says {cycles}",
                    snap.cycles
                ));
            }
            (snap, blobs, pend, stalled)
        }
        None => {
            let blobs = contain(|| {
                let devices = shared.provider.devices(design, &td);
                devices.iter().map(|d| d.save_state()).collect::<Vec<_>>()
            })
            .map_err(|m| format!("device construction panicked: {m}"))?;
            let snap = Snapshot {
                design: td.name.clone(),
                cycles: 0,
                fired: 0,
                fingerprint: td.fingerprint(),
                fired_per_rule: vec![0; td.rules.len()],
                regs: td.initial_values(),
            };
            (snap, blobs, Vec::new(), 0)
        }
    };
    // Replay runs under the *deterministic* budgets only — wall time
    // elapsed before the crash is unknowable, and replaying under a wall
    // budget would make recovery racy. The stall counter is real hidden
    // state and is carried from the checkpoint.
    let mut replay_wd = arm_paused(&spec.deterministic_watchdog());
    if let Some(w) = replay_wd.as_mut() {
        w.set_stall_count(stalled0);
    }
    let rolled: HashSet<u64> = parsed
        .records
        .iter()
        .filter_map(|r| match r.op {
            JournalOp::Rollback { of_seq } => Some(of_seq),
            _ => None,
        })
        .collect();
    let mut recent = ReqWindow::new();
    for rec in &parsed.records[base_idx + 1..] {
        match &rec.op {
            JournalOp::Step { n } => {
                if rolled.contains(&rec.seq) {
                    continue;
                }
                match replay_step(
                    shared,
                    design,
                    &td,
                    backend,
                    &mut snap,
                    &mut dev_blobs,
                    &mut pending,
                    &mut replay_wd,
                    *n,
                ) {
                    Replay::Done(cycles, fired) => {
                        if let Some(rid) = rec.req_id {
                            // Synthesized from the replayed state — a
                            // re-submitted req_id after the crash gets a
                            // plain step-ok (trace events are not
                            // reconstructed).
                            req_store(
                                &mut recent,
                                rid,
                                format!(
                                    "{{\"ok\":true,\"session\":{id},\"cycles\":{cycles},\"fired\":{fired}}}"
                                ),
                            );
                        }
                    }
                    Replay::Skipped => {}
                    Replay::Panic(msg) => {
                        // Same blast radius as a live panic: exactly this
                        // session dies; its files go with it.
                        let _ = std::fs::remove_file(path);
                        journal::remove_spools_except(dir, id, None);
                        let mut m = lock(&shared.metrics);
                        let t = m.tenant(tenant);
                        t.panics_contained += 1;
                        t.sessions_closed += 1;
                        eprintln!(
                            "koika-server: session {id} torn down during replay: {msg}"
                        );
                        return Ok(false);
                    }
                }
            }
            JournalOp::Inject { cycle, reg, bit } => {
                pending.push(Injection {
                    cycle: *cycle,
                    reg: RegId(*reg),
                    bit: *bit,
                });
                if let Some(rid) = rec.req_id {
                    let count = pending.len();
                    req_store(
                        &mut recent,
                        rid,
                        format!("{{\"ok\":true,\"session\":{id},\"pending\":{count}}}"),
                    );
                }
            }
            JournalOp::Restore { ksnap } => {
                // Validated before it was journaled; a failure here means
                // the design itself changed across the restart.
                let widths: Vec<u32> = td.regs.iter().map(|r| r.width).collect();
                let ok = Snapshot::from_bytes(ksnap).ok().and_then(|s| {
                    s.check_shape(&td.name, &widths, td.fingerprint()).ok().map(|()| s)
                });
                if let Some(s) = ok {
                    snap = s;
                    let done = snap.cycles;
                    pending.retain(|i| i.cycle >= done);
                    if let Some(rid) = rec.req_id {
                        req_store(
                            &mut recent,
                            rid,
                            format!("{{\"ok\":true,\"session\":{id},\"cycles\":{done}}}"),
                        );
                    }
                }
            }
            JournalOp::Create { .. }
            | JournalOp::Checkpoint { .. }
            | JournalOp::Rollback { .. }
            | JournalOp::Close => {}
        }
    }
    // The live watchdog re-arms with the full budgets (wall included —
    // elapsed wall time does not survive a crash) but inherits the stall
    // counter accumulated across checkpoint and replay.
    let carried = replay_wd
        .as_ref()
        .map(ArmedWatchdog::stall_count)
        .unwrap_or(stalled0);
    let mut watchdog = arm_paused(&spec.to_watchdog());
    if let Some(w) = watchdog.as_mut() {
        w.set_stall_count(carried);
    }
    let body = Box::new(SessionBody {
        design_name: design.clone(),
        td,
        backend,
        snap,
        dev_blobs,
        watchdog,
        pending,
        tenant: tenant.clone(),
        last_touch: Instant::now(),
        journal: Some(Journal::reattach(dir, &parsed)),
        recent,
    });
    lock(&shared.table).insert(id, body);
    lock(&shared.metrics).tenant(tenant).recovered_sessions += 1;
    if let Some(rid) = create_req {
        // The create itself is idempotent across the crash too.
        let reply = format!(
            "{{\"ok\":true,\"session\":{id},\"design\":\"{}\",\"backend\":\"{}\",\"cycles\":0}}",
            json::escape(design),
            backend.name()
        );
        req_store_bounded(&mut lock(&shared.create_reqs), rid, reply, CREATE_WINDOW);
    }
    journal::remove_spools_except(dir, id, ck_seq);
    Ok(true)
}

/// Deterministically re-executes one journaled `step n` during recovery.
///
/// This mirrors [`run_single`] op for op — device tick order, injection
/// XOR at the same cycle, watchdog observation after every cycle — so a
/// replayed step commits byte-identical state. Tracing is irrelevant to
/// state, so replay always uses the untraced cycle path.
#[allow(clippy::too_many_arguments)]
fn replay_step(
    shared: &Shared,
    design_name: &str,
    td: &Arc<TDesign>,
    backend: BackendKind,
    snap: &mut Snapshot,
    dev_blobs: &mut Vec<Option<Vec<u8>>>,
    pending: &mut Vec<Injection>,
    wd: &mut Option<ArmedWatchdog>,
    n: u64,
) -> Replay {
    let mut engine = match lock(&shared.pool).checkout_scalar(design_name, td, backend) {
        Ok(e) => e,
        Err(_) => return Replay::Skipped,
    };
    if engine.restore(snap).is_err() {
        lock(&shared.pool).checkin_scalar(design_name, backend, engine);
        return Replay::Skipped;
    }
    let run = contain(move || {
        let mut devices = shared.provider.devices(design_name, td);
        for (d, blob) in devices.iter_mut().zip(dev_blobs.iter()) {
            if let Some(bytes) = blob {
                if d.load_state(bytes).is_err() {
                    return (engine, None);
                }
            }
        }
        if let Some(w) = wd.as_mut() {
            w.resume();
        }
        for _ in 0..n {
            let cycle = engine.cycle_count();
            for d in devices.iter_mut() {
                d.tick(cycle, engine.as_reg_access());
            }
            for inj in pending.iter().filter(|i| i.cycle == cycle) {
                let regs = engine.as_reg_access();
                let old = regs.get64(inj.reg);
                regs.set64(inj.reg, old ^ (1u64 << inj.bit));
            }
            let before = engine.rules_fired();
            engine.cycle();
            let commits = engine.rules_fired().wrapping_sub(before);
            if let Some(w) = wd.as_mut() {
                if w.observe(engine.cycle_count(), commits).is_some() {
                    // Deterministic trip: commit progress up to the trip
                    // boundary, exactly as the live run did.
                    break;
                }
            }
        }
        if let Some(w) = wd.as_mut() {
            w.pause();
        }
        *snap = engine.snapshot();
        *dev_blobs = devices.iter().map(|d| d.save_state()).collect();
        let done = snap.cycles;
        pending.retain(|i| i.cycle >= done);
        let out = Some((snap.cycles, snap.fired));
        (engine, out)
    });
    match run {
        Ok((engine, outcome)) => {
            lock(&shared.pool).checkin_scalar(design_name, backend, engine);
            match outcome {
                Some((cycles, fired)) => Replay::Done(cycles, fired),
                None => Replay::Skipped,
            }
        }
        Err(msg) => Replay::Panic(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(d: &str, n: u64) -> Option<(String, u64)> {
        Some((d.to_string(), n))
    }

    #[test]
    fn planner_packs_same_design_same_n_groups() {
        let keys = vec![
            key("a", 10),
            None,
            key("a", 10),
            key("b", 10),
            key("a", 5),
            key("a", 10),
        ];
        let jobs = plan_jobs(&keys, 2);
        let mut singles = Vec::new();
        let mut packed = Vec::new();
        for j in &jobs {
            match j {
                Job::Single(i) => singles.push(*i),
                Job::Packed(is) => packed.push(is.clone()),
            }
        }
        // The three (a, 10) tasks pack; everything else is single.
        assert_eq!(packed, vec![vec![0, 2, 5]]);
        singles.sort_unstable();
        assert_eq!(singles, vec![1, 3, 4]);
    }

    #[test]
    fn planner_degrades_small_groups_to_singles() {
        let keys = vec![key("a", 1), key("b", 1)];
        let jobs = plan_jobs(&keys, 2);
        assert_eq!(jobs.len(), 2);
        assert!(jobs.iter().all(|j| matches!(j, Job::Single(_))));
    }

    #[test]
    fn watchdog_parse_reads_all_budgets() {
        let v = Json::parse(
            r#"{"watchdog":{"max_cycles":100,"stall_cycles":5,"wall_ms":250}}"#,
        )
        .unwrap();
        let wd = parse_watchdog(&v).unwrap();
        assert_eq!(wd.max_cycles, Some(100));
        assert_eq!(wd.stall_cycles, Some(5));
        assert_eq!(wd.wall_budget, Some(Duration::from_millis(250)));
        assert!(arm_paused(&wd).is_some());
        assert!(arm_paused(&Watchdog::default()).is_none());
    }

    #[test]
    fn error_replies_are_valid_json() {
        let r = err_reply("protocol", "a \"quoted\" detail\nwith newline");
        let v = Json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("protocol"));
    }
}
